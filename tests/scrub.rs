//! Wear-out survival integration tests: end-to-end integrity, background
//! and synchronous scrubbing, repair from the durable layer, bucket
//! retirement and its persistence across crash-and-reopen.
//!
//! The invariant every test here defends: **no read ever returns wrong
//! bytes silently.** A GET is either bit-exact or a typed
//! [`StoreError::Corruption`] — and after a scrub pass, every value a
//! clean copy existed for is served bit-exact again, off healthy media.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use pnw_core::{PnwConfig, RetrainMode, ShardedPnwStore, StoreError};

fn scrub_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pnw_scrub_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(capacity: usize) -> PnwConfig {
    PnwConfig::new(capacity, 16)
        .with_clusters(2)
        .with_seed(77)
        .with_retrain(RetrainMode::Manual)
        .with_shards(2)
}

/// A key's value, patterned so neighbouring keys differ in many bits.
fn value_of(k: u64) -> Vec<u8> {
    (0..16u8).map(|i| (k as u8).wrapping_mul(31).wrapping_add(i)).collect()
}

/// A durable store repairs a corrupted bucket from the WAL's clean copy:
/// the value comes back bit-exact on fresh media and the damaged bucket
/// is retired from placement.
#[test]
fn scrub_repairs_corruption_from_the_wal() {
    let dir = scrub_dir("wal_repair");
    let c = cfg(64).with_path(&dir);
    let s = ShardedPnwStore::open(c).unwrap();
    for k in 0..16u64 {
        s.put(k, &value_of(k)).unwrap();
    }
    // value_of(3) has byte 0 = 93 = 0b0101_1101: bit 1 is 0 — latch it
    // high so the stored value no longer matches its sealed CRC.
    assert!(s.arm_stuck_at_key(3, 1, true).unwrap());

    let stats = s.scrub_pass().unwrap();
    assert!(stats.crc_failures >= 1, "scrub must detect the flip: {stats:?}");
    assert!(stats.repairs >= 1, "WAL copy exists, so repair — not retire-only: {stats:?}");
    assert!(stats.retired >= 1, "the latched bucket leaves placement: {stats:?}");

    // The repaired key and every bystander read back bit-exact.
    for k in 0..16u64 {
        assert_eq!(s.get(k).unwrap().unwrap(), value_of(k), "key {k}");
    }
    // The damaged bucket is gone from honest capacity.
    assert_eq!(s.snapshot().capacity, 64 - stats.retired as usize);
    drop(s);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Retirement and the repaired value survive a *crash* (drop with no
/// checkpoint) — both are replayed from the WAL on reopen, and the
/// retired bucket never re-enters placement.
#[test]
fn retirement_survives_crash_and_reopen() {
    let dir = scrub_dir("crash_reopen");
    let c = cfg(64).with_path(&dir);
    let s = ShardedPnwStore::open(c.clone()).unwrap();
    for k in 0..16u64 {
        s.put(k, &value_of(k)).unwrap();
    }
    assert!(s.arm_stuck_at_key(5, 2, true).unwrap() || s.arm_stuck_at_key(5, 2, false).unwrap());
    let stats = s.scrub_pass().unwrap();
    let capacity = s.snapshot().capacity;
    assert!(stats.retired >= 1);
    assert!(capacity < 64);
    drop(s); // crash: no close(), no checkpoint — the WAL is the only record

    let s = ShardedPnwStore::open(c.clone()).unwrap();
    let snap = s.snapshot();
    assert_eq!(snap.scrub.retired, stats.retired, "retirement must replay from the WAL");
    assert_eq!(snap.capacity, capacity, "a retired bucket must not re-enter placement");
    for k in 0..16u64 {
        assert_eq!(s.get(k).unwrap().unwrap(), value_of(k), "key {k}");
    }

    // A second crash-reopen cycle with churn in between: retirement is
    // permanent, not a one-replay artifact.
    for k in 16..24u64 {
        s.put(k, &value_of(k)).unwrap();
    }
    drop(s);
    let s = ShardedPnwStore::open(c).unwrap();
    assert_eq!(s.snapshot().scrub.retired, stats.retired);
    assert_eq!(s.snapshot().capacity, capacity);
    for k in 0..24u64 {
        assert_eq!(s.get(k).unwrap().unwrap(), value_of(k), "key {k}");
    }
    drop(s);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The background scrubber ([`PnwConfig::with_scrub`]) finds latched
/// media *before* any client read does: a stuck bit that happens to
/// agree with the stored data (no corruption yet!) still gets the value
/// proactively relocated and the bucket retired.
#[test]
fn background_scrubber_relocates_off_stuck_media() {
    let s = ShardedPnwStore::new(cfg(32).with_scrub(10_000));
    for k in 0..8u64 {
        s.put(k, &[0xFF; 16]).unwrap();
    }
    // Stuck-at-one under an all-ones value: bit-identical today, data
    // loss on the first rewrite — exactly what scrubbing must pre-empt.
    assert!(s.arm_stuck_at_key(2, 9, true).unwrap());

    let deadline = Instant::now() + Duration::from_secs(30);
    while s.snapshot().scrub.repairs < 1 {
        assert!(Instant::now() < deadline, "background scrubber never relocated the value");
        std::thread::sleep(Duration::from_millis(20));
    }
    let snap = s.snapshot();
    assert!(snap.scrub.retired >= 1, "{:?}", snap.scrub);
    assert_eq!(snap.scrub.crc_failures, 0, "the value was never corrupt: {:?}", snap.scrub);
    assert_eq!(s.get(2).unwrap().unwrap(), vec![0xFF; 16]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under arbitrary stuck-at faults, with or without a scrub pass in
    /// between, a volatile store never serves wrong bytes: every GET is
    /// bit-exact or a typed `Corruption` naming an armed key.
    #[test]
    fn reads_are_bit_exact_or_loud_under_random_stuck_bits(
        faults in proptest::collection::vec((0u64..24, 0u32..128, any::<bool>()), 1..12),
        scrub in any::<bool>(),
    ) {
        let s = ShardedPnwStore::new(cfg(64));
        let mut expected = HashMap::new();
        for k in 0..24u64 {
            let v = value_of(k);
            s.put(k, &v).unwrap();
            expected.insert(k, v);
        }
        let mut armed = HashSet::new();
        for (k, bit, stuck_at_one) in faults {
            if s.arm_stuck_at_key(k, bit, stuck_at_one).unwrap() {
                armed.insert(k);
            }
        }
        if scrub {
            // Volatile store: intact values relocate, unrecoverable ones
            // retire loudly. Either way the read contract below holds.
            let _ = s.scrub_pass().unwrap();
        }
        for (k, v) in &expected {
            match s.get(*k) {
                Ok(Some(got)) => prop_assert_eq!(&got, v, "key {}", k),
                Ok(None) => prop_assert!(false, "key {} vanished silently", k),
                Err(StoreError::Corruption { key, .. }) => {
                    prop_assert_eq!(key, *k);
                    prop_assert!(armed.contains(k), "corruption on unarmed key {}", k);
                }
                Err(e) => prop_assert!(false, "unexpected error {} on key {}", e, k),
            }
        }
        // Detection is also *accounted*: if any GET went loud, the
        // snapshot says so.
        let snap = s.snapshot();
        prop_assert!(snap.scrub.stuck_bits >= 1);
    }
}
