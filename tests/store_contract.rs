//! The [`Store`] trait conformance suite: one contract, five backends.
//!
//! Every behavioral guarantee the trait documents is exercised against
//! `PnwStore`, `ShardedPnwStore` and the three baseline stores through
//! `Box<dyn Store>` — the exact surface the Figure 9 harness and the
//! throughput harness drive. If a backend drifts from the contract, it
//! fails here, not in a harness.

use pnw::core_api::{Batch, Op, PnwConfig, PnwStore, RetrainMode, ShardedPnwStore, Store, StoreError};
use pnw_baselines::{FpTreeLike, NoveLsmLike, PathHashStore};

/// Fresh instances of all five backends at the given geometry.
fn backends(capacity: usize, value_size: usize) -> Vec<Box<dyn Store>> {
    let cfg = PnwConfig::new(capacity, value_size)
        .with_clusters(2.min(capacity))
        .with_seed(11)
        .with_retrain(RetrainMode::Manual);
    vec![
        Box::new(PnwStore::new(cfg.clone())),
        Box::new(ShardedPnwStore::new(cfg.with_shards(4))),
        Box::new(FpTreeLike::new(capacity, value_size)),
        Box::new(NoveLsmLike::new(capacity, value_size)),
        Box::new(PathHashStore::new(capacity, value_size)),
    ]
}

#[test]
fn put_get_delete_round_trips_on_every_backend() {
    for s in backends(128, 16) {
        let name = s.name();
        assert_eq!(s.value_size(), 16, "{name}");
        assert!(s.is_empty(), "{name}");
        for k in 0..48u64 {
            s.put(k, &[k as u8; 16]).unwrap_or_else(|e| panic!("{name}: put {k}: {e}"));
        }
        assert_eq!(s.len(), 48, "{name}");
        for k in 0..48u64 {
            assert_eq!(s.get(k).unwrap().unwrap(), vec![k as u8; 16], "{name} key {k}");
            let mut buf = [0u8; 16];
            assert!(s.get_into(k, &mut buf).unwrap(), "{name} key {k}");
            assert_eq!(buf, [k as u8; 16], "{name} key {k}");
        }
        // Overwrite half, delete a quarter.
        for k in 0..24u64 {
            s.put(k, &[0xD0 | (k % 4) as u8; 16]).unwrap();
        }
        for k in 0..12u64 {
            assert!(s.delete(k).unwrap(), "{name} key {k}");
            assert!(!s.delete(k).unwrap(), "{name} double delete {k}");
        }
        assert_eq!(s.len(), 36, "{name}");
        assert_eq!(s.get(0).unwrap(), None, "{name}");
        assert_eq!(s.get(100).unwrap(), None, "{name} missing key");
        assert!(!s.get_into(100, &mut [0u8; 16]).unwrap(), "{name}");
        let snap = s.snapshot();
        assert_eq!(snap.live, 36, "{name}");
        // Counter convention: 72 puts; 12 deletes hit, 12 missed — only
        // the hits count, uniformly across backends.
        assert_eq!(snap.puts, 72, "{name}");
        assert_eq!(snap.deletes, 12, "{name}");
        assert!(snap.device.totals.bit_flips > 0, "{name}");
    }
}

#[test]
fn wrong_value_size_is_rejected_uniformly() {
    for s in backends(32, 16) {
        let name = s.name();
        assert!(
            matches!(
                s.put(1, &[0u8; 8]),
                Err(StoreError::WrongValueSize { expected: 16, got: 8 })
            ),
            "{name}: put of a half-size value must be rejected"
        );
        s.put(1, &[1u8; 16]).unwrap();
        assert!(
            matches!(
                s.get_into(1, &mut [0u8; 4]),
                Err(StoreError::WrongValueSize { expected: 16, got: 4 })
            ),
            "{name}: get_into with a wrong-size buffer must be rejected"
        );
    }
}

#[test]
fn overfilling_reports_full_not_a_panic() {
    for s in backends(16, 8) {
        let name = s.name();
        let mut full_seen = false;
        // Distinct keys well past capacity: every backend must eventually
        // say Full (at its own structural limit — pool, leaves, level
        // area) instead of panicking or corrupting.
        for k in 0..2_000u64 {
            match s.put(k, &[k as u8; 8]) {
                Ok(_) => {}
                Err(StoreError::Full) => {
                    full_seen = true;
                    break;
                }
                Err(e) => panic!("{name}: unexpected error {e}"),
            }
        }
        assert!(full_seen, "{name}: store never reported Full");
        // The store keeps serving reads after rejecting writes.
        assert_eq!(s.get(0).unwrap().unwrap(), vec![0u8; 8], "{name}");
    }
}

/// The op sequence used for the batch ≡ per-op check: inserts, updates,
/// deletes and re-inserts, interleaved.
fn contract_ops(value_size: usize) -> Vec<Op> {
    let mut ops = Vec::new();
    for k in 0..40u64 {
        ops.push(Op::Put {
            key: k,
            value: vec![(k % 5) as u8 * 0x11; value_size],
        });
    }
    for k in (0..40u64).step_by(3) {
        ops.push(Op::Delete { key: k });
    }
    for k in 0..10u64 {
        ops.push(Op::Put {
            key: k,
            value: vec![0xEE; value_size],
        });
    }
    ops.push(Op::Delete { key: 999 }); // miss
    ops
}

#[test]
fn batch_apply_is_equivalent_to_per_op_on_every_backend() {
    for (batched, per_op) in backends(128, 8).into_iter().zip(backends(128, 8)) {
        let name = batched.name();
        let ops = contract_ops(8);

        // Batched store: the same sequence in groups of 7.
        for chunk in ops.chunks(7) {
            let mut batch = Batch::with_capacity(chunk.len());
            for op in chunk {
                batch.push(op.clone());
            }
            let r = batched.apply(&batch);
            assert!(r.all_ok(), "{name}: {:?}", r.failures);
            assert_eq!(r.completed(), chunk.len() as u64, "{name}");
        }
        // Reference store: one op at a time.
        for op in &ops {
            match op {
                Op::Put { key, value } => {
                    per_op.put(*key, value).unwrap();
                }
                Op::Delete { key } => {
                    per_op.delete(*key).unwrap();
                }
            }
        }

        assert_eq!(batched.len(), per_op.len(), "{name}");
        for k in 0..40u64 {
            assert_eq!(batched.get(k).unwrap(), per_op.get(k).unwrap(), "{name} key {k}");
        }
        let (sa, sb) = (batched.snapshot(), per_op.snapshot());
        assert_eq!(sa.puts, sb.puts, "{name}");
        assert_eq!(sa.deletes, sb.deletes, "{name}");
        assert_eq!(sa.live, sb.live, "{name}");
    }
}

/// The acceptance criterion for the batch path: a single-shard
/// `ShardedPnwStore` driven through `apply` produces *bit-for-bit* the
/// same device state and accounting as the reference `PnwStore` driven
/// per-op — the batch fast path changes cost, never writes.
#[test]
fn single_shard_batch_path_matches_pnw_store_bit_for_bit() {
    let cfg = PnwConfig::new(256, 16)
        .with_clusters(3)
        .with_seed(99)
        .with_retrain(RetrainMode::Manual);
    let single = PnwStore::new(cfg.clone());
    let sharded = ShardedPnwStore::new(cfg.with_shards(1));

    // Phase 1: warm both with two bit-pattern families, then train.
    for k in 0..96u64 {
        let fill = if k % 2 == 0 { 0x00 } else { 0xFF };
        single.put(k, &[fill; 16]).unwrap();
    }
    let mut warm = Batch::new();
    for k in 0..96u64 {
        let fill = if k % 2 == 0 { 0x00 } else { 0xFF };
        warm.put(k, &[fill; 16]);
    }
    assert!(sharded.apply(&warm).all_ok());
    single.retrain_now().unwrap();
    sharded.retrain_now().unwrap();

    // Phase 2: seeded churn — per-op on the reference, batches of 16 on
    // the sharded store, identical op order.
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    let mut ops: Vec<Op> = Vec::new();
    for _ in 0..400 {
        let k = rng.gen_range(0..128u64);
        if rng.gen_range(0..10u8) < 7 {
            let mut v = [if k % 2 == 0 { 0x00u8 } else { 0xFFu8 }; 16];
            v[15] = rng.gen();
            ops.push(Op::Put {
                key: k,
                value: v.to_vec(),
            });
        } else {
            ops.push(Op::Delete { key: k });
        }
    }
    for op in &ops {
        match op {
            Op::Put { key, value } => {
                let _ = single.put(*key, value);
            }
            Op::Delete { key } => {
                let _ = single.delete(*key);
            }
        }
    }
    for chunk in ops.chunks(16) {
        let mut batch = Batch::with_capacity(chunk.len());
        for op in chunk {
            batch.push(op.clone());
        }
        let _ = sharded.apply(&batch);
    }

    // Identical bit flips, words written, lines written, ops — the whole
    // DeviceStats struct — plus contents and counters.
    assert_eq!(single.device_stats(), sharded.device_stats());
    assert_eq!(single.len(), sharded.len());
    for k in 0..128u64 {
        assert_eq!(single.get(k).unwrap(), sharded.get(k).unwrap(), "key {k}");
    }
    let (s1, s2) = (single.snapshot(), sharded.snapshot());
    assert_eq!(s1.puts, s2.puts);
    assert_eq!(s1.deletes, s2.deletes);
    assert_eq!(s1.free, s2.free);
    assert_eq!(s1.fallbacks, s2.fallbacks);
}

/// Regression for the batch/per-op maintenance divergence: a batch must
/// never report `Full` where the same ops issued individually would have
/// extended the zone from the reserve mid-stream — extension runs at the
/// per-op path's op boundaries, so with Manual retrain the device state
/// stays bit-for-bit identical even across an auto-extension.
#[test]
fn batch_extends_from_reserve_exactly_like_per_op() {
    let cfg = PnwConfig::new(8, 8)
        .with_clusters(2)
        .with_seed(3)
        .with_reserve(16)
        .with_load_factor(0.5)
        .with_retrain(RetrainMode::Manual);

    let per_op = PnwStore::new(cfg.clone());
    for k in 0..12u64 {
        per_op.put(k, &[k as u8; 8]).unwrap();
    }
    assert_eq!(per_op.len(), 12);

    let mut batch = Batch::new();
    for k in 0..12u64 {
        batch.put(k, &[k as u8; 8]);
    }
    let batched = PnwStore::new(cfg.clone());
    let r = batched.apply(&batch);
    assert!(r.all_ok(), "batch must extend instead of failing: {:?}", r.failures);
    assert_eq!(batched.len(), 12);
    assert_eq!(batched.active_capacity(), per_op.active_capacity());
    assert_eq!(batched.device_stats(), per_op.device_stats());

    let sharded = ShardedPnwStore::new(cfg.with_shards(1));
    let r = sharded.apply(&batch);
    assert!(r.all_ok(), "{:?}", r.failures);
    assert_eq!(sharded.len(), 12);
    assert_eq!(sharded.device_stats(), per_op.device_stats());
}

/// Regression for the deleted adapter's lossy error mapping: no backend
/// may ever report `ModelUnavailable` as `Full`, and batch failures carry
/// the real error.
#[test]
fn error_taxonomy_is_lossless() {
    assert_ne!(StoreError::ModelUnavailable, StoreError::Full);
    let s = PnwStore::new(PnwConfig::new(4, 8).with_clusters(1));
    let mut batch = Batch::new();
    for k in 0..5u64 {
        batch.put(k, &[k as u8; 8]);
    }
    batch.put(9, &[0u8; 2]);
    let r = s.apply(&batch);
    assert_eq!(r.failures.len(), 2);
    assert!(matches!(r.failures[0], (4, StoreError::Full)));
    assert!(
        matches!(r.failures[1], (5, StoreError::WrongValueSize { expected: 8, got: 2 })),
        "wrong-size must survive batching untouched"
    );
}

// ---------------------------------------------------------------------------
// File-backed conformance: the contract holds across drop-and-reopen.
// ---------------------------------------------------------------------------

fn contract_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("pnw_contract_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_cfg(capacity: usize, value_size: usize, dir: &std::path::Path) -> PnwConfig {
    PnwConfig::new(capacity, value_size)
        .with_clusters(2.min(capacity))
        .with_seed(11)
        .with_retrain(RetrainMode::Manual)
        .with_path(dir)
}

/// The round-trip contract holds for a file-backed store *across* a
/// drop-and-reopen cycle in the middle of the op mix — on both PNW
/// frontends.
#[test]
fn file_backed_round_trips_survive_reopen_cycles() {
    // Single-threaded frontend.
    let dir = contract_dir("roundtrip_single");
    let cfg = durable_cfg(128, 16, &dir);
    let s = PnwStore::open(cfg.clone()).unwrap();
    for k in 0..48u64 {
        s.put(k, &[k as u8; 16]).unwrap();
    }
    s.close().unwrap();

    let s = PnwStore::open(cfg.clone()).unwrap();
    for k in 0..24u64 {
        s.put(k, &[0xD0 | (k % 4) as u8; 16]).unwrap();
    }
    for k in 0..12u64 {
        assert!(s.delete(k).unwrap());
        assert!(!s.delete(k).unwrap());
    }
    s.close().unwrap();

    let s = PnwStore::open(cfg).unwrap();
    assert_eq!(s.len(), 36);
    assert_eq!(s.get(0).unwrap(), None);
    for k in 12..24u64 {
        assert_eq!(s.get(k).unwrap().unwrap(), vec![0xD0 | (k % 4) as u8; 16]);
    }
    for k in 24..48u64 {
        assert_eq!(s.get(k).unwrap().unwrap(), vec![k as u8; 16]);
        let mut buf = [0u8; 16];
        assert!(s.get_into(k, &mut buf).unwrap());
        assert_eq!(buf, [k as u8; 16]);
    }
    drop(s);
    let _ = std::fs::remove_dir_all(&dir);

    // Sharded frontend, same mix.
    let dir = contract_dir("roundtrip_sharded");
    let cfg = durable_cfg(128, 16, &dir).with_shards(4);
    let s = ShardedPnwStore::open(cfg.clone()).unwrap();
    for k in 0..48u64 {
        s.put(k, &[k as u8; 16]).unwrap();
    }
    s.close().unwrap();
    let s = ShardedPnwStore::open(cfg.clone()).unwrap();
    for k in 0..12u64 {
        assert!(s.delete(k).unwrap());
    }
    s.close().unwrap();
    let s = ShardedPnwStore::open(cfg).unwrap();
    assert_eq!(s.len(), 36);
    for k in 12..48u64 {
        assert_eq!(s.get(k).unwrap().unwrap(), vec![k as u8; 16]);
    }
    drop(s);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A file-backed store that filled up still reports `Full` — not a panic,
/// not corruption — after a reopen, and keeps serving committed reads.
#[test]
fn file_backed_overfill_reports_full_across_reopen() {
    let dir = contract_dir("overfill");
    let cfg = durable_cfg(16, 8, &dir);
    let s = PnwStore::open(cfg.clone()).unwrap();
    let mut stored = 0u64;
    let mut full_seen = false;
    for k in 0..2_000u64 {
        match s.put(k, &[k as u8; 8]) {
            Ok(_) => stored += 1,
            Err(StoreError::Full) => {
                full_seen = true;
                break;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(full_seen, "store never reported Full");
    s.close().unwrap();

    let s = PnwStore::open(cfg).unwrap();
    assert_eq!(s.len(), stored as usize);
    assert!(
        matches!(s.put(9_999, &[0xAA; 8]), Err(StoreError::Full)),
        "reopened full store must still say Full"
    );
    for k in 0..stored {
        assert_eq!(s.get(k).unwrap().unwrap(), vec![k as u8; 8], "key {k}");
    }
    drop(s);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Batched `apply` ≡ per-op on a file-backed store even when both sides
/// go through a drop-and-reopen mid-sequence: same contents, same
/// counters, same device accounting.
#[test]
fn file_backed_batch_apply_equals_per_op_across_reopen() {
    let dir_b = contract_dir("batch_side");
    let dir_p = contract_dir("perop_side");
    let cfg_b = durable_cfg(128, 8, &dir_b);
    let cfg_p = durable_cfg(128, 8, &dir_p);
    let ops = contract_ops(8);
    let half = ops.len() / 2;

    let run_batched = |ops: &[Op]| {
        let s = PnwStore::open(cfg_b.clone()).unwrap();
        for chunk in ops.chunks(7) {
            let mut batch = Batch::with_capacity(chunk.len());
            for op in chunk {
                batch.push(op.clone());
            }
            let r = s.apply(&batch);
            assert!(r.all_ok(), "{:?}", r.failures);
        }
        s.close().unwrap();
    };
    let run_per_op = |ops: &[Op]| {
        let s = PnwStore::open(cfg_p.clone()).unwrap();
        for op in ops {
            match op {
                Op::Put { key, value } => {
                    s.put(*key, value).unwrap();
                }
                Op::Delete { key } => {
                    s.delete(*key).unwrap();
                }
            }
        }
        s.close().unwrap();
    };
    // First half, reopen, second half — on both sides.
    run_batched(&ops[..half]);
    run_batched(&ops[half..]);
    run_per_op(&ops[..half]);
    run_per_op(&ops[half..]);

    let batched = PnwStore::open(cfg_b).unwrap();
    let per_op = PnwStore::open(cfg_p).unwrap();
    assert_eq!(batched.len(), per_op.len());
    for k in 0..40u64 {
        assert_eq!(batched.get(k).unwrap(), per_op.get(k).unwrap(), "key {k}");
    }
    assert_eq!(batched.device_stats(), per_op.device_stats());
    drop(batched);
    drop(per_op);
    let _ = std::fs::remove_dir_all(&dir_b);
    let _ = std::fs::remove_dir_all(&dir_p);
}

// ---------------------------------------------------------------------------
// Integrity: detected corruption surfaces identically on both PNW frontends.
// ---------------------------------------------------------------------------

/// A stuck bit under a sealed value turns the next read of that key into
/// a typed `Corruption { key, .. }` error — never silently wrong bytes —
/// and the contract is identical on the locked frontend and the sharded
/// (lock-free-read) frontend. Unaffected keys keep serving.
#[test]
fn corruption_surfaces_identically_on_both_pnw_frontends() {
    let cfg = PnwConfig::new(64, 16)
        .with_clusters(2)
        .with_seed(11)
        .with_retrain(RetrainMode::Manual);

    let single = PnwStore::new(cfg.clone());
    let sharded = ShardedPnwStore::new(cfg.clone().with_shards(4));

    let check = |name: &str,
                 store: &dyn Store,
                 arm: &dyn Fn(u64, u32, bool) -> Result<bool, StoreError>| {
        for k in 0..8u64 {
            store.put(k, &[0u8; 16]).unwrap();
        }
        assert!(arm(5, 3, true).unwrap(), "{name}: key 5 must be present to arm");
        // Both read entry points report the same typed error...
        match store.get(5) {
            Err(StoreError::Corruption { key, .. }) => assert_eq!(key, 5, "{name}"),
            other => panic!("{name}: get must surface Corruption, got {other:?}"),
        }
        match store.get_into(5, &mut [0u8; 16]) {
            Err(StoreError::Corruption { key, .. }) => assert_eq!(key, 5, "{name}"),
            other => panic!("{name}: get_into must surface Corruption, got {other:?}"),
        }
        // ...and the blast radius is one key: every other key still reads.
        for k in (0..8u64).filter(|&k| k != 5) {
            assert_eq!(store.get(k).unwrap().unwrap(), vec![0u8; 16], "{name} key {k}");
        }
        assert!(store.snapshot().scrub.crc_failures >= 1, "{name}");
    };
    check("pnw", &single, &|k, b, s| single.arm_stuck_at_key(k, b, s));
    check("sharded-pnw", &sharded, &|k, b, s| sharded.arm_stuck_at_key(k, b, s));

    // With integrity off both frontends revert to the old contract: the
    // stuck bit reads back silently (no CRC, no error) — the benchmark
    // baseline, bit-identical to the pre-integrity format.
    let off = cfg.with_integrity(false);
    let single = PnwStore::new(off.clone());
    let sharded = ShardedPnwStore::new(off.with_shards(4));
    for (name, store, armed) in [
        ("pnw-off", &single as &dyn Store, single.arm_stuck_at_key(5, 3, true)),
        ("sharded-off", &sharded as &dyn Store, sharded.arm_stuck_at_key(5, 3, true)),
    ] {
        // Arm before the key exists: absent key, nothing to arm against.
        assert!(!armed.unwrap(), "{name}");
        store.put(5, &[0u8; 16]).unwrap();
        assert_eq!(store.get(5).unwrap().unwrap(), vec![0u8; 16], "{name}");
    }
}

// ---------------------------------------------------------------------------
// Range scans: one ordered-scan contract, five backends.
// ---------------------------------------------------------------------------

fn scan_keys(entries: &[(u64, Vec<u8>)]) -> Vec<u64> {
    entries.iter().map(|(k, _)| *k).collect()
}

/// `scan` returns ascending committed `(key, value)` pairs over the
/// inclusive range, on every backend: empty store, empty sub-range,
/// inverted bounds, full range, and after overwrites and deletes.
#[test]
fn scan_contract_holds_on_every_backend() {
    for s in backends(128, 16) {
        let name = s.name();
        assert!(s.scan(0, u64::MAX).unwrap().is_empty(), "{name}: empty store");

        let keys = [3u64, 7, 10, 11, 64, 100, 101];
        for &k in &keys {
            s.put(k, &[k as u8; 16]).unwrap();
        }
        let full = s.scan(0, u64::MAX).unwrap();
        assert_eq!(scan_keys(&full), keys, "{name}: full range, ascending");
        for (k, v) in &full {
            assert_eq!(v, &vec![*k as u8; 16], "{name} key {k}: value round-trips");
        }
        assert_eq!(scan_keys(&s.scan(10, 64).unwrap()), [10, 11, 64], "{name}: sub-range is inclusive");
        assert_eq!(scan_keys(&s.scan(7, 7).unwrap()), [7], "{name}: single-key range");
        assert!(s.scan(12, 63).unwrap().is_empty(), "{name}: live-key gap");
        assert!(s.scan(64, 10).unwrap().is_empty(), "{name}: inverted bounds");

        // Overwrites surface the new value; deletes drop out of the scan.
        s.put(10, &[0xEE; 16]).unwrap();
        assert!(s.delete(11).unwrap(), "{name}");
        let after = s.scan(10, 64).unwrap();
        assert_eq!(scan_keys(&after), [10, 64], "{name}: post-delete range");
        assert_eq!(after[0].1, vec![0xEE; 16], "{name}: scan sees the overwrite");
    }
}

/// A range spanning every shard of the sharded store comes back as one
/// ascending sequence that agrees with point GETs key-for-key.
#[test]
fn scan_spans_shards_and_matches_point_gets() {
    let cfg = PnwConfig::new(256, 16)
        .with_clusters(2)
        .with_seed(11)
        .with_retrain(RetrainMode::Manual)
        .with_shards(4);
    let s = ShardedPnwStore::new(cfg);
    // Consecutive keys land on different shards under any reasonable
    // partition, so [0, 95] crosses all four.
    for k in 0..96u64 {
        s.put(k, &[(k % 7) as u8; 16]).unwrap();
    }
    let all = s.scan(0, 95).unwrap();
    assert_eq!(all.len(), 96, "every shard contributes its slice");
    for (i, (k, v)) in all.iter().enumerate() {
        assert_eq!(*k, i as u64, "ascending across shard boundaries");
        assert_eq!(Some(v.clone()), s.get(*k).unwrap(), "key {k}: scan == GET");
    }
}

/// Scans running against live writers never observe a torn value, on any
/// backend: every value written is a uniform fill, so a single mixed byte
/// proves a torn read. On the sharded store this exercises the seqlock
/// snapshot path under real contention.
#[test]
fn scan_never_observes_torn_values_under_concurrent_writes() {
    for s in backends(512, 64) {
        let name = s.name();
        let s: std::sync::Arc<dyn Store> = std::sync::Arc::from(s);
        for k in 0..48u64 {
            s.put(k, &[0x01; 64]).unwrap();
        }
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut writers = Vec::new();
        for t in 0..2u64 {
            let s = std::sync::Arc::clone(&s);
            let stop = std::sync::Arc::clone(&stop);
            writers.push(std::thread::spawn(move || {
                let mut fill = 0x10u8.wrapping_add(t as u8);
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    for k in (t * 24)..(t * 24 + 24) {
                        s.put(k, &[fill; 64]).unwrap();
                    }
                    fill = fill.wrapping_add(0x11).max(1);
                }
            }));
        }
        for _ in 0..200 {
            for (k, v) in s.scan(0, 47).unwrap() {
                assert!(
                    v.iter().all(|b| *b == v[0]),
                    "{name} key {k}: torn value {:02x?}...",
                    &v[..8.min(v.len())]
                );
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        assert_eq!(s.scan(0, 47).unwrap().len(), 48, "{name}");
    }
}

// ---------------------------------------------------------------------------
// TTL: lazy expiry on the read path, on both PNW frontends.
// ---------------------------------------------------------------------------

/// Past its deadline a key disappears from GET, `get_into` and scans —
/// without any explicit delete — while `expires_at_ms = 0` and plain PUTs
/// never expire. The slot becomes reusable.
#[test]
fn ttl_expired_keys_hide_from_get_and_scan() {
    use pnw::core_api::now_unix_ms;
    let cfg = PnwConfig::new(64, 16)
        .with_clusters(2)
        .with_seed(11)
        .with_retrain(RetrainMode::Manual)
        .with_ttl();
    let frontends: Vec<Box<dyn Store>> = vec![
        Box::new(PnwStore::new(cfg.clone())),
        Box::new(ShardedPnwStore::new(cfg.with_shards(4))),
    ];
    for s in frontends {
        let name = s.name();
        assert!(s.supports_ttl(), "{name}");
        let deadline = now_unix_ms() + 120;
        s.put_with_expiry(1, &[0x11; 16], deadline).unwrap();
        s.put_with_expiry(2, &[0x22; 16], 0).unwrap(); // 0 = never expires
        s.put(3, &[0x33; 16]).unwrap();
        assert_eq!(s.get(1).unwrap().unwrap(), vec![0x11; 16], "{name}: pre-expiry read");
        assert_eq!(scan_keys(&s.scan(0, 10).unwrap()), [1, 2, 3], "{name}: pre-expiry scan");

        while now_unix_ms() <= deadline {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert_eq!(s.get(1).unwrap(), None, "{name}: expired key must read as absent");
        assert!(!s.get_into(1, &mut [0u8; 16]).unwrap(), "{name}");
        assert_eq!(scan_keys(&s.scan(0, 10).unwrap()), [2, 3], "{name}: expired key left the scan");

        // The key itself is reusable after expiry.
        s.put(1, &[0x44; 16]).unwrap();
        assert_eq!(s.get(1).unwrap().unwrap(), vec![0x44; 16], "{name}: re-put after expiry");
    }
}

/// Expiry deadlines are durable: after a kill (plain drop — the WAL alone
/// carries the state) and a reopen past the deadline, the expired key is
/// gone and WAL replay does not resurrect it; unexpired and non-TTL keys
/// survive. A clean close/reopen cycle agrees.
#[test]
fn ttl_expiry_survives_kill_and_reopen() {
    use pnw::core_api::now_unix_ms;
    let dir = contract_dir("ttl_kill");
    let cfg = durable_cfg(64, 16, &dir).with_ttl();

    let s = PnwStore::open(cfg.clone()).unwrap();
    let deadline = now_unix_ms() + 150;
    s.put_with_expiry(1, &[0x11; 16], deadline).unwrap();
    s.put_with_expiry(2, &[0x22; 16], 0).unwrap();
    s.put(3, &[0x33; 16]).unwrap();
    s.put_with_expiry(4, &[0x44; 16], now_unix_ms() + 3_600_000).unwrap();
    drop(s); // kill between ops: no checkpoint, recovery replays the WAL

    while now_unix_ms() <= deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let s = PnwStore::open(cfg.clone()).unwrap();
    assert_eq!(s.get(1).unwrap(), None, "WAL replay must not resurrect an expired key");
    assert_eq!(scan_keys(&s.scan(0, 10).unwrap()), [2, 3, 4], "expired key stays out of scans");
    assert_eq!(s.get(2).unwrap().unwrap(), vec![0x22; 16]);
    assert_eq!(s.get(3).unwrap().unwrap(), vec![0x33; 16]);
    assert_eq!(s.get(4).unwrap().unwrap(), vec![0x44; 16], "unexpired deadline survives the kill");

    // Clean close persists the same truth.
    s.close().unwrap();
    let s = PnwStore::open(cfg).unwrap();
    assert_eq!(s.get(1).unwrap(), None, "expired key stays gone across a clean close");
    assert_eq!(s.get(4).unwrap().unwrap(), vec![0x44; 16]);
    drop(s);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every backend is driveable concurrently through `Arc<dyn Store>` — the
/// contract that lets one throughput harness serve all five.
#[test]
fn every_backend_serves_concurrent_clients() {
    for s in backends(512, 8) {
        let name = s.name();
        let s: std::sync::Arc<dyn Store> = std::sync::Arc::from(s);
        s.put(7, &[0x77; 8]).unwrap();
        let mut handles = Vec::new();
        for t in 0..3u64 {
            let s = std::sync::Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut buf = [0u8; 8];
                for i in 0..60u64 {
                    if t == 0 {
                        let mut batch = Batch::new();
                        batch.put(1_000 + i, &[i as u8; 8]);
                        assert!(batch.len() == 1);
                        let r = s.apply(&batch);
                        assert!(r.all_ok());
                    } else {
                        assert!(s.get_into(7, &mut buf).unwrap());
                        assert_eq!(buf, [0x77; 8]);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 61, "{name}");
    }
}
