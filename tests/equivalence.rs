//! Cross-crate equivalence checks: the invariants tying the crates
//! together.

use pnw_ml::featurize::bits_to_features;
use pnw_ml::matrix::sq_dist;
use pnw_nvm_sim::device::hamming;
use pnw_schemes::{apply, Dcw};
use pnw_workloads::{DatasetKind, Workload};

/// The ML crate's distance on bit features must equal the device's Hamming
/// kernel — this is the identity PNW's whole design rests on (squared L2 on
/// 0/1 features == Hamming distance).
#[test]
fn sq_dist_on_bits_equals_device_hamming() {
    let mut w = DatasetKind::Amazon.build(3);
    for _ in 0..20 {
        let a = w.next_value();
        let b = w.next_value();
        let fa = bits_to_features(&a);
        let fb = bits_to_features(&b);
        assert_eq!(sq_dist(&fa, &fb) as u64, hamming(&a, &b));
    }
}

/// §VI-D: PNW with K = 1 degenerates to DCW. With a single cluster the
/// model provides no steering, so the expected flips of a steered write
/// equal DCW's against a random old location. Verified as a paired
/// comparison over the same random replacement sequence.
#[test]
fn pnw_k1_matches_dcw_within_noise() {
    use pnw_core::{PnwConfig, PnwStore};
    use pnw_nvm_sim::{NvmConfig, NvmDevice, WriteMode};

    let buckets = 256usize;
    let writes = 1024usize;

    // PNW, K = 1.
    let mut w = DatasetKind::Normal.build(8);
    let store = PnwStore::new(PnwConfig::new(buckets, 4).with_clusters(1).with_seed(1));
    store.prefill_free_buckets(|| w.next_value()).expect("prefill");
    store.retrain_now().expect("train");
    store.reset_device_stats();
    let mut pnw_flips = 0u64;
    let mut pnw_bits = 0u64;
    for i in 0..writes as u64 {
        let v = w.next_value();
        let r = store.put(i, &v).expect("room");
        pnw_flips += r.value_write.total_bit_flips();
        pnw_bits += r.value_write.bits_addressed;
        store.delete(i).expect("present");
    }
    let pnw = pnw_flips as f64 * 512.0 / pnw_bits as f64;

    // DCW over the same kind of stream.
    let mut w = DatasetKind::Normal.build(8);
    let mut dev = NvmDevice::new(NvmConfig::default().with_size(buckets * 8));
    for b in 0..buckets {
        let v = w.next_value();
        dev.write(b * 8, &v, WriteMode::Raw).expect("warm");
    }
    dev.reset_stats();
    let mut dcw = Dcw;
    let mut rng_state = 0x2545F491u64;
    let mut flips = 0u64;
    let mut bits = 0u64;
    for _ in 0..writes {
        let v = w.next_value();
        rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let b = (rng_state >> 33) as usize % buckets;
        let s = apply(&mut dcw, &mut dev, b * 8, &v).expect("in range");
        flips += s.total_bit_flips();
        bits += s.bits_addressed;
    }
    let dcw_flips = flips as f64 * 512.0 / bits as f64;

    let ratio = pnw / dcw_flips;
    assert!(
        (0.85..1.15).contains(&ratio),
        "PNW k=1 ({pnw:.1}) should match DCW ({dcw_flips:.1}); ratio {ratio:.3}"
    );
}

/// More clusters never make PNW dramatically worse on clusterable data
/// (the paper's K sweep trends downward; anomalies are small).
#[test]
fn flips_trend_downward_in_k() {
    use pnw_core::{PnwConfig, PnwStore};

    let run = |k: usize| -> f64 {
        let mut w = DatasetKind::Normal.build(6);
        let store = PnwStore::new(PnwConfig::new(512, 4).with_clusters(k).with_seed(2));
        store.prefill_free_buckets(|| w.next_value()).expect("prefill");
        store.retrain_now().expect("train");
        store.reset_device_stats();
        let mut flips = 0u64;
        let mut bits = 0u64;
        for i in 0..512u64 {
            let v = w.next_value();
            let r = store.put(i, &v).expect("room");
            flips += r.value_write.total_bit_flips();
            bits += r.value_write.bits_addressed;
            store.delete(i).expect("present");
        }
        flips as f64 * 512.0 / bits as f64
    };
    let k1 = run(1);
    let k10 = run(10);
    let k30 = run(30);
    assert!(k10 < k1, "k10 {k10:.1} !< k1 {k1:.1}");
    assert!(k30 < k1, "k30 {k30:.1} !< k1 {k1:.1}");
}

/// Scheme codecs and the device agree on stored state: reading through the
/// codec always returns the logical value, regardless of scheme history.
#[test]
fn codec_state_is_consistent_across_schemes() {
    use pnw_nvm_sim::{NvmConfig, NvmDevice};
    use pnw_schemes::{make_scheme, read_value, SchemeKind};

    let mut w = DatasetKind::Road.build(12);
    for kind in SchemeKind::all() {
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(4096));
        let mut scheme = make_scheme(kind);
        let mut last = Vec::new();
        for _ in 0..50 {
            let v = w.next_value();
            apply(scheme.as_mut(), &mut dev, 128, &v).expect("in range");
            last = v;
        }
        let got = read_value(scheme.as_ref(), &mut dev, 128, last.len()).expect("read");
        assert_eq!(got, last, "{kind:?}");
    }
}
