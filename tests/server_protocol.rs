//! Protocol-robustness tests against a live server: malformed frames of
//! every kind quarantine exactly the connection that sent them — the
//! server never panics, never wedges, and keeps serving every other
//! connection — and per-request deadlines produce the typed timeout
//! without leaking an admission slot.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use pnw_core::{Batch, BatchReport, PnwConfig, PnwStore, Store, StoreError};
use pnw_nvm_sim::DeviceStats;
use pnw_server::protocol::FRAME_HDR;
use pnw_server::{Client, ClientError, Request, Server, ServerAddr, ServerConfig, WireError};

const VS: usize = 16;

fn start(cfg: ServerConfig) -> Server {
    let store: Arc<dyn Store> = Arc::new(PnwStore::new(PnwConfig::new(512, VS).with_clusters(2)));
    Server::start(store, &ServerAddr::parse("tcp://127.0.0.1:0").unwrap(), cfg).unwrap()
}

/// A healthy connection proving the server still serves after another
/// connection was abused.
fn assert_still_serving(server: &Server, key: u64) {
    let mut ok = Client::connect(server.local_addr()).unwrap();
    ok.put(key, &[0x5A; VS]).unwrap();
    assert_eq!(ok.get(key).unwrap(), Some(vec![0x5A; VS]));
}

#[test]
fn bit_flipped_frame_quarantines_one_connection_only() {
    let server = start(ServerConfig::default());
    let mut victim = Client::connect(server.local_addr()).unwrap();
    let mut bystander = Client::connect(server.local_addr()).unwrap();
    bystander.put(1, &[1u8; VS]).unwrap();

    // A complete frame whose CRC field has one flipped bit: the server
    // must answer a typed protocol error and close this connection.
    victim.send_corrupt_frame(&Request::Get { key: 1 }).unwrap();
    let resp = victim.recv().unwrap();
    assert_eq!(resp.id, 0, "the corrupt frame's id is unreadable");
    match resp.resp {
        pnw_server::Response::Err(WireError::Protocol(_)) => {}
        other => panic!("expected Protocol error, got {other:?}"),
    }
    // Quarantined: the connection is now dead.
    assert!(victim.get(1).is_err());

    // The bystander never noticed.
    assert_eq!(bystander.get(1).unwrap(), Some(vec![1u8; VS]));
    assert_still_serving(&server, 2);
    assert_eq!(server.stats().quarantined, 1);
    server.drain().unwrap();
}

#[test]
fn truncated_frame_quarantines_without_panic() {
    let server = start(ServerConfig {
        // A short frame budget so the half-frame stall is detected fast.
        frame_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let mut victim = Client::connect(server.local_addr()).unwrap();
    // Half a frame, then a dead socket.
    victim.send_torn_frame(&Request::Put { key: 9, value: vec![7; VS] }, 6).unwrap();

    // The server sees the truncation (EOF mid-frame) and quarantines.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().quarantined == 0 {
        assert!(std::time::Instant::now() < deadline, "quarantine never recorded");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_still_serving(&server, 3);
    server.drain().unwrap();
}

#[test]
fn stalled_mid_frame_sender_is_quarantined() {
    let server = start(ServerConfig {
        frame_timeout: Duration::from_millis(150),
        ..ServerConfig::default()
    });
    let mut victim = Client::connect(server.local_addr()).unwrap();
    // A frame header promising 100 bytes, then silence — the connection
    // stays open but never delivers. The per-read frame budget must cut
    // it off rather than hold the thread hostage.
    let mut hdr = Vec::new();
    hdr.extend_from_slice(&100u32.to_le_bytes());
    hdr.extend_from_slice(&0u32.to_le_bytes());
    victim.send_raw(&hdr).unwrap();

    let resp = victim.recv().unwrap();
    match resp.resp {
        pnw_server::Response::Err(WireError::Protocol(m)) => {
            assert!(m.contains("stalled"), "unexpected message: {m}")
        }
        other => panic!("expected stalled-frame Protocol error, got {other:?}"),
    }
    assert_still_serving(&server, 4);
    server.drain().unwrap();
}

#[test]
fn oversized_frame_rejected_with_typed_limit() {
    let server = start(ServerConfig { max_frame: 1024, ..ServerConfig::default() });
    let mut victim = Client::connect(server.local_addr()).unwrap();
    // Declared length far past the limit; the payload is never read.
    let mut hdr = Vec::new();
    hdr.extend_from_slice(&(8 * 1024 * 1024u32).to_le_bytes());
    hdr.extend_from_slice(&0u32.to_le_bytes());
    victim.send_raw(&hdr).unwrap();

    let resp = victim.recv().unwrap();
    match resp.resp {
        pnw_server::Response::Err(WireError::TooLarge { limit: 1024, got }) => {
            assert_eq!(got, 8 * 1024 * 1024);
        }
        other => panic!("expected TooLarge, got {other:?}"),
    }
    assert!(victim.ping().is_err(), "oversized frame must quarantine");
    assert_still_serving(&server, 5);
    server.drain().unwrap();
}

#[test]
fn empty_and_garbage_frames_never_panic_the_server() {
    let server = start(ServerConfig::default());
    // A zero-length frame, then raw garbage shorter than a header, then
    // a valid-CRC frame whose payload is undecodable — three fresh
    // connections, three quarantines, zero panics.
    let mut c1 = Client::connect(server.local_addr()).unwrap();
    c1.send_raw(&[0u8; FRAME_HDR]).unwrap();
    let mut c2 = Client::connect(server.local_addr()).unwrap();
    c2.send_raw(&[0xFF, 0x01]).unwrap();
    c2.kill();
    let mut c3 = Client::connect(server.local_addr()).unwrap();
    let junk = [0xEEu8; 5];
    let mut frame = Vec::new();
    frame.extend_from_slice(&(junk.len() as u32).to_le_bytes());
    frame.extend_from_slice(&pnw_nvm_sim::crc32(&junk).to_le_bytes());
    frame.extend_from_slice(&junk);
    c3.send_raw(&frame).unwrap();
    match c3.recv().unwrap().resp {
        pnw_server::Response::Err(WireError::Protocol(_)) => {}
        other => panic!("expected Protocol error for undecodable payload, got {other:?}"),
    }

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().quarantined < 3 {
        assert!(std::time::Instant::now() < deadline, "expected 3 quarantines");
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_still_serving(&server, 6);
    server.drain().unwrap();
}

// ---------------------------------------------------------------------------
// Deadline expiry without slot leaks.

/// A store whose PUTs block on a test-held mutex — the deterministic way
/// to wedge the server's single admission permit.
struct BlockingStore {
    inner: PnwStore,
    gate: Mutex<()>,
}

impl Store for BlockingStore {
    fn name(&self) -> &'static str {
        "blocking-test-store"
    }
    fn value_size(&self) -> usize {
        self.inner.value_size()
    }
    fn put(&self, key: u64, value: &[u8]) -> Result<pnw_core::OpReport, StoreError> {
        let _held = self.gate.lock().unwrap();
        self.inner.put(key, value)
    }
    fn get(&self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        self.inner.get(key)
    }
    fn get_into(&self, key: u64, out: &mut [u8]) -> Result<bool, StoreError> {
        self.inner.get_into(key, out)
    }
    fn delete(&self, key: u64) -> Result<bool, StoreError> {
        self.inner.delete(key)
    }
    fn scan(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        self.inner.scan(lo, hi)
    }
    fn len(&self) -> usize {
        self.inner.len()
    }
    fn snapshot(&self) -> pnw_core::StoreSnapshot {
        self.inner.snapshot()
    }
    fn device_stats(&self) -> DeviceStats {
        self.inner.device_stats()
    }
    fn reset_device_stats(&self) {
        self.inner.reset_device_stats()
    }
    fn apply(&self, batch: &Batch) -> BatchReport {
        let _held = self.gate.lock().unwrap();
        self.inner.apply(batch)
    }
}

#[test]
fn deadline_expiry_is_typed_and_leaks_no_slot() {
    let store = Arc::new(BlockingStore {
        inner: PnwStore::new(PnwConfig::new(512, VS).with_clusters(2)),
        gate: Mutex::new(()),
    });
    let server = Server::start(
        Arc::clone(&store) as Arc<dyn Store>,
        &ServerAddr::parse("tcp://127.0.0.1:0").unwrap(),
        // One permit, room to wait: the blocked PUT owns the permit, the
        // deadlined request waits behind it.
        ServerConfig { max_inflight: 1, max_waiting: 8, ..ServerConfig::default() },
    )
    .unwrap();

    // Wedge the store, then occupy the only permit with a PUT that
    // blocks inside it.
    let held = store.gate.lock().unwrap();
    let addr = server.local_addr().clone();
    let blocked = std::thread::spawn(move || {
        let mut a = Client::connect(&addr).unwrap();
        a.put(1, &[1u8; VS]) // blocks until the test releases the gate
    });
    // Wait until that PUT is executing (holding the permit).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().executing != 1 {
        assert!(std::time::Instant::now() < deadline, "blocked PUT never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }

    // A deadlined request behind it: typed timeout, op never applied.
    let mut b = Client::connect(server.local_addr()).unwrap();
    b.set_deadline(Some(Duration::from_millis(50)));
    match b.put(2, &[2u8; VS]) {
        Err(ClientError::Server(WireError::DeadlineExceeded)) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(server.stats().deadline_rejects, 1);
    assert_eq!(server.stats().waiting, 0, "expired waiter must leave the queue");

    // Unblock; the wedged PUT completes.
    drop(held);
    blocked.join().unwrap().unwrap();

    // No leaked slot: the same connection immediately gets the permit.
    b.set_deadline(Some(Duration::from_secs(5)));
    b.put(3, &[3u8; VS]).unwrap();
    assert_eq!(b.get(3).unwrap(), Some(vec![3u8; VS]));
    assert_eq!(server.stats().executing, 0);
    assert_eq!(
        store.get(2).unwrap(),
        None,
        "a deadline-rejected PUT must never reach the store"
    );
    server.drain().unwrap();
}
