//! Smoke test for the workspace facade: the `pnw` crate's re-exports must
//! be enough to build and drive a store without naming any subsystem
//! crate.

use pnw::core_api::{PnwConfig as CorePnwConfig, PnwStore as CorePnwStore};
use pnw::{PnwConfig, PnwStore};

#[test]
fn core_api_reexport_round_trips_put_get() {
    let store = CorePnwStore::new(CorePnwConfig::new(64, 8).with_clusters(2));
    store.put(1, &42u64.to_le_bytes()).expect("put");
    assert_eq!(
        store.get(1).expect("device ok").as_deref(),
        Some(&42u64.to_le_bytes()[..])
    );
    assert!(store.delete(1).expect("device ok"));
    assert_eq!(store.get(1).expect("device ok"), None);
}

#[test]
fn root_reexports_match_core_api() {
    // `pnw::PnwStore` and `pnw::core_api::PnwStore` are the same type; a
    // store built via one is usable via the other's config builder.
    let store = PnwStore::new(PnwConfig::new(32, 4).with_clusters(2));
    for k in 0..8u64 {
        store.put(k, &(k as u32).to_le_bytes()).expect("put");
    }
    store.retrain_now().expect("train");
    store.put(100, &7u32.to_le_bytes()).expect("steered put");
    assert_eq!(store.len(), 9);
    assert!(store.device_stats().totals.bit_flips > 0);
}
