//! Seqlock torn-read stress: lock-free GETs raced against single-writer
//! shards, with model retrains swapping snapshots mid-flight.
//!
//! Values are self-validating — both halves carry the same
//! `(key, version)` word — so a reader can detect a torn copy (mixed
//! versions) or a misdirected probe (another key's bucket) without knowing
//! which version the writer last committed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pnw::core_api::{PnwConfig, ShardedPnwStore};
use rand::{rngs::StdRng, Rng, SeedableRng};

const WRITERS: u64 = 2;
const READERS: u64 = 2;
const KEY_SPACE: u64 = 128;

fn encode(key: u64, version: u32) -> [u8; 16] {
    let word = (key << 32) | u64::from(version);
    let mut v = [0u8; 16];
    v[..8].copy_from_slice(&word.to_le_bytes());
    v[8..].copy_from_slice(&word.to_le_bytes());
    v
}

/// Writers churn disjoint key sets (puts, overwrites, deletes) while
/// readers hammer the whole key space through the lock-free GET path and
/// the main thread forces model swaps. Every validated read must be an
/// atomic snapshot, and the final contents must equal the union of the
/// writers' reference models.
#[test]
fn lock_free_gets_never_observe_torn_values() {
    let store = Arc::new(ShardedPnwStore::new(
        PnwConfig::new(512, 16)
            .with_clusters(2)
            .with_shards(4)
            .with_seed(11),
    ));
    let stop = Arc::new(AtomicBool::new(false));

    let mut writers = Vec::new();
    for t in 0..WRITERS {
        let store = Arc::clone(&store);
        writers.push(std::thread::spawn(move || {
            // Keys ≡ t (mod WRITERS) are this thread's alone, so its
            // version map is the ground truth for them.
            let mut version: HashMap<u64, u32> = HashMap::new();
            let mut rng = StdRng::seed_from_u64(0x5EA0 + t);
            for _ in 0..600 {
                let key = t + WRITERS * rng.gen_range(0..KEY_SPACE / WRITERS);
                if rng.gen_bool(0.8) {
                    let v = version.entry(key).and_modify(|v| *v += 1).or_insert(1);
                    store.put(key, &encode(key, *v)).expect("ample capacity");
                } else {
                    let existed = store.delete(key).expect("delete ok");
                    assert_eq!(existed, version.remove(&key).is_some(), "key {key}");
                }
            }
            version
        }));
    }

    let mut readers = Vec::new();
    for r in 0..READERS {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        readers.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0x6EAD + r);
            let mut buf = vec![0u8; 16];
            let mut hits = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let key = rng.gen_range(0..KEY_SPACE);
                if store.get_into(key, &mut buf).expect("get ok") {
                    let lo = u64::from_le_bytes(buf[..8].try_into().unwrap());
                    let hi = u64::from_le_bytes(buf[8..].try_into().unwrap());
                    assert_eq!(lo, hi, "torn value for key {key}: {lo:#x} vs {hi:#x}");
                    assert_eq!(lo >> 32, key, "value from another key's bucket");
                    hits += 1;
                }
            }
            hits
        }));
    }

    // Model churn while readers and writers race: each swap relabels every
    // shard's pool under its engine lock.
    for _ in 0..4 {
        store.retrain_now().unwrap();
    }

    let mut expect: HashMap<u64, u32> = HashMap::new();
    for w in writers {
        expect.extend(w.join().expect("writer thread"));
    }
    stop.store(true, Ordering::Relaxed);
    let mut hits = 0;
    for r in readers {
        hits += r.join().expect("reader thread");
    }
    assert!(hits > 0, "readers must have observed live keys");

    // Final-state exactness: the store is the union of the writers'
    // reference models, version-for-version.
    assert_eq!(store.len(), expect.len());
    for key in 0..KEY_SPACE {
        let got = store.get(key).unwrap();
        match expect.get(&key) {
            Some(v) => assert_eq!(got.unwrap(), encode(key, *v), "key {key}"),
            None => assert_eq!(got, None, "key {key}"),
        }
    }
    let gets = store.snapshot().gets;
    assert!(gets >= hits, "validated reads are counted: {gets} >= {hits}");
}

/// Liveness: GETs complete — from another thread and from the very thread
/// holding the lock — while a writer owns a shard's engine mutex. A read
/// path that touched the lock would deadlock here.
#[test]
fn gets_complete_while_a_writer_owns_the_shard() {
    let store = Arc::new(ShardedPnwStore::new(
        PnwConfig::new(64, 16).with_clusters(1).with_shards(1),
    ));
    for k in 0..32u64 {
        store.put(k, &encode(k, 1)).unwrap();
    }
    store.with_shard_write_held(0, || {
        let s = Arc::clone(&store);
        let h = std::thread::spawn(move || {
            for k in 0..32u64 {
                assert_eq!(s.get(k).unwrap().unwrap(), encode(k, 1));
            }
        });
        h.join().unwrap();
        assert_eq!(store.get(7).unwrap().unwrap(), encode(7, 1));
        assert_eq!(store.get(999).unwrap(), None);
    });
}
