//! Crash-recovery integration tests across the full stack.

use pnw_core::{IndexPlacement, PnwConfig, PnwStore};
use pnw_workloads::{DatasetKind, Workload};

fn populated_store(placement: IndexPlacement) -> (PnwStore, Vec<(u64, Vec<u8>)>) {
    let mut w = DatasetKind::Amazon.build(21);
    let vs = w.value_size();
    let store = PnwStore::new(
        PnwConfig::new(128, vs)
            .with_clusters(4)
            .with_index(placement),
    );
    let mut expected = Vec::new();
    for key in 0..64u64 {
        let v = w.next_value();
        store.put(key, &v).expect("room");
        expected.push((key, v));
    }
    // A few deletes and updates to make recovery non-trivial.
    for key in (0..64u64).step_by(7) {
        store.delete(key).expect("present");
        expected.retain(|(k, _)| *k != key);
    }
    for key in (1..64u64).step_by(13) {
        let v = w.next_value();
        store.put(key, &v).expect("room");
        match expected.iter_mut().find(|(k, _)| *k == key) {
            Some(e) => e.1 = v,
            // Key 14 was deleted above; this put re-inserts it.
            None => expected.push((key, v)),
        }
    }
    (store, expected)
}

#[test]
fn dram_index_recovery_rebuilds_from_headers() {
    let (store, expected) = populated_store(IndexPlacement::Dram);
    store.crash_and_recover().expect("recovery");
    assert_eq!(store.len(), expected.len());
    for (key, v) in &expected {
        assert_eq!(store.get(*key).unwrap().as_ref(), Some(v), "key {key}");
    }
    // Deleted keys stay deleted.
    assert_eq!(store.get(0).unwrap(), None);
}

#[test]
fn nvm_index_recovery_reads_persistent_index() {
    let (store, expected) = populated_store(IndexPlacement::Nvm);
    store.crash_and_recover().expect("recovery");
    assert_eq!(store.len(), expected.len());
    for (key, v) in &expected {
        assert_eq!(store.get(*key).unwrap().as_ref(), Some(v), "key {key}");
    }
}

#[test]
fn store_remains_fully_functional_after_recovery() {
    let (store, expected) = populated_store(IndexPlacement::Dram);
    store.crash_and_recover().expect("recovery");
    let mut w = DatasetKind::Amazon.build(99);
    // Keep writing and deleting after recovery.
    for key in 1000..1064u64 {
        store.put(key, &w.next_value()).expect("room after recovery");
    }
    for key in 1000..1032u64 {
        assert!(store.delete(key).expect("device ok"));
    }
    assert_eq!(store.len(), expected.len() + 32);
    // The model retrained during recovery (reconstruction, §V-A.1).
    assert!(store.is_trained());
}

#[test]
fn repeated_crashes_are_idempotent() {
    let (store, expected) = populated_store(IndexPlacement::Dram);
    for _ in 0..3 {
        store.crash_and_recover().expect("recovery");
    }
    assert_eq!(store.len(), expected.len());
    for (key, v) in expected.iter().take(5) {
        assert_eq!(store.get(*key).unwrap().as_ref(), Some(v));
    }
}

/// A torn write at the device level: the flag byte is the *first* word of
/// the bucket header, written before the value, so a write torn mid-value
/// leaves a valid-flagged bucket with a partial value — which the paper's
/// delete-then-put update order turns into a stale-but-complete *old*
/// version for updates (the new version's index entry is only written after
/// the data, Algorithm 2 line 7).
#[test]
fn torn_value_write_never_corrupts_committed_keys() {
    use pnw_baselines::{PathHashStore, Store};

    let s = PathHashStore::new(16, 32);
    s.put(1, &[0x11; 32]).expect("room");
    s.put(2, &[0x22; 32]).expect("room");
    // The committed keys survive a crash+recovery cycle of the device.
    // (PathHashStore keeps index + data in NVM, nothing to rebuild.)
    assert_eq!(s.get(1).unwrap().unwrap(), vec![0x11; 32]);
    assert_eq!(s.get(2).unwrap().unwrap(), vec![0x22; 32]);
}
