//! Crash-recovery integration tests across the full stack.
//!
//! Two layers of recovery are exercised here:
//!
//! * **Volatile reconstruction** (`crash_and_recover`) — the paper's
//!   recovery story (§V-A.1): DRAM structures die, the NVM data zone
//!   survives, everything is rebuilt from bucket headers.
//! * **The kill-and-reopen matrix** — the durable file-backed store:
//!   {DRAM index, NVM Path-Hashing index} × {clean close, kill between
//!   ops, torn superblock replica, torn mid-WAL record, half-written
//!   checkpoint}. Every cell reopens the store from its directory and
//!   proves that each committed key is served bit-for-bit and that no
//!   phantom (unacknowledged) key survives.

use std::collections::HashSet;
use std::path::{Path, PathBuf};

use pnw_core::{
    IndexPlacement, MetaTarget, MetaTear, PnwConfig, PnwStore, ShardedPnwStore, Store,
};
use pnw_workloads::{DatasetKind, Workload};

fn populated_store(placement: IndexPlacement) -> (PnwStore, Vec<(u64, Vec<u8>)>) {
    let mut w = DatasetKind::Amazon.build(21);
    let vs = w.value_size();
    let store = PnwStore::new(
        PnwConfig::new(128, vs)
            .with_clusters(4)
            .with_index(placement),
    );
    let mut expected = Vec::new();
    for key in 0..64u64 {
        let v = w.next_value();
        store.put(key, &v).expect("room");
        expected.push((key, v));
    }
    // A few deletes and updates to make recovery non-trivial.
    for key in (0..64u64).step_by(7) {
        store.delete(key).expect("present");
        expected.retain(|(k, _)| *k != key);
    }
    for key in (1..64u64).step_by(13) {
        let v = w.next_value();
        store.put(key, &v).expect("room");
        match expected.iter_mut().find(|(k, _)| *k == key) {
            Some(e) => e.1 = v,
            // Key 14 was deleted above; this put re-inserts it.
            None => expected.push((key, v)),
        }
    }
    (store, expected)
}

#[test]
fn dram_index_recovery_rebuilds_from_headers() {
    let (store, expected) = populated_store(IndexPlacement::Dram);
    store.crash_and_recover().expect("recovery");
    assert_eq!(store.len(), expected.len());
    for (key, v) in &expected {
        assert_eq!(store.get(*key).unwrap().as_ref(), Some(v), "key {key}");
    }
    // Deleted keys stay deleted.
    assert_eq!(store.get(0).unwrap(), None);
}

#[test]
fn nvm_index_recovery_reads_persistent_index() {
    let (store, expected) = populated_store(IndexPlacement::Nvm);
    store.crash_and_recover().expect("recovery");
    assert_eq!(store.len(), expected.len());
    for (key, v) in &expected {
        assert_eq!(store.get(*key).unwrap().as_ref(), Some(v), "key {key}");
    }
}

#[test]
fn store_remains_fully_functional_after_recovery() {
    let (store, expected) = populated_store(IndexPlacement::Dram);
    store.crash_and_recover().expect("recovery");
    let mut w = DatasetKind::Amazon.build(99);
    // Keep writing and deleting after recovery.
    for key in 1000..1064u64 {
        store.put(key, &w.next_value()).expect("room after recovery");
    }
    for key in 1000..1032u64 {
        assert!(store.delete(key).expect("device ok"));
    }
    assert_eq!(store.len(), expected.len() + 32);
    // The model retrained during recovery (reconstruction, §V-A.1).
    assert!(store.is_trained());
}

#[test]
fn repeated_crashes_are_idempotent() {
    let (store, expected) = populated_store(IndexPlacement::Dram);
    for _ in 0..3 {
        store.crash_and_recover().expect("recovery");
    }
    assert_eq!(store.len(), expected.len());
    for (key, v) in expected.iter().take(5) {
        assert_eq!(store.get(*key).unwrap().as_ref(), Some(v));
    }
}

/// A torn write at the device level: the flag byte is the *first* word of
/// the bucket header, written before the value, so a write torn mid-value
/// leaves a valid-flagged bucket with a partial value — which the paper's
/// delete-then-put update order turns into a stale-but-complete *old*
/// version for updates (the new version's index entry is only written after
/// the data, Algorithm 2 line 7).
#[test]
fn torn_value_write_never_corrupts_committed_keys() {
    use pnw_baselines::{PathHashStore, Store};

    let s = PathHashStore::new(16, 32);
    s.put(1, &[0x11; 32]).expect("room");
    s.put(2, &[0x22; 32]).expect("room");
    // The committed keys survive a crash+recovery cycle of the device.
    // (PathHashStore keeps index + data in NVM, nothing to rebuild.)
    assert_eq!(s.get(1).unwrap().unwrap(), vec![0x11; 32]);
    assert_eq!(s.get(2).unwrap().unwrap(), vec![0x22; 32]);
}

// ---------------------------------------------------------------------------
// The kill-and-reopen matrix (durable file-backed store).
// ---------------------------------------------------------------------------

/// A fresh scratch directory under the test temp root, unique per test.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pnw_recovery_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn durable_cfg(placement: IndexPlacement, dir: &Path, vs: usize) -> PnwConfig {
    PnwConfig::new(128, vs)
        .with_clusters(4)
        .with_index(placement)
        .with_path(dir)
}

/// The committed op mix every matrix cell runs before its crash: fresh
/// puts, deletes, and delete-put updates — all acknowledged, so all of
/// them must survive any cell's crash.
fn apply_op_mix(store: &PnwStore, seed: u64) -> Vec<(u64, Vec<u8>)> {
    let mut w = DatasetKind::Amazon.build(seed);
    let mut expected: Vec<(u64, Vec<u8>)> = Vec::new();
    for key in 0..64u64 {
        let v = w.next_value();
        store.put(key, &v).expect("room");
        expected.push((key, v));
    }
    for key in (0..64u64).step_by(7) {
        store.delete(key).expect("present");
        expected.retain(|(k, _)| *k != key);
    }
    for key in (1..64u64).step_by(13) {
        let v = w.next_value();
        store.put(key, &v).expect("room");
        match expected.iter_mut().find(|(k, _)| *k == key) {
            Some(e) => e.1 = v,
            None => expected.push((key, v)),
        }
    }
    expected
}

/// Every committed key bit-for-bit, no phantom keys, correct count.
fn assert_exact_contents(store: &PnwStore, expected: &[(u64, Vec<u8>)]) {
    assert_eq!(store.len(), expected.len(), "live key count");
    for (key, v) in expected {
        assert_eq!(
            store.get(*key).unwrap().as_ref(),
            Some(v),
            "committed key {key} must be served bit-for-bit"
        );
    }
    let committed: HashSet<u64> = expected.iter().map(|(k, _)| *k).collect();
    for key in 0..256u64 {
        if !committed.contains(&key) {
            assert_eq!(
                store.get(key).unwrap(),
                None,
                "phantom key {key} must not survive recovery"
            );
        }
    }
}

/// How a matrix cell "kills" the store after the committed op mix.
#[derive(Clone, Copy, Debug)]
enum Kill {
    /// `close()`: final checkpoint, then drop.
    CleanClose,
    /// Plain drop without a checkpoint — the WAL alone carries the state.
    BetweenOps,
    /// A checkpoint whose superblock bump tears mid-record: the new
    /// replica slot is invalid, recovery must elect the old one.
    TornSuperblock,
    /// A put whose WAL commit record tears mid-frame: the op is not
    /// acknowledged and must not survive.
    TornWal,
    /// A checkpoint whose body tears before the rename's source is
    /// complete: recovery must keep serving from the old epoch.
    TornCheckpoint,
}

fn run_matrix_cell(placement: IndexPlacement, kill: Kill, name: &str) {
    let vs = DatasetKind::Amazon.build(21).value_size();
    let dir = scratch_dir(name);
    let cfg = durable_cfg(placement, &dir, vs);

    let store = PnwStore::open(cfg.clone()).expect("fresh open");
    assert!(store.is_durable());
    let expected = apply_op_mix(&store, 21);
    match kill {
        Kill::CleanClose => store.close().expect("clean close"),
        Kill::BetweenOps => drop(store),
        Kill::TornSuperblock => {
            store.arm_meta_tear(MetaTear {
                target: MetaTarget::Superblock,
                skip: 0,
                keep_bytes: 13,
            });
            assert!(store.checkpoint().is_err(), "torn superblock must fail");
            drop(store);
        }
        Kill::TornWal => {
            store.arm_meta_tear(MetaTear {
                target: MetaTarget::Wal,
                skip: 0,
                keep_bytes: 5,
            });
            // The put's bucket write lands but its commit record tears:
            // the op fails and the store is dead from here on.
            assert!(store.put(999, &vec![0xAB; vs]).is_err());
            assert!(store.put(998, &vec![0xCD; vs]).is_err());
            drop(store);
        }
        Kill::TornCheckpoint => {
            store.arm_meta_tear(MetaTear {
                target: MetaTarget::Checkpoint,
                skip: 0,
                keep_bytes: 32,
            });
            assert!(store.checkpoint().is_err(), "torn checkpoint must fail");
            drop(store);
        }
    }

    let store = PnwStore::open(cfg).expect("reopen after kill");
    assert_exact_contents(&store, &expected);
    // The reopened store keeps serving writes.
    store.put(5000, &vec![0x5A; vs]).expect("post-recovery put");
    assert_eq!(store.get(5000).unwrap().unwrap(), vec![0x5A; vs]);
    assert!(store.delete(5000).unwrap());
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn matrix_dram_clean_close() {
    run_matrix_cell(IndexPlacement::Dram, Kill::CleanClose, "dram_clean");
}

#[test]
fn matrix_dram_kill_between_ops() {
    run_matrix_cell(IndexPlacement::Dram, Kill::BetweenOps, "dram_kill");
}

#[test]
fn matrix_dram_torn_superblock_replica() {
    run_matrix_cell(IndexPlacement::Dram, Kill::TornSuperblock, "dram_super");
}

#[test]
fn matrix_dram_torn_mid_wal_record() {
    run_matrix_cell(IndexPlacement::Dram, Kill::TornWal, "dram_wal");
}

#[test]
fn matrix_dram_half_written_checkpoint() {
    run_matrix_cell(IndexPlacement::Dram, Kill::TornCheckpoint, "dram_ckpt");
}

#[test]
fn matrix_nvm_clean_close() {
    run_matrix_cell(IndexPlacement::Nvm, Kill::CleanClose, "nvm_clean");
}

#[test]
fn matrix_nvm_kill_between_ops() {
    run_matrix_cell(IndexPlacement::Nvm, Kill::BetweenOps, "nvm_kill");
}

#[test]
fn matrix_nvm_torn_superblock_replica() {
    run_matrix_cell(IndexPlacement::Nvm, Kill::TornSuperblock, "nvm_super");
}

#[test]
fn matrix_nvm_torn_mid_wal_record() {
    run_matrix_cell(IndexPlacement::Nvm, Kill::TornWal, "nvm_wal");
}

#[test]
fn matrix_nvm_half_written_checkpoint() {
    run_matrix_cell(IndexPlacement::Nvm, Kill::TornCheckpoint, "nvm_ckpt");
}

/// A torn *data-zone* write on the durable store: the device tears the
/// bucket write mid-word-stream and crashes. The op fails before it
/// reaches the WAL, so recovery must neither serve the torn key nor lose
/// any committed one.
#[test]
fn matrix_torn_data_write_is_unacknowledged() {
    let vs = DatasetKind::Amazon.build(21).value_size();
    let dir = scratch_dir("torn_data");
    let cfg = durable_cfg(IndexPlacement::Dram, &dir, vs);

    let store = PnwStore::open(cfg.clone()).unwrap();
    let expected = apply_op_mix(&store, 21);
    // Tear after one persisted word of the next data-zone write.
    store.arm_torn_write(1);
    assert!(store.put(999, &vec![0xEE; vs]).is_err());
    drop(store);

    let store = PnwStore::open(cfg).unwrap();
    assert_exact_contents(&store, &expected);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// DeviceStats and per-word wear are part of the checkpoint: a reopened
/// store reports exactly the counters the checkpoint captured, so wear
/// studies survive restarts.
#[test]
fn device_stats_and_wear_survive_reopen() {
    let vs = DatasetKind::Amazon.build(21).value_size();
    let dir = scratch_dir("stats");
    let cfg = durable_cfg(IndexPlacement::Dram, &dir, vs);

    let store = PnwStore::open(cfg.clone()).unwrap();
    let _ = apply_op_mix(&store, 21);
    store.checkpoint().unwrap();
    let stats_before = store.device_stats();
    let wear_before = store.word_wear_cdf();
    assert!(stats_before.totals.bit_flips > 0);
    assert!(wear_before.max() >= 1);
    // Kill without a further checkpoint: the counters must come from the
    // checkpoint just cut, not from the repair writes recovery performs.
    drop(store);

    let store = PnwStore::open(cfg).unwrap();
    assert_eq!(store.device_stats(), stats_before);
    assert_eq!(store.word_wear_cdf(), wear_before);
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Sharded store: the same kill semantics across shard-private WALs.
// ---------------------------------------------------------------------------

#[test]
fn sharded_kill_between_ops_recovers_every_shard() {
    let dir = scratch_dir("sharded_kill");
    let cfg = PnwConfig::new(128, 8)
        .with_clusters(2)
        .with_shards(4)
        .with_seed(7)
        .with_path(&dir);

    let store = ShardedPnwStore::open(cfg.clone()).unwrap();
    for k in 0..80u64 {
        store.put(k, &(k * 17).to_le_bytes()).unwrap();
    }
    for k in (0..80u64).step_by(9) {
        store.delete(k).unwrap();
    }
    // Kill: no close, no checkpoint — per-shard WALs carry everything.
    drop(store);

    let store = ShardedPnwStore::open(cfg).unwrap();
    let deleted: HashSet<u64> = (0..80u64).step_by(9).collect();
    assert_eq!(store.len(), 80 - deleted.len());
    for k in 0..80u64 {
        if deleted.contains(&k) {
            assert_eq!(store.get(k).unwrap(), None, "deleted key {k}");
        } else {
            assert_eq!(store.get(k).unwrap().unwrap(), (k * 17).to_le_bytes());
        }
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn sharded_torn_wal_record_drops_only_the_unacknowledged_put() {
    let dir = scratch_dir("sharded_wal");
    let cfg = PnwConfig::new(128, 8)
        .with_clusters(2)
        .with_shards(4)
        .with_seed(7)
        .with_path(&dir);

    let store = ShardedPnwStore::open(cfg.clone()).unwrap();
    for k in 0..40u64 {
        store.put(k, &(k * 13).to_le_bytes()).unwrap();
    }
    // The metadata fault state is shared by every shard's WAL appender:
    // whichever shard the next put routes to, its commit record tears.
    store.arm_meta_tear(MetaTear {
        target: MetaTarget::Wal,
        skip: 0,
        keep_bytes: 3,
    });
    assert!(store.put(999, &[0xAB; 8]).is_err());
    drop(store);

    let store = ShardedPnwStore::open(cfg).unwrap();
    assert_eq!(store.len(), 40);
    assert_eq!(store.get(999).unwrap(), None, "torn put must not survive");
    for k in 0..40u64 {
        assert_eq!(store.get(k).unwrap().unwrap(), (k * 13).to_le_bytes());
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The group-commit commit point: a batched `apply` defers the WAL fsync
/// to one `sync_data` per shard group, but no op is acknowledged before
/// that fsync lands — so a kill with *no* checkpoint right after `apply`
/// returns must still recover every acknowledged op.
#[test]
fn sharded_group_commit_survives_kill_without_checkpoint() {
    let dir = scratch_dir("group_commit");
    let cfg = PnwConfig::new(128, 8)
        .with_clusters(2)
        .with_shards(4)
        .with_seed(7)
        .with_path(&dir);

    let store = ShardedPnwStore::open(cfg.clone()).unwrap();
    let mut batch = pnw_core::Batch::new();
    for k in 0..64u64 {
        batch.put(k, &(k * 29).to_le_bytes());
    }
    for k in (0..64u64).step_by(6) {
        batch.delete(k);
    }
    let r = store.apply(&batch);
    assert!(r.all_ok(), "{:?}", r.failures);
    // Kill immediately: the group fsyncs are all the durability there is.
    drop(store);

    let store = ShardedPnwStore::open(cfg).unwrap();
    let deleted: HashSet<u64> = (0..64u64).step_by(6).collect();
    assert_eq!(store.len(), 64 - deleted.len());
    for k in 0..64u64 {
        if deleted.contains(&k) {
            assert_eq!(store.get(k).unwrap(), None, "deleted key {k}");
        } else {
            assert_eq!(store.get(k).unwrap().unwrap(), (k * 29).to_le_bytes());
        }
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A WAL record tearing *inside* a batched group: the ops the report
/// acknowledged survive the reopen bit-for-bit, the torn shard's failed
/// ops are reported by batch index, and no key is ever served with a
/// value the batch did not commit — the group fails as a clean prefix,
/// not a scramble.
#[test]
fn sharded_torn_wal_inside_group_commits_a_clean_prefix() {
    let dir = scratch_dir("group_tear");
    let cfg = PnwConfig::new(256, 8)
        .with_clusters(2)
        .with_shards(4)
        .with_seed(7)
        .with_path(&dir);

    let store = ShardedPnwStore::open(cfg.clone()).unwrap();
    // Committed warm state, fsynced per-op before the fault is armed.
    for k in 0..24u64 {
        store.put(k, &(k * 13).to_le_bytes()).unwrap();
    }
    // The 5th WAL append after arming tears mid-frame; every later meta
    // write on the crashed device fails too.
    store.arm_meta_tear(MetaTear {
        target: MetaTarget::Wal,
        skip: 4,
        keep_bytes: 3,
    });
    let mut batch = pnw_core::Batch::new();
    for k in 100..132u64 {
        batch.put(k, &(k * 31).to_le_bytes());
    }
    let r = store.apply(&batch);
    assert!(!r.all_ok(), "the torn group must report failures");
    let failed: HashSet<usize> = r.failures.iter().map(|(i, _)| *i).collect();
    drop(store);

    let store = ShardedPnwStore::open(cfg).unwrap();
    for k in 0..24u64 {
        assert_eq!(store.get(k).unwrap().unwrap(), (k * 13).to_le_bytes());
    }
    for (i, k) in (100..132u64).enumerate() {
        let got = store.get(k).unwrap();
        if !failed.contains(&i) {
            assert_eq!(
                got.unwrap(),
                (k * 31).to_le_bytes(),
                "acknowledged batch op {i} (key {k}) must survive"
            );
        } else if let Some(v) = got {
            // An op reported failed at the group fsync boundary may have a
            // fully-persisted record; if it survives, it must be intact.
            assert_eq!(v, (k * 31).to_le_bytes(), "failed op {i} served torn bytes");
        }
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Batched `apply` and the per-op path agree across a durable
/// close-and-reopen cycle.
#[test]
fn sharded_clean_close_preserves_batch_results() {
    let dir = scratch_dir("sharded_batch");
    let cfg = PnwConfig::new(128, 8)
        .with_clusters(2)
        .with_shards(2)
        .with_seed(7)
        .with_path(&dir);

    let store = ShardedPnwStore::open(cfg.clone()).unwrap();
    let mut batch = pnw_core::Batch::new();
    for k in 0..48u64 {
        batch.put(k, &(k * 3).to_le_bytes());
    }
    for k in (0..48u64).step_by(5) {
        batch.delete(k);
    }
    let r = store.apply(&batch);
    assert!(r.all_ok(), "{:?}", r.failures);
    store.close().unwrap();

    let store = ShardedPnwStore::open(cfg).unwrap();
    let deleted: HashSet<u64> = (0..48u64).step_by(5).collect();
    assert_eq!(store.len(), 48 - deleted.len());
    for k in 0..48u64 {
        if deleted.contains(&k) {
            assert_eq!(store.get(k).unwrap(), None);
        } else {
            assert_eq!(store.get(k).unwrap().unwrap(), (k * 3).to_le_bytes());
        }
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Serving + recovery: the acknowledged prefix survives a server crash.

/// A server killed mid-pipelined-stream without a checkpoint: after the
/// WAL replay on reopen, the store holds every acknowledged write with
/// bit-exact values and nothing the client never sent — acked ⊆
/// recovered ⊆ sent. (The gap between the two inclusions is writes that
/// committed but whose ack was lost in the crash; those may legitimately
/// survive.)
#[test]
fn server_killed_mid_pipeline_recovers_exactly_the_acked_prefix() {
    use pnw_server::{Client, Request, Response, Server, ServerAddr, ServerConfig};

    let dir = scratch_dir("server_kill_pipeline");
    let cfg = PnwConfig::new(4096, 8)
        .with_clusters(2)
        .with_shards(2)
        .with_path(&dir);
    let store: std::sync::Arc<dyn Store> =
        std::sync::Arc::new(ShardedPnwStore::open(cfg.clone()).unwrap());
    let server = Server::start(
        store,
        &ServerAddr::parse("tcp://127.0.0.1:0").unwrap(),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr().clone();

    const SENT: u64 = 400;
    fn value(k: u64) -> [u8; 8] {
        k.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_le_bytes()
    }

    // One connection pipelines every PUT without waiting, then collects
    // acks in order until the crash cuts the stream.
    let client = std::thread::spawn(move || {
        let mut c = Client::connect(&addr).unwrap();
        let mut ids = Vec::new();
        for k in 0..SENT {
            match c.send(&Request::Put { key: k, value: value(k).to_vec() }) {
                Ok(id) => ids.push((id, k)),
                Err(_) => break, // the socket died under the abort
            }
        }
        let mut acked = Vec::new();
        for (id, k) in ids {
            match c.recv() {
                Ok(f) if f.id == id && f.resp == Response::Put => acked.push(k),
                _ => break,
            }
        }
        acked
    });

    // Kill the server once some writes have committed — no checkpoint,
    // so the reopen below exercises WAL replay under a torn stream.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while server.stats().requests_ok < 16 {
        assert!(std::time::Instant::now() < deadline, "no request ever committed");
        std::thread::yield_now();
    }
    server.abort();
    let acked = client.join().unwrap();
    assert!(!acked.is_empty(), "the kill landed before any ack reached the client");

    let store = ShardedPnwStore::open(cfg).unwrap();
    // acked ⊆ recovered: every acknowledged write survives, bit-exact.
    for &k in &acked {
        assert_eq!(
            store.get(k).unwrap().as_deref(),
            Some(&value(k)[..]),
            "acknowledged key {k} lost in the crash"
        );
    }
    // recovered ⊆ sent: whatever survived is a write this client sent,
    // never a fabricated or torn value...
    let mut recovered = 0usize;
    for k in 0..SENT {
        if let Some(v) = store.get(k).unwrap() {
            assert_eq!(v, value(k), "recovered key {k} has a torn value");
            recovered += 1;
        }
    }
    // ...and nothing outside the sent key range exists at all.
    assert_eq!(store.len(), recovered, "store holds keys the client never sent");
    assert!(recovered >= acked.len());
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
}
