//! End-to-end serving tests: typed overload under admission pressure,
//! graceful drain under live load, connection-cap rejection, and the
//! Unix-socket transport.

use std::sync::{Arc, Mutex};
use std::time::Duration;

use pnw_core::{PnwConfig, PnwStore, ShardedPnwStore, Store, StoreError};
use pnw_server::{Client, ClientError, Request, Server, ServerAddr, ServerConfig, WireError};

const VS: usize = 16;

#[test]
fn overload_is_typed_when_waiting_room_is_full() {
    // One permit, zero waiting room, and a store wedged by a held mutex:
    // the second request must bounce immediately with Overloaded.
    struct Wedge {
        inner: PnwStore,
        gate: Mutex<()>,
    }
    impl Store for Wedge {
        fn name(&self) -> &'static str {
            "wedge"
        }
        fn value_size(&self) -> usize {
            self.inner.value_size()
        }
        fn put(&self, key: u64, value: &[u8]) -> Result<pnw_core::OpReport, StoreError> {
            let _held = self.gate.lock().unwrap();
            self.inner.put(key, value)
        }
        fn get(&self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
            self.inner.get(key)
        }
        fn get_into(&self, key: u64, out: &mut [u8]) -> Result<bool, StoreError> {
            self.inner.get_into(key, out)
        }
        fn delete(&self, key: u64) -> Result<bool, StoreError> {
            self.inner.delete(key)
        }
        fn scan(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
            self.inner.scan(lo, hi)
        }
        fn len(&self) -> usize {
            self.inner.len()
        }
        fn snapshot(&self) -> pnw_core::StoreSnapshot {
            self.inner.snapshot()
        }
        fn device_stats(&self) -> pnw_nvm_sim::DeviceStats {
            self.inner.device_stats()
        }
        fn reset_device_stats(&self) {
            self.inner.reset_device_stats()
        }
    }

    let store = Arc::new(Wedge {
        inner: PnwStore::new(PnwConfig::new(256, VS).with_clusters(2)),
        gate: Mutex::new(()),
    });
    let server = Server::start(
        Arc::clone(&store) as Arc<dyn Store>,
        &ServerAddr::parse("tcp://127.0.0.1:0").unwrap(),
        ServerConfig { max_inflight: 1, max_waiting: 0, ..ServerConfig::default() },
    )
    .unwrap();

    let held = store.gate.lock().unwrap();
    let addr = server.local_addr().clone();
    let blocked = std::thread::spawn(move || {
        let mut a = Client::connect(&addr).unwrap();
        a.put(1, &[1u8; VS])
    });
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while server.stats().executing != 1 {
        assert!(std::time::Instant::now() < deadline, "first PUT never admitted");
        std::thread::sleep(Duration::from_millis(5));
    }

    let mut b = Client::connect(server.local_addr()).unwrap();
    match b.put(2, &[2u8; VS]) {
        Err(ClientError::Server(WireError::Overloaded)) => {}
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(server.stats().overload_rejects >= 1);
    // Overloaded is retryable by contract — and once the wedge clears,
    // the retry path succeeds.
    assert!(WireError::Overloaded.is_retryable());
    drop(held);
    blocked.join().unwrap().unwrap();
    b.put(2, &[2u8; VS]).unwrap();
    server.drain().unwrap();
}

#[test]
fn drain_under_live_load_is_clean_and_typed() {
    let store: Arc<dyn Store> = Arc::new(ShardedPnwStore::new(
        PnwConfig::new(4096, VS).with_clusters(2).with_shards(2),
    ));
    let server = Server::start(
        store,
        &ServerAddr::parse("tcp://127.0.0.1:0").unwrap(),
        ServerConfig::default(),
    )
    .unwrap();
    let addr = server.local_addr().clone();

    // Writers hammer the server until they observe the drain.
    let mut writers = Vec::new();
    for w in 0..3u64 {
        let addr = addr.clone();
        writers.push(std::thread::spawn(move || {
            let mut c = Client::connect(&addr).unwrap();
            let mut acked = 0u64;
            let mut saw_draining = false;
            for i in 0..50_000u64 {
                // Cycle a small key space so the store never fills.
                match c.put(w * 1_000 + (i % 512), &[w as u8; VS]) {
                    Ok(()) => acked += 1,
                    Err(ClientError::Server(WireError::Draining)) => {
                        saw_draining = true;
                        break;
                    }
                    // Past the grace window the server just closes.
                    Err(ClientError::Io(_) | ClientError::Frame(_)) => break,
                    Err(e) => panic!("unexpected error under drain: {e}"),
                }
            }
            (acked, saw_draining)
        }));
    }
    // Let the writers get going, then drain underneath them.
    std::thread::sleep(Duration::from_millis(150));
    let report = server.drain().unwrap();
    assert!(report.clean, "{} stragglers", report.stragglers);

    let mut total_acked = 0;
    let mut any_typed = false;
    for wtr in writers {
        let (acked, typed) = wtr.join().unwrap();
        total_acked += acked;
        any_typed |= typed;
    }
    assert!(total_acked > 0, "drain fired before any write completed");
    assert!(
        any_typed,
        "at least one pipelining writer should observe the typed Draining error"
    );
}

#[test]
fn connection_cap_rejects_with_typed_error() {
    let store: Arc<dyn Store> = Arc::new(PnwStore::new(PnwConfig::new(256, VS).with_clusters(2)));
    let server = Server::start(
        store,
        &ServerAddr::parse("tcp://127.0.0.1:0").unwrap(),
        ServerConfig { max_conns: 1, ..ServerConfig::default() },
    )
    .unwrap();
    let mut first = Client::connect(server.local_addr()).unwrap();
    first.ping().unwrap(); // fully established and counted

    // The second connection is bounced with a best-effort Overloaded.
    let mut second = Client::connect(server.local_addr()).unwrap();
    match second.recv() {
        Ok(frame) => {
            assert_eq!(frame.id, 0);
            assert_eq!(frame.resp, pnw_server::Response::Err(WireError::Overloaded));
        }
        // The close can race the error frame; either way it must not hang.
        Err(ClientError::Frame(_) | ClientError::Io(_)) => {}
        Err(e) => panic!("unexpected: {e}"),
    }
    assert!(server.stats().conn_rejects >= 1);
    // The established connection is unaffected.
    first.put(1, &[9u8; VS]).unwrap();
    drop(first);
    server.drain().unwrap();
}

#[test]
fn unix_socket_transport_end_to_end() {
    let dir = std::env::temp_dir().join(format!("pnw_server_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let sock = dir.join("pnw.sock");
    let _ = std::fs::remove_file(&sock);
    let addr = ServerAddr::Unix(sock.clone());

    let store: Arc<dyn Store> = Arc::new(ShardedPnwStore::new(
        PnwConfig::new(1024, VS).with_clusters(2).with_shards(2),
    ));
    let server = Server::start(store, &addr, ServerConfig::default()).unwrap();
    let mut c = Client::connect(&addr).unwrap();
    c.put(5, &[0xEE; VS]).unwrap();
    assert_eq!(c.get(5).unwrap(), Some(vec![0xEE; VS]));
    // Batches work over the same socket.
    let (completed, failures) = c
        .batch(vec![
            pnw_server::WireOp::Put { key: 6, value: vec![0x66; VS] },
            pnw_server::WireOp::Delete { key: 5 },
        ])
        .unwrap();
    assert_eq!((completed, failures.len()), (2, 0));
    assert_eq!(c.get(5).unwrap(), None);
    drop(c);
    let report = server.drain().unwrap();
    assert!(report.clean);
    assert!(!sock.exists(), "drain must remove the socket file");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn ping_bypasses_admission_even_when_wedged() {
    // Gate saturated with zero waiting room: data ops bounce, PING works.
    let store: Arc<dyn Store> = Arc::new(PnwStore::new(PnwConfig::new(256, VS).with_clusters(2)));
    let server = Server::start(
        store,
        &ServerAddr::parse("tcp://127.0.0.1:0").unwrap(),
        ServerConfig { max_inflight: 1, max_waiting: 0, ..ServerConfig::default() },
    )
    .unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    // Saturate nothing — just prove PING answers without a permit by
    // sending it while another request is in flight on a second conn.
    let mut d = Client::connect(server.local_addr()).unwrap();
    let id = d.send(&Request::Put { key: 1, value: vec![1; VS] }).unwrap();
    c.ping().unwrap();
    let resp = d.recv().unwrap();
    assert_eq!(resp.id, id);
    server.drain().unwrap();
}

#[test]
fn scan_over_the_wire_pages_through_limit_and_frame_budget() {
    let store: Arc<dyn Store> =
        Arc::new(ShardedPnwStore::new(PnwConfig::new(512, VS).with_clusters(2).with_shards(4)));
    let server = Server::start(
        Arc::clone(&store),
        &ServerAddr::parse("tcp://127.0.0.1:0").unwrap(),
        // A small frame keeps the budget-truncation path honest: ~28
        // bytes per entry means a full 96-key reply cannot fit.
        ServerConfig { max_frame: 1024, ..ServerConfig::default() },
    )
    .unwrap();
    let mut c = Client::connect(server.local_addr()).unwrap();
    for k in 0..96u64 {
        c.put(k, &[k as u8; VS]).unwrap();
    }

    // Empty range: complete and empty.
    let (entries, complete) = c.scan(200, 300, 0).unwrap();
    assert!(entries.is_empty() && complete);

    // Explicit limit truncates and says so.
    let (entries, complete) = c.scan(0, u64::MAX, 10).unwrap();
    assert_eq!(entries.len(), 10);
    assert!(!complete, "a limited reply must not claim completeness");
    assert_eq!(entries[0].0, 0);
    assert_eq!(entries[9].0, 9);

    // Paging: resume from last key + 1 until complete reassembles the
    // whole range in order, whether the server truncated at the limit or
    // at its frame budget.
    let mut all = Vec::new();
    let mut lo = 0u64;
    loop {
        let (mut page, complete) = c.scan(lo, u64::MAX, 0).unwrap();
        if let Some(&(last, _)) = page.last() {
            lo = last + 1;
        } else {
            assert!(complete, "an empty incomplete page would never terminate");
        }
        let done = complete;
        all.append(&mut page);
        if done {
            break;
        }
    }
    assert_eq!(all.len(), 96, "paging reassembles the full range");
    for (i, (k, v)) in all.iter().enumerate() {
        assert_eq!(*k, i as u64, "ascending across pages");
        assert_eq!(v, &vec![*k as u8; VS], "key {k}");
    }
    server.drain().unwrap();
}
