//! Wear-leveling integration tests (the Figure 12/13 properties).

use pnw_core::{PnwConfig, PnwStore};
use pnw_workloads::{DatasetKind, Workload};

fn replacement_stream(k: usize, buckets: usize, writes: usize) -> PnwStore {
    let mut w = DatasetKind::Normal.build(31);
    let store = PnwStore::new(
        PnwConfig::new(buckets, 4)
            .with_clusters(k)
            .with_seed(7)
            .with_bit_wear(true),
    );
    store.prefill_free_buckets(|| w.next_value()).expect("prefill");
    store.retrain_now().expect("train");
    store.reset_wear();
    for i in 0..writes as u64 {
        let v = w.next_value();
        store.put(i, &v).expect("room");
        store.delete(i).expect("present");
    }
    store
}

/// The FIFO pool rotation spreads writes: after W writes over B buckets, no
/// word is written wildly more often than the mean (the paper: "PNW
/// distributes write activities across the whole PCM chip").
#[test]
fn writes_spread_across_the_data_zone() {
    let buckets = 256;
    let writes = 4 * buckets;
    let store = replacement_stream(8, buckets, writes);
    let max = store.max_word_writes();
    // Each logical write touches the value word + header words of one
    // bucket; mean per-bucket writes = 4. A hot-spot design (LIFO) would
    // concentrate hundreds of writes on a few buckets.
    assert!(max <= 40, "hottest word written {max} times (mean ≈ 4-12)");
}

/// CDFs behave like Figure 12: the bulk of addresses see few writes.
#[test]
fn word_cdf_matches_figure12_shape() {
    let buckets = 256;
    let store = replacement_stream(8, buckets, 4 * buckets);
    let cdf = store.word_wear_cdf();
    // Figure 12: P(X <= 2*mean) is already most of the population.
    let p = cdf.probability_le(10);
    assert!(p > 0.8, "P(writes <= 10) = {p:.3}");
    // CDF sanity.
    assert!((cdf.probability_le(cdf.max()) - 1.0).abs() < 1e-9);
}

/// Figure 13's key claim: increasing K improves *bit-level* wear leveling,
/// because items within a cluster are more similar, so the same few bits
/// are not flipped over and over.
#[test]
fn higher_k_flips_bits_more_evenly() {
    let buckets = 384;
    let writes = 6 * buckets;
    let lo = replacement_stream(2, buckets, writes);
    let hi = replacement_stream(24, buckets, writes);

    let mass = |s: &PnwStore| -> (f64, u64) {
        let cdf = s.bit_wear_cdf().expect("bit wear on");
        // Total flips concentrated in the hottest tail vs overall.
        (cdf.probability_le(4), u64::from(cdf.max()))
    };
    let (lo_p4, _) = mass(&lo);
    let (hi_p4, _) = mass(&hi);
    // With more clusters, more bits stay at low flip counts (the paper sees
    // P(X<=4) rise from 74% at k=5 to 98% at k=30). Allow generous noise.
    assert!(
        hi_p4 >= lo_p4 - 0.02,
        "k=24 P(<=4)={hi_p4:.3} should not trail k=2 P(<=4)={lo_p4:.3}"
    );
    // And high K must actually flip fewer bits in total.
    let lo_flips = lo.device_stats().totals.bit_flips;
    let hi_flips = hi.device_stats().totals.bit_flips;
    assert!(hi_flips < lo_flips, "{hi_flips} !< {lo_flips}");
}

/// Raw (conventional) writes wear every word they touch; differential
/// writes only the dirty ones — the device-level invariant behind all wear
/// numbers.
#[test]
fn diff_writes_wear_less_than_raw() {
    use pnw_nvm_sim::{NvmConfig, NvmDevice, WriteMode};
    let mut raw = NvmDevice::new(NvmConfig::default().with_size(1024));
    let mut diff = NvmDevice::new(NvmConfig::default().with_size(1024));
    let v = [0x55u8; 64];
    for _ in 0..10 {
        raw.write(0, &v, WriteMode::Raw).expect("ok");
        diff.write(0, &v, WriteMode::Diff).expect("ok");
    }
    assert_eq!(raw.max_word_writes(), 10);
    assert_eq!(diff.max_word_writes(), 1); // only the first write dirtied
}
