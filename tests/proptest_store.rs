//! Property-based tests: the PNW store against a reference model, and
//! core data-structure invariants under arbitrary operation sequences.

use std::collections::HashMap;

use proptest::prelude::*;

use pnw_core::{IndexPlacement, PnwConfig, PnwStore, UpdatePolicy};

#[derive(Debug, Clone)]
enum Op {
    Put(u64, Vec<u8>),
    Get(u64),
    Delete(u64),
    Retrain,
    Crash,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0u64..24, proptest::collection::vec(any::<u8>(), 8))
            .prop_map(|(k, v)| Op::Put(k, v)),
        3 => (0u64..24).prop_map(Op::Get),
        2 => (0u64..24).prop_map(Op::Delete),
        1 => Just(Op::Retrain),
        1 => Just(Op::Crash),
    ]
}

fn check_against_model(
    ops: Vec<Op>,
    placement: IndexPlacement,
    policy: UpdatePolicy,
) -> Result<(), TestCaseError> {
    let store = PnwStore::new(
        PnwConfig::new(32, 8)
            .with_clusters(3)
            .with_seed(17)
            .with_index(placement)
            .with_update_policy(policy),
    );
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();

    for op in ops {
        match op {
            Op::Put(k, v) => {
                store.put(k, &v).expect("capacity 32 > key space 24");
                model.insert(k, v);
            }
            Op::Get(k) => {
                let got = store.get(k).expect("device ok");
                prop_assert_eq!(got.as_ref(), model.get(&k), "get({})", k);
            }
            Op::Delete(k) => {
                let existed = store.delete(k).expect("device ok");
                prop_assert_eq!(existed, model.remove(&k).is_some(), "delete({})", k);
            }
            Op::Retrain => {
                store.retrain_now().expect("train");
            }
            Op::Crash => {
                store.crash_and_recover().expect("recovery");
            }
        }
        prop_assert_eq!(store.len(), model.len());
    }
    // Final audit.
    for (k, v) in &model {
        let got = store.get(*k).expect("ok");
        prop_assert_eq!(got.as_ref(), Some(v));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The store behaves exactly like a hash map, under every combination
    /// of index placement and update policy, with retraining and crashes
    /// interleaved arbitrarily.
    #[test]
    fn store_matches_hashmap_dram_deleteput(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        check_against_model(ops, IndexPlacement::Dram, UpdatePolicy::DeletePut)?;
    }

    #[test]
    fn store_matches_hashmap_dram_inplace(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        check_against_model(ops, IndexPlacement::Dram, UpdatePolicy::InPlace)?;
    }

    #[test]
    fn store_matches_hashmap_nvm_index(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        check_against_model(ops, IndexPlacement::Nvm, UpdatePolicy::DeletePut)?;
    }

    /// Device-level conservation: differential flips never exceed the
    /// payload size and stored bytes always equal the last write.
    #[test]
    fn device_diff_write_conservation(
        writes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 32), 1..20)
    ) {
        use pnw_nvm_sim::{NvmConfig, NvmDevice, WriteMode};
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        for v in &writes {
            let s = dev.write(64, v, WriteMode::Diff).expect("in range");
            prop_assert!(s.bit_flips <= 32 * 8);
            prop_assert!(s.words_written <= 4);
            prop_assert!(s.lines_written <= 2);
            prop_assert_eq!(dev.peek(64, 32).expect("ok"), &v[..]);
        }
    }

    /// Pool conservation: pops + frees always account for every bucket.
    #[test]
    fn pool_conserves_buckets(ops in proptest::collection::vec(any::<u8>(), 1..200)) {
        use pnw_core::DynamicAddressPool;
        let mut pool = DynamicAddressPool::new(4, 64);
        for b in 0..64u32 {
            pool.push((b % 4) as usize, b);
        }
        let mut held: Vec<u32> = Vec::new();
        for op in ops {
            if op % 2 == 0 {
                if let Some((b, _)) = pool.pop((op % 4) as usize, || [0, 1, 2, 3]) {
                    prop_assert!(!held.contains(&b), "bucket {} double-allocated", b);
                    held.push(b);
                }
            } else if let Some(b) = held.pop() {
                pool.push((op % 4) as usize, b);
            }
            prop_assert_eq!(pool.free() + held.len(), 64);
        }
    }
}
