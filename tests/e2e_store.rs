//! End-to-end integration: real workloads through the full PNW stack.

use std::collections::HashMap;

use pnw_core::{IndexPlacement, PnwConfig, PnwStore, RetrainMode, UpdatePolicy};
use pnw_workloads::{DatasetKind, Workload};

/// Every dataset round-trips through the store: what you put is what you
/// get, across training, steering and deletes.
#[test]
fn every_dataset_roundtrips() {
    for kind in DatasetKind::all() {
        let mut w = kind.build(11);
        let vs = w.value_size();
        let store = PnwStore::new(PnwConfig::new(64, vs).with_clusters(4));
        let mut model = HashMap::new();

        for key in 0..32u64 {
            let v = w.next_value();
            store.put(key, &v).unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            model.insert(key, v);
        }
        store.retrain_now().expect("train");
        // Overwrite half (exercises delete-then-put steering).
        for key in 0..16u64 {
            let v = w.next_value();
            store.put(key, &v).expect("update");
            model.insert(key, v);
        }
        for (key, v) in &model {
            assert_eq!(
                store.get(*key).expect("device ok").as_ref(),
                Some(v),
                "{kind:?} key {key}"
            );
        }
        assert_eq!(store.len(), model.len());
    }
}

/// Trained steering must beat untrained placement on a clusterable stream.
#[test]
fn training_reduces_bit_flips_on_clusterable_data() {
    let measure = |train: bool| -> f64 {
        let mut w = DatasetKind::Normal.build(5);
        let store = PnwStore::new(PnwConfig::new(1024, 4).with_clusters(12).with_seed(3));
        store.prefill_free_buckets(|| w.next_value()).expect("prefill");
        if train {
            store.retrain_now().expect("train");
        }
        store.reset_device_stats();
        let mut flips = 0u64;
        let mut bits = 0u64;
        for i in 0..1024u64 {
            let v = w.next_value();
            let r = store.put(i, &v).expect("room");
            flips += r.value_write.total_bit_flips();
            bits += r.value_write.bits_addressed;
            store.delete(i).expect("present");
        }
        flips as f64 * 512.0 / bits as f64
    };
    let untrained = measure(false);
    let trained = measure(true);
    // The gain is capped by the value distribution's entropy: normal u32
    // values share only their high-order bits (the low ~24 bits are noise),
    // so steering can save at most ~25% of flips here. Require a clear,
    // repeatable slice of that.
    assert!(
        trained < untrained * 0.9,
        "trained {trained:.1} should clearly beat untrained {untrained:.1}"
    );
}

/// The two update policies agree on semantics (only placement differs).
#[test]
fn update_policies_agree_on_contents() {
    let mut w = DatasetKind::Road.build(9);
    let vs = w.value_size();
    let mut stores = [
        PnwStore::new(
            PnwConfig::new(128, vs)
                .with_clusters(4)
                .with_update_policy(UpdatePolicy::DeletePut),
        ),
        PnwStore::new(
            PnwConfig::new(128, vs)
                .with_clusters(4)
                .with_update_policy(UpdatePolicy::InPlace),
        ),
    ];
    let values: Vec<Vec<u8>> = (0..96).map(|_| w.next_value()).collect();
    for s in &mut stores {
        for (i, v) in values.iter().enumerate() {
            s.put((i % 32) as u64, v).expect("room"); // 3 versions per key
        }
    }
    for key in 0..32u64 {
        let expected = &values[64 + key as usize];
        assert_eq!(stores[0].get(key).unwrap().as_ref(), Some(expected));
        assert_eq!(stores[1].get(key).unwrap().as_ref(), Some(expected));
    }
    assert_eq!(stores[0].len(), 32);
    assert_eq!(stores[1].len(), 32);
}

/// NVM-index configuration works end-to-end and costs more NVM traffic
/// than the DRAM-index configuration, as §V-A.3 predicts.
#[test]
fn index_placement_cost_ordering() {
    let mut flips = Vec::new();
    for placement in [IndexPlacement::Dram, IndexPlacement::Nvm] {
        let mut w = DatasetKind::Normal.build(2);
        let s = PnwStore::new(
            PnwConfig::new(256, 4)
                .with_clusters(4)
                .with_index(placement),
        );
        for i in 0..128u64 {
            s.put(i, &w.next_value()).expect("room");
        }
        flips.push(s.device_stats().totals.total_bit_flips());
    }
    assert!(flips[1] > flips[0], "NVM index must add flips: {flips:?}");
}

/// Background retraining under load factor pressure, full stack.
#[test]
fn background_retraining_under_pressure() {
    let mut w = DatasetKind::Amazon.build(4);
    let vs = w.value_size();
    let store = PnwStore::new(
        PnwConfig::new(128, vs)
            .with_clusters(6)
            .with_load_factor(0.5)
            .with_retrain(RetrainMode::Background),
    );
    for i in 0..100u64 {
        store.put(i, &w.next_value()).expect("room");
    }
    store.wait_for_retrain();
    assert!(store.retrains() >= 1);
    // Store still serves correctly after the swap.
    let v = w.next_value();
    store.put(1000, &v).expect("room");
    assert_eq!(store.get(1000).unwrap().unwrap(), v);
}

/// GET-heavy workloads leave the data zone untouched. GETs go through the
/// lock-free `NvmDevice::peek` path (so concurrent readers never serialize
/// on the device) and therefore record no device read statistics either —
/// the store-level `gets` counter is where read traffic shows up.
#[test]
fn reads_cost_no_writes() {
    let store = PnwStore::new(PnwConfig::new(32, 8).with_clusters(2));
    store.put(1, &[0xAB; 8]).expect("room");
    let writes_before = store.device_stats().write_ops;
    let reads_before = store.device_stats().read_ops;
    for _ in 0..100 {
        store.get(1).expect("ok");
    }
    assert_eq!(store.device_stats().write_ops, writes_before);
    assert_eq!(store.device_stats().read_ops, reads_before);
    assert_eq!(store.snapshot().gets, 100);
}
