//! Equivalence of the packed bit-domain prediction kernel with the
//! reference float featurize-then-scan path, at the [`ModelManager`]
//! level: random trained models, the PCA-configured projector path, and
//! the post-retrain LUT-rebuild case.
//!
//! Exactness contract: distances agree within f32 ulp-level tolerance (the
//! two paths sum in different orders), and argmin/ranking agree whenever
//! the float path's distance margins exceed that tolerance — genuine
//! near-ties may resolve either way under reordered f32 summation, which
//! is as exact as f32 arithmetic admits.

use pnw::core_api::{ModelManager, PnwConfig, PredictScratch};
use pnw_ml::featurize::bits_to_features;
use pnw_ml::matrix::sq_dist;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Structured random values: a few byte-fill families plus random noise
/// bytes, so K-means finds real clusters (pure noise collapses them).
fn random_values(n: usize, bytes: usize, families: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let fill = ((i % families.max(1)) * 255 / families.max(1)) as u8;
            (0..bytes)
                .map(|b| if b % 3 == 2 { rng.gen() } else { fill })
                .collect()
        })
        .collect()
}

/// Distance tolerance scaled to the magnitude (both paths round f32).
fn tol(reference: f32) -> f32 {
    1e-3 * (1.0 + reference.abs())
}

/// Asserts packed and float paths agree on `values` for `m`: distances
/// within tolerance, argmin and ranking identical up to near-ties.
fn assert_equivalent(m: &ModelManager, values: &[Vec<u8>]) {
    let mut scratch = PredictScratch::new();
    for v in values {
        let packed_argmin = m.predict_into(v, &mut scratch);
        let packed_dist = scratch.distances().to_vec();
        let f = bits_to_features(v);
        let float_dist: Vec<f32> = (0..m.k())
            .map(|c| sq_dist(m.kmeans().centroid(c), &f))
            .collect();
        for (c, (&p, &fl)) in packed_dist.iter().zip(&float_dist).enumerate() {
            assert!(
                (p - fl).abs() <= tol(fl),
                "cluster {c}: packed {p} vs float {fl}"
            );
        }
        // Argmin agrees when the float margin is decisive.
        let float_argmin = m.kmeans().predict(&f);
        let mut sorted = float_dist.clone();
        sorted.sort_by(f32::total_cmp);
        let margin = if sorted.len() > 1 {
            sorted[1] - sorted[0]
        } else {
            f32::INFINITY
        };
        if margin > tol(sorted[0]) {
            assert_eq!(packed_argmin, float_argmin, "value {v:?}");
        }
        // The lazy ranking is a valid nearest-first order under the float
        // distances (within tolerance), starting at the packed argmin.
        let ranking = m.ranked_after_predict(&mut scratch);
        assert_eq!(ranking.len(), m.k());
        assert_eq!(ranking[0], packed_argmin);
        for w in ranking.windows(2) {
            assert!(
                float_dist[w[0]] <= float_dist[w[1]] + tol(float_dist[w[1]]),
                "ranking {ranking:?} not sorted under float distances {float_dist:?}"
            );
        }
    }
}

proptest! {
    /// Random small models: the packed kernel reproduces the float path's
    /// distances and ordering on trained managers.
    #[test]
    fn manager_packed_matches_float(
        seed in 0u64..500,
        value_bytes in 1usize..16,
        k in 1usize..6,
    ) {
        let cfg = PnwConfig::new(128, value_bytes).with_clusters(k).with_seed(seed);
        let mut m = ModelManager::new(&cfg);
        let values = random_values(48, value_bytes, k.max(2), seed);
        // Untrained (single zero centroid) first…
        assert_equivalent(&m, &values[..8]);
        // …then trained.
        m.train(&values);
        prop_assert!(m.uses_packed());
        assert_equivalent(&m, &values);
    }
}

/// PCA-configured models keep the sparse projector path, and the split
/// scratch prediction still matches the reference featurize + scan.
#[test]
fn pca_model_predicts_identically_through_scratch() {
    // 160 B = 1280 bits > the default 1024-bit PCA threshold.
    let cfg = PnwConfig::new(128, 160).with_clusters(3).with_seed(21);
    assert!(cfg.uses_pca());
    let mut m = ModelManager::new(&cfg);
    let values = random_values(60, 160, 3, 77);
    m.train(&values);
    assert!(
        !m.uses_packed(),
        "PCA space is not 0/1: the projector path must stay"
    );
    let mut scratch = PredictScratch::new();
    for v in &values {
        // In PCA space both paths scan the same float features, so the
        // prediction must be the argmin of the scratch distances exactly.
        let c = m.predict_into(v, &mut scratch);
        let best = scratch
            .distances()
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .unwrap()
            .0;
        assert_eq!(c, best);
        let ranked = m.ranked_after_predict(&mut scratch);
        assert_eq!(c, ranked[0]);
        assert_eq!(ranked.len(), m.k());
    }
}

/// Retraining swaps centroids; the packed LUTs must be rebuilt with them
/// (stale tables would keep predicting under the old geometry).
#[test]
fn retrain_rebuilds_luts_and_stays_equivalent() {
    let cfg = PnwConfig::new(256, 8).with_clusters(2).with_seed(5);
    let mut m = ModelManager::new(&cfg);
    let first = random_values(64, 8, 2, 1);
    m.train(&first);
    assert_equivalent(&m, &first);

    // Retrain on a shifted distribution (different families, different K
    // structure) — equivalence must hold against the *new* centroids.
    let second = random_values(64, 8, 4, 2);
    let cfg4 = PnwConfig::new(256, 8).with_clusters(4).with_seed(5);
    let mut m4 = ModelManager::new(&cfg4);
    m4.train(&first);
    m4.train(&second);
    assert_eq!(m4.retrains(), 2);
    assert!(m4.uses_packed());
    assert_equivalent(&m4, &second);
    assert_equivalent(&m4, &first);
}

/// Background training installs through the same `install` path, so the
/// swapped-in model must also rebuild its LUTs.
#[test]
fn background_install_rebuilds_luts() {
    let cfg = PnwConfig::new(256, 8).with_clusters(3).with_seed(9);
    let mut m = ModelManager::new(&cfg);
    let values = random_values(96, 8, 3, 3);
    m.train_in_background(values.clone());
    assert!(m.wait_for_background());
    assert!(m.uses_packed());
    assert_equivalent(&m, &values);
}
