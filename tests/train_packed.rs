//! Equivalence of the packed bit-domain *training* pipeline with the float
//! reference at the public-API level, plus the reservoir-sampling contract
//! of `train_sample_cap`.
//!
//! Exactness contract (mirroring `tests/predict_packed.rs` for the predict
//! side): k-means++ seeding is *identical* — sample-to-sample distances on
//! 0/1 data are exact integers in both representations, so both paths draw
//! the same centers from the same RNG stream — and the fitted centroids
//! agree to f32 tolerance on family-structured data whose margins are
//! decisive (genuine near-ties may cascade differently under reordered f32
//! summation, which is as exact as f32 admits).

use pnw::core_api::model::reservoir_sample;
use pnw::core_api::{ModelManager, PnwConfig, PnwStore};
use pnw_ml::featurize::featurize_values;
use pnw_ml::kmeans::{KMeans, KMeansConfig};
use pnw_ml::minibatch::MiniBatchKMeans;
use pnw_ml::packedmatrix::PackedMatrix;
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Byte-fill families with one random tail byte: decisive cluster margins.
fn family_values(n: usize, bytes: usize, families: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let fill = ((i % families) * 255 / families) as u8;
            (0..bytes)
                .map(|b| if b == bytes - 1 { rng.gen() } else { fill })
                .collect()
        })
        .collect()
}

proptest! {
    /// `ModelManager::train` (which now fits on the packed representation
    /// for raw bit-feature models) reproduces the old float pipeline's
    /// model: same K, tolerance-level centroids, same labeling.
    #[test]
    fn manager_training_matches_float_reference(
        seed in 0u64..200,
        value_bytes in 2usize..12,
        families in 2usize..5,
    ) {
        let cfg = PnwConfig::new(256, value_bytes)
            .with_clusters(families)
            .with_seed(seed);
        let values = family_values(64, value_bytes, families, seed ^ 0x5EED);
        let mut m = ModelManager::new(&cfg);
        m.train(&values);
        prop_assert!(m.uses_packed());

        // The float reference: exactly what the manager ran before this PR
        // (featurize + dense Lloyd, same seed / threads / iteration cap).
        let floats = featurize_values(&values);
        let float = KMeans::fit(
            &floats,
            &KMeansConfig::new(cfg.clusters)
                .with_seed(cfg.seed)
                .with_threads(cfg.train_threads)
                .with_max_iters(cfg.train_iters),
        );
        prop_assert_eq!(m.k(), float.k());
        prop_assert_eq!(m.kmeans().labels(&floats), float.labels(&floats));
        for c in 0..float.k() {
            for (p, f) in m.kmeans().centroid(c).iter().zip(float.centroid(c)) {
                prop_assert!((p - f).abs() <= 1e-4, "centroid {}: {} vs {}", c, p, f);
            }
        }
    }

    /// Warm-start mini-batch: packed and float paths stream the same
    /// batches from the same seed and land on the same centroids.
    #[test]
    fn warm_start_minibatch_matches_float_reference(
        seed in 0u64..100,
        value_bytes in 2usize..10,
    ) {
        let values = family_values(160, value_bytes, 2, seed);
        let floats = featurize_values(&values);
        let warm = KMeans::fit(&floats, &KMeansConfig::new(2).with_seed(seed));
        let trainer = MiniBatchKMeans::new(2)
            .with_batch_size(32)
            .with_steps(15)
            .with_seed(seed ^ 0xB00);
        let packed = trainer.fit_set(&PackedMatrix::from_values(&values), Some(&warm));
        let float = trainer.fit(&floats, Some(&warm));
        prop_assert_eq!(packed.k(), float.k());
        for c in 0..float.k() {
            for (p, f) in packed.centroid(c).iter().zip(float.centroid(c)) {
                prop_assert!((p - f).abs() <= 1e-4, "centroid {}: {} vs {}", c, p, f);
            }
        }
    }

    /// Reservoir sampling is deterministic, exact-capped, sorted, unique
    /// and in-range for arbitrary (n, cap, seed).
    #[test]
    fn reservoir_contract(n in 0usize..2000, cap in 1usize..300, seed in 0u64..1000) {
        let a = reservoir_sample(n, cap, seed);
        prop_assert_eq!(&a, &reservoir_sample(n, cap, seed));
        prop_assert_eq!(a.len(), n.min(cap));
        prop_assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted + unique");
        prop_assert!(a.iter().all(|&i| i < n));
        if n <= cap {
            let identity: Vec<usize> = (0..n).collect();
            prop_assert_eq!(a, identity);
        }
    }
}

/// Store-level cap enforcement: a store with a tiny `train_sample_cap`
/// trains on exactly that many samples, reports both counts, and stays
/// deterministic.
#[test]
fn store_reservoir_cap_is_enforced_and_deterministic() {
    let cfg = PnwConfig::new(128, 8)
        .with_clusters(2)
        .with_seed(9)
        .with_train_sample_cap(16);
    let run = || {
        let s = PnwStore::new(cfg.clone());
        for k in 0..96u64 {
            let fill = if k % 2 == 0 { 0x00u8 } else { 0xFF };
            s.put(k, &[fill; 8]).unwrap();
        }
        s.retrain_now().unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.train.samples_pre_cap, 128, "full data-zone snapshot");
        assert_eq!(snap.train.samples_post_cap, 16, "reservoir cap");
        assert_eq!(snap.train.epoch, 1);
        assert!(snap.train.last_train_wall.as_nanos() > 0);
        s.model_snapshot().kmeans().centroids().clone()
    };
    assert_eq!(run(), run(), "capped training must be reproducible");
}

/// Uncapped stores report pre == post (the cap is the identity there).
#[test]
fn uncapped_store_reports_identity_counts() {
    let s = PnwStore::new(PnwConfig::new(32, 8).with_clusters(2));
    for k in 0..24u64 {
        s.put(k, &k.to_le_bytes()).unwrap();
    }
    s.retrain_now().unwrap();
    let snap = s.snapshot();
    assert_eq!(snap.train.samples_pre_cap, 32);
    assert_eq!(snap.train.samples_post_cap, 32);
}
