//! Workspace-level tests for the sharded concurrent store: model-based
//! multi-threaded stress, single-shard equivalence with [`PnwStore`], and
//! bit-flip conservation across shards.

use std::collections::HashMap;
use std::sync::Arc;

use pnw::core_api::{PnwConfig, PnwStore, RetrainMode, ShardedPnwStore};
use pnw_nvm_sim::DeviceStats;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One step of the seeded reference workload.
enum Op {
    Put(u64, [u8; 16]),
    Get(u64),
    Delete(u64),
    Retrain,
}

/// Drives a seeded workload of puts, overwrites, gets, deletes and
/// retrains through one applier closure, so the single-threaded and
/// sharded stores see byte-identical operation sequences.
fn drive(mut apply: impl FnMut(Op)) {
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    // Warm with two bit-pattern families, train, then churn.
    for k in 0..96u64 {
        let fill = if k % 2 == 0 { 0x00 } else { 0xFF };
        apply(Op::Put(k, [fill; 16]));
    }
    apply(Op::Retrain);
    for _ in 0..400 {
        let k = rng.gen_range(0..128u64);
        match rng.gen_range(0..10u8) {
            0..=5 => {
                let mut v = [if k % 2 == 0 { 0x00u8 } else { 0xFFu8 }; 16];
                v[15] = rng.gen();
                apply(Op::Put(k, v));
            }
            6..=7 => apply(Op::Get(k)),
            _ => apply(Op::Delete(k)),
        }
    }
}

/// The acceptance criterion: `shards = 1` reproduces the single-threaded
/// store's device accounting bit-for-bit on the same seeded workload.
#[test]
fn single_shard_matches_pnw_store_exactly() {
    let cfg = PnwConfig::new(256, 16)
        .with_clusters(3)
        .with_seed(99)
        .with_load_factor(0.6)
        .with_retrain(RetrainMode::OnLoadFactor);

    let single = PnwStore::new(cfg.clone());
    drive(|op| match op {
        Op::Put(k, v) => {
            let _ = single.put(k, &v);
        }
        Op::Get(k) => {
            let _ = single.get(k).unwrap();
        }
        Op::Delete(k) => {
            let _ = single.delete(k).unwrap();
        }
        Op::Retrain => {
            single.retrain_now().unwrap();
        }
    });

    let sharded = ShardedPnwStore::new(cfg.with_shards(1));
    drive(|op| match op {
        Op::Put(k, v) => {
            let _ = sharded.put(k, &v);
        }
        Op::Get(k) => {
            let _ = sharded.get(k).unwrap();
        }
        Op::Delete(k) => {
            let _ = sharded.delete(k).unwrap();
        }
        Op::Retrain => {
            sharded.retrain_now().unwrap();
        }
    });

    // Identical bit flips, words written, lines written, ops — the whole
    // DeviceStats struct.
    assert_eq!(single.device_stats(), sharded.device_stats());
    assert_eq!(single.len(), sharded.len());
    for k in 0..128u64 {
        assert_eq!(single.get(k).unwrap(), sharded.get(k).unwrap(), "key {k}");
    }
    let (s1, s2) = (single.snapshot(), sharded.snapshot());
    assert_eq!(s1.puts, s2.puts);
    assert_eq!(s1.deletes, s2.deletes);
    assert_eq!(s1.free, s2.free);
    assert_eq!(s1.fallbacks, s2.fallbacks);
    assert_eq!(s1.retrains, s2.retrains);
}

/// Multi-threaded stress against a `HashMap` reference model: each thread
/// owns a disjoint key range (so the model needs no cross-thread locking)
/// and random-walks puts/overwrites/gets/deletes; afterwards the store
/// must agree with the union of the per-thread models.
#[test]
fn concurrent_stress_matches_hashmap_model() {
    const THREADS: u64 = 4;
    const KEYS_PER_THREAD: u64 = 64;
    const OPS: usize = 600;

    let store = Arc::new(ShardedPnwStore::new(
        PnwConfig::new(1024, 8)
            .with_clusters(2)
            .with_shards(4)
            .with_load_factor(0.8)
            .with_retrain(RetrainMode::Background),
    ));

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
            let mut rng = StdRng::seed_from_u64(0xACE0 + t);
            let lo = t * KEYS_PER_THREAD;
            for _ in 0..OPS {
                let key = lo + rng.gen_range(0..KEYS_PER_THREAD);
                match rng.gen_range(0..10u8) {
                    0..=5 => {
                        let v: Vec<u8> = (0..8).map(|_| rng.gen()).collect();
                        store.put(key, &v).expect("capacity is ample");
                        model.insert(key, v);
                    }
                    6..=7 => {
                        assert_eq!(
                            store.get(key).expect("get ok"),
                            model.get(&key).cloned(),
                            "key {key} diverged mid-run"
                        );
                    }
                    _ => {
                        let existed = store.delete(key).expect("delete ok");
                        assert_eq!(existed, model.remove(&key).is_some(), "key {key}");
                    }
                }
            }
            model
        }));
    }

    let mut combined: HashMap<u64, Vec<u8>> = HashMap::new();
    for h in handles {
        combined.extend(h.join().expect("stress thread"));
    }

    assert_eq!(store.len(), combined.len());
    for t in 0..THREADS {
        for key in t * KEYS_PER_THREAD..(t + 1) * KEYS_PER_THREAD {
            assert_eq!(
                store.get(key).expect("get ok"),
                combined.get(&key).cloned(),
                "key {key} diverged after join"
            );
        }
    }
}

/// Bit-flip conservation: the merged cross-shard statistics are exactly
/// the sum of the per-shard deltas over any measurement window — no
/// traffic is lost or double counted by the merge.
#[test]
fn bit_flips_are_conserved_across_shards() {
    let store = ShardedPnwStore::new(PnwConfig::new(512, 16).with_clusters(2).with_shards(8));

    // Warm-up window, then reset and measure a churn window.
    for k in 0..200u64 {
        store.put(k, &[k as u8; 16]).unwrap();
    }
    let warm_parts = store.per_shard_device_stats();
    store.reset_device_stats();

    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..300 {
        let k = rng.gen_range(0..256u64);
        if rng.gen_bool(0.7) {
            let v: Vec<u8> = (0..16).map(|_| rng.gen()).collect();
            store.put(k, &v).unwrap();
        } else {
            let _ = store.delete(k).unwrap();
        }
    }

    let parts = store.per_shard_device_stats();
    let merged = store.device_stats();
    assert_eq!(merged, DeviceStats::merged(parts.iter()));
    assert_eq!(
        merged.totals.bit_flips,
        parts.iter().map(|p| p.totals.bit_flips).sum::<u64>()
    );
    assert_eq!(
        merged.totals.lines_written,
        parts.iter().map(|p| p.totals.lines_written).sum::<u64>()
    );
    assert_eq!(
        merged.write_ops,
        parts.iter().map(|p| p.write_ops).sum::<u64>()
    );
    // The reset cleared the warm-up traffic from every shard.
    assert!(warm_parts.iter().any(|p| p.totals.bit_flips > 0));
    assert!(merged.totals.bit_flips > 0);
    // Traffic really is spread over multiple shards.
    let active = parts.iter().filter(|p| p.write_ops > 0).count();
    assert!(active >= 2, "only {active} shards saw traffic");
}

/// Torn-model regression: readers and writers run while the model is
/// retrained and swapped over and over (with `auto_k`, so the cluster
/// count itself changes across epochs). Every shard swaps its snapshot
/// `Arc` and relabels its pool together under the shard lock, so no
/// operation may ever observe a half-installed model: every GET must
/// return exactly what was last PUT, every PUT must keep succeeding, and
/// the epoch must advance monotonically.
#[test]
fn readers_never_observe_a_torn_model_across_epoch_swaps() {
    use std::sync::atomic::{AtomicBool, Ordering};

    const THREADS: u64 = 4;
    const KEYS_PER_THREAD: u64 = 48;

    let store = Arc::new(ShardedPnwStore::new(
        PnwConfig::new(1024, 8)
            .with_shards(4)
            .with_auto_k(1, 6)
            .with_seed(3)
            .with_train_sample_cap(256),
    ));
    let stop = Arc::new(AtomicBool::new(false));

    let mut handles = Vec::new();
    for t in 0..THREADS {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xEB0C + t);
            let lo = t * KEYS_PER_THREAD;
            let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
            let mut ops = 0u64;
            while !stop.load(Ordering::Relaxed) || ops < 200 {
                ops += 1;
                let key = lo + rng.gen_range(0..KEYS_PER_THREAD);
                if rng.gen_bool(0.6) {
                    let v: Vec<u8> = (0..8).map(|_| rng.gen()).collect();
                    store.put(key, &v).expect("capacity is ample");
                    model.insert(key, v);
                } else {
                    assert_eq!(
                        store.get(key).expect("get ok"),
                        model.get(&key).cloned(),
                        "key {key} diverged mid-swap"
                    );
                }
            }
            model
        }));
    }

    // Main thread: force a stream of model swaps under live traffic, with
    // shifting value families so the elbow can move K between epochs.
    let mut last_epoch = 0;
    for round in 0..8u64 {
        for k in 0..64u64 {
            let fill = match (k + round) % 3 {
                0 => 0x00u8,
                1 => 0xFF,
                _ => 0x0F,
            };
            store.put(100_000 + k, &[fill; 8]).unwrap();
        }
        store.retrain_now().unwrap();
        let epoch = store.model_epoch();
        assert!(epoch > last_epoch, "epoch must advance: {last_epoch} -> {epoch}");
        last_epoch = epoch;
    }
    stop.store(true, Ordering::Relaxed);

    let mut combined: HashMap<u64, Vec<u8>> = HashMap::new();
    for h in handles {
        combined.extend(h.join().expect("worker survived every swap"));
    }
    // Post-join: the store agrees with the union of the reference models.
    for (key, v) in &combined {
        assert_eq!(store.get(*key).unwrap().as_ref(), Some(v), "key {key}");
    }
    assert!(store.retrains() >= 8);
    let snap = store.snapshot();
    assert_eq!(snap.train.epoch, store.model_epoch());
    assert_eq!(snap.train.samples_post_cap, 256, "reservoir cap enforced");
    assert!(snap.train.samples_pre_cap >= snap.train.samples_post_cap);
}

/// Concurrent readers share one shard lock in read mode and see a frozen
/// value while writers on *other* shards proceed.
#[test]
fn readers_scale_while_writers_run_elsewhere() {
    let store = Arc::new(ShardedPnwStore::new(
        PnwConfig::new(512, 8).with_clusters(2).with_shards(4),
    ));
    store.put(1, &[0x42; 8]).unwrap();

    let mut handles = Vec::new();
    for t in 0..3 {
        let store = Arc::clone(&store);
        handles.push(std::thread::spawn(move || {
            for i in 0..200u64 {
                // Reader threads hammer key 1; one writer thread churns a
                // disjoint range.
                if t == 0 {
                    store.put(1000 + i, &[i as u8; 8]).unwrap();
                } else {
                    assert_eq!(store.get(1).unwrap().unwrap(), vec![0x42; 8]);
                }
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(store.get(1).unwrap().unwrap(), vec![0x42; 8]);
    assert_eq!(store.len(), 201);
}
