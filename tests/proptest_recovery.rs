//! Property-based crash-consistency: random operation sequences with a
//! crash armed at a random write, then a reopen that must be
//! *prefix-consistent* — every acknowledged operation survives, no
//! unacknowledged operation does.
//!
//! Two levels:
//!
//! * **Store level** — a durable [`PnwStore`] runs random put / update /
//!   delete traffic; at a random point either a metadata tear (mid-WAL
//!   record) or a data-zone torn write is armed. The reference model
//!   records exactly the acknowledged ops; the reopened store must match
//!   it key-for-key, bit-for-bit.
//! * **Device level** — a file-backed [`NvmDevice`] takes word-aligned
//!   writes in both [`WriteMode`]s with a torn write armed at a random
//!   index; the reopened device's cells must equal the shadow image in
//!   which the torn write applied only its persisted word prefix.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use pnw_core::{IndexPlacement, MetaTarget, MetaTear, PnwConfig, PnwStore};
use pnw_nvm_sim::{DeviceBacking, NvmConfig, NvmDevice, WriteMode};

/// A unique scratch directory per proptest case (cases share one process).
fn case_dir(prefix: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "pnw_prop_{prefix}_{}_{n}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&dir);
    dir
}

#[derive(Debug, Clone)]
enum Op {
    Put(u64, Vec<u8>),
    Delete(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..16, proptest::collection::vec(any::<u8>(), 8))
            .prop_map(|(k, v)| Op::Put(k, v)),
        1 => (0u64..16).prop_map(Op::Delete),
    ]
}

#[derive(Debug, Clone, Copy)]
enum Crash {
    /// Tear the WAL frame of the `skip`-th metadata append from the armed
    /// point, keeping `keep` bytes of it.
    Wal { skip: u64, keep: usize },
    /// Tear the next data-zone (or NVM-index) device write after `words`
    /// persisted words.
    Data { words: usize },
}

fn crash_strategy() -> impl Strategy<Value = Crash> {
    prop_oneof![
        (0u64..3, 0usize..8).prop_map(|(skip, keep)| Crash::Wal { skip, keep }),
        (0usize..3).prop_map(|words| Crash::Data { words }),
    ]
}

fn run_store_case(
    ops: Vec<Op>,
    crash_at: usize,
    crash: Crash,
    placement: IndexPlacement,
) -> Result<(), TestCaseError> {
    let dir = case_dir("store");
    let cfg = PnwConfig::new(32, 8)
        .with_clusters(2)
        .with_seed(17)
        .with_index(placement)
        .with_path(&dir);

    let store = PnwStore::open(cfg.clone()).expect("fresh open");
    // The model mirrors *acknowledged* ops only: once the crash fires,
    // operations fail and the model freezes with them.
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    for (i, op) in ops.iter().enumerate() {
        if i == crash_at {
            match crash {
                Crash::Wal { skip, keep } => store.arm_meta_tear(MetaTear {
                    target: MetaTarget::Wal,
                    skip,
                    keep_bytes: keep,
                }),
                Crash::Data { words } => store.arm_torn_write(words),
            }
        }
        match op {
            Op::Put(k, v) => {
                if store.put(*k, v).is_ok() {
                    model.insert(*k, v.clone());
                }
            }
            Op::Delete(k) => {
                match store.delete(*k) {
                    // Only an acknowledged "existed and removed" is a
                    // committed mutation; `Ok(false)` mutates nothing.
                    Ok(true) => {
                        model.remove(k);
                    }
                    Ok(false) => {
                        // Before the crash is armed the store and model
                        // must agree on presence. After it, a failed
                        // delete-put update may have dropped the key from
                        // the in-process index even though recovery will
                        // serve the committed old value — the in-process
                        // view of a dying store is allowed to diverge.
                        if i < crash_at {
                            prop_assert!(!model.contains_key(k));
                        }
                    }
                    Err(_) => {}
                }
            }
        }
    }
    drop(store);

    let store = PnwStore::open(cfg).expect("reopen after crash");
    prop_assert_eq!(store.len(), model.len(), "live count after reopen");
    for key in 0..16u64 {
        let got = store.get(key).expect("reopened device serves reads");
        prop_assert_eq!(got.as_ref(), model.get(&key), "key {}", key);
    }
    drop(store);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// DRAM-index durable store: reopen after a random crash serves
    /// exactly the acknowledged prefix.
    #[test]
    fn crashed_store_reopens_prefix_consistent_dram(
        ops in proptest::collection::vec(op_strategy(), 1..30),
        crash_at in 0usize..30,
        crash in crash_strategy(),
    ) {
        run_store_case(ops, crash_at, crash, IndexPlacement::Dram)?;
    }

    /// NVM Path-Hashing index: the torn index region is rebuilt from the
    /// committed set at reopen.
    #[test]
    fn crashed_store_reopens_prefix_consistent_nvm(
        ops in proptest::collection::vec(op_strategy(), 1..30),
        crash_at in 0usize..30,
        crash in crash_strategy(),
    ) {
        run_store_case(ops, crash_at, crash, IndexPlacement::Nvm)?;
    }

    /// File-backed device, both write modes, torn write at a random index:
    /// the reopened cell array equals the shadow image where the torn
    /// write contributed only its persisted word prefix.
    #[test]
    fn torn_device_file_holds_exact_prefix(
        writes in proptest::collection::vec(
            (0usize..28, proptest::collection::vec(any::<u8>(), 32), any::<bool>()),
            1..16,
        ),
        tear_at in 0usize..16,
        tear_words in 0usize..4,
    ) {
        let path = case_dir("dev");
        let cfg = NvmConfig::default()
            .with_size(256)
            .with_backing(DeviceBacking::File(path.clone()));
        let mut shadow = vec![0u8; 256];
        {
            let mut dev = NvmDevice::open(cfg.clone()).expect("fresh device");
            for (i, (word, payload, raw)) in writes.iter().enumerate() {
                let mode = if *raw { WriteMode::Raw } else { WriteMode::Diff };
                let offset = word * 8;
                if i == tear_at {
                    dev.arm_torn_write(tear_words);
                    // A torn write reports the persisted prefix as Ok and
                    // leaves the device crashed.
                    dev.write(offset, payload, mode).expect("torn write reports prefix");
                    prop_assert!(dev.is_crashed());
                    let kept = tear_words * 8;
                    shadow[offset..offset + kept].copy_from_slice(&payload[..kept]);
                    break;
                }
                dev.write(offset, payload, mode).expect("in range");
                shadow[offset..offset + 32].copy_from_slice(payload);
            }
            if writes.len() > tear_at {
                // Everything after the tear fails: nothing else may reach
                // the backing file.
                prop_assert!(dev.write(0, &[0u8; 8], WriteMode::Raw).is_err());
            }
        }
        let dev = NvmDevice::open(cfg).expect("reopen from file");
        prop_assert_eq!(dev.peek(0, 256).expect("peek"), &shadow[..]);
        drop(dev);
        let _ = std::fs::remove_file(&path);
    }
}
