//! Property tests: every baseline K/V store behaves exactly like a hash
//! map under arbitrary operation sequences — the same harness the PNW
//! store is held to in `proptest_store.rs`.

use std::collections::HashMap;

use proptest::prelude::*;

use pnw_baselines::{FpTreeLike, NoveLsmLike, PathHashStore, Store};

#[derive(Debug, Clone)]
enum Op {
    Put(u64, u8),
    Get(u64),
    Delete(u64),
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            4 => (0u64..20, any::<u8>()).prop_map(|(k, b)| Op::Put(k, b)),
            3 => (0u64..20).prop_map(Op::Get),
            2 => (0u64..20).prop_map(Op::Delete),
        ],
        1..80,
    )
}

fn value_of(b: u8) -> Vec<u8> {
    vec![b; 16]
}

fn check(store: &dyn Store, ops: Vec<Op>) -> Result<(), TestCaseError> {
    let mut model: HashMap<u64, u8> = HashMap::new();
    for op in ops {
        match op {
            Op::Put(k, b) => {
                store.put(k, &value_of(b)).expect("capacity exceeds key space");
                model.insert(k, b);
            }
            Op::Get(k) => {
                let got = store.get(k).expect("device ok");
                let want = model.get(&k).map(|&b| value_of(b));
                prop_assert_eq!(got, want, "get({})", k);
            }
            Op::Delete(k) => {
                let existed = store.delete(k).expect("device ok");
                prop_assert_eq!(existed, model.remove(&k).is_some(), "delete({})", k);
            }
        }
        prop_assert_eq!(store.len(), model.len());
    }
    for (k, b) in &model {
        let got = store.get(*k).expect("device ok");
        prop_assert_eq!(got, Some(value_of(*b)));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn fptree_matches_hashmap(ops in ops()) {
        check(&FpTreeLike::new(64, 16), ops)?;
    }

    #[test]
    fn novelsm_matches_hashmap(ops in ops()) {
        check(&NoveLsmLike::new(64, 16), ops)?;
    }

    #[test]
    fn path_store_matches_hashmap(ops in ops()) {
        check(&PathHashStore::new(64, 16), ops)?;
    }
}

/// The Figure 9 ordering holds as a *property* across seeds, not just at
/// one measured point: PNW and Path hashing write fewer lines per request
/// than the B+-tree and the LSM.
#[test]
fn figure9_ordering_is_stable_across_seeds() {
    use pnw_workloads::{DatasetKind, Workload};
    for seed in [1u64, 7, 42] {
        let mut w = DatasetKind::Normal.build(seed);
        let vs = w.value_size();
        let n = 512;
        let values = w.take_values(n);

        let mut lines = Vec::new();
        let stores: Vec<Box<dyn Store>> = vec![
            Box::new(FpTreeLike::new(n * 2, vs)),
            Box::new(PathHashStore::new(n * 2, vs)),
        ];
        for s in &stores {
            for (i, v) in values.iter().enumerate() {
                s.put(i as u64, v).expect("room");
            }
            lines.push(s.device_stats().totals.lines_written as f64 / n as f64);
        }
        assert!(
            lines[0] > lines[1],
            "seed {seed}: FPTree ({}) must write more lines than path hashing ({})",
            lines[0],
            lines[1]
        );
    }
}
