//! # pnw-baselines — the persistent K/V stores PNW is compared against
//!
//! Figure 9 of the paper compares PNW's written-cache-lines-per-request
//! against three recent NVM stores, each reimplemented here over the same
//! emulated device so the accounting is identical:
//!
//! * [`FpTreeLike`] — FPTree (Oukid et al., SIGMOD 2016): a hybrid
//!   SCM-DRAM B+-tree. Inner nodes live in DRAM; leaves live in NVM with a
//!   slot bitmap and per-slot fingerprints. Leaf splits rewrite half a
//!   leaf's entries — the write-amplification mechanism that makes FPTree
//!   the most line-hungry store in Figure 9.
//! * [`NoveLsmLike`] — NoveLSM (Kannan et al., ATC 2018): an LSM with a
//!   DRAM memtable flushed into sorted NVM runs, compacted into a larger
//!   level. Flush + compaction rewrite entries wholesale.
//! * [`PathHashStore`] — a K/V store over Path Hashing (Zuo & Hua): the
//!   closest competitor in Figure 9; writes little, but is *"not
//!   memory-aware"* — values land wherever the free list points, so its
//!   data-zone writes can't exploit similarity.
//!
//! All three implement the first-class [`Store`] trait from `pnw-core` —
//! the same trait [`PnwStore`](pnw_core::PnwStore) and
//! [`ShardedPnwStore`](pnw_core::ShardedPnwStore) implement — so the
//! Figure 9 harness and the generic throughput harness drive all five
//! backends uniformly, per-op or via [`Store::apply`] batches, with no
//! adapter in between. Reads take `&self` (shared store lock +
//! [`pnw_nvm_sim::NvmDevice::peek`]), so the baselines can be driven
//! concurrently behind an `Arc<dyn Store>` exactly like the PNW stores.

#![warn(missing_docs)]

pub mod fptree;
pub mod lsm;
pub mod path_store;

pub use fptree::FpTreeLike;
pub use lsm::NoveLsmLike;
pub use path_store::PathHashStore;
pub use pnw_core::{Batch, BatchReport, Op, Store, StoreError};

use pnw_core::{OpReport, StoreSnapshot, TrainStats};
use pnw_nvm_sim::{DeviceStats, NvmDevice};

/// Checks a value's size against the bucket size.
pub(crate) fn check_size(expected: usize, value: &[u8]) -> Result<(), StoreError> {
    if value.len() != expected {
        Err(StoreError::WrongValueSize {
            expected,
            got: value.len(),
        })
    } else {
        Ok(())
    }
}

/// Builds a PUT's [`OpReport`] from the device-stats delta since `before`.
/// Baselines have no prediction path, so `predict` stays zero and the
/// value/total write stats coincide.
pub(crate) fn report_since(dev: &NvmDevice, before: &DeviceStats) -> OpReport {
    let total = dev.stats().since(before).totals;
    OpReport {
        cluster: 0,
        fallback: false,
        predict: std::time::Duration::ZERO,
        value_write: total,
        total_write: total,
        modeled_latency: dev.modeled_write_cost(&total),
    }
}

/// Fills a [`StoreSnapshot`] for a model-free baseline: live/capacity and
/// op counters are real, the model/training fields sit at their defaults.
pub(crate) fn baseline_snapshot(
    live: usize,
    capacity: usize,
    device: DeviceStats,
    puts: u64,
    gets: u64,
    deletes: u64,
) -> StoreSnapshot {
    StoreSnapshot {
        live,
        free: capacity.saturating_sub(live),
        capacity,
        k: 0,
        retrains: 0,
        train: TrainStats::default(),
        fallbacks: 0,
        device,
        predict_total: std::time::Duration::ZERO,
        puts,
        gets,
        deletes,
        scrub: pnw_core::ScrubStats::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn backends(capacity: usize, value_size: usize) -> Vec<Arc<dyn Store>> {
        vec![
            Arc::new(FpTreeLike::new(capacity, value_size)),
            Arc::new(NoveLsmLike::new(capacity, value_size)),
            Arc::new(PathHashStore::new(capacity, value_size)),
        ]
    }

    #[test]
    fn every_baseline_is_a_store_object() {
        for s in backends(64, 8) {
            s.put(1, &[0xAA; 8]).unwrap();
            assert_eq!(s.len(), 1);
            assert_eq!(s.get(1).unwrap().unwrap(), vec![0xAA; 8]);
            let mut buf = [0u8; 8];
            assert!(s.get_into(1, &mut buf).unwrap());
            assert_eq!(buf, [0xAA; 8]);
            assert!(s.delete(1).unwrap());
            assert!(s.is_empty());
            let snap = s.snapshot();
            assert_eq!(snap.puts, 1);
            assert_eq!(snap.gets, 2);
            assert_eq!(snap.deletes, 1);
            assert_eq!(snap.capacity, 64);
        }
    }

    #[test]
    fn default_batch_apply_works_on_every_baseline() {
        for s in backends(64, 8) {
            let mut batch = Batch::new();
            for k in 0..16u64 {
                batch.put(k, &[k as u8; 8]);
            }
            batch.delete(3).delete(99);
            let r = s.apply(&batch);
            assert!(r.all_ok(), "{}: {:?}", s.name(), r.failures);
            assert_eq!(r.puts, 16);
            assert_eq!(r.deleted_existing, 1);
            assert_eq!(s.len(), 15, "{}", s.name());
        }
    }

    #[test]
    fn baselines_serve_concurrent_readers() {
        for s in backends(256, 8) {
            s.put(7, &[0x77; 8]).unwrap();
            let mut handles = Vec::new();
            for worker in 0..3u64 {
                let s = Arc::clone(&s);
                handles.push(std::thread::spawn(move || {
                    for i in 0..50u64 {
                        if worker == 0 {
                            s.put(100 + i, &[i as u8; 8]).unwrap();
                        } else {
                            assert_eq!(s.get(7).unwrap().unwrap(), vec![0x77; 8]);
                        }
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(s.len(), 51, "{}", s.name());
        }
    }
}
