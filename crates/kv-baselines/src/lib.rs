//! # pnw-baselines — the persistent K/V stores PNW is compared against
//!
//! Figure 9 of the paper compares PNW's written-cache-lines-per-request
//! against three recent NVM stores, each reimplemented here over the same
//! emulated device so the accounting is identical:
//!
//! * [`FpTreeLike`] — FPTree (Oukid et al., SIGMOD 2016): a hybrid
//!   SCM-DRAM B+-tree. Inner nodes live in DRAM; leaves live in NVM with a
//!   slot bitmap and per-slot fingerprints. Leaf splits rewrite half a
//!   leaf's entries — the write-amplification mechanism that makes FPTree
//!   the most line-hungry store in Figure 9.
//! * [`NoveLsmLike`] — NoveLSM (Kannan et al., ATC 2018): an LSM with a
//!   DRAM memtable flushed into sorted NVM runs, compacted into a larger
//!   level. Flush + compaction rewrite entries wholesale.
//! * [`PathHashStore`] — a K/V store over Path Hashing (Zuo & Hua): the
//!   closest competitor in Figure 9; writes little, but is *"not
//!   memory-aware"* — values land wherever the free list points, so its
//!   data-zone writes can't exploit similarity.
//!
//! All three implement [`KvStore`], as does the PNW store itself (via the
//! adapter in the bench crate), so the Figure 9 harness drives them
//! uniformly.

#![warn(missing_docs)]

pub mod fptree;
pub mod lsm;
pub mod path_store;
pub mod traits;

pub use fptree::FpTreeLike;
pub use lsm::NoveLsmLike;
pub use path_store::PathHashStore;
pub use traits::{KvStore, StoreError};
