//! NoveLSM-like persistent LSM store (Kannan et al., USENIX ATC 2018).
//!
//! NoveLSM redesigns LevelDB for NVM. For Figure 9 what matters is the LSM
//! write path's amplification: every PUT is eventually rewritten at least
//! twice (memtable → flushed L0 run, L0 runs → compacted L1), and
//! compaction rewrites *unchanged* entries too. The model here:
//!
//! * a DRAM memtable (sorted map) absorbing writes;
//! * flushes into fixed L0 run slots in NVM (sorted arrays);
//! * when all L0 slots fill, a full compaction merges L0 + L1 into the
//!   alternate L1 area (ping-pong), dropping tombstones and duplicates.
//!
//! Entry layout in a run: `[flags: u8 | pad ×7 | key: u64 | value]`,
//! flag bit 0 = tombstone.
//!
//! Like every [`Store`] backend, the store lives behind one store-wide
//! `RwLock`: GETs search memtable and runs through [`NvmDevice::peek`]
//! under a shared lock, writers take it exclusively.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use pnw_core::{OpReport, Store, StoreError, StoreSnapshot};
use pnw_nvm_sim::{DeviceStats, NvmConfig, NvmDevice, Region, RegionAllocator, WriteMode};

use crate::{baseline_snapshot, check_size, report_since};

const TOMBSTONE: u8 = 1;

/// A value or a deletion marker in the memtable.
#[derive(Debug, Clone)]
enum MemEntry {
    Put(Vec<u8>),
    Del,
}

/// One sorted run persisted in NVM.
#[derive(Debug, Clone, Copy)]
struct Run {
    region: Region,
    count: usize,
}

/// The mutable LSM state behind the store lock.
struct Inner {
    dev: NvmDevice,
    value_size: usize,
    entry_bytes: usize,
    memtable: BTreeMap<u64, MemEntry>,
    memtable_cap: usize,
    /// L0 run slots (bounded ring).
    l0_regions: Vec<Region>,
    l0: Vec<Run>,
    /// Two L1 areas, ping-ponged by compaction.
    l1_areas: [Region; 2],
    l1: Option<Run>,
    l1_active: usize,
    live: usize,
    puts: u64,
    deletes: u64,
}

/// NoveLSM-like store.
pub struct NoveLsmLike {
    value_size: usize,
    capacity: usize,
    gets: AtomicU64,
    inner: RwLock<Inner>,
}

impl Inner {
    fn write_entry(
        &mut self,
        region: Region,
        slot: usize,
        key: u64,
        value: Option<&[u8]>,
    ) -> Result<(), StoreError> {
        let mut buf = vec![0u8; self.entry_bytes];
        buf[0] = if value.is_none() { TOMBSTONE } else { 0 };
        buf[8..16].copy_from_slice(&key.to_le_bytes());
        if let Some(v) = value {
            buf[16..16 + v.len()].copy_from_slice(v);
        }
        self.dev
            .write(region.at(slot * self.entry_bytes), &buf, WriteMode::Diff)?;
        Ok(())
    }

    /// Run entries are read through [`NvmDevice::peek`]: lookups and
    /// compaction scans take shared device access and record no read
    /// statistics, matching the PNW store's convention.
    fn read_entry(
        &self,
        region: Region,
        slot: usize,
    ) -> Result<(u64, Option<Vec<u8>>), StoreError> {
        let addr = region.at(slot * self.entry_bytes);
        let bytes = self.dev.peek(addr, self.entry_bytes)?;
        let key = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        if bytes[0] & TOMBSTONE != 0 {
            Ok((key, None))
        } else {
            Ok((key, Some(bytes[16..16 + self.value_size].to_vec())))
        }
    }

    /// Binary search within a sorted run.
    fn run_get(&self, run: Run, key: u64) -> Result<Option<Option<Vec<u8>>>, StoreError> {
        let (mut lo, mut hi) = (0usize, run.count);
        while lo < hi {
            let mid = (lo + hi) / 2;
            let addr = run.region.at(mid * self.entry_bytes + 8);
            let kb = self.dev.peek(addr, 8)?;
            let k = u64::from_le_bytes(kb.try_into().unwrap());
            match k.cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => {
                    let (_, v) = self.read_entry(run.region, mid)?;
                    return Ok(Some(v));
                }
            }
        }
        Ok(None)
    }

    /// Newest-wins lookup across memtable, L0 runs and L1.
    fn get(&self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        if let Some(e) = self.memtable.get(&key) {
            return Ok(match e {
                MemEntry::Put(v) => Some(v.clone()),
                MemEntry::Del => None,
            });
        }
        for i in (0..self.l0.len()).rev() {
            let run = self.l0[i];
            if let Some(v) = self.run_get(run, key)? {
                return Ok(v);
            }
        }
        if let Some(run) = self.l1 {
            if let Some(v) = self.run_get(run, key)? {
                return Ok(v);
            }
        }
        Ok(None)
    }

    /// Flushes the memtable into a fresh L0 run, compacting first if all
    /// slots are taken.
    fn flush(&mut self) -> Result<(), StoreError> {
        if self.memtable.is_empty() {
            return Ok(());
        }
        if self.l0.len() == self.l0_regions.len() {
            self.compact()?;
        }
        let region = self.l0_regions[self.l0.len()];
        let entries: Vec<(u64, MemEntry)> =
            std::mem::take(&mut self.memtable).into_iter().collect();
        for (slot, (key, e)) in entries.iter().enumerate() {
            match e {
                MemEntry::Put(v) => self.write_entry(region, slot, *key, Some(v))?,
                MemEntry::Del => self.write_entry(region, slot, *key, None)?,
            }
        }
        self.l0.push(Run {
            region,
            count: entries.len(),
        });
        Ok(())
    }

    /// Merges all L0 runs and the current L1 run into the alternate L1
    /// area. Newest version of each key wins; tombstones drop out.
    fn compact(&mut self) -> Result<(), StoreError> {
        // Gather versions, newest first: L0 runs newest→oldest, then L1.
        let mut merged: BTreeMap<u64, Option<Vec<u8>>> = BTreeMap::new();
        let runs: Vec<Run> = self.l0.iter().rev().copied().chain(self.l1).collect();
        for run in runs {
            for slot in 0..run.count {
                let (key, v) = self.read_entry(run.region, slot)?;
                merged.entry(key).or_insert(v);
            }
        }
        let target = self.l1_areas[1 - self.l1_active];
        let mut slot = 0usize;
        for (key, v) in &merged {
            if let Some(value) = v {
                if (slot + 1) * self.entry_bytes > target.len {
                    return Err(StoreError::Full);
                }
                self.write_entry(target, slot, *key, Some(value))?;
                slot += 1;
            }
        }
        self.l1 = Some(Run {
            region: target,
            count: slot,
        });
        self.l1_active = 1 - self.l1_active;
        self.l0.clear();
        Ok(())
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<(), StoreError> {
        check_size(self.value_size, value)?;
        if self.get(key)?.is_none() {
            self.live += 1;
        }
        self.memtable.insert(key, MemEntry::Put(value.to_vec()));
        self.puts += 1;
        if self.memtable.len() >= self.memtable_cap {
            self.flush()?;
        }
        Ok(())
    }

    fn delete(&mut self, key: u64) -> Result<bool, StoreError> {
        let existed = self.get(key)?.is_some();
        if existed {
            self.live -= 1;
            // Deletes of existing keys only — the cross-backend snapshot
            // convention (misses are not counted anywhere).
            self.deletes += 1;
            self.memtable.insert(key, MemEntry::Del);
            if self.memtable.len() >= self.memtable_cap {
                self.flush()?;
            }
        }
        Ok(existed)
    }
}

impl NoveLsmLike {
    /// Creates a store for `capacity` values of `value_size` bytes.
    pub fn new(capacity: usize, value_size: usize) -> Self {
        let entry_bytes = (8 + 8 + value_size).next_multiple_of(8);
        // The memtable scales with capacity so full compactions stay
        // amortized (LevelDB sizes its levels the same way); a fixed tiny
        // memtable would compact O(n/64) times and quadratic-rewrite the
        // store.
        let memtable_cap = (capacity / 16).clamp(8.min(capacity.max(1)), 1024);
        let n_l0 = 4;
        let l0_bytes = memtable_cap * entry_bytes;
        // L1 must hold capacity live entries plus L0 spill-over at merge.
        let l1_bytes = (capacity + n_l0 * memtable_cap) * entry_bytes;
        let total = (n_l0 * l0_bytes + 2 * l1_bytes + 4096).next_multiple_of(64);

        let mut alloc = RegionAllocator::new(total);
        let l0_regions: Vec<Region> = (0..n_l0)
            .map(|_| alloc.alloc(l0_bytes, 64).expect("l0 region"))
            .collect();
        let l1_areas = [
            alloc.alloc(l1_bytes, 64).expect("l1 region a"),
            alloc.alloc(l1_bytes, 64).expect("l1 region b"),
        ];
        NoveLsmLike {
            value_size,
            capacity,
            gets: AtomicU64::new(0),
            inner: RwLock::new(Inner {
                dev: NvmDevice::new(NvmConfig::default().with_size(total)),
                value_size,
                entry_bytes,
                memtable: BTreeMap::new(),
                memtable_cap,
                l0_regions,
                l0: Vec::new(),
                l1_areas,
                l1: None,
                l1_active: 0,
                live: 0,
                puts: 0,
                deletes: 0,
            }),
        }
    }

    /// Total persisted runs currently live (L0 + L1).
    pub fn run_count(&self) -> usize {
        let inner = self.inner.read().unwrap();
        inner.l0.len() + usize::from(inner.l1.is_some())
    }
}

impl Store for NoveLsmLike {
    fn name(&self) -> &'static str {
        "NoveLSM"
    }

    fn value_size(&self) -> usize {
        self.value_size
    }

    fn put(&self, key: u64, value: &[u8]) -> Result<OpReport, StoreError> {
        let mut inner = self.inner.write().unwrap();
        let before = inner.dev.stats().clone();
        inner.put(key, value)?;
        Ok(report_since(&inner.dev, &before))
    }

    fn get(&self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        self.inner.read().unwrap().get(key)
    }

    fn get_into(&self, key: u64, out: &mut [u8]) -> Result<bool, StoreError> {
        check_size(self.value_size, out)?;
        self.gets.fetch_add(1, Ordering::Relaxed);
        match self.inner.read().unwrap().get(key)? {
            Some(v) => {
                out.copy_from_slice(&v);
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn delete(&self, key: u64) -> Result<bool, StoreError> {
        self.inner.write().unwrap().delete(key)
    }

    /// Range scan as an LSM merge: fold versions oldest→newest (L1, then
    /// L0 runs in age order, then the memtable) into a sorted map so the
    /// newest version of each key wins, drop tombstones, keep `lo..=hi`.
    fn scan(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        if lo > hi {
            return Ok(Vec::new());
        }
        let inner = self.inner.read().unwrap();
        let mut merged: BTreeMap<u64, Option<Vec<u8>>> = BTreeMap::new();
        let runs: Vec<Run> = inner.l1.iter().copied().chain(inner.l0.iter().copied()).collect();
        for run in runs {
            for slot in 0..run.count {
                let (key, v) = inner.read_entry(run.region, slot)?;
                if key >= lo && key <= hi {
                    merged.insert(key, v);
                }
            }
        }
        for (&key, e) in inner.memtable.range(lo..=hi) {
            match e {
                MemEntry::Put(v) => merged.insert(key, Some(v.clone())),
                MemEntry::Del => merged.insert(key, None),
            };
        }
        Ok(merged
            .into_iter()
            .filter_map(|(k, v)| v.map(|v| (k, v)))
            .collect())
    }

    fn len(&self) -> usize {
        self.inner.read().unwrap().live
    }

    fn snapshot(&self) -> StoreSnapshot {
        let inner = self.inner.read().unwrap();
        baseline_snapshot(
            inner.live,
            self.capacity,
            inner.dev.stats().clone(),
            inner.puts,
            self.gets.load(Ordering::Relaxed),
            inner.deletes,
        )
    }

    fn device_stats(&self) -> DeviceStats {
        self.inner.read().unwrap().dev.stats().clone()
    }

    fn reset_device_stats(&self) {
        self.inner.write().unwrap().dev.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crud_through_flush_and_compaction() {
        let s = NoveLsmLike::new(2000, 8);
        for k in 0..1500u64 {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        assert_eq!(s.len(), 1500);
        assert!(s.run_count() > 0, "flushes must have happened");
        for k in (0..1500u64).step_by(97) {
            assert_eq!(s.get(k).unwrap().unwrap(), k.to_le_bytes().to_vec());
        }
    }

    #[test]
    fn overwrites_resolve_to_newest() {
        let s = NoveLsmLike::new(500, 8);
        for round in 0..3u8 {
            for k in 0..200u64 {
                s.put(k, &[round; 8]).unwrap();
            }
        }
        assert_eq!(s.len(), 200);
        assert_eq!(s.get(100).unwrap().unwrap(), vec![2u8; 8]);
    }

    #[test]
    fn deletes_survive_flush() {
        let s = NoveLsmLike::new(500, 8);
        for k in 0..200u64 {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        assert!(s.delete(13).unwrap());
        assert!(!s.delete(13).unwrap());
        // Force tombstone through a flush + compaction cycle.
        for k in 200..500u64 {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        assert_eq!(s.get(13).unwrap(), None);
        assert_eq!(s.len(), 499);
    }

    #[test]
    fn write_amplification_exceeds_path_store() {
        // The Figure 9 ordering: LSM rewrites entries on flush+compaction,
        // so its line writes per put beat (exceed) a direct-placement store.
        let n = 600usize;
        let lsm = NoveLsmLike::new(n * 2, 32);
        let ph = crate::path_store::PathHashStore::new(n * 2, 32);
        for k in 0..n as u64 {
            let v = [(k % 251) as u8; 32];
            lsm.put(k, &v).unwrap();
            ph.put(k, &v).unwrap();
        }
        let lsm_lines = lsm.device_stats().totals.lines_written as f64 / n as f64;
        let ph_lines = ph.device_stats().totals.lines_written as f64 / n as f64;
        assert!(
            lsm_lines > ph_lines,
            "lsm {lsm_lines} should exceed path-hash {ph_lines}"
        );
    }

    #[test]
    fn get_missing_key() {
        let s = NoveLsmLike::new(100, 8);
        assert_eq!(s.get(42).unwrap(), None);
        s.put(1, &[1; 8]).unwrap();
        assert_eq!(s.get(42).unwrap(), None);
    }
}
