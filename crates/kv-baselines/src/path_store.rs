//! A K/V store over Path Hashing — the strongest baseline of Figure 9.
//!
//! Index and data zone both live in NVM. Writes are differential, so this
//! store is already RBW-efficient; what it lacks is PNW's *memory
//! awareness*: a PUT takes whatever bucket the LIFO free list yields, so the
//! old content it overwrites is arbitrary. Figure 9 attributes its remaining
//! gap to PNW to exactly this (*"like other methods, it is not
//! 'memory-aware'"*), plus occasional path-hash insertion retries.

use pnw_index::{KeyIndex, PathHashIndex};
use pnw_nvm_sim::{DeviceStats, NvmConfig, NvmDevice, Region, RegionAllocator, WriteMode};

use crate::traits::{check_size, KvStore, StoreError};

/// Path-hashing K/V store with a fixed-bucket NVM data zone.
pub struct PathHashStore {
    dev: NvmDevice,
    index: PathHashIndex,
    data: Region,
    value_size: usize,
    bucket_size: usize,
    free: Vec<u32>,
    live: usize,
}

impl PathHashStore {
    /// Creates a store holding up to `capacity` values of `value_size`
    /// bytes.
    ///
    /// The index is sized at 2× capacity leaf positions (rounded up to a
    /// power of two) so path-hash insertion failures stay rare at full load.
    pub fn new(capacity: usize, value_size: usize) -> Self {
        let leaves = (capacity * 2).next_power_of_two().max(8);
        let bucket_size = value_size.div_ceil(8) * 8;
        let index_bytes = PathHashIndex::region_bytes_for(leaves);
        let data_bytes = capacity * bucket_size;
        let total = (index_bytes + data_bytes + 4096).next_multiple_of(64);

        let mut alloc = RegionAllocator::new(total);
        let index_region = alloc.alloc(index_bytes, 64).expect("index region");
        let data = alloc.alloc_buckets(capacity, bucket_size).expect("data region");

        let dev = NvmDevice::new(NvmConfig::default().with_size(total));
        let index = PathHashIndex::create(index_region, leaves);
        PathHashStore {
            dev,
            index,
            data,
            value_size,
            bucket_size,
            free: (0..capacity as u32).rev().collect(),
            live: 0,
        }
    }

    fn bucket_addr(&self, b: u32) -> usize {
        self.data.bucket_addr(b as usize, self.bucket_size)
    }

    fn bucket_of_addr(&self, addr: u64) -> u32 {
        ((addr as usize - self.data.start) / self.bucket_size) as u32
    }
}

impl KvStore for PathHashStore {
    fn name(&self) -> &'static str {
        "Path hashing"
    }

    fn value_size(&self) -> usize {
        self.value_size
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<(), StoreError> {
        check_size(self.value_size, value)?;
        // Update in place when the key exists (no address steering — this
        // is the memory-unaware behaviour Figure 9 contrasts with PNW).
        if let Some(addr) = self.index.get(&mut self.dev, key)? {
            self.dev.write(addr as usize, value, WriteMode::Diff)?;
            return Ok(());
        }
        let bucket = self.free.pop().ok_or(StoreError::Full)?;
        let addr = self.bucket_addr(bucket);
        self.dev.write(addr, value, WriteMode::Diff)?;
        if let Err(e) = self.index.insert(&mut self.dev, key, addr as u64) {
            // Roll the bucket back so the data zone doesn't leak.
            self.free.push(bucket);
            return Err(e.into());
        }
        self.live += 1;
        Ok(())
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        match self.index.get(&mut self.dev, key)? {
            Some(addr) => {
                let v = self.dev.read(addr as usize, self.value_size)?.to_vec();
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    fn delete(&mut self, key: u64) -> Result<bool, StoreError> {
        match self.index.remove(&mut self.dev, key)? {
            Some(addr) => {
                self.free.push(self.bucket_of_addr(addr));
                self.live -= 1;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn len(&self) -> usize {
        self.live
    }

    fn device_stats(&self) -> &DeviceStats {
        self.dev.stats()
    }

    fn device(&self) -> &NvmDevice {
        &self.dev
    }

    fn reset_device_stats(&mut self) {
        self.dev.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crud_roundtrip() {
        let mut s = PathHashStore::new(100, 32);
        assert!(s.is_empty());
        s.put(1, &[0xAB; 32]).unwrap();
        s.put(2, &[0xCD; 32]).unwrap();
        assert_eq!(s.get(1).unwrap().unwrap(), vec![0xAB; 32]);
        assert_eq!(s.len(), 2);
        // Update.
        s.put(1, &[0xEF; 32]).unwrap();
        assert_eq!(s.get(1).unwrap().unwrap(), vec![0xEF; 32]);
        assert_eq!(s.len(), 2);
        // Delete.
        assert!(s.delete(1).unwrap());
        assert!(!s.delete(1).unwrap());
        assert_eq!(s.get(1).unwrap(), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn wrong_value_size_rejected() {
        let mut s = PathHashStore::new(10, 32);
        assert!(matches!(
            s.put(1, &[0u8; 16]),
            Err(StoreError::WrongValueSize { expected: 32, got: 16 })
        ));
    }

    #[test]
    fn buckets_recycle_after_delete() {
        let mut s = PathHashStore::new(4, 8);
        for k in 0..4 {
            s.put(k, &[k as u8; 8]).unwrap();
        }
        assert!(matches!(s.put(99, &[9; 8]), Err(StoreError::Full)));
        s.delete(0).unwrap();
        s.put(99, &[9; 8]).unwrap();
        assert_eq!(s.get(99).unwrap().unwrap(), vec![9; 8]);
    }

    #[test]
    fn differential_rewrite_is_cheap() {
        let mut s = PathHashStore::new(10, 64);
        s.put(5, &[0x77; 64]).unwrap();
        let before = s.device_stats().totals.bit_flips;
        s.put(5, &[0x77; 64]).unwrap(); // identical update
        let delta = s.device_stats().totals.bit_flips - before;
        assert_eq!(delta, 0);
    }

    #[test]
    fn stats_window_reset() {
        let mut s = PathHashStore::new(10, 8);
        s.put(1, &[1; 8]).unwrap();
        s.reset_device_stats();
        assert_eq!(s.device_stats().write_ops, 0);
        assert_eq!(s.device().stats().totals.bit_flips, 0);
    }
}
