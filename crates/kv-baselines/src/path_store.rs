//! A K/V store over Path Hashing — the strongest baseline of Figure 9.
//!
//! Index and data zone both live in NVM. Writes are differential, so this
//! store is already RBW-efficient; what it lacks is PNW's *memory
//! awareness*: a PUT takes whatever bucket the LIFO free list yields, so the
//! old content it overwrites is arbitrary. Figure 9 attributes its remaining
//! gap to PNW to exactly this (*"like other methods, it is not
//! 'memory-aware'"*), plus occasional path-hash insertion retries.
//!
//! Like every [`Store`] backend, the store lives behind one store-wide
//! `RwLock`: GETs go through [`KeyIndex::lookup`] and
//! [`NvmDevice::peek`] under a shared lock, writers take it exclusively.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use pnw_core::{OpReport, Store, StoreError, StoreSnapshot};
use pnw_index::{KeyIndex, PathHashIndex};
use pnw_nvm_sim::{DeviceStats, NvmConfig, NvmDevice, Region, RegionAllocator, WriteMode};

use crate::{baseline_snapshot, check_size, report_since};

/// The mutable store state behind the store lock.
struct Inner {
    dev: NvmDevice,
    index: PathHashIndex,
    data: Region,
    value_size: usize,
    bucket_size: usize,
    free: Vec<u32>,
    live: usize,
    puts: u64,
    deletes: u64,
}

/// Path-hashing K/V store with a fixed-bucket NVM data zone.
pub struct PathHashStore {
    value_size: usize,
    capacity: usize,
    gets: AtomicU64,
    inner: RwLock<Inner>,
}

impl Inner {
    fn bucket_addr(&self, b: u32) -> usize {
        self.data.bucket_addr(b as usize, self.bucket_size)
    }

    fn bucket_of_addr(&self, addr: u64) -> u32 {
        ((addr as usize - self.data.start) / self.bucket_size) as u32
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<(), StoreError> {
        check_size(self.value_size, value)?;
        // Update in place when the key exists (no address steering — this
        // is the memory-unaware behaviour Figure 9 contrasts with PNW).
        if let Some(addr) = self.index.get(&mut self.dev, key)? {
            self.dev.write(addr as usize, value, WriteMode::Diff)?;
            self.puts += 1;
            return Ok(());
        }
        let bucket = self.free.pop().ok_or(StoreError::Full)?;
        let addr = self.bucket_addr(bucket);
        self.dev.write(addr, value, WriteMode::Diff)?;
        if let Err(e) = self.index.insert(&mut self.dev, key, addr as u64) {
            // Roll the bucket back so the data zone doesn't leak.
            self.free.push(bucket);
            return Err(e.into());
        }
        self.live += 1;
        self.puts += 1;
        Ok(())
    }

    fn delete(&mut self, key: u64) -> Result<bool, StoreError> {
        match self.index.remove(&mut self.dev, key)? {
            Some(addr) => {
                let bucket = self.bucket_of_addr(addr);
                self.free.push(bucket);
                self.live -= 1;
                // Deletes of existing keys only — the cross-backend
                // snapshot convention (misses are not counted anywhere).
                self.deletes += 1;
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

impl PathHashStore {
    /// Creates a store holding up to `capacity` values of `value_size`
    /// bytes.
    ///
    /// The index is sized at 2× capacity leaf positions (rounded up to a
    /// power of two) so path-hash insertion failures stay rare at full load.
    pub fn new(capacity: usize, value_size: usize) -> Self {
        let leaves = (capacity * 2).next_power_of_two().max(8);
        let bucket_size = value_size.div_ceil(8) * 8;
        let index_bytes = PathHashIndex::region_bytes_for(leaves);
        let data_bytes = capacity * bucket_size;
        let total = (index_bytes + data_bytes + 4096).next_multiple_of(64);

        let mut alloc = RegionAllocator::new(total);
        let index_region = alloc.alloc(index_bytes, 64).expect("index region");
        let data = alloc.alloc_buckets(capacity, bucket_size).expect("data region");

        let dev = NvmDevice::new(NvmConfig::default().with_size(total));
        let index = PathHashIndex::create(index_region, leaves);
        PathHashStore {
            value_size,
            capacity,
            gets: AtomicU64::new(0),
            inner: RwLock::new(Inner {
                dev,
                index,
                data,
                value_size,
                bucket_size,
                free: (0..capacity as u32).rev().collect(),
                live: 0,
                puts: 0,
                deletes: 0,
            }),
        }
    }
}

impl Store for PathHashStore {
    fn name(&self) -> &'static str {
        "Path hashing"
    }

    fn value_size(&self) -> usize {
        self.value_size
    }

    fn put(&self, key: u64, value: &[u8]) -> Result<OpReport, StoreError> {
        let mut inner = self.inner.write().unwrap();
        let before = inner.dev.stats().clone();
        inner.put(key, value)?;
        Ok(report_since(&inner.dev, &before))
    }

    fn get(&self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.read().unwrap();
        match inner.index.lookup(&inner.dev, key)? {
            Some(addr) => Ok(Some(inner.dev.peek(addr as usize, inner.value_size)?.to_vec())),
            None => Ok(None),
        }
    }

    fn get_into(&self, key: u64, out: &mut [u8]) -> Result<bool, StoreError> {
        check_size(self.value_size, out)?;
        self.gets.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.read().unwrap();
        match inner.index.lookup(&inner.dev, key)? {
            Some(addr) => {
                inner.dev.peek_into(addr as usize, out)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn delete(&self, key: u64) -> Result<bool, StoreError> {
        self.inner.write().unwrap().delete(key)
    }

    /// Range scan by index enumeration: the data zone stores bare values
    /// (no headers), so the key set comes from walking the path-hash
    /// table's live buckets, then sorting and peeking each value.
    fn scan(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        if lo > hi {
            return Ok(Vec::new());
        }
        let inner = self.inner.read().unwrap();
        let mut keyed: Vec<(u64, u64)> = inner
            .index
            .entries(&inner.dev)?
            .into_iter()
            .filter(|&(k, _)| k >= lo && k <= hi)
            .collect();
        keyed.sort_unstable_by_key(|&(k, _)| k);
        let mut out = Vec::with_capacity(keyed.len());
        for (key, addr) in keyed {
            out.push((key, inner.dev.peek(addr as usize, inner.value_size)?.to_vec()));
        }
        Ok(out)
    }

    fn len(&self) -> usize {
        self.inner.read().unwrap().live
    }

    fn snapshot(&self) -> StoreSnapshot {
        let inner = self.inner.read().unwrap();
        baseline_snapshot(
            inner.live,
            self.capacity,
            inner.dev.stats().clone(),
            inner.puts,
            self.gets.load(Ordering::Relaxed),
            inner.deletes,
        )
    }

    fn device_stats(&self) -> DeviceStats {
        self.inner.read().unwrap().dev.stats().clone()
    }

    fn reset_device_stats(&self) {
        self.inner.write().unwrap().dev.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crud_roundtrip() {
        let s = PathHashStore::new(100, 32);
        assert!(s.is_empty());
        s.put(1, &[0xAB; 32]).unwrap();
        s.put(2, &[0xCD; 32]).unwrap();
        assert_eq!(s.get(1).unwrap().unwrap(), vec![0xAB; 32]);
        assert_eq!(s.len(), 2);
        // Update.
        s.put(1, &[0xEF; 32]).unwrap();
        assert_eq!(s.get(1).unwrap().unwrap(), vec![0xEF; 32]);
        assert_eq!(s.len(), 2);
        // Delete.
        assert!(s.delete(1).unwrap());
        assert!(!s.delete(1).unwrap());
        assert_eq!(s.get(1).unwrap(), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn wrong_value_size_rejected() {
        let s = PathHashStore::new(10, 32);
        assert!(matches!(
            s.put(1, &[0u8; 16]),
            Err(StoreError::WrongValueSize { expected: 32, got: 16 })
        ));
    }

    #[test]
    fn buckets_recycle_after_delete() {
        let s = PathHashStore::new(4, 8);
        for k in 0..4 {
            s.put(k, &[k as u8; 8]).unwrap();
        }
        assert!(matches!(s.put(99, &[9; 8]), Err(StoreError::Full)));
        s.delete(0).unwrap();
        s.put(99, &[9; 8]).unwrap();
        assert_eq!(s.get(99).unwrap().unwrap(), vec![9; 8]);
    }

    #[test]
    fn differential_rewrite_is_cheap() {
        let s = PathHashStore::new(10, 64);
        s.put(5, &[0x77; 64]).unwrap();
        let before = s.device_stats().totals.bit_flips;
        s.put(5, &[0x77; 64]).unwrap(); // identical update
        let delta = s.device_stats().totals.bit_flips - before;
        assert_eq!(delta, 0);
    }

    #[test]
    fn stats_window_reset() {
        let s = PathHashStore::new(10, 8);
        s.put(1, &[1; 8]).unwrap();
        s.reset_device_stats();
        assert_eq!(s.device_stats().write_ops, 0);
        assert_eq!(s.device_stats().totals.bit_flips, 0);
    }

    #[test]
    fn put_reports_modeled_cost() {
        let s = PathHashStore::new(10, 8);
        let r = s.put(1, &[0xFF; 8]).unwrap();
        assert!(r.total_write.bit_flips > 0);
        assert!(r.modeled_latency > std::time::Duration::ZERO);
        assert_eq!(r.predict, std::time::Duration::ZERO);
    }
}
