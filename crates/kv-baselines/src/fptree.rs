//! FPTree-like hybrid SCM-DRAM B+-tree (Oukid et al., SIGMOD 2016).
//!
//! FPTree keeps inner nodes in DRAM (rebuilt on recovery) and leaf nodes in
//! NVM. Each persistent leaf has a slot **bitmap**, one-byte
//! **fingerprints** (a hash prefix per slot, scanned before key comparison)
//! and unsorted slots. Inserts append into a free slot and then flip the
//! bitmap bit — a small number of line writes — but a full leaf **splits**:
//! half the entries are copied into a fresh leaf and both bitmaps rewritten.
//! That copying is the write amplification that puts FPTree at the top of
//! Figure 9 (*"the number of written cache lines per request in FPTree and
//! NoveLSM is higher than others because they modify more items to process
//! a request"*).
//!
//! Leaf layout (`LEAF_SLOTS` = 16):
//!
//! ```text
//! [ bitmap: u16 | pad ×6 | fingerprints ×16 | slots ×16 (key u64 + value) ]
//! ```
//!
//! Like every [`Store`] backend, the tree lives behind one store-wide
//! `RwLock`: GETs probe leaves through [`NvmDevice::peek`] under a shared
//! lock (concurrent readers never serialize), writers take it exclusively.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use pnw_core::{OpReport, Store, StoreError, StoreSnapshot};
use pnw_nvm_sim::{DeviceStats, NvmConfig, NvmDevice, Region, RegionAllocator, WriteMode};

use crate::{baseline_snapshot, check_size, report_since};

/// Slots per persistent leaf.
pub const LEAF_SLOTS: usize = 16;
const HDR_BYTES: usize = 8; // bitmap u16 + padding
const FP_BYTES: usize = LEAF_SLOTS;

/// The mutable tree state behind the store lock.
struct Inner {
    dev: NvmDevice,
    data: Region,
    value_size: usize,
    leaf_bytes: usize,
    /// DRAM inner "node": lower key bound → leaf id. Rebuilt on recovery in
    /// real FPTree; a sorted map models the inner B+-tree's routing exactly.
    routing: BTreeMap<u64, usize>,
    /// Free leaf ids.
    free_leaves: Vec<usize>,
    live: usize,
    puts: u64,
    deletes: u64,
}

/// FPTree-like store.
pub struct FpTreeLike {
    value_size: usize,
    capacity: usize,
    gets: AtomicU64,
    inner: RwLock<Inner>,
}

impl Inner {
    fn slot_bytes(&self) -> usize {
        8 + self.value_size
    }

    fn leaf_addr(&self, leaf: usize) -> usize {
        self.data.bucket_addr(leaf, self.leaf_bytes)
    }

    fn slot_addr(&self, leaf: usize, slot: usize) -> usize {
        self.leaf_addr(leaf) + HDR_BYTES + FP_BYTES + slot * self.slot_bytes()
    }

    fn fingerprint(key: u64) -> u8 {
        let x = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (x >> 56) as u8
    }

    /// Leaf responsible for `key`.
    fn route(&self, key: u64) -> usize {
        *self
            .routing
            .range(..=key)
            .next_back()
            .map(|(_, l)| l)
            .expect("tree always has a leaf at bound 0")
    }

    /// Probe reads go through [`NvmDevice::peek`]: lookups take only a
    /// shared reference and record no device statistics, matching the PNW
    /// store's read-path convention.
    fn read_bitmap(&self, leaf: usize) -> Result<u16, StoreError> {
        let addr = self.leaf_addr(leaf);
        let b = self.dev.peek(addr, 2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn write_bitmap(&mut self, leaf: usize, bitmap: u16) -> Result<(), StoreError> {
        let addr = self.leaf_addr(leaf);
        self.dev.write(addr, &bitmap.to_le_bytes(), WriteMode::Diff)?;
        Ok(())
    }

    /// Finds `key` in `leaf` using fingerprints first (the FPTree probe).
    fn find_slot(&self, leaf: usize, key: u64) -> Result<Option<usize>, StoreError> {
        let bitmap = self.read_bitmap(leaf)?;
        let fp = Self::fingerprint(key);
        let fp_addr = self.leaf_addr(leaf) + HDR_BYTES;
        let fps = self.dev.peek(fp_addr, FP_BYTES)?;
        for (slot, &f) in fps.iter().enumerate() {
            if bitmap >> slot & 1 == 1 && f == fp {
                let addr = self.slot_addr(leaf, slot);
                let kb = self.dev.peek(addr, 8)?;
                if u64::from_le_bytes(kb.try_into().unwrap()) == key {
                    return Ok(Some(slot));
                }
            }
        }
        Ok(None)
    }

    fn write_slot(
        &mut self,
        leaf: usize,
        slot: usize,
        key: u64,
        value: &[u8],
    ) -> Result<(), StoreError> {
        let mut buf = Vec::with_capacity(self.slot_bytes());
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(value);
        self.dev
            .write(self.slot_addr(leaf, slot), &buf, WriteMode::Diff)?;
        // Fingerprint byte.
        let fp_addr = self.leaf_addr(leaf) + HDR_BYTES + slot;
        self.dev
            .write(fp_addr, &[Self::fingerprint(key)], WriteMode::Diff)?;
        Ok(())
    }

    /// Splits `leaf`, moving its upper half into a fresh leaf. Returns the
    /// id of the leaf that should now receive `key`.
    fn split(&mut self, leaf: usize, key: u64) -> Result<usize, StoreError> {
        let new_leaf = self.free_leaves.pop().ok_or(StoreError::Full)?;
        let bitmap = self.read_bitmap(leaf)?;

        // Collect live entries.
        let mut entries: Vec<(u64, usize)> = Vec::with_capacity(LEAF_SLOTS);
        for slot in 0..LEAF_SLOTS {
            if bitmap >> slot & 1 == 1 {
                let addr = self.slot_addr(leaf, slot);
                let kb = self.dev.peek(addr, 8)?;
                entries.push((u64::from_le_bytes(kb.try_into().unwrap()), slot));
            }
        }
        entries.sort_unstable_by_key(|&(k, _)| k);
        let mid = entries.len() / 2;
        let split_key = entries[mid].0;

        // Copy the upper half into the new leaf (FPTree's persist-then-flip
        // ordering: slots + fingerprints first, bitmaps last).
        let mut new_bitmap = 0u16;
        for (new_slot, &(k, old_slot)) in entries[mid..].iter().enumerate() {
            let vaddr = self.slot_addr(leaf, old_slot) + 8;
            let value = self.dev.peek(vaddr, self.value_size)?.to_vec();
            self.write_slot(new_leaf, new_slot, k, &value)?;
            new_bitmap |= 1 << new_slot;
        }
        self.write_bitmap(new_leaf, new_bitmap)?;

        // Clear the moved slots in the old leaf.
        let mut old_bitmap = bitmap;
        for &(_, old_slot) in &entries[mid..] {
            old_bitmap &= !(1 << old_slot);
        }
        self.write_bitmap(leaf, old_bitmap)?;

        self.routing.insert(split_key, new_leaf);
        Ok(if key >= split_key { new_leaf } else { leaf })
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<(), StoreError> {
        check_size(self.value_size, value)?;
        let mut leaf = self.route(key);

        // In-place update.
        if let Some(slot) = self.find_slot(leaf, key)? {
            let vaddr = self.slot_addr(leaf, slot) + 8;
            self.dev.write(vaddr, value, WriteMode::Diff)?;
            self.puts += 1;
            return Ok(());
        }

        // Find a free slot, splitting as needed (a split may cascade only
        // once: after splitting, the target leaf is at most half full).
        let mut bitmap = self.read_bitmap(leaf)?;
        if bitmap == u16::MAX >> (16 - LEAF_SLOTS) {
            leaf = self.split(leaf, key)?;
            bitmap = self.read_bitmap(leaf)?;
        }
        let slot = (0..LEAF_SLOTS)
            .find(|s| bitmap >> s & 1 == 0)
            .expect("post-split leaf has a free slot");
        self.write_slot(leaf, slot, key, value)?;
        self.write_bitmap(leaf, bitmap | 1 << slot)?;
        self.live += 1;
        self.puts += 1;
        Ok(())
    }

    fn get_slot(&self, key: u64) -> Result<Option<(usize, usize)>, StoreError> {
        let leaf = self.route(key);
        Ok(self.find_slot(leaf, key)?.map(|slot| (leaf, slot)))
    }

    fn delete(&mut self, key: u64) -> Result<bool, StoreError> {
        let leaf = self.route(key);
        match self.find_slot(leaf, key)? {
            Some(slot) => {
                let bitmap = self.read_bitmap(leaf)?;
                self.write_bitmap(leaf, bitmap & !(1 << slot))?;
                self.live -= 1;
                self.deletes += 1;
                Ok(true)
            }
            None => Ok(false),
        }
    }
}

impl FpTreeLike {
    /// Creates a tree able to hold `capacity` values of `value_size` bytes.
    pub fn new(capacity: usize, value_size: usize) -> Self {
        let slot_bytes = 8 + value_size;
        let leaf_bytes = (HDR_BYTES + FP_BYTES + LEAF_SLOTS * slot_bytes).next_multiple_of(64);
        // Splits leave leaves half-full; 2.5× slack plus a floor keeps the
        // leaf pool from starving under adversarial orders.
        let n_leaves = (capacity * 5 / 2 / LEAF_SLOTS).max(4);
        let total = (n_leaves * leaf_bytes + 4096).next_multiple_of(64);
        let mut alloc = RegionAllocator::new(total);
        let data = alloc.alloc_buckets(n_leaves, leaf_bytes).expect("leaf region");
        let dev = NvmDevice::new(NvmConfig::default().with_size(total));
        let mut free_leaves: Vec<usize> = (0..n_leaves).rev().collect();
        let first = free_leaves.pop().expect("at least one leaf");
        let mut routing = BTreeMap::new();
        routing.insert(0u64, first);
        FpTreeLike {
            value_size,
            capacity,
            gets: AtomicU64::new(0),
            inner: RwLock::new(Inner {
                dev,
                data,
                value_size,
                leaf_bytes,
                routing,
                free_leaves,
                live: 0,
                puts: 0,
                deletes: 0,
            }),
        }
    }

    /// Distinct leaves currently routed to (diagnostics).
    pub fn leaf_count(&self) -> usize {
        self.inner.read().unwrap().routing.len()
    }
}

impl Store for FpTreeLike {
    fn name(&self) -> &'static str {
        "FPTree"
    }

    fn value_size(&self) -> usize {
        self.value_size
    }

    fn put(&self, key: u64, value: &[u8]) -> Result<OpReport, StoreError> {
        let mut inner = self.inner.write().unwrap();
        let before = inner.dev.stats().clone();
        inner.put(key, value)?;
        Ok(report_since(&inner.dev, &before))
    }

    fn get(&self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        self.gets.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.read().unwrap();
        match inner.get_slot(key)? {
            Some((leaf, slot)) => {
                let vaddr = inner.slot_addr(leaf, slot) + 8;
                Ok(Some(inner.dev.peek(vaddr, inner.value_size)?.to_vec()))
            }
            None => Ok(None),
        }
    }

    fn get_into(&self, key: u64, out: &mut [u8]) -> Result<bool, StoreError> {
        check_size(self.value_size, out)?;
        self.gets.fetch_add(1, Ordering::Relaxed);
        let inner = self.inner.read().unwrap();
        match inner.get_slot(key)? {
            Some((leaf, slot)) => {
                let vaddr = inner.slot_addr(leaf, slot) + 8;
                inner.dev.peek_into(vaddr, out)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn delete(&self, key: u64) -> Result<bool, StoreError> {
        self.inner.write().unwrap().delete(key)
    }

    /// Range scan in leaf order: the DRAM routing map walks leaves in
    /// ascending key-range order (exactly the inner B+-tree traversal),
    /// and each leaf's unsorted live slots are collected and sorted
    /// locally — leaves partition the key space, so the concatenation is
    /// globally ordered.
    fn scan(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        let mut out = Vec::new();
        if lo > hi {
            return Ok(out);
        }
        let inner = self.inner.read().unwrap();
        for &leaf in inner.routing.values() {
            let bitmap = inner.read_bitmap(leaf)?;
            let mut entries: Vec<(u64, Vec<u8>)> = Vec::new();
            for slot in 0..LEAF_SLOTS {
                if bitmap >> slot & 1 == 0 {
                    continue;
                }
                let addr = inner.slot_addr(leaf, slot);
                let kb = inner.dev.peek(addr, 8)?;
                let key = u64::from_le_bytes(kb.try_into().unwrap());
                if key < lo || key > hi {
                    continue;
                }
                let value = inner.dev.peek(addr + 8, inner.value_size)?.to_vec();
                entries.push((key, value));
            }
            entries.sort_unstable_by_key(|&(k, _)| k);
            out.extend(entries);
        }
        Ok(out)
    }

    fn len(&self) -> usize {
        self.inner.read().unwrap().live
    }

    fn snapshot(&self) -> StoreSnapshot {
        let inner = self.inner.read().unwrap();
        baseline_snapshot(
            inner.live,
            self.capacity,
            inner.dev.stats().clone(),
            inner.puts,
            self.gets.load(Ordering::Relaxed),
            inner.deletes,
        )
    }

    fn device_stats(&self) -> DeviceStats {
        self.inner.read().unwrap().dev.stats().clone()
    }

    fn reset_device_stats(&self) {
        self.inner.write().unwrap().dev.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crud_roundtrip() {
        let t = FpTreeLike::new(200, 16);
        for k in 0..100u64 {
            t.put(k, &[k as u8; 16]).unwrap();
        }
        assert_eq!(t.len(), 100);
        for k in 0..100u64 {
            assert_eq!(t.get(k).unwrap().unwrap(), vec![k as u8; 16], "key {k}");
        }
        assert!(t.delete(50).unwrap());
        assert_eq!(t.get(50).unwrap(), None);
        assert_eq!(t.len(), 99);
    }

    #[test]
    fn update_in_place() {
        let t = FpTreeLike::new(50, 8);
        t.put(7, &[1; 8]).unwrap();
        t.put(7, &[2; 8]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(7).unwrap().unwrap(), vec![2; 8]);
    }

    #[test]
    fn splits_preserve_routing() {
        let t = FpTreeLike::new(500, 8);
        // Descending inserts force splits at the low end.
        for k in (0..200u64).rev() {
            t.put(k, &k.to_le_bytes()).unwrap();
        }
        for k in 0..200u64 {
            assert_eq!(
                t.get(k).unwrap().unwrap(),
                k.to_le_bytes().to_vec(),
                "key {k}"
            );
        }
        assert!(t.leaf_count() > 1, "splits must have happened");
    }

    #[test]
    fn splits_cost_more_lines_than_plain_inserts() {
        let t = FpTreeLike::new(100, 32);
        // Fill one leaf.
        for k in 0..LEAF_SLOTS as u64 {
            t.put(k, &[1; 32]).unwrap();
        }
        let before = t.device_stats().totals.lines_written;
        // The next insert splits.
        t.put(LEAF_SLOTS as u64, &[1; 32]).unwrap();
        let split_cost = t.device_stats().totals.lines_written - before;
        // A split rewrites ~half the leaf: far more than one line.
        assert!(split_cost >= 4, "split wrote only {split_cost} lines");
    }

    #[test]
    fn delete_is_bitmap_only() {
        let t = FpTreeLike::new(50, 64);
        t.put(3, &[0xFF; 64]).unwrap();
        let before = t.device_stats().totals.bit_flips;
        t.delete(3).unwrap();
        let delta = t.device_stats().totals.bit_flips - before;
        assert_eq!(delta, 1, "delete flips one bitmap bit");
    }

    #[test]
    fn random_order_inserts() {
        let t = FpTreeLike::new(400, 8);
        let mut keys: Vec<u64> = (0..300).collect();
        // Deterministic shuffle.
        let mut s = 0x1234u64;
        for i in (1..keys.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            keys.swap(i, (s >> 33) as usize % (i + 1));
        }
        for &k in &keys {
            t.put(k, &k.to_le_bytes()).unwrap();
        }
        for &k in &keys {
            assert!(t.get(k).unwrap().is_some(), "key {k}");
        }
    }

    #[test]
    fn concurrent_readers_while_writer_runs() {
        let t = std::sync::Arc::new(FpTreeLike::new(400, 8));
        t.put(1, &[7; 8]).unwrap();
        let mut handles = Vec::new();
        for worker in 0..3u64 {
            let t = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    if worker == 0 {
                        t.put(100 + i, &i.to_le_bytes()).unwrap();
                    } else {
                        assert_eq!(t.get(1).unwrap().unwrap(), vec![7; 8]);
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(t.len(), 101);
    }
}
