//! The [`KvStore`] trait: the uniform interface of the Figure 9 comparison.

use pnw_index::IndexError;
use pnw_nvm_sim::{DeviceStats, NvmDevice, NvmError};

/// Store operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// No space left (data zone or index exhausted).
    Full,
    /// A value of the wrong size was supplied to a fixed-bucket store.
    WrongValueSize {
        /// The store's bucket size.
        expected: usize,
        /// The supplied value's size.
        got: usize,
    },
    /// Underlying device failure.
    Nvm(NvmError),
}

impl From<NvmError> for StoreError {
    fn from(e: NvmError) -> Self {
        StoreError::Nvm(e)
    }
}

impl From<IndexError> for StoreError {
    fn from(e: IndexError) -> Self {
        match e {
            IndexError::Full => StoreError::Full,
            IndexError::Nvm(e) => StoreError::Nvm(e),
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Full => write!(f, "store is full"),
            StoreError::WrongValueSize { expected, got } => {
                write!(f, "value size {got} != bucket size {expected}")
            }
            StoreError::Nvm(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// A persistent key/value store over an emulated NVM device.
///
/// Stores use fixed-size value buckets (the paper's data zone is an array
/// of equal-sized entries, §IV).
pub trait KvStore: Send {
    /// Store name as it appears in Figure 9.
    fn name(&self) -> &'static str;

    /// The fixed value size in bytes.
    fn value_size(&self) -> usize;

    /// Inserts or updates a key.
    fn put(&mut self, key: u64, value: &[u8]) -> Result<(), StoreError>;

    /// Reads a key's value.
    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, StoreError>;

    /// Deletes a key; returns whether it existed.
    fn delete(&mut self, key: u64) -> Result<bool, StoreError>;

    /// Live key count.
    fn len(&self) -> usize;

    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative NVM statistics (bit flips, words, cache lines).
    fn device_stats(&self) -> &DeviceStats;

    /// The underlying device (wear CDFs, latency model).
    fn device(&self) -> &NvmDevice;

    /// Clears the device's cumulative statistics, so a measurement window
    /// can exclude warm-up traffic (the paper measures after warming the
    /// store with "old data", §VI-A).
    fn reset_device_stats(&mut self);
}

/// Checks a value's size against the bucket size.
pub(crate) fn check_size(expected: usize, value: &[u8]) -> Result<(), StoreError> {
    if value.len() != expected {
        Err(StoreError::WrongValueSize {
            expected,
            got: value.len(),
        })
    } else {
        Ok(())
    }
}
