//! One function per paper table/figure.
//!
//! Every function returns a [`Table`] whose rows mirror what the paper
//! plots, so the binaries just print them. `EXPERIMENTS.md` records the
//! paper-reported vs measured values for each.

use pnw_core::{IndexPlacement, PnwConfig, PnwStore, RetrainMode, Store};
use pnw_ml::elbow::{elbow_point, sse_curve};
use pnw_ml::featurize::featurize_values;
use pnw_ml::kmeans::{KMeans, KMeansConfig};
use pnw_ml::matrix::Matrix;
use pnw_ml::pca::Pca;
use pnw_nvm_sim::MemoryTech;
use pnw_schemes::SchemeKind;
use pnw_workloads::{DatasetKind, ImageStyle, Interleaved, TemplateImages, Workload};

use crate::replace::{run_pnw, run_scheme, time_training, ReplaceParams, SeriesPoint};
use crate::table::{f2, f3, Table};
use crate::Scale;

/// Cluster counts swept in Figure 6 (the paper sweeps 1..30).
pub const FIG6_KS: [usize; 7] = [1, 2, 5, 10, 14, 20, 30];

fn dataset_params(dataset: DatasetKind, scale: Scale) -> ReplaceParams {
    // Small values get big zones; large values are scaled to keep the
    // harness minutes-scale (shape, not absolute throughput, is the target).
    let value_size = dataset.build(0).value_size();
    let (buckets, writes) = if value_size <= 16 {
        (scale.pick(512, 8192), scale.pick(512, 16384))
    } else if value_size <= 512 {
        (scale.pick(192, 2048), scale.pick(192, 4096))
    } else {
        (scale.pick(128, 1024), scale.pick(128, 2048))
    };
    ReplaceParams {
        buckets,
        writes,
        seed: 0xF1_60 + dataset as u64,
    }
}

/// Figure 3: PCA cumulative explained-variance ratio vs number of
/// components, on MNIST-like images.
pub fn fig3(scale: Scale) -> Table {
    let n = scale.pick(128, 512);
    let mut w = TemplateImages::new(ImageStyle::Digits, 33);
    let values = w.take_values(n);
    let data = featurize_values(&values);
    let pca = Pca::fit(&data, 1); // spectrum is computed in full regardless
    let cum = pca.cumulative_variance_ratio();

    let mut t = Table::new(vec!["components", "cumulative variance ratio"]);
    for &c in &[1usize, 2, 5, 10, 20, 50, 100, 200, 400] {
        if c <= cum.len() {
            t.row(vec![c.to_string(), f3(cum[c - 1])]);
        }
    }
    t.row(vec![
        format!(">=80% variance at"),
        format!("{} components", pca.components_for_variance(0.8)),
    ]);
    t
}

/// Figure 4: K-means SSE vs K on MNIST-like images, with the detected
/// elbow.
pub fn fig4(scale: Scale) -> (Table, usize) {
    let n = scale.pick(96, 256);
    let mut w = TemplateImages::new(ImageStyle::Digits, 44);
    let values = w.take_values(n);
    let data = featurize_values(&values);
    let ks: Vec<usize> = (1..=15).collect();
    let curve = sse_curve(&data, &ks, 44);
    let elbow = elbow_point(&curve);

    let mut t = Table::new(vec!["K", "SSE"]);
    for (k, sse) in &curve {
        let marker = if *k == elbow { " <- elbow" } else { "" };
        t.row(vec![k.to_string(), format!("{}{}", f2(f64::from(*sse)), marker)]);
    }
    (t, elbow)
}

/// Figure 6 (one panel): bit updates per 512 bits for every baseline plus
/// PNW across the K sweep, and PNW's prediction latency.
pub fn fig6(dataset: DatasetKind, scale: Scale) -> Table {
    let p = dataset_params(dataset, scale);
    let mut t = Table::new(vec!["method", "bit updates / 512 bits", "predict µs"]);
    for kind in SchemeKind::all() {
        let s = run_scheme(kind, dataset, &p);
        t.row(vec![s.label, f2(s.flips_per_512), String::new()]);
    }
    for &k in &FIG6_KS {
        let s = run_pnw(dataset, k, &p, 1);
        t.row(vec![s.label, f2(s.flips_per_512), f2(s.predict_us)]);
    }
    t
}

/// All six Figure 6 panels.
pub fn fig6_datasets() -> [DatasetKind; 6] {
    [
        DatasetKind::Amazon,
        DatasetKind::Road,
        DatasetKind::Sherbrooke,
        DatasetKind::Traffic,
        DatasetKind::Normal,
        DatasetKind::Uniform,
    ]
}

/// Figure 7: end-to-end write latency per dataset per method, normalized to
/// the conventional write (paper reports normalized time).
pub fn fig7(scale: Scale) -> Table {
    let datasets = [
        DatasetKind::Normal,
        DatasetKind::Uniform,
        DatasetKind::Amazon,
        DatasetKind::Road,
        DatasetKind::Cifar,
        DatasetKind::Traffic,
    ];
    let mut header = vec!["method".to_string()];
    header.extend(datasets.iter().map(|d| d.name().to_string()));
    let mut t = Table::new(header);

    // Collect per-dataset series.
    let mut columns: Vec<Vec<SeriesPoint>> = Vec::new();
    for &d in &datasets {
        let p = dataset_params(d, scale);
        let mut col: Vec<SeriesPoint> = SchemeKind::all()
            .iter()
            .map(|&k| run_scheme(k, d, &p))
            .collect();
        col.push(run_pnw(d, 20, &p, 1));
        columns.push(col);
    }
    let n_methods = columns[0].len();
    for m in 0..n_methods {
        let label = columns[0][m].label.clone();
        let mut row = vec![label];
        for col in &columns {
            let conv = col[0].latency_ns.max(1e-9);
            row.push(f3(col[m].latency_ns / conv));
        }
        t.row(row);
    }
    // The PNW row above includes measured model-prediction time. At the
    // paper's full item sizes (800×600 frames ≈ 480 KB ≈ 7500 cache lines)
    // prediction is <1% of the write cost; at this harness's scaled-down
    // item sizes it dominates, so the device-only row is the one whose
    // *shape* reproduces Figure 7. EXPERIMENTS.md discusses both.
    let mut row = vec!["PNW k=20 (device only)".to_string()];
    for col in &columns {
        let conv = col[0].latency_ns.max(1e-9);
        let pnw = col.last().expect("pnw column");
        let device_only = pnw.latency_ns - pnw.predict_us * 1000.0;
        row.push(f3(device_only / conv));
    }
    t.row(row);
    t
}

/// Figure 8: average write latency vs K on the PubMed-like workload
/// (insert:delete 1:1, which `run_pnw`'s put-then-delete loop is).
pub fn fig8(scale: Scale) -> Table {
    let p = dataset_params(DatasetKind::PubMed, scale);
    let mut t = Table::new(vec!["K", "avg write latency µs", "lines/write"]);
    for &k in &FIG6_KS {
        let s = run_pnw(DatasetKind::PubMed, k, &p, 1);
        t.row(vec![
            k.to_string(),
            f2(s.latency_ns / 1000.0),
            f2(s.lines_per_write),
        ]);
    }
    t
}

/// Figure 9: average written cache lines per request, PNW vs FPTree vs
/// NoveLSM vs Path hashing; insert n items then delete 0.5n (§VI-E).
pub fn fig9(scale: Scale) -> Table {
    use pnw_baselines::{FpTreeLike, NoveLsmLike, PathHashStore};

    let datasets = [DatasetKind::Normal, DatasetKind::Road, DatasetKind::Amazon];
    let n = scale.pick(384, 4096);

    let mut header = vec!["store".to_string()];
    header.extend(datasets.iter().map(|d| d.name().to_string()));
    let mut t = Table::new(header);

    let mut rows: Vec<Vec<String>> = vec![
        vec!["FPTree".into()],
        vec!["NoveLSM".into()],
        vec!["Path hashing".into()],
        vec!["PNW".into()],
    ];

    for &d in &datasets {
        // Paper methodology (§VI-B): warm with the first items of the
        // dataset, then write the *remaining* items. One generator supplies
        // both, so the warm-up content and the incoming values share their
        // latent structure without being identical.
        let mut w = d.build(0x919);
        let vs = w.value_size();
        let warmup: Vec<Vec<u8>> = w.take_values(n * 2);
        let values: Vec<Vec<u8>> = w.take_values(n);

        // All four backends behind the one `Store` trait — no adapter.
        let stores: Vec<Box<dyn Store>> = vec![
            Box::new(FpTreeLike::new(n * 2, vs)),
            Box::new(NoveLsmLike::new(n * 2, vs)),
            Box::new(PathHashStore::new(n * 2, vs)),
            Box::new({
                // Figure 2a configuration (DRAM index), as §VI-E states.
                let cfg = PnwConfig::new(n * 2, vs)
                    .with_clusters(10)
                    .with_index(IndexPlacement::Dram)
                    .with_retrain(RetrainMode::Manual);
                let s = PnwStore::new(cfg);
                let mut it = warmup.iter();
                s.prefill_free_buckets(|| it.next().expect("enough warmup").clone())
                    .expect("prefill");
                s.retrain_now().expect("train");
                s
            }),
        ];

        for (row, store) in rows.iter_mut().zip(stores.iter()) {
            store.reset_device_stats();
            for (i, v) in values.iter().enumerate() {
                store.put(i as u64, v).expect("capacity suffices");
            }
            for i in 0..n / 2 {
                store.delete(i as u64).expect("inserted above");
            }
            let ops = (n + n / 2) as f64;
            let lines = store.device_stats().totals.lines_written as f64;
            row.push(f2(lines / ops));
        }
    }
    for r in rows {
        t.row(r);
    }
    t
}

/// One Figure 10 measurement window.
#[derive(Debug, Clone)]
pub struct Fig10Point {
    /// Items streamed so far.
    pub written: usize,
    /// Phase number (1–4).
    pub phase: usize,
    /// Mean bit updates per 512 bits over the window.
    pub flips_per_512: f64,
}

/// Figure 10: workload shift MNIST → Fashion-MNIST over four phases, with
/// the model retrained only at the start of phase 4.
pub fn fig10(scale: Scale) -> (Table, Vec<Fig10Point>) {
    let capacity = scale.pick(384, 4096);
    let per_phase = [
        scale.pick(400, 8000),  // phase 1: MNIST only
        scale.pick(450, 9000),  // phase 2: Fashion:MNIST at 2:1
        scale.pick(200, 4000),  // phase 3: Fashion only
        scale.pick(400, 8000),  // phase 4: Fashion, after retraining
    ];
    let window = scale.pick(100, 500);

    // K = 20: the stream spans two 10-class distributions, and the zone
    // holds a mixture of both around the phase boundaries.
    let store = PnwStore::new(
        PnwConfig::new(capacity, 784)
            .with_clusters(20)
            .with_seed(0xF1_610)
            .with_retrain(RetrainMode::Manual),
    );
    let mut mnist_warm = TemplateImages::new(ImageStyle::Digits, 1);
    store
        .prefill_free_buckets(|| mnist_warm.next_value())
        .expect("prefill");
    store.retrain_now().expect("train");
    store.reset_device_stats();

    let mut points = Vec::new();
    let mut written = 0usize;
    let mut win_flips = 0u64;
    let mut win_bits = 0u64;
    let mut next_key = 0u64;

    let mut run_phase = |store: &PnwStore,
                         w: &mut dyn Workload,
                         n: usize,
                         phase: usize,
                         points: &mut Vec<Fig10Point>| {
        for _ in 0..n {
            let v = w.next_value();
            let r = store.put(next_key, &v).expect("replacement keeps pool full");
            store.delete(next_key).expect("just inserted");
            next_key += 1;
            written += 1;
            win_flips += r.value_write.total_bit_flips();
            win_bits += r.value_write.bits_addressed;
            if written.is_multiple_of(window) {
                points.push(Fig10Point {
                    written,
                    phase,
                    flips_per_512: win_flips as f64 * 512.0 / win_bits.max(1) as f64,
                });
                win_flips = 0;
                win_bits = 0;
            }
        }
    };

    // One MNIST dataset and one Fashion dataset across all phases, exactly
    // as the paper streams from the same two datasets: the class templates
    // derive from the generator seed, so the template seeds stay fixed —
    // while each phase gets a fresh *sample stream* (same distribution,
    // new draws; replaying the prefill stream verbatim would score
    // zero-flip exact matches).
    const MNIST_SEED: u64 = 1;
    const FASHION_SEED: u64 = 9;

    let mut p1 = TemplateImages::new(ImageStyle::Digits, MNIST_SEED).with_stream_seed(101);
    run_phase(&store, &mut p1, per_phase[0], 1, &mut points);

    let mut p2 = Interleaved::new(
        TemplateImages::new(ImageStyle::Fashion, FASHION_SEED).with_stream_seed(102),
        TemplateImages::new(ImageStyle::Digits, MNIST_SEED).with_stream_seed(103),
        2,
        1,
    );
    run_phase(&store, &mut p2, per_phase[1], 2, &mut points);

    let mut p3 = TemplateImages::new(ImageStyle::Fashion, FASHION_SEED).with_stream_seed(104);
    run_phase(&store, &mut p3, per_phase[2], 3, &mut points);

    // Phase 4: retrain on the (now Fashion-dominated) data zone.
    store.retrain_now().expect("retrain");
    let mut p4 = TemplateImages::new(ImageStyle::Fashion, FASHION_SEED).with_stream_seed(105);
    run_phase(&store, &mut p4, per_phase[3], 4, &mut points);

    let mut t = Table::new(vec!["written", "phase", "bit updates / 512 bits"]);
    for p in &points {
        t.row(vec![
            p.written.to_string(),
            p.phase.to_string(),
            f2(p.flips_per_512),
        ]);
    }
    (t, points)
}

/// Figure 11: model training time for K ∈ {2,4,8,16} at several sample
/// sizes, single-core vs multi-core, on the two video datasets.
pub fn fig11(scale: Scale) -> Table {
    let sizes: Vec<usize> = match scale {
        Scale::Quick => vec![200, 400],
        Scale::Full => vec![1000, 2000, 4000, 8000],
    };
    let mut t = Table::new(vec![
        "dataset", "K", "samples", "1-core ms", "4-core ms", "speedup",
    ]);
    for dataset in [DatasetKind::Traffic, DatasetKind::Sherbrooke] {
        for &k in &[2usize, 4, 8, 16] {
            for &n in &sizes {
                let t1 = time_training(dataset, k, n, 1, 0x11).as_secs_f64() * 1e3;
                let t4 = time_training(dataset, k, n, 4, 0x11).as_secs_f64() * 1e3;
                t.row(vec![
                    dataset.name().to_string(),
                    k.to_string(),
                    n.to_string(),
                    f2(t1),
                    f2(t4),
                    f2(t1 / t4.max(1e-9)),
                ]);
            }
        }
    }
    t
}

/// Wear experiment output: CDF checkpoints for Figures 12 and 13.
pub struct WearResult {
    /// `(x, P(word writes <= x))` checkpoints.
    pub word_cdf: Vec<(u32, f64)>,
    /// `(x, P(bit flips <= x))` checkpoints.
    pub bit_cdf: Vec<(u32, f64)>,
}

/// Figures 12/13: wear-leveling CDFs at k=5 and k=30 on the MNIST +
/// Fashion mixture; each word of the data zone updated ~4× on average.
pub fn fig12_13(k: usize, scale: Scale) -> WearResult {
    let capacity = scale.pick(256, 2048);
    let writes = capacity * 4;
    let mut mix = Interleaved::new(
        TemplateImages::new(ImageStyle::Digits, 7).with_stream_seed(201),
        TemplateImages::new(ImageStyle::Fashion, 8).with_stream_seed(202),
        1,
        1,
    );
    let store = PnwStore::new(
        PnwConfig::new(capacity, 784)
            .with_clusters(k)
            .with_seed(0x1213)
            .with_bit_wear(true)
            .with_retrain(RetrainMode::Manual),
    );
    store.prefill_free_buckets(|| mix.next_value()).expect("prefill");
    store.retrain_now().expect("train");
    // Stats and wear counters start clean so the CDFs cover the measured
    // stream only, not the warm-up.
    store.reset_device_stats();
    store.reset_wear();

    for i in 0..writes {
        let v = mix.next_value();
        store.put(i as u64, &v).expect("pool cycles");
        store.delete(i as u64).expect("just inserted");
    }

    let wcdf = store.word_wear_cdf();
    let bcdf = store.bit_wear_cdf().expect("bit wear enabled");

    let checkpoints = |max: u32| -> Vec<u32> {
        let mut xs: Vec<u32> = (0..=max.min(10)).collect();
        let mut x = 12;
        while x <= max {
            xs.push(x);
            x += x / 4 + 1;
        }
        xs.push(max);
        xs.dedup();
        xs
    };
    WearResult {
        word_cdf: checkpoints(wcdf.max())
            .into_iter()
            .map(|x| (x, wcdf.probability_le(x)))
            .collect(),
        bit_cdf: checkpoints(bcdf.max())
            .into_iter()
            .map(|x| (x, bcdf.probability_le(x)))
            .collect(),
    }
}

/// Renders a [`WearResult`] as the two CDF tables.
pub fn wear_tables(k: usize, r: &WearResult) -> (Table, Table) {
    let mut tw = Table::new(vec![
        format!("max writes per address (k={k})"),
        "P(X <= x)".to_string(),
    ]);
    for (x, p) in &r.word_cdf {
        tw.row(vec![x.to_string(), f3(*p)]);
    }
    let mut tb = Table::new(vec![
        format!("flips per bit (k={k})"),
        "P(X <= x)".to_string(),
    ]);
    for (x, p) in &r.bit_cdf {
        tb.row(vec![x.to_string(), f3(*p)]);
    }
    (tw, tb)
}

/// Table I: memory-technology characteristics (the constants the latency
/// model uses).
pub fn table1() -> Table {
    let mut t = Table::new(vec![
        "Category",
        "Read Latency",
        "Write Latency",
        "Write Endurance",
    ]);
    for (name, tech) in [
        ("HDD", MemoryTech::Hdd),
        ("DRAM", MemoryTech::Dram),
        ("PCM", MemoryTech::Pcm),
        ("ReRAM", MemoryTech::ReRam),
        ("SLC Flash", MemoryTech::SlcFlash),
        ("STT-RAM", MemoryTech::SttRam),
        ("3D-XPoint", MemoryTech::Xpoint),
    ] {
        t.row(vec![
            name.to_string(),
            format!("{:?}", tech.read_latency()),
            format!("{:?}", tech.write_latency()),
            format!("{:.0e}", tech.endurance_writes()),
        ]);
    }
    t
}

/// Table II: the 6-entry worked example — cluster it, show the labels and
/// verify the paper's "1 bit per item" claim for d1 and d2.
pub fn table2() -> Table {
    let rows: Vec<Vec<f32>> = vec![
        vec![0., 0., 0., 0., 0., 1., 1., 1.],
        vec![0., 0., 0., 0., 1., 0., 1., 1.],
        vec![0., 0., 1., 0., 1., 1., 0., 0.],
        vec![0., 0., 1., 1., 1., 1., 0., 0.],
        vec![1., 1., 0., 1., 0., 0., 0., 0.],
        vec![0., 1., 1., 1., 0., 0., 0., 0.],
    ];
    let data = Matrix::from_rows(&rows);
    let model = KMeans::fit(&data, &KMeansConfig::new(3).with_seed(42));
    let labels = model.labels(&data);

    let mut t = Table::new(vec!["index", "content", "cluster"]);
    for (i, row) in rows.iter().enumerate() {
        let content: String = row.iter().map(|&b| if b > 0.5 { '1' } else { '0' }).collect();
        t.row(vec![i.to_string(), content, labels[i].to_string()]);
    }
    // The paper's d1/d2 placements.
    let d1 = [0.0f32, 0., 0., 0., 1., 1., 1., 1.];
    let d2 = [1.0f32, 1., 1., 1., 0., 0., 0., 0.];
    let c1 = model.predict(&d1);
    let c2 = model.predict(&d2);
    // Min Hamming distance of d to the members of cluster c.
    let min_ham = |d: &[f32], c: usize| -> u32 {
        rows.iter()
            .zip(&labels)
            .filter(|(_, &l)| l == c)
            .map(|(r, _)| {
                r.iter()
                    .zip(d)
                    .filter(|(a, b)| (**a > 0.5) != (**b > 0.5))
                    .count() as u32
            })
            .min()
            .unwrap_or(u32::MAX)
    };
    t.row(vec![
        "d1=00001111".to_string(),
        format!("-> cluster {c1}"),
        format!("{} bit flip(s)", min_ham(&d1, c1)),
    ]);
    t.row(vec![
        "d2=11110000".to_string(),
        format!("-> cluster {c2}"),
        format!("{} bit flip(s)", min_ham(&d2, c2)),
    ]);
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig3_variance_is_monotone() {
        let t = fig3(Scale::Quick);
        assert!(t.rows.len() >= 5);
        let vals: Vec<f64> = t
            .rows
            .iter()
            .filter_map(|r| r[1].parse::<f64>().ok())
            .collect();
        for w in vals.windows(2) {
            assert!(w[1] >= w[0] - 1e-9, "{vals:?}");
        }
    }

    #[test]
    fn fig4_produces_elbow_in_range() {
        let (t, elbow) = fig4(Scale::Quick);
        assert_eq!(t.rows.len(), 15);
        assert!((2..=15).contains(&elbow), "elbow={elbow}");
    }

    #[test]
    fn table2_matches_paper() {
        let t = table2();
        // 6 data rows + 2 placement rows.
        assert_eq!(t.rows.len(), 8);
        // Pairs share clusters.
        assert_eq!(t.rows[0][2], t.rows[1][2]);
        assert_eq!(t.rows[2][2], t.rows[3][2]);
        assert_eq!(t.rows[4][2], t.rows[5][2]);
        assert_ne!(t.rows[0][2], t.rows[2][2]);
        // The paper's headline: 1 bit per item, no extra flag bits.
        assert!(t.rows[6][2].starts_with('1'), "{:?}", t.rows[6]);
        assert!(t.rows[7][2].starts_with('1'), "{:?}", t.rows[7]);
    }

    #[test]
    fn table1_lists_all_technologies() {
        assert_eq!(table1().rows.len(), 7);
    }

    #[test]
    fn fig12_13_cdfs_are_valid() {
        let r = fig12_13(5, Scale::Quick);
        assert!(!r.word_cdf.is_empty());
        assert!(!r.bit_cdf.is_empty());
        let last = r.word_cdf.last().unwrap();
        assert!((last.1 - 1.0).abs() < 1e-9, "CDF must end at 1.0");
        for w in r.word_cdf.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }

    #[test]
    fn fig10_phase2_degrades_phase4_recovers() {
        let (_, points) = fig10(Scale::Quick);
        let mean = |ph: usize| -> f64 {
            let xs: Vec<f64> = points
                .iter()
                .filter(|p| p.phase == ph)
                .map(|p| p.flips_per_512)
                .collect();
            xs.iter().sum::<f64>() / xs.len().max(1) as f64
        };
        let p1 = mean(1);
        let p2 = mean(2);
        let p3 = mean(3);
        let p4 = mean(4);
        // The paper's Figure 10 narrative: phase 2's foreign items spike the
        // bit flips immediately; phase 4 (same distribution as phase 3 but
        // with a retrained model) "got better and fluctuated less".
        assert!(p2 > p1 * 1.5, "mixing a new distribution must hurt: {p1} vs {p2}");
        assert!(p4 < p3 * 0.9, "retraining must help: phase3 {p3} vs phase4 {p4}");
    }
}
