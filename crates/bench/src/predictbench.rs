//! Packed-vs-float prediction microbenchmark.
//!
//! The paper budgets 5–6 µs of model latency per PUT (§VI-D, Figure 6);
//! the bit-domain LUT kernel ([`pnw_ml::packed`]) replaces the float
//! featurize-then-scan path on that budget's critical path. This module
//! measures both implementations on the *same trained model* across value
//! sizes and cluster counts, reporting ns/op — the numbers recorded in
//! `BENCH_predict.json` by the `predict` binary.
//!
//! PCA is disabled for these cases (threshold raised above every measured
//! size) so the float baseline is always the full featurize + dense-scan
//! pipeline the packed kernel replaces; PCA-configured models keep the
//! sparse projector path in production and are out of scope here.

use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

use pnw_core::{ModelManager, PcaPolicy, PnwConfig, PredictScratch};
use pnw_ml::featurize::bits_to_features;
use pnw_ml::packed::PackedPredictor;
use rand::{rngs::StdRng, Rng, SeedableRng};

/// One (value size, cluster count) measurement point.
#[derive(Debug, Clone, Copy)]
pub struct PredictCase {
    /// Value size in bytes.
    pub value_size: usize,
    /// Cluster count K.
    pub k: usize,
}

/// The default sweep: value sizes around the paper's small-item regime
/// with a K sweep at 64 B (the acceptance point is 64 B / K = 16).
pub fn default_cases() -> Vec<PredictCase> {
    [(8, 16), (64, 4), (64, 16), (64, 64), (256, 16)]
        .into_iter()
        .map(|(value_size, k)| PredictCase { value_size, k })
        .collect()
}

/// ns/op results for one case.
#[derive(Debug, Clone)]
pub struct PredictResult {
    /// Value size in bytes.
    pub value_size: usize,
    /// Cluster count K actually fitted (may be below the request on tiny
    /// data; the generator provides ≥ K distinct patterns so it never is).
    pub k: usize,
    /// Timed iterations per path.
    pub iters: u64,
    /// Packed LUT kernel (runtime-dispatched SIMD), nanoseconds per
    /// prediction.
    pub packed_ns: f64,
    /// The same packed LUT tables forced onto the scalar fallback kernel,
    /// nanoseconds per prediction — isolates the SIMD gather's gain from
    /// the bit-domain reformulation itself.
    pub packed_scalar_ns: f64,
    /// Float featurize + dense scan, nanoseconds per prediction.
    pub float_ns: f64,
    /// `float_ns / packed_ns`.
    pub speedup: f64,
    /// `packed_scalar_ns / packed_ns` — 1.0 on hosts where no SIMD kernel
    /// is compiled in or detected.
    pub simd_speedup: f64,
}

/// Deterministic value generator: `families` byte-fill patterns plus a
/// random tail, the same shape the throughput harness writes.
fn gen_values(n: usize, value_size: usize, families: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let fill = (255 / families.max(1) * (i % families.max(1))) as u8;
            let mut v = vec![fill; value_size];
            let tail = value_size.min(4);
            for b in &mut v[value_size - tail..] {
                *b = rng.gen();
            }
            v
        })
        .collect()
}

/// Trains a manager for one case (PCA disabled so the float baseline is
/// the full bit-feature scan at every size).
pub fn trained_manager(case: PredictCase, seed: u64) -> ModelManager {
    let cfg = PnwConfig::new(1024, case.value_size)
        .with_clusters(case.k)
        .with_seed(seed)
        .with_pca(PcaPolicy {
            threshold_bits: usize::MAX,
            ..PcaPolicy::default()
        });
    let mut m = ModelManager::new(&cfg);
    m.train(&gen_values(512, case.value_size, case.k.max(4), seed ^ 0xFEED));
    assert!(m.uses_packed(), "bench model must be bit-domain");
    m
}

/// Measures one case: `iters` timed predictions per path (clamped to ≥ 1
/// so the ns/op division is always defined) over a rotating probe set,
/// after an eighth of that as warm-up.
pub fn measure_case(case: PredictCase, iters: u64, seed: u64) -> PredictResult {
    let iters = iters.max(1);
    let m = trained_manager(case, seed);
    let probes = gen_values(64, case.value_size, case.k.max(4), seed ^ 0xBEEF);
    let mut scratch = PredictScratch::new();

    let mut sink = 0usize;
    for (i, v) in probes.iter().cycle().take((iters / 8).max(1) as usize).enumerate() {
        sink ^= m.predict_into(v, &mut scratch) ^ i;
    }
    let t0 = Instant::now();
    for v in probes.iter().cycle().take(iters as usize) {
        sink ^= m.predict_into(black_box(v), &mut scratch);
    }
    let packed_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    // Same LUT tables, scalar accumulator forced: what the packed path
    // costs on a host without usable vector units.
    let packed = PackedPredictor::from_centroids(m.kmeans().centroids());
    let mut dist = vec![0.0f32; m.k()];
    for v in probes.iter().cycle().take((iters / 8).max(1) as usize) {
        sink ^= packed.distances_into_scalar(v, &mut dist);
    }
    let t0 = Instant::now();
    for v in probes.iter().cycle().take(iters as usize) {
        sink ^= packed.distances_into_scalar(black_box(v), &mut dist);
    }
    let packed_scalar_ns = t0.elapsed().as_nanos() as f64 / iters as f64;

    // Reference float path: featurize into a fresh feature vector, dense
    // K×d scan — exactly what every PUT paid before the packed kernel.
    for v in probes.iter().cycle().take((iters / 8).max(1) as usize) {
        sink ^= m.kmeans().predict(&bits_to_features(v));
    }
    let t0 = Instant::now();
    for v in probes.iter().cycle().take(iters as usize) {
        sink ^= m.kmeans().predict(&bits_to_features(black_box(v)));
    }
    let float_ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    black_box(sink);

    PredictResult {
        value_size: case.value_size,
        k: m.k(),
        iters,
        packed_ns,
        packed_scalar_ns,
        float_ns,
        speedup: float_ns / packed_ns.max(1e-9),
        simd_speedup: packed_scalar_ns / packed_ns.max(1e-9),
    }
}

/// Runs the whole sweep.
pub fn run_sweep(cases: &[PredictCase], iters: u64, seed: u64) -> Vec<PredictResult> {
    cases.iter().map(|&c| measure_case(c, iters, seed)).collect()
}

/// Serializes results as JSON (hand-rolled, like the throughput harness —
/// the workspace has no JSON dependency) for `BENCH_predict.json`.
pub fn to_json(results: &[PredictResult]) -> String {
    let mut out = String::from("{\n  \"bench\": \"predict\",\n  \"unit\": \"ns/op\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"value_size\": {}, \"k\": {}, \"iters\": {}, \
             \"packed_ns\": {:.1}, \"packed_scalar_ns\": {:.1}, \"float_ns\": {:.1}, \
             \"speedup\": {:.2}, \"simd_speedup\": {:.2}}}{}\n",
            r.value_size,
            r.k,
            r.iters,
            r.packed_ns,
            r.packed_scalar_ns,
            r.float_ns,
            r.speedup,
            r.simd_speedup,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes [`to_json`] output to `path`.
pub fn write_json(path: &Path, results: &[PredictResult]) -> std::io::Result<()> {
    std::fs::write(path, to_json(results))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_sane_numbers() {
        let r = measure_case(PredictCase { value_size: 16, k: 4 }, 200, 7);
        assert_eq!(r.value_size, 16);
        assert_eq!(r.k, 4);
        assert!(r.packed_ns > 0.0);
        assert!(r.packed_scalar_ns > 0.0);
        assert!(r.float_ns > 0.0);
        assert!(r.speedup > 0.0);
        assert!(r.simd_speedup > 0.0);
    }

    #[test]
    fn json_shape() {
        let j = to_json(&run_sweep(&[PredictCase { value_size: 8, k: 2 }], 100, 3));
        assert!(j.contains("\"bench\": \"predict\""));
        assert!(j.contains("\"packed_ns\""));
        assert!(j.contains("\"packed_scalar_ns\""));
        assert!(j.contains("\"speedup\""));
        assert!(j.contains("\"simd_speedup\""));
    }

    #[test]
    fn both_paths_agree_on_predictions() {
        let case = PredictCase { value_size: 32, k: 8 };
        let m = trained_manager(case, 11);
        let mut scratch = PredictScratch::new();
        for v in gen_values(32, 32, 8, 99) {
            assert_eq!(
                m.predict_into(&v, &mut scratch),
                m.kmeans().predict(&bits_to_features(&v)),
            );
        }
    }
}
