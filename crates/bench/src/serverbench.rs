//! Open-loop load generation against a running
//! [`pnw_server::Server`] — the serving-layer counterpart of the
//! closed-loop [`throughput`](crate::throughput) harness.
//!
//! # Open loop, and why it matters
//!
//! The closed-loop harness issues each op only after the previous one
//! completes: when the store slows down, the *offered load drops with
//! it*, which hides queueing delay — the coordinated-omission trap. This
//! harness instead schedules arrivals from a **Poisson process at a fixed
//! offered rate** (exponential inter-arrival times) and measures each
//! op's **sojourn time from its scheduled arrival**, not from when the
//! worker finally got around to sending it. A generator running behind
//! schedule keeps issuing — late ops are charged their full backlog wait,
//! so p99 at loads past saturation shows the queue growing instead of a
//! flattering service time.
//!
//! Reports are labeled `loop_mode: "open"`; never compare them against
//! `"closed"` rows as if they measured the same quantity.
//!
//! # Retries and faults
//!
//! Retryable typed errors ([`WireError::is_retryable`]) back off with
//! full jitter and re-issue, bounded by [`LoadConfig::retry`]; the
//! sojourn clock keeps running across retries, so a PUT that needed three
//! backpressure retries reports the latency the *caller* saw. With
//! [`FaultPlan`] enabled, workers also attack the server on a schedule:
//! hard connection kills, torn frames (half a frame then a dead socket),
//! and corrupt frames (CRC bit flip), each followed by a reconnect —
//! verifying mid-load that one abused connection never takes the server
//! (or the other workers) down.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use pnw_server::{Client, ClientError, Request, RetryPolicy, ServerAddr, WireError};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::throughput::OpMix;

/// When and how workers inject faults, in ops per worker (0 = never).
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultPlan {
    /// Every N ops: kill the connection mid-conversation and reconnect.
    pub kill_every: u64,
    /// Every N ops: send a torn frame (partial write + dead socket).
    pub torn_every: u64,
    /// Every N ops: send a CRC-corrupt frame (the server must quarantine
    /// exactly that connection).
    pub corrupt_every: u64,
}

impl FaultPlan {
    /// A plan that exercises every fault kind on a short cycle.
    pub fn aggressive() -> Self {
        FaultPlan { kill_every: 97, torn_every: 131, corrupt_every: 173 }
    }

    /// Whether any fault is scheduled.
    pub fn any(&self) -> bool {
        self.kill_every > 0 || self.torn_every > 0 || self.corrupt_every > 0
    }
}

/// Configuration of one open-loop run.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Worker connections; the offered rate is split evenly across them.
    pub connections: usize,
    /// Total offered arrival rate, ops/sec (Poisson across all workers).
    pub offered_ops_per_sec: f64,
    /// Arrivals per worker (the run length; wall time ≈ arrivals/rate).
    pub arrivals_per_conn: usize,
    /// Distinct keys (uniform popularity; the serving layer is the
    /// subject here, not cache behavior).
    pub key_space: u64,
    /// Value size in bytes (must match the server's store).
    pub value_size: usize,
    /// Operation mix.
    pub mix: OpMix,
    /// Per-request deadline stamped on the wire (`None` = unbounded).
    pub deadline: Option<Duration>,
    /// Retry policy for retryable typed errors and connection failures.
    pub retry: RetryPolicy,
    /// Fault-injection schedule.
    pub faults: FaultPlan,
    /// RNG seed; worker `w` derives `seed + w`.
    pub seed: u64,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            connections: 4,
            offered_ops_per_sec: 2_000.0,
            arrivals_per_conn: 1_000,
            key_space: 4_096,
            value_size: 64,
            mix: OpMix::mixed(),
            deadline: None,
            retry: RetryPolicy::default(),
            faults: FaultPlan::default(),
            seed: 0x09E4_0000_0000_0BEE,
        }
    }
}

/// Results of one open-loop run at one offered load.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Always `"open"` (see the module docs).
    pub loop_mode: &'static str,
    /// Worker connections.
    pub connections: usize,
    /// The offered (scheduled) arrival rate, ops/sec.
    pub offered_ops_per_sec: f64,
    /// The rate actually completed, ops/sec of wall time.
    pub achieved_ops_per_sec: f64,
    /// Ops that eventually succeeded (possibly after retries).
    pub completed: u64,
    /// Ops that failed even after exhausting retries.
    pub failed: u64,
    /// Total retry attempts across all ops.
    pub retries: u64,
    /// Typed `Backpressure` rejections observed (pre-retry).
    pub backpressure: u64,
    /// Typed `Overloaded` rejections observed.
    pub overloaded: u64,
    /// Typed `DeadlineExceeded` rejections observed.
    pub deadline_exceeded: u64,
    /// Typed `Draining` rejections observed.
    pub draining: u64,
    /// Typed `Corruption` errors observed — reads the store *detected* as
    /// corrupt rather than serving silently. Non-retryable, so each one
    /// also counts as a failed op.
    pub corruption: u64,
    /// Faults injected (kills + torn + corrupt frames).
    pub faults_injected: u64,
    /// Reconnects performed (after faults and connection errors).
    pub reconnects: u64,
    /// Median sojourn time (scheduled arrival → completion), µs.
    pub p50_us: u64,
    /// 90th-percentile sojourn time, µs.
    pub p90_us: u64,
    /// 99th-percentile sojourn time, µs. Past saturation this grows with
    /// the backlog — the number closed-loop measurement hides.
    pub p99_us: u64,
    /// Worst sojourn time, µs.
    pub max_us: u64,
    /// Wall-clock of the measured window.
    pub elapsed: Duration,
}

#[derive(Default)]
struct Tally {
    completed: AtomicU64,
    failed: AtomicU64,
    retries: AtomicU64,
    backpressure: AtomicU64,
    overloaded: AtomicU64,
    deadline_exceeded: AtomicU64,
    draining: AtomicU64,
    corruption: AtomicU64,
    faults: AtomicU64,
    reconnects: AtomicU64,
}

fn note_typed_error(tally: &Tally, e: &ClientError) {
    if let ClientError::Server(w) = e {
        match w {
            WireError::Backpressure { .. } => {
                tally.backpressure.fetch_add(1, Ordering::Relaxed);
            }
            WireError::Overloaded => {
                tally.overloaded.fetch_add(1, Ordering::Relaxed);
            }
            WireError::DeadlineExceeded => {
                tally.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
            }
            WireError::Draining => {
                tally.draining.fetch_add(1, Ordering::Relaxed);
            }
            WireError::Corruption { .. } => {
                tally.corruption.fetch_add(1, Ordering::Relaxed);
            }
            _ => {}
        }
    }
}

/// One op under the retry policy, counting typed rejections and
/// reconnecting on connection failures. Returns whether it succeeded.
fn call_counted(
    client: &mut Client,
    req: &Request,
    retry: &RetryPolicy,
    rng_state: &mut u64,
    tally: &Tally,
) -> bool {
    let mut attempt = 0u32;
    loop {
        let err = match client.call(req) {
            Ok(_) => return true,
            Err(e) => e,
        };
        note_typed_error(tally, &err);
        if !err.is_retryable() || attempt >= retry.max_retries {
            return false;
        }
        if matches!(err, ClientError::Io(_) | ClientError::Frame(_))
            && client.reconnect().is_ok()
        {
            tally.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        std::thread::sleep(retry.backoff(attempt, rng_state));
        tally.retries.fetch_add(1, Ordering::Relaxed);
        attempt += 1;
    }
}

/// Injects the fault scheduled for op number `n` (if any); returns how
/// many faults fired.
fn maybe_fault(client: &mut Client, plan: &FaultPlan, n: u64, tally: &Tally) {
    let due = |every: u64| every > 0 && n % every == every - 1;
    if due(plan.kill_every) {
        client.kill();
        tally.faults.fetch_add(1, Ordering::Relaxed);
        if client.reconnect().is_ok() {
            tally.reconnects.fetch_add(1, Ordering::Relaxed);
        }
    }
    if due(plan.torn_every) {
        // Torn frame: half a PUT frame, then a dead socket.
        let _ = client.send_torn_frame(&Request::Get { key: 0 }, 9);
        tally.faults.fetch_add(1, Ordering::Relaxed);
        if client.reconnect().is_ok() {
            tally.reconnects.fetch_add(1, Ordering::Relaxed);
        }
    }
    if due(plan.corrupt_every) {
        // Corrupt frame: the server quarantines this connection; the
        // next call sees the typed error / EOF and reconnects.
        let _ = client.send_corrupt_frame(&Request::Get { key: 0 });
        tally.faults.fetch_add(1, Ordering::Relaxed);
        if client.reconnect().is_ok() {
            tally.reconnects.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Runs one open-loop measurement against a server at `addr`.
///
/// Every worker needs the server's store to accept `cfg.value_size`
/// values; size them to match.
pub fn run_open_loop(addr: &ServerAddr, cfg: &LoadConfig) -> LoadReport {
    assert!(cfg.connections > 0, "need at least one connection");
    assert!(cfg.offered_ops_per_sec > 0.0, "offered load must be positive");
    let per_conn_rate = cfg.offered_ops_per_sec / cfg.connections as f64;
    let tally = Arc::new(Tally::default());
    let barrier = Arc::new(Barrier::new(cfg.connections + 1));
    let epoch = Instant::now();

    let mut handles = Vec::new();
    for w in 0..cfg.connections {
        let addr = addr.clone();
        let cfg = cfg.clone();
        let tally = Arc::clone(&tally);
        let barrier = Arc::clone(&barrier);
        handles.push(std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect");
            client.set_deadline(cfg.deadline);
            client.reseed(cfg.seed ^ (w as u64).wrapping_mul(0x9E37_79B9));
            let mut rng = StdRng::seed_from_u64(cfg.seed + w as u64);
            let mut backoff_rng = cfg.seed ^ 0xB0FF ^ (w as u64) | 1;
            let mut sojourn_us: Vec<u64> = Vec::with_capacity(cfg.arrivals_per_conn);
            let mut value = vec![0u8; cfg.value_size];

            barrier.wait();
            let start = Instant::now();
            // The Poisson arrival schedule, built incrementally: the next
            // arrival is `Exp(rate)` after the previous *scheduled* one —
            // independent of when the worker actually caught up.
            let mut scheduled = Duration::ZERO;
            for n in 0..cfg.arrivals_per_conn {
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                scheduled += Duration::from_secs_f64(-u.ln() / per_conn_rate);
                // Sleep only if ahead of schedule; behind, issue at once
                // and let the sojourn clock charge the backlog.
                let now = start.elapsed();
                if scheduled > now {
                    std::thread::sleep(scheduled - now);
                }
                maybe_fault(&mut client, &cfg.faults, n as u64, &tally);
                let key = rng.gen_range(0..cfg.key_space);
                let dice: u8 = rng.gen_range(0..100u8);
                let req = if dice < cfg.mix.put_pct {
                    for b in &mut value {
                        *b = rng.gen();
                    }
                    Request::Put { key, value: value.clone() }
                } else if dice < cfg.mix.put_pct + cfg.mix.get_pct {
                    Request::Get { key }
                } else {
                    Request::Delete { key }
                };
                let ok = call_counted(&mut client, &req, &cfg.retry, &mut backoff_rng, &tally);
                if ok {
                    tally.completed.fetch_add(1, Ordering::Relaxed);
                } else {
                    tally.failed.fetch_add(1, Ordering::Relaxed);
                }
                // Coordinated-omission-safe: from *scheduled* arrival, not
                // from send.
                let sojourn = start.elapsed().saturating_sub(scheduled);
                sojourn_us.push(sojourn.as_micros() as u64);
            }
            (epoch.elapsed(), sojourn_us)
        }));
    }

    barrier.wait();
    let started = epoch.elapsed();
    let mut sojourns: Vec<u64> = Vec::new();
    let mut end = Duration::ZERO;
    for h in handles {
        let (t_end, s) = h.join().expect("load worker");
        end = end.max(t_end);
        sojourns.extend(s);
    }
    let elapsed = end.saturating_sub(started);

    sojourns.sort_unstable();
    let pct = |p: f64| -> u64 {
        if sojourns.is_empty() {
            0
        } else {
            sojourns[((sojourns.len() as f64 - 1.0) * p).round() as usize]
        }
    };
    let completed = tally.completed.load(Ordering::Relaxed);
    LoadReport {
        loop_mode: "open",
        connections: cfg.connections,
        offered_ops_per_sec: cfg.offered_ops_per_sec,
        achieved_ops_per_sec: completed as f64 / elapsed.as_secs_f64().max(1e-9),
        completed,
        failed: tally.failed.load(Ordering::Relaxed),
        retries: tally.retries.load(Ordering::Relaxed),
        backpressure: tally.backpressure.load(Ordering::Relaxed),
        overloaded: tally.overloaded.load(Ordering::Relaxed),
        deadline_exceeded: tally.deadline_exceeded.load(Ordering::Relaxed),
        draining: tally.draining.load(Ordering::Relaxed),
        corruption: tally.corruption.load(Ordering::Relaxed),
        faults_injected: tally.faults.load(Ordering::Relaxed),
        reconnects: tally.reconnects.load(Ordering::Relaxed),
        p50_us: pct(0.50),
        p90_us: pct(0.90),
        p99_us: pct(0.99),
        max_us: sojourns.last().copied().unwrap_or(0),
        elapsed,
    }
}

/// Serializes open-loop reports as JSON (hand-rolled like the rest of the
/// perf-trajectory files) for `BENCH_server.json`.
pub fn to_json(reports: &[LoadReport]) -> String {
    let mut out = String::from("{\n  \"bench\": \"server_open_loop\",\n  \"results\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"loop_mode\": \"{}\", \"connections\": {}, \
             \"offered_ops_per_sec\": {:.1}, \"achieved_ops_per_sec\": {:.1}, \
             \"completed\": {}, \"failed\": {}, \"retries\": {}, \
             \"backpressure\": {}, \"overloaded\": {}, \
             \"deadline_exceeded\": {}, \"draining\": {}, \
             \"corruption\": {}, \
             \"faults_injected\": {}, \"reconnects\": {}, \
             \"p50_us\": {}, \"p90_us\": {}, \"p99_us\": {}, \"max_us\": {}, \
             \"elapsed_ms\": {:.3}}}{}\n",
            r.loop_mode,
            r.connections,
            r.offered_ops_per_sec,
            r.achieved_ops_per_sec,
            r.completed,
            r.failed,
            r.retries,
            r.backpressure,
            r.overloaded,
            r.deadline_exceeded,
            r.draining,
            r.corruption,
            r.faults_injected,
            r.reconnects,
            r.p50_us,
            r.p90_us,
            r.p99_us,
            r.max_us,
            r.elapsed.as_secs_f64() * 1e3,
            if i + 1 < reports.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes [`to_json`] output to `path`.
pub fn write_json(path: &std::path::Path, reports: &[LoadReport]) -> std::io::Result<()> {
    std::fs::write(path, to_json(reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnw_core::{PnwConfig, ShardedPnwStore, Store};
    use pnw_server::{Server, ServerConfig};

    fn start_server(value_size: usize) -> Server {
        let store: Arc<dyn Store> = Arc::new(ShardedPnwStore::new(
            PnwConfig::new(16_384, value_size).with_clusters(2).with_shards(2),
        ));
        Server::start(
            store,
            &ServerAddr::parse("tcp://127.0.0.1:0").unwrap(),
            ServerConfig::default(),
        )
        .unwrap()
    }

    #[test]
    fn open_loop_completes_and_reports() {
        let server = start_server(16);
        let cfg = LoadConfig {
            connections: 2,
            offered_ops_per_sec: 4_000.0,
            arrivals_per_conn: 150,
            key_space: 512,
            value_size: 16,
            ..Default::default()
        };
        let r = run_open_loop(server.local_addr(), &cfg);
        assert_eq!(r.loop_mode, "open");
        assert_eq!(r.completed + r.failed, 300);
        assert_eq!(r.failed, 0, "unloaded server must complete everything");
        assert!(r.achieved_ops_per_sec > 0.0);
        assert!(r.p50_us <= r.p99_us && r.p99_us <= r.max_us);
        let j = to_json(&[r]);
        assert!(j.contains("\"bench\": \"server_open_loop\""));
        assert!(j.contains("\"loop_mode\": \"open\""));
        server.drain().unwrap();
    }

    #[test]
    fn faults_do_not_sink_the_run() {
        let server = start_server(16);
        let cfg = LoadConfig {
            connections: 2,
            offered_ops_per_sec: 6_000.0,
            arrivals_per_conn: 120,
            key_space: 256,
            value_size: 16,
            faults: FaultPlan { kill_every: 25, torn_every: 40, corrupt_every: 55 },
            ..Default::default()
        };
        let r = run_open_loop(server.local_addr(), &cfg);
        assert!(r.faults_injected > 0, "faults must actually fire");
        assert!(r.reconnects >= r.faults_injected, "every fault reconnects");
        // The server survives: the overwhelming majority of ops complete
        // (an op racing its own injected kill may legitimately fail).
        assert!(
            r.completed as f64 >= 0.95 * (r.completed + r.failed) as f64,
            "completed {} failed {}",
            r.completed,
            r.failed
        );
        let stats = server.stats();
        assert!(stats.quarantined > 0, "corrupt frames must quarantine");
        server.drain().unwrap();
    }

    #[test]
    fn saturation_shows_up_in_sojourn_not_drops() {
        // max_inflight 1 + a load far above what one permit serves: the
        // open-loop p99 must reflect the backlog (≫ p50 service time).
        let store: Arc<dyn Store> = Arc::new(ShardedPnwStore::new(
            PnwConfig::new(16_384, 16).with_clusters(2).with_shards(2),
        ));
        let server = Server::start(
            store,
            &ServerAddr::parse("tcp://127.0.0.1:0").unwrap(),
            ServerConfig { max_inflight: 1, ..ServerConfig::default() },
        )
        .unwrap();
        let lo = run_open_loop(
            server.local_addr(),
            &LoadConfig {
                connections: 1,
                offered_ops_per_sec: 500.0,
                arrivals_per_conn: 100,
                value_size: 16,
                ..Default::default()
            },
        );
        let hi = run_open_loop(
            server.local_addr(),
            &LoadConfig {
                connections: 4,
                offered_ops_per_sec: 100_000.0,
                arrivals_per_conn: 100,
                value_size: 16,
                ..Default::default()
            },
        );
        assert!(
            hi.achieved_ops_per_sec < hi.offered_ops_per_sec * 0.9
                || hi.p99_us > lo.p99_us,
            "past saturation the report must show backlog: lo p99 {}µs hi p99 {}µs",
            lo.p99_us,
            hi.p99_us
        );
        server.drain().unwrap();
    }
}
