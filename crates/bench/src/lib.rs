//! # pnw-bench — the experiment harness
//!
//! One module per concern:
//!
//! * [`replace`] — the replacement-workload engines behind Figures 6 and 7:
//!   warm a data zone with "old data", then stream new items over it, either
//!   through a write scheme (baselines, in-place updates) or through the PNW
//!   store (predicted placement).
//! * [`figures`] — one function per paper table/figure, returning the rows
//!   the paper plots. Every function takes a [`Scale`] so the same code
//!   runs as a quick smoke test or a full reproduction.
//! * [`table`] — plain-text table rendering for the harness binaries.
//! * [`throughput`] — the multi-threaded throughput harness over any
//!   [`Store`](pnw_core::Store) backend (sharded PNW, single-lock PNW,
//!   FPTree, NoveLSM, Path hashing): configurable thread count,
//!   PUT/GET/DELETE mix, Zipfian keys and an optional
//!   [`Store::apply`](pnw_core::Store::apply) batch size, reporting
//!   ops/sec plus p50/p99 modeled and prediction latency. (Figure 9 and
//!   this harness drive every backend through the one `Store` trait — the
//!   old `KvStore` adapter shim is gone.)
//! * [`predictbench`] — the prediction-kernel microbenchmark: packed
//!   bit-domain LUT path vs the reference float featurize-then-scan path,
//!   across value sizes and cluster counts (`BENCH_predict.json`).
//! * [`trainbench`] — the retraining benchmark: the packed bit-domain
//!   training pipeline vs the float featurize-then-Lloyd reference, across
//!   value sizes, cluster counts and sample counts (`BENCH_train.json`).
//! * [`scenario`] — the scenario engine: declarative phased workloads
//!   (per-phase key distribution, op mix, value-pattern family, TTL,
//!   arrival rate, burst/quiesce) replayed against any `Store` backend
//!   with windowed time-series metrics — flips/PUT, retrains, model
//!   epoch, prediction latency, TTL expiry/eviction per window
//!   (`BENCH_scenario.json`).
//! * [`serverbench`] — the open-loop, coordinated-omission-safe load
//!   generator against a running `pnw-server`: Poisson arrivals at a
//!   fixed offered rate, sojourn-time percentiles from *scheduled*
//!   arrival, bounded full-jitter retries, and scheduled fault injection
//!   (connection kills, torn frames, corrupt frames)
//!   (`BENCH_server.json`).
//!
//! Binaries (`cargo run --release -p pnw-bench --bin <name>`):
//! `fig3 fig4 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13 table1 table2
//! repro_all throughput predict train server_load scenario`.

#![warn(missing_docs)]

pub mod figures;
pub mod predictbench;
pub mod replace;
pub mod scenario;
pub mod serverbench;
pub mod table;
pub mod throughput;
pub mod trainbench;

/// Experiment scale, so harnesses run both as smoke tests and full repros.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale: CI / `cargo bench` smoke runs.
    Quick,
    /// Minutes-scale: the numbers recorded in `EXPERIMENTS.md`.
    Full,
}

impl Scale {
    /// Reads the scale from argv (`--quick`) or the `PNW_SCALE` env var
    /// (`quick`/`full`). Defaults to `Full` for binaries.
    pub fn from_env() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            return Scale::Quick;
        }
        match std::env::var("PNW_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            _ => Scale::Full,
        }
    }

    /// Picks between quick and full parameter values.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}
