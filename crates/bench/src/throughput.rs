//! Multi-threaded throughput harness over any [`Store`] backend.
//!
//! The paper's figures measure bit flips and modeled latency per operation;
//! this harness measures the dimension the figures hold fixed — how many
//! operations per second the *store* sustains when several client threads
//! hit it at once. Each thread drives a shared `Arc<dyn Store>` — the
//! sharded PNW store by default, or any backend of the Figure 9 comparison
//! ([`Backend`]) — with a configurable PUT/GET/DELETE mix over
//! Zipfian-distributed keys (skewed access is the worst case for a sharded
//! design: hot keys pile onto a few shards).
//!
//! Two write paths are measured:
//!
//! * **per-op** (`batch = 0`): every PUT/DELETE is issued individually,
//!   exactly as a point-lookup client would;
//! * **batched** (`batch = N`): writes are buffered into a [`Batch`] of N
//!   ops and submitted through [`Store::apply`] — on the sharded store one
//!   lock acquisition, one background-install poll and one model-snapshot
//!   load per shard per batch instead of per op. GETs always execute
//!   immediately (reads don't batch).
//!
//! Three numbers come out per run:
//!
//! * **ops/sec** — wall-clock throughput across all threads;
//! * **p50/p99 modeled latency** — the per-operation NVM cost under the
//!   device's latency model (batched writes are charged their batch's
//!   aggregate cost split evenly across the batch);
//! * **p50/p99 predict latency** — the *measured* wall-clock cost of the
//!   model prediction inside each fresh PUT (per-op PNW runs only: the
//!   batch path deliberately skips per-op timing, and baselines have no
//!   prediction).
//!
//! By default the harness *emulates* the modeled device latency by
//! sleeping it (scaled by [`ThroughputConfig::latency_scale`]) after every
//! operation (after every batch in batched mode — same total sleep). That
//! makes each client I/O-bound — exactly like a thread waiting on a real
//! NVM DIMM — so the measured scaling reflects the store's concurrency
//! (shard parallelism, lock contention), not how many cores the benchmark
//! machine happens to have. Disable it (`emulate_latency: false`) to
//! stress the raw software path instead — that is the configuration where
//! batched vs per-op overhead is visible.

use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use pnw_baselines::{FpTreeLike, NoveLsmLike, PathHashStore};
use pnw_core::{Batch, PnwConfig, RetrainMode, ShardedPnwStore, Store, StoreError};
use pnw_nvm_sim::{projected_lifetime_ops, LatencyModel, MemoryTech};
use rand::{rngs::StdRng, Rng, SeedableRng};

/// Which [`Store`] backend a throughput run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The sharded PNW store (see [`ThroughputConfig::shards`]).
    Pnw,
    /// The FPTree-like B+-tree baseline.
    FpTree,
    /// The NoveLSM-like LSM baseline.
    Lsm,
    /// The Path-Hashing baseline.
    PathHash,
}

impl Backend {
    /// Every backend, in Figure 9 order.
    pub fn all() -> [Backend; 4] {
        [Backend::Pnw, Backend::FpTree, Backend::Lsm, Backend::PathHash]
    }

    /// The `--store` flag spelling.
    pub fn flag(&self) -> &'static str {
        match self {
            Backend::Pnw => "pnw",
            Backend::FpTree => "fptree",
            Backend::Lsm => "lsm",
            Backend::PathHash => "path",
        }
    }

    /// Parses a `--store` flag value.
    pub fn parse(s: &str) -> Option<Backend> {
        Backend::all().into_iter().find(|b| b.flag() == s)
    }
}

/// Operation mix in percent; must sum to 100.
#[derive(Debug, Clone, Copy)]
pub struct OpMix {
    /// PUT share (fresh writes and updates).
    pub put_pct: u8,
    /// GET share.
    pub get_pct: u8,
    /// DELETE share.
    pub del_pct: u8,
}

impl OpMix {
    /// The default mixed workload: 40% PUT / 50% GET / 10% DELETE.
    pub fn mixed() -> Self {
        OpMix {
            put_pct: 40,
            get_pct: 50,
            del_pct: 10,
        }
    }

    /// A write-only workload (the paper's replacement-stream shape).
    pub fn write_only() -> Self {
        OpMix {
            put_pct: 100,
            get_pct: 0,
            del_pct: 0,
        }
    }

    /// A GET-heavy workload: 90% GET / 10% PUT (YCSB-B shape) — the mix
    /// where lock-free reads versus locked reads is most visible.
    pub fn read_heavy() -> Self {
        OpMix {
            put_pct: 10,
            get_pct: 90,
            del_pct: 0,
        }
    }
}

/// Configuration of one throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputConfig {
    /// Backend to drive.
    pub backend: Backend,
    /// Client threads.
    pub threads: usize,
    /// Store shards (see [`PnwConfig::with_shards`]; PNW backend only).
    pub shards: usize,
    /// Writes per [`Store::apply`] batch; 0 issues every op individually.
    pub batch: usize,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Distinct keys; capacity is sized to 2× this.
    pub key_space: u64,
    /// Value size in bytes.
    pub value_size: usize,
    /// Cluster count K for the model (PNW backend only).
    pub clusters: usize,
    /// Operation mix.
    pub mix: OpMix,
    /// Zipf exponent for key popularity (0 = uniform; 0.99 = YCSB-like).
    pub zipf_theta: f64,
    /// RNG seed; thread `t` uses `seed + t`.
    pub seed: u64,
    /// Multiplier applied to the modeled latency when emulating it. The
    /// default of 10× models a device an order of magnitude slower than
    /// Optane so per-op device time dominates per-op CPU time.
    pub latency_scale: u32,
    /// Sleep the (scaled) modeled latency after every operation.
    pub emulate_latency: bool,
    /// Route GETs through the shard engine lock instead of the lock-free
    /// seqlock path (PNW backend only) — the before/after comparison knob
    /// for read scaling.
    pub locked_reads: bool,
    /// Sampling interval for the windowed time series (bit flips per PUT,
    /// retrains, model epoch per window); 0 disables the sampler.
    pub window_ms: u64,
}

impl Default for ThroughputConfig {
    fn default() -> Self {
        ThroughputConfig {
            backend: Backend::Pnw,
            threads: 1,
            shards: 8,
            batch: 0,
            ops_per_thread: 2_000,
            key_space: 4_096,
            value_size: 64,
            clusters: 4,
            mix: OpMix::mixed(),
            zipf_theta: 0.99,
            seed: 0xBEE5,
            latency_scale: 10,
            emulate_latency: true,
            locked_reads: false,
            window_ms: 0,
        }
    }
}

/// One sample of the windowed time series a run emits when
/// [`ThroughputConfig::window_ms`] is non-zero. Deltas are per window;
/// `retrains`/`model_epoch` are cumulative at sample time, so a step in
/// either marks the window where an adapted model went live.
#[derive(Debug, Clone)]
pub struct ThroughputWindow {
    /// Sample time since measurement start, in milliseconds.
    pub t_ms: f64,
    /// PUTs completed in this window.
    pub puts: u64,
    /// Device bit flips in this window (value + header + index).
    pub bit_flips: u64,
    /// Device bit flips per PUT in this window.
    pub flips_per_put: f64,
    /// Completed training runs, cumulative at sample time.
    pub retrains: u64,
    /// Model epoch (install count) at sample time.
    pub model_epoch: u64,
}

/// Results of one throughput run.
#[derive(Debug, Clone)]
pub struct ThroughputReport {
    /// How load was generated: `"closed"` — each client thread issues its
    /// next op only after the previous one completes, so the measured
    /// latency hides queueing delay (coordinated omission). The open-loop
    /// counterpart lives in [`serverbench`](crate::serverbench) and labels
    /// its rows `"open"`; the label keeps the two regimes from being
    /// compared as if they measured the same thing.
    pub loop_mode: &'static str,
    /// Backend driven (its [`Store::name`]).
    pub backend: String,
    /// Client threads used.
    pub threads: usize,
    /// Store shards used (PNW backend; 1 otherwise).
    pub shards: usize,
    /// Batch size used (0 = per-op).
    pub batch: usize,
    /// Whether GETs went through the engine lock instead of the lock-free
    /// seqlock path.
    pub locked_reads: bool,
    /// Operations completed (all threads).
    pub total_ops: u64,
    /// Wall-clock time of the measured window.
    pub elapsed: Duration,
    /// Throughput in operations per second.
    pub ops_per_sec: f64,
    /// Median modeled per-op NVM latency, in nanoseconds.
    pub p50_modeled_ns: u64,
    /// 99th-percentile modeled per-op NVM latency, in nanoseconds.
    pub p99_modeled_ns: u64,
    /// Median *measured* model-prediction latency per fresh PUT, in
    /// nanoseconds. Per-op PNW runs time every fresh PUT; batched runs
    /// time a stride of each group's fresh PUTs
    /// ([`pnw_core::BatchReport::predict_samples`]). 0 on baselines.
    pub predict_p50_ns: u64,
    /// 99th-percentile measured prediction latency per fresh PUT.
    pub predict_p99_ns: u64,
    /// PUTs served.
    pub puts: u64,
    /// GETs served.
    pub gets: u64,
    /// DELETEs served.
    pub deletes: u64,
    /// PUTs rejected with `Full` (store/shard out of space).
    pub full_errors: u64,
    /// Total NVM bit flips across the store during the measured window.
    pub bit_flips: u64,
    /// Completed training runs (warm-up train + background retrains).
    pub retrains: u64,
    /// Model epoch of the final published snapshot (== install count).
    pub model_epoch: u64,
    /// Wall-clock of the last completed training run, in milliseconds.
    pub last_train_ms: f64,
    /// Training-snapshot size before the reservoir cap, last run.
    pub train_samples_pre_cap: usize,
    /// Samples actually trained on (after the reservoir cap), last run.
    pub train_samples_post_cap: usize,
    /// Highest write count observed on any single NVM word during the
    /// run — the wear hot spot. 0 on backends without word-wear tracking.
    pub max_word_writes: u32,
    /// Operations this run's wear pattern projects until the hottest
    /// word crosses the PCM endurance limit
    /// ([`pnw_nvm_sim::projected_lifetime_ops`]). Infinite when nothing
    /// wore; serialized as JSON `null` in that case.
    pub projected_lifetime_ops: f64,
    /// Windowed time series (empty when
    /// [`ThroughputConfig::window_ms`] is 0).
    pub windows: Vec<ThroughputWindow>,
}

/// Zipfian rank sampler over `0..n` via an inverted CDF table.
#[derive(Debug, Clone)]
pub struct Zipfian {
    cum: Vec<f64>,
}

impl Zipfian {
    /// Builds the popularity distribution `p(rank) ∝ 1/(rank+1)^theta`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "empty key space");
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(theta);
            cum.push(acc);
        }
        let total = acc;
        for c in &mut cum {
            *c /= total;
        }
        Zipfian { cum }
    }

    /// Draws one rank (0 = most popular).
    pub fn sample(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen();
        self.cum.partition_point(|&c| c < u) as u64
    }
}

/// Deterministic value for a key, written into a reusable buffer: one of
/// four bit-pattern families plus a per-write random tail, so the K-means
/// model has real structure to steer by while updates still flip some
/// bits. The client loop reuses one buffer per thread — a 64-byte heap
/// allocation per op otherwise shows up as ~20% of the batched PUT path.
fn fill_value(key: u64, buf: &mut [u8], rng: &mut StdRng) {
    let fill = match key % 4 {
        0 => 0x00,
        1 => 0xFF,
        2 => 0x0F,
        _ => 0xAA,
    };
    buf.fill(fill);
    let tail = buf.len().min(8);
    let start = buf.len() - tail;
    for b in &mut buf[start..] {
        *b = rng.gen();
    }
}

/// Allocating wrapper around [`fill_value`] for warm-up loops.
fn value_for(key: u64, value_size: usize, rng: &mut StdRng) -> Vec<u8> {
    let mut v = vec![0u8; value_size];
    fill_value(key, &mut v, rng);
    v
}

/// Builds the configured backend, warms half the key space (training the
/// model on it for PNW), resets the measurement window and returns it as a
/// trait object.
fn build_store(cfg: &ThroughputConfig) -> Arc<dyn Store> {
    let capacity = (cfg.key_space * 2) as usize;
    let mut warm_rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED);
    let store: Arc<dyn Store> = match cfg.backend {
        Backend::Pnw => {
            let store_cfg = PnwConfig::new(capacity, cfg.value_size)
                .with_clusters(cfg.clusters)
                .with_seed(cfg.seed)
                .with_shards(cfg.shards)
                .with_load_factor(0.95)
                .with_retrain(RetrainMode::Background)
                .with_locked_reads(cfg.locked_reads);
            let store = ShardedPnwStore::new(store_cfg);
            for key in 0..cfg.key_space / 2 {
                let v = value_for(key, cfg.value_size, &mut warm_rng);
                store.put(key, &v).expect("warm-up fits");
            }
            store.retrain_now().expect("training");
            Arc::new(store)
        }
        Backend::FpTree => Arc::new(FpTreeLike::new(capacity, cfg.value_size)),
        Backend::Lsm => Arc::new(NoveLsmLike::new(capacity, cfg.value_size)),
        Backend::PathHash => Arc::new(PathHashStore::new(capacity, cfg.value_size)),
    };
    if cfg.backend != Backend::Pnw {
        for key in 0..cfg.key_space / 2 {
            let v = value_for(key, cfg.value_size, &mut warm_rng);
            store.put(key, &v).expect("warm-up fits");
        }
    }
    store.reset_device_stats();
    store
}

/// Runs one throughput measurement and returns its report.
pub fn run(cfg: &ThroughputConfig) -> ThroughputReport {
    assert_eq!(
        cfg.mix.put_pct as u16 + cfg.mix.get_pct as u16 + cfg.mix.del_pct as u16,
        100,
        "op mix must sum to 100"
    );
    let store = build_store(cfg);

    let zipf = Arc::new(Zipfian::new(cfg.key_space as usize, cfg.zipf_theta));
    let barrier = Arc::new(Barrier::new(cfg.threads + 1));
    let puts = Arc::new(AtomicU64::new(0));
    let gets = Arc::new(AtomicU64::new(0));
    let deletes = Arc::new(AtomicU64::new(0));
    let full_errors = Arc::new(AtomicU64::new(0));

    let latency = LatencyModel::xpoint();
    let value_lines = (cfg.value_size as u64).div_ceil(64);
    let get_cost = latency.read_cost(value_lines);
    let del_cost = Duration::from_nanos(600); // one flag-line write

    // Workers stamp their own start/end against this shared epoch: the
    // coordinator thread may be descheduled for the entire run on a
    // saturated host, so a coordinator-side `Instant::now()` after the
    // barrier can land arbitrarily late and inflate ops/sec.
    let epoch = Instant::now();
    let mut handles = Vec::new();
    for t in 0..cfg.threads {
        let store = Arc::clone(&store);
        let zipf = Arc::clone(&zipf);
        let barrier = Arc::clone(&barrier);
        let (puts, gets, deletes, full_errors) = (
            Arc::clone(&puts),
            Arc::clone(&gets),
            Arc::clone(&deletes),
            Arc::clone(&full_errors),
        );
        let cfg = cfg.clone();
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(cfg.seed + t as u64);
            let mut lat_ns: Vec<u64> = Vec::with_capacity(cfg.ops_per_thread);
            let mut predict_ns: Vec<u64> = Vec::new();
            // GETs read into one reusable buffer per client thread — the
            // store's allocation-free read path. Batched mode also reuses
            // one Batch allocation across groups.
            let mut get_buf = vec![0u8; cfg.value_size];
            let mut val_buf = vec![0u8; cfg.value_size];
            let mut batch = Batch::with_capacity(cfg.batch);

            // Submits the pending batch: one Store::apply call, charging
            // the aggregate modeled cost split evenly across its ops.
            let flush = |batch: &mut Batch,
                         lat_ns: &mut Vec<u64>,
                         predict_ns: &mut Vec<u64>,
                         puts: &AtomicU64,
                         deletes: &AtomicU64,
                         full_errors: &AtomicU64| {
                if batch.is_empty() {
                    return;
                }
                let r = store.apply(batch);
                puts.fetch_add(r.puts, Ordering::Relaxed);
                deletes.fetch_add(r.deletes, Ordering::Relaxed);
                full_errors.fetch_add(r.failures.len() as u64, Ordering::Relaxed);
                // The batch path samples prediction latency on a stride of
                // its fresh PUTs; fold the samples into the same pool the
                // per-op path fills.
                predict_ns.extend_from_slice(&r.predict_samples);
                let per_op = r.modeled_latency / batch.len().max(1) as u32;
                for _ in 0..batch.len() {
                    lat_ns.push(per_op.as_nanos() as u64);
                }
                if cfg.emulate_latency {
                    std::thread::sleep(r.modeled_latency * cfg.latency_scale);
                }
                batch.clear();
            };

            barrier.wait();
            let t_start = epoch.elapsed();
            for _ in 0..cfg.ops_per_thread {
                let key = zipf.sample(&mut rng);
                let dice: u8 = rng.gen_range(0..100u8);
                if dice < cfg.mix.put_pct {
                    fill_value(key, &mut val_buf, &mut rng);
                    if cfg.batch > 0 {
                        // Copies into one of the batch's recycled value
                        // buffers — no allocation after the first group.
                        batch.put(key, &val_buf);
                        if batch.len() >= cfg.batch {
                            flush(
                                &mut batch,
                                &mut lat_ns,
                                &mut predict_ns,
                                &puts,
                                &deletes,
                                &full_errors,
                            );
                        }
                        continue;
                    }
                    let cost = match store.put(key, &val_buf) {
                        Ok(r) => {
                            puts.fetch_add(1, Ordering::Relaxed);
                            predict_ns.push(r.predict.as_nanos() as u64);
                            r.modeled_latency
                        }
                        Err(StoreError::Full) => {
                            // Store out of space: reclaim by deleting the
                            // key we were about to overwrite (or skip).
                            full_errors.fetch_add(1, Ordering::Relaxed);
                            let _ = store.delete(key);
                            del_cost
                        }
                        Err(e) => panic!("put failed: {e}"),
                    };
                    lat_ns.push(cost.as_nanos() as u64);
                    if cfg.emulate_latency {
                        std::thread::sleep(cost * cfg.latency_scale);
                    }
                } else if dice < cfg.mix.put_pct + cfg.mix.get_pct {
                    // Reads never batch: they execute immediately even in
                    // batched mode (read-your-writes only up to the last
                    // flush, like any write-buffered client).
                    let _ = store.get_into(key, &mut get_buf).expect("get ok");
                    gets.fetch_add(1, Ordering::Relaxed);
                    lat_ns.push(get_cost.as_nanos() as u64);
                    if cfg.emulate_latency {
                        std::thread::sleep(get_cost * cfg.latency_scale);
                    }
                } else {
                    if cfg.batch > 0 {
                        batch.delete(key);
                        if batch.len() >= cfg.batch {
                            flush(
                                &mut batch,
                                &mut lat_ns,
                                &mut predict_ns,
                                &puts,
                                &deletes,
                                &full_errors,
                            );
                        }
                        continue;
                    }
                    let _ = store.delete(key).expect("delete ok");
                    deletes.fetch_add(1, Ordering::Relaxed);
                    lat_ns.push(del_cost.as_nanos() as u64);
                    if cfg.emulate_latency {
                        std::thread::sleep(del_cost * cfg.latency_scale);
                    }
                }
            }
            flush(
                &mut batch,
                &mut lat_ns,
                &mut predict_ns,
                &puts,
                &deletes,
                &full_errors,
            );
            (t_start, epoch.elapsed(), lat_ns, predict_ns)
        }));
    }

    barrier.wait();
    // The sampler rides alongside the workers, snapshotting cumulative
    // counters every window and differencing them into a time series.
    let stop = Arc::new(AtomicBool::new(false));
    let sampler = (cfg.window_ms > 0).then(|| {
        let store = Arc::clone(&store);
        let stop = Arc::clone(&stop);
        let window = Duration::from_millis(cfg.window_ms);
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut rows: Vec<ThroughputWindow> = Vec::new();
            let mut last_puts = store.snapshot().puts;
            let mut last_flips = store.device_stats().totals.bit_flips;
            while !stop.load(Ordering::Relaxed) {
                std::thread::sleep(window);
                let snap = store.snapshot();
                let flips = store.device_stats().totals.bit_flips;
                let dputs = snap.puts - last_puts;
                let dflips = flips - last_flips;
                rows.push(ThroughputWindow {
                    t_ms: t0.elapsed().as_secs_f64() * 1e3,
                    puts: dputs,
                    bit_flips: dflips,
                    flips_per_put: if dputs == 0 {
                        0.0
                    } else {
                        dflips as f64 / dputs as f64
                    },
                    retrains: snap.retrains,
                    model_epoch: snap.train.epoch,
                });
                last_puts = snap.puts;
                last_flips = flips;
            }
            rows
        })
    });
    let mut latencies: Vec<u64> = Vec::with_capacity(cfg.threads * cfg.ops_per_thread);
    let mut predicts: Vec<u64> = Vec::new();
    let mut span_start = Duration::MAX;
    let mut span_end = Duration::ZERO;
    for h in handles {
        let (t_start, t_end, lat, pred) = h.join().expect("worker thread");
        span_start = span_start.min(t_start);
        span_end = span_end.max(t_end);
        latencies.extend(lat);
        predicts.extend(pred);
    }
    let elapsed = span_end.saturating_sub(span_start);
    stop.store(true, Ordering::Relaxed);
    let windows = sampler
        .map(|h| h.join().expect("sampler thread"))
        .unwrap_or_default();

    latencies.sort_unstable();
    predicts.sort_unstable();
    let pct = |sorted: &[u64], p: f64| -> u64 {
        if sorted.is_empty() {
            0
        } else {
            let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        }
    };
    let total_ops = (cfg.threads * cfg.ops_per_thread) as u64;
    let snap = store.snapshot();
    let max_wear = store.max_word_writes();
    ThroughputReport {
        loop_mode: "closed",
        backend: store.name().to_string(),
        threads: cfg.threads,
        shards: if cfg.backend == Backend::Pnw {
            cfg.shards
        } else {
            1
        },
        batch: cfg.batch,
        locked_reads: cfg.locked_reads,
        total_ops,
        elapsed,
        ops_per_sec: total_ops as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_modeled_ns: pct(&latencies, 0.50),
        p99_modeled_ns: pct(&latencies, 0.99),
        predict_p50_ns: pct(&predicts, 0.50),
        predict_p99_ns: pct(&predicts, 0.99),
        puts: puts.load(Ordering::Relaxed),
        gets: gets.load(Ordering::Relaxed),
        deletes: deletes.load(Ordering::Relaxed),
        full_errors: full_errors.load(Ordering::Relaxed),
        bit_flips: store.device_stats().totals.bit_flips,
        retrains: snap.retrains,
        model_epoch: snap.train.epoch,
        last_train_ms: snap.train.last_train_wall.as_secs_f64() * 1e3,
        train_samples_pre_cap: snap.train.samples_pre_cap,
        train_samples_post_cap: snap.train.samples_post_cap,
        max_word_writes: max_wear,
        projected_lifetime_ops: projected_lifetime_ops(MemoryTech::Pcm, max_wear, total_ops),
        windows,
    }
}

/// Runs the same configuration at each thread count.
pub fn sweep(base: &ThroughputConfig, thread_counts: &[usize]) -> Vec<ThroughputReport> {
    thread_counts
        .iter()
        .map(|&threads| {
            let cfg = ThroughputConfig {
                threads,
                ..base.clone()
            };
            run(&cfg)
        })
        .collect()
}

/// Serializes reports as JSON (hand-rolled — the workspace has no JSON
/// dependency) for the perf-trajectory file `BENCH_throughput.json`.
pub fn to_json(reports: &[ThroughputReport]) -> String {
    let mut out = String::from("{\n  \"bench\": \"throughput\",\n  \"results\": [\n");
    for (i, r) in reports.iter().enumerate() {
        // Hand-rolled JSON has no spelling for IEEE infinity; an unworn
        // device (max_word_writes == 0) projects an unbounded lifetime,
        // which serializes as null.
        let lifetime = if r.projected_lifetime_ops.is_finite() {
            format!("{:.1}", r.projected_lifetime_ops)
        } else {
            "null".to_string()
        };
        let windows = r
            .windows
            .iter()
            .map(|w| {
                format!(
                    "{{\"t_ms\": {:.1}, \"puts\": {}, \"bit_flips\": {}, \
                     \"flips_per_put\": {:.3}, \"retrains\": {}, \"model_epoch\": {}}}",
                    w.t_ms, w.puts, w.bit_flips, w.flips_per_put, w.retrains, w.model_epoch
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"loop_mode\": \"{}\", \"backend\": \"{}\", \"threads\": {}, \"shards\": {}, \
             \"batch\": {}, \"locked_reads\": {}, \"total_ops\": {}, \
             \"elapsed_ms\": {:.3}, \"ops_per_sec\": {:.1}, \
             \"p50_modeled_ns\": {}, \"p99_modeled_ns\": {}, \
             \"predict_p50_ns\": {}, \"predict_p99_ns\": {}, \
             \"puts\": {}, \"gets\": {}, \"deletes\": {}, \
             \"full_errors\": {}, \"bit_flips\": {}, \
             \"retrains\": {}, \"model_epoch\": {}, \"last_train_ms\": {:.2}, \
             \"train_samples_pre_cap\": {}, \"train_samples_post_cap\": {}, \
             \"max_word_writes\": {}, \"projected_lifetime_ops\": {}, \
             \"windows\": [{}]}}{}\n",
            r.loop_mode,
            r.backend,
            r.threads,
            r.shards,
            r.batch,
            r.locked_reads,
            r.total_ops,
            r.elapsed.as_secs_f64() * 1e3,
            r.ops_per_sec,
            r.p50_modeled_ns,
            r.p99_modeled_ns,
            r.predict_p50_ns,
            r.predict_p99_ns,
            r.puts,
            r.gets,
            r.deletes,
            r.full_errors,
            r.bit_flips,
            r.retrains,
            r.model_epoch,
            r.last_train_ms,
            r.train_samples_pre_cap,
            r.train_samples_post_cap,
            r.max_word_writes,
            lifetime,
            windows,
            if i + 1 < reports.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes [`to_json`] output to `path`.
pub fn write_json(path: &Path, reports: &[ThroughputReport]) -> std::io::Result<()> {
    std::fs::write(path, to_json(reports))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_a_distribution_and_skewed() {
        let z = Zipfian::new(100, 0.99);
        assert_eq!(z.cum.len(), 100);
        assert!((z.cum.last().unwrap() - 1.0).abs() < 1e-12);
        assert!(z.cum.windows(2).all(|w| w[1] >= w[0]));
        // Head dominance: rank 0 carries more mass than ranks 50..100 together.
        let head = z.cum[0];
        let tail = z.cum[99] - z.cum[49];
        assert!(head > tail, "head {head} vs tail {tail}");
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..500 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn uniform_theta_zero() {
        let z = Zipfian::new(4, 0.0);
        assert!((z.cum[0] - 0.25).abs() < 1e-12);
        assert!((z.cum[1] - 0.50).abs() < 1e-12);
    }

    #[test]
    fn backend_flags_round_trip() {
        for b in Backend::all() {
            assert_eq!(Backend::parse(b.flag()), Some(b));
        }
        assert_eq!(Backend::parse("bogus"), None);
    }

    #[test]
    fn small_run_reports_consistent_counts() {
        let cfg = ThroughputConfig {
            threads: 2,
            shards: 2,
            ops_per_thread: 200,
            key_space: 256,
            value_size: 16,
            clusters: 2,
            emulate_latency: false,
            ..Default::default()
        };
        let r = run(&cfg);
        assert_eq!(r.backend, "PNW-sharded");
        assert_eq!(r.loop_mode, "closed");
        assert_eq!(r.batch, 0);
        assert_eq!(r.total_ops, 400);
        assert_eq!(r.puts + r.gets + r.deletes + r.full_errors, 400);
        assert!(r.ops_per_sec > 0.0);
        assert!(r.p50_modeled_ns <= r.p99_modeled_ns);
        assert!(r.bit_flips > 0, "PUTs must have flipped bits");
        // Retrain observability: the warm-up train is always recorded.
        assert!(r.retrains >= 1);
        assert_eq!(r.model_epoch, r.retrains);
        assert!(r.last_train_ms > 0.0);
        assert!(r.train_samples_pre_cap >= r.train_samples_post_cap);
        assert!(r.train_samples_post_cap > 0);
        let j = to_json(&[r]);
        assert!(j.contains("\"backend\": \"PNW-sharded\""));
        assert!(j.contains("\"batch\": 0"));
        assert!(j.contains("\"model_epoch\""));
        assert!(j.contains("\"train_samples_post_cap\""));
    }

    #[test]
    fn windowed_run_emits_series() {
        let cfg = ThroughputConfig {
            threads: 2,
            shards: 2,
            ops_per_thread: 3_000,
            key_space: 256,
            value_size: 16,
            clusters: 2,
            mix: OpMix::write_only(),
            emulate_latency: false,
            window_ms: 1,
            ..Default::default()
        };
        let r = run(&cfg);
        assert!(!r.windows.is_empty(), "sampler produced no windows");
        // At least one window saw traffic and reports a flips/PUT rate.
        assert!(r.windows.iter().any(|w| w.puts > 0 && w.flips_per_put > 0.0));
        // Cumulative counters never go backwards across the series.
        assert!(r.windows.windows(2).all(|p| p[1].retrains >= p[0].retrains));
        assert!(r.windows.windows(2).all(|p| p[1].model_epoch >= p[0].model_epoch));
        let j = to_json(&[r]);
        assert!(j.contains("\"windows\": [{"));
        assert!(j.contains("\"flips_per_put\""));
    }

    #[test]
    fn batched_run_completes_every_op() {
        let cfg = ThroughputConfig {
            threads: 2,
            shards: 2,
            batch: 16,
            ops_per_thread: 200,
            key_space: 256,
            value_size: 16,
            clusters: 2,
            emulate_latency: false,
            ..Default::default()
        };
        let r = run(&cfg);
        assert_eq!(r.batch, 16);
        assert_eq!(r.total_ops, 400);
        assert_eq!(r.puts + r.gets + r.deletes + r.full_errors, 400);
        assert!(r.puts > 0);
        assert!(r.gets > 0, "reads run immediately in batched mode");
        assert!(r.bit_flips > 0);
        // Batched writes still carry a modeled cost.
        assert!(r.p99_modeled_ns > 0);
        // Regression: batched rows used to report 0 prediction latency;
        // the batch path now samples a stride of its fresh PUTs.
        assert!(
            r.predict_p99_ns > 0,
            "batched rows must carry sampled prediction latency"
        );
        let j = to_json(&[r]);
        assert!(j.contains("\"batch\": 16"));
    }

    #[test]
    fn read_heavy_mix_runs_on_both_read_paths() {
        for locked_reads in [false, true] {
            let cfg = ThroughputConfig {
                threads: 2,
                shards: 2,
                ops_per_thread: 200,
                key_space: 256,
                value_size: 16,
                clusters: 2,
                mix: OpMix::read_heavy(),
                emulate_latency: false,
                locked_reads,
                ..Default::default()
            };
            let r = run(&cfg);
            assert_eq!(r.locked_reads, locked_reads);
            assert_eq!(r.total_ops, 400);
            assert!(r.gets > r.puts, "90/10 mix must be read-dominated");
            assert_eq!(r.deletes, 0);
            let j = to_json(&[r]);
            assert!(j.contains(&format!("\"locked_reads\": {locked_reads}")));
        }
    }

    #[test]
    fn every_baseline_backend_runs() {
        for backend in [Backend::FpTree, Backend::Lsm, Backend::PathHash] {
            let cfg = ThroughputConfig {
                backend,
                threads: 2,
                ops_per_thread: 100,
                key_space: 128,
                value_size: 16,
                emulate_latency: false,
                ..Default::default()
            };
            let r = run(&cfg);
            assert_eq!(r.total_ops, 200, "{backend:?}");
            assert_eq!(r.shards, 1);
            assert!(r.puts > 0, "{backend:?}");
            assert!(r.bit_flips > 0, "{backend:?}");
            // Baselines have no model.
            assert_eq!(r.retrains, 0);
            assert_eq!(r.predict_p99_ns, 0);
        }
    }

    #[test]
    fn predict_latencies_are_populated() {
        let cfg = ThroughputConfig {
            threads: 2,
            shards: 2,
            ops_per_thread: 150,
            key_space: 128,
            value_size: 16,
            clusters: 2,
            mix: OpMix::write_only(),
            emulate_latency: false,
            ..Default::default()
        };
        let r = run(&cfg);
        assert!(r.puts > 0);
        assert!(
            r.predict_p99_ns > 0,
            "fresh PUTs must record measured prediction latency"
        );
        assert!(r.predict_p50_ns <= r.predict_p99_ns);
        let j = to_json(&[r]);
        assert!(j.contains("\"predict_p50_ns\""));
        assert!(j.contains("\"predict_p99_ns\""));
    }

    #[test]
    fn json_shape() {
        let cfg = ThroughputConfig {
            threads: 1,
            shards: 1,
            ops_per_thread: 50,
            key_space: 64,
            value_size: 8,
            clusters: 1,
            emulate_latency: false,
            ..Default::default()
        };
        let j = to_json(&[run(&cfg)]);
        assert!(j.contains("\"bench\": \"throughput\""));
        assert!(j.contains("\"loop_mode\": \"closed\""));
        assert!(j.contains("\"threads\": 1"));
        assert!(j.contains("\"ops_per_sec\""));
    }
}
