//! Replacement-workload engines (the §VI-A methodology).
//!
//! *"We first have set aside … buckets as the 'old data' on the NVM … Then,
//! we replaced this 'old data' with new incoming data from the same data
//! set."* Baseline schemes update in place (a random old item's location);
//! PNW chooses its location through the model. Both paths funnel through
//! the same device accounting, and both report the Figure 6/7 metrics.

use std::time::Instant;

use pnw_core::{PnwConfig, PnwStore, RetrainMode};
use pnw_nvm_sim::{NvmConfig, NvmDevice, WriteMode};
use pnw_schemes::{apply, make_scheme, SchemeKind};
use pnw_workloads::{DatasetKind, Workload};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One measured series point (one method on one dataset).
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    /// Method label ("FNW", "PNW k=10", …).
    pub label: String,
    /// Mean updated bits (payload + auxiliary) per 512 payload bits — the
    /// Figure 6 y-axis.
    pub flips_per_512: f64,
    /// Mean cache lines written per item write.
    pub lines_per_write: f64,
    /// Mean modeled end-to-end write latency in ns (device lines + model
    /// prediction for PNW) — the Figure 7/8 y-axis before normalization.
    pub latency_ns: f64,
    /// Mean model-prediction latency in µs (PNW only; 0 for schemes).
    pub predict_us: f64,
}

/// Workload geometry for a replacement run.
#[derive(Debug, Clone, Copy)]
pub struct ReplaceParams {
    /// Data-zone buckets warmed with old data.
    pub buckets: usize,
    /// New items streamed over the old data.
    pub writes: usize,
    /// Workload seed.
    pub seed: u64,
}

/// Runs a baseline write scheme over the replacement workload: each new
/// item overwrites a uniformly-chosen old location in place.
pub fn run_scheme(kind: SchemeKind, dataset: DatasetKind, p: &ReplaceParams) -> SeriesPoint {
    let mut w = dataset.build(p.seed);
    let value_size = w.value_size();
    let bucket = value_size.next_multiple_of(8);
    let mut dev = NvmDevice::new(NvmConfig::default().with_size(p.buckets * bucket));
    // Warm with old data.
    for b in 0..p.buckets {
        let v = w.next_value();
        dev.write(b * bucket, &v, WriteMode::Raw).expect("in range");
    }
    dev.reset_stats();

    let mut scheme = make_scheme(kind);
    let mut rng = StdRng::seed_from_u64(p.seed ^ 0xF166);
    let mut flips = 0u64;
    let mut bits = 0u64;
    let mut lines = 0u64;
    let mut latency_ns = 0f64;
    let line_write_ns = dev.latency_model().line_write.as_nanos() as f64;
    for _ in 0..p.writes {
        let v = w.next_value();
        let b = rng.gen_range(0..p.buckets);
        let s = apply(scheme.as_mut(), &mut dev, b * bucket, &v).expect("in range");
        flips += s.total_bit_flips();
        bits += s.bits_addressed;
        lines += s.lines_written;
        // §VI-E: "the write latency is calculated based on the number of
        // cache lines that are written per item" — reads are not charged
        // (RBW happens inside the DIMM on real parts).
        latency_ns += s.lines_written as f64 * line_write_ns;
    }
    SeriesPoint {
        label: kind.name().to_string(),
        flips_per_512: flips as f64 * 512.0 / bits.max(1) as f64,
        lines_per_write: lines as f64 / p.writes.max(1) as f64,
        latency_ns: latency_ns / p.writes.max(1) as f64,
        predict_us: 0.0,
    }
}

/// Runs PNW with `k` clusters over the replacement workload. Each new item
/// is PUT through the model (consuming a predicted free bucket) and then
/// DELETEd, which recycles its location into the pool under the fresh
/// content's label — the steady-state "new data replaces old data" regime.
pub fn run_pnw(dataset: DatasetKind, k: usize, p: &ReplaceParams, threads: usize) -> SeriesPoint {
    let mut w = dataset.build(p.seed);
    let value_size = w.value_size();
    let cfg = PnwConfig::new(p.buckets, value_size)
        .with_clusters(k)
        .with_seed(p.seed)
        .with_train_threads(threads)
        .with_retrain(RetrainMode::Manual);
    let store = PnwStore::new(cfg);
    store
        .prefill_free_buckets(|| w.next_value())
        .expect("prefill");
    store.retrain_now().expect("train");
    store.reset_device_stats();

    let mut flips = 0u64;
    let mut bits = 0u64;
    let mut lines = 0u64;
    let mut latency_ns = 0f64;
    let mut predict_ns = 0f64;
    let line_write_ns = store.latency_model().line_write.as_nanos() as f64;
    for i in 0..p.writes {
        let v = w.next_value();
        let key = i as u64;
        let r = store.put(key, &v).expect("pool never exhausts");
        flips += r.value_write.total_bit_flips();
        bits += r.value_write.bits_addressed;
        lines += r.value_write.lines_written;
        latency_ns += r.value_write.lines_written as f64 * line_write_ns
            + r.predict.as_nanos() as f64;
        predict_ns += r.predict.as_nanos() as f64;
        store.delete(key).expect("just inserted");
    }
    SeriesPoint {
        label: format!("PNW k={k}"),
        flips_per_512: flips as f64 * 512.0 / bits.max(1) as f64,
        lines_per_write: lines as f64 / p.writes.max(1) as f64,
        latency_ns: latency_ns / p.writes.max(1) as f64,
        predict_us: predict_ns / 1000.0 / p.writes.max(1) as f64,
    }
}

/// Times one synchronous K-means training run on `samples` values from the
/// dataset (the Figure 11 measurement).
pub fn time_training(
    dataset: DatasetKind,
    k: usize,
    samples: usize,
    threads: usize,
    seed: u64,
) -> std::time::Duration {
    let mut w = dataset.build(seed);
    let cfg = PnwConfig::new(samples, w.value_size())
        .with_clusters(k)
        .with_seed(seed)
        .with_train_threads(threads);
    let store = PnwStore::new(cfg);
    store.prefill_free_buckets(|| w.next_value()).expect("prefill");
    let t0 = Instant::now();
    store.retrain_now().expect("train");
    t0.elapsed()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ReplaceParams {
        ReplaceParams {
            buckets: 128,
            writes: 128,
            seed: 3,
        }
    }

    #[test]
    fn conventional_writes_every_bit() {
        let s = run_scheme(SchemeKind::Conventional, DatasetKind::Normal, &tiny());
        assert!((s.flips_per_512 - 512.0).abs() < 1e-9, "{}", s.flips_per_512);
    }

    #[test]
    fn dcw_below_conventional() {
        let p = tiny();
        let conv = run_scheme(SchemeKind::Conventional, DatasetKind::Normal, &p);
        let dcw = run_scheme(SchemeKind::Dcw, DatasetKind::Normal, &p);
        assert!(dcw.flips_per_512 < conv.flips_per_512);
    }

    #[test]
    fn pnw_with_enough_clusters_beats_dcw_on_normal() {
        // The Figure 6e headline: clusterable data + k>=10 -> PNW wins.
        let p = ReplaceParams {
            buckets: 512,
            writes: 512,
            seed: 5,
        };
        let dcw = run_scheme(SchemeKind::Dcw, DatasetKind::Normal, &p);
        let pnw = run_pnw(DatasetKind::Normal, 10, &p, 1);
        assert!(
            pnw.flips_per_512 < dcw.flips_per_512,
            "PNW {} !< DCW {}",
            pnw.flips_per_512,
            dcw.flips_per_512
        );
        assert!(pnw.predict_us > 0.0);
    }

    #[test]
    fn training_time_grows_with_k() {
        let t2 = time_training(DatasetKind::Normal, 2, 512, 1, 1);
        let t16 = time_training(DatasetKind::Normal, 16, 512, 1, 1);
        // Not strictly monotone in tiny runs, but 16 clusters should not be
        // dramatically cheaper than 2.
        assert!(t16.as_nanos() * 3 > t2.as_nanos(), "{t2:?} vs {t16:?}");
    }
}
