//! Scenario engine: declarative phased workload replay over any
//! [`Store`] backend.
//!
//! A [`Scenario`] is a list of [`Phase`]s, each describing one regime of
//! traffic: how keys are chosen ([`KeyDist`]), the PUT/GET/DELETE mix,
//! which bit-pattern family the values come from ([`ValueSource`]), an
//! optional per-PUT TTL, an optional offered arrival rate and optional
//! burst/quiesce cycling. [`replay`] drives the phases in order against a
//! `&dyn Store` — the sharded PNW store, the single-threaded reference
//! store, or any Figure 9 baseline — and emits **windowed time-series
//! metrics** ([`WindowRow`]): ops/s, value-bit flips per PUT, completed
//! retrains, the published model epoch, mean prediction latency, live
//! keys and TTL expiry/eviction counts per window.
//!
//! The windows are the point. The paper's §VI-F workload-shift experiment
//! is a *story over time* — flips/PUT is low under a trained model, jumps
//! when the distribution shifts, and re-converges once background
//! retraining installs an adapted model. A scenario makes that story a
//! first-class, replayable artifact: the committed `BENCH_scenario.json`
//! carries the windowed series plus per-phase steady states and the
//! recovery ratio (adapted steady state vs. pre-shift steady state).
//!
//! Two canonical scenarios ship with the engine:
//!
//! * [`drift`] — three phases over one store: a trained steady state, an
//!   abrupt shift to a disjoint value-pattern family (stale model), and
//!   the adapted regime after background retraining. The two families are
//!   *symmetric* (same pattern count, same random tail), so the adapted
//!   steady state is directly comparable to the pre-shift one.
//! * [`cctv`] — the §VI-C recorder as a TTL/ring-retention scenario:
//!   frames are PUT with a deadline into a
//!   [`with_ring_retention`](PnwConfig::with_ring_retention) store and
//!   never explicitly deleted; retention (expiry first, then
//!   earliest-deadline eviction) keeps the ring bounded.
//!
//! Values are fixed-size per store (every backend here is a fixed-bucket
//! design), so a phase varies the value *distribution* — the pattern
//! family the model clusters by — rather than the byte length.

use std::collections::VecDeque;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pnw_core::{
    now_unix_ms, OpReport, PnwConfig, RetrainMode, ShardedPnwStore, Store, StoreError,
};
use pnw_workloads::{ImageStyle, TemplateImages, VideoConfig, VideoFrames, Workload};
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::throughput::{OpMix, Zipfian};
use crate::Scale;

/// Where a phase's values come from.
#[derive(Debug, Clone)]
pub enum ValueSource {
    /// Synthetic bit-pattern families: the value is filled with
    /// `fills[key % fills.len()]` plus an 8-byte random tail, so the
    /// model has structure to steer by while every write still flips
    /// some bits.
    Patterns {
        /// The family's fill bytes.
        fills: Vec<u8>,
    },
    /// Template images from `pnw-workloads` (value size must be 784).
    Images {
        /// Digits or fashion.
        style: ImageStyle,
        /// Template seed.
        seed: u64,
    },
    /// Synthetic CCTV frames (value size must equal
    /// [`VideoConfig::frame_bytes`]).
    Video {
        /// Camera/scene shape.
        cfg: VideoConfig,
        /// Scene seed.
        seed: u64,
    },
}

/// A materialized [`ValueSource`] (streams hold their generator).
enum ValueGen {
    Patterns { fills: Vec<u8> },
    Stream(Box<dyn Workload>),
}

impl ValueSource {
    fn build(&self, stream_seed: u64) -> ValueGen {
        match self {
            ValueSource::Patterns { fills } => ValueGen::Patterns { fills: fills.clone() },
            ValueSource::Images { style, seed } => ValueGen::Stream(Box::new(
                TemplateImages::new(*style, *seed).with_stream_seed(stream_seed),
            )),
            ValueSource::Video { cfg, seed } => {
                ValueGen::Stream(Box::new(VideoFrames::new(cfg.clone(), *seed)))
            }
        }
    }
}

impl ValueGen {
    fn fill(&mut self, key: u64, buf: &mut [u8], rng: &mut StdRng) {
        match self {
            ValueGen::Patterns { fills } => {
                buf.fill(fills[(key % fills.len() as u64) as usize]);
                let tail = buf.len().min(8);
                let start = buf.len() - tail;
                for b in &mut buf[start..] {
                    *b = rng.gen();
                }
            }
            ValueGen::Stream(w) => {
                let v = w.next_value();
                buf.copy_from_slice(&v);
            }
        }
    }
}

/// How a phase chooses keys.
#[derive(Debug, Clone)]
pub enum KeyDist {
    /// Monotonically fresh keys with a bounded working set — the paper's
    /// replacement-stream shape (§VI): once `working_set` keys are live,
    /// each PUT first deletes the oldest key (`delete_oldest: true`), or
    /// leaves reclamation to the store's TTL/ring retention
    /// (`delete_oldest: false`). Fresh placements keep arriving, so
    /// load-factor retraining stays armed.
    Replacement {
        /// Live keys the driver holds.
        working_set: usize,
        /// Whether the driver deletes the oldest key itself.
        delete_oldest: bool,
    },
    /// Zipfian keys over `key_base..key_base + key_space` (theta 0.0 =
    /// uniform) — point traffic for mixed PUT/GET/DELETE phases.
    Zipf {
        /// Skew exponent.
        theta: f64,
        /// First key of the phase's window.
        key_base: u64,
    },
}

/// Burst/quiesce cycling within a phase: issue `ops` operations, then
/// sleep `quiesce`, repeat.
#[derive(Debug, Clone, Copy)]
pub struct Burst {
    /// Operations per burst.
    pub ops: usize,
    /// Idle gap between bursts.
    pub quiesce: Duration,
}

/// One traffic regime.
#[derive(Debug, Clone)]
pub struct Phase {
    /// Display name (lands in every window row).
    pub name: String,
    /// Operations this phase issues.
    pub ops: usize,
    /// PUT/GET/DELETE mix (replacement phases treat every op as a PUT).
    pub mix: OpMix,
    /// Key distribution.
    pub keys: KeyDist,
    /// Value distribution.
    pub values: ValueSource,
    /// Per-PUT TTL in milliseconds relative to issue time; `None` writes
    /// without a deadline. Ignored by stores without TTL support.
    pub ttl_ms: Option<u64>,
    /// Offered arrival rate in ops/sec; `None` replays as fast as the
    /// store completes.
    pub rate_ops_per_sec: Option<f64>,
    /// Optional burst/quiesce cycling.
    pub burst: Option<Burst>,
}

/// A named, seeded, replayable phased workload.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (lands in the JSON artifact).
    pub name: String,
    /// RNG seed; phase `i` streams from a function of `seed` and `i`.
    pub seed: u64,
    /// Zipfian key-space size per phase window.
    pub key_space: u64,
    /// Value size in bytes (must match the store's).
    pub value_size: usize,
    /// Operations per metrics window.
    pub window_ops: usize,
    /// The phases, replayed in order.
    pub phases: Vec<Phase>,
}

/// One metrics window of a replay.
#[derive(Debug, Clone)]
pub struct WindowRow {
    /// Phase the window belongs to.
    pub phase: String,
    /// Global window index.
    pub window: usize,
    /// Operations issued in the window.
    pub ops: u64,
    /// Wall-clock of the window in milliseconds (includes pacing sleeps).
    pub wall_ms: f64,
    /// Throughput in the window.
    pub ops_per_sec: f64,
    /// PUTs that succeeded in the window.
    pub puts: u64,
    /// Value bit flips in the window (the Figure 6 measurement — header
    /// and index bookkeeping excluded).
    pub value_flips: u64,
    /// Value bit flips per successful PUT.
    pub flips_per_put: f64,
    /// Bit updates per 512 value bits (the paper's normalization).
    pub flips_per_512: f64,
    /// Completed training runs, cumulative at window end.
    pub retrains: u64,
    /// Model epoch (install count) of the published snapshot at window
    /// end — a transition marks where an adapted model went live.
    pub model_epoch: u64,
    /// Mean measured prediction latency per PUT in the window, ns.
    pub mean_predict_ns: u64,
    /// Live keys at window end.
    pub live: usize,
    /// TTL expiries in the window (scrub sweep + lazy + ring).
    pub expired: u64,
    /// Ring-retention evictions in the window.
    pub evicted: u64,
}

/// Per-phase steady state: the PUT-weighted mean over the phase's last
/// third of windows, where the regime has settled.
#[derive(Debug, Clone)]
pub struct PhaseSummary {
    /// Phase name.
    pub phase: String,
    /// Windows the phase spanned.
    pub windows: usize,
    /// Steady-state value flips per PUT.
    pub steady_flips_per_put: f64,
    /// Steady-state flips per 512 value bits.
    pub steady_flips_per_512: f64,
    /// Retrains completed during the phase.
    pub retrains: u64,
}

/// Everything one replay produced.
#[derive(Debug, Clone)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// Backend driven ([`Store::name`]).
    pub backend: String,
    /// Whether the store accepted TTL deadlines.
    pub ttl: bool,
    /// The windowed series.
    pub windows: Vec<WindowRow>,
    /// Per-phase steady states.
    pub phases: Vec<PhaseSummary>,
    /// Last phase's steady flips/PUT over the first phase's — the
    /// re-convergence measure of the drift scenario (≈1.0 means the
    /// retrained model steers as well as the original).
    pub recovery_ratio: f64,
    /// `Full` errors the driver absorbed by shedding a key.
    pub full_errors: u64,
}

/// Window accumulator: per-op deltas gathered between window boundaries.
struct Acc {
    start: Instant,
    ops: u64,
    puts: u64,
    value_flips: u64,
    value_bits: u64,
    predict_ns: u64,
    expired0: u64,
    evicted0: u64,
}

impl Acc {
    fn new(store: &dyn Store) -> Acc {
        let snap = store.snapshot();
        Acc {
            start: Instant::now(),
            ops: 0,
            puts: 0,
            value_flips: 0,
            value_bits: 0,
            predict_ns: 0,
            expired0: snap.scrub.expired,
            evicted0: snap.scrub.evicted,
        }
    }

    fn record_put(&mut self, r: &OpReport) {
        self.puts += 1;
        self.value_flips += r.value_write.total_bit_flips();
        self.value_bits += r.value_write.bits_addressed;
        self.predict_ns += r.predict.as_nanos() as u64;
    }

    /// Closes the window: emits a [`WindowRow`] and resets the deltas.
    fn flush(&mut self, store: &dyn Store, phase: &str, windows: &mut Vec<WindowRow>) {
        let snap = store.snapshot();
        let wall = self.start.elapsed();
        let wall_ms = wall.as_secs_f64() * 1e3;
        windows.push(WindowRow {
            phase: phase.to_string(),
            window: windows.len(),
            ops: self.ops,
            wall_ms,
            ops_per_sec: if wall_ms > 0.0 { self.ops as f64 / wall.as_secs_f64() } else { 0.0 },
            puts: self.puts,
            value_flips: self.value_flips,
            flips_per_put: if self.puts == 0 {
                0.0
            } else {
                self.value_flips as f64 / self.puts as f64
            },
            flips_per_512: if self.value_bits == 0 {
                0.0
            } else {
                self.value_flips as f64 * 512.0 / self.value_bits as f64
            },
            retrains: snap.retrains,
            model_epoch: snap.train.epoch,
            mean_predict_ns: self.predict_ns.checked_div(self.puts).unwrap_or(0),
            live: snap.live,
            expired: snap.scrub.expired - self.expired0,
            evicted: snap.scrub.evicted - self.evicted0,
        });
        self.start = Instant::now();
        self.ops = 0;
        self.puts = 0;
        self.value_flips = 0;
        self.value_bits = 0;
        self.predict_ns = 0;
        self.expired0 = snap.scrub.expired;
        self.evicted0 = snap.scrub.evicted;
    }
}

/// Replays `sc` against `store` from an empty key stream. See
/// [`replay_from`] for warmed stores.
pub fn replay(store: &dyn Store, sc: &Scenario) -> ScenarioReport {
    replay_from(store, sc, 0)
}

/// Replays `sc` against `store`, starting the replacement key stream at
/// `first_key` — keys `0..first_key` are assumed live from warm-up and
/// seed the driver's working-set ring (oldest first). The driver is
/// single-threaded and deterministic given the seed (modulo wall-clock
/// TTL deadlines); concurrency benchmarks live in
/// [`throughput`](crate::throughput), not here.
pub fn replay_from(store: &dyn Store, sc: &Scenario, first_key: u64) -> ScenarioReport {
    assert!(sc.window_ops > 0, "window_ops must be positive");
    let value_size = store.value_size();
    assert_eq!(value_size, sc.value_size, "scenario/store value size mismatch");
    let ttl_active = store.supports_ttl();

    let mut windows: Vec<WindowRow> = Vec::new();
    let mut phases: Vec<PhaseSummary> = Vec::new();
    let mut full_errors = 0u64;
    let mut val_buf = vec![0u8; value_size];
    let mut get_buf = vec![0u8; value_size];
    // Replacement-stream state persists across phases: the stream keeps
    // growing keys and the working set carries over a shift.
    let mut next_key = first_key;
    let mut live_ring: VecDeque<u64> = (0..first_key).collect();
    let mut acc = Acc::new(store);

    for (pi, phase) in sc.phases.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(sc.seed ^ (0xA11CE << 8) ^ pi as u64);
        let mut vgen = phase.values.build(sc.seed + pi as u64);
        let zipf = match &phase.keys {
            KeyDist::Zipf { theta, .. } => Some(Zipfian::new(sc.key_space as usize, *theta)),
            KeyDist::Replacement { .. } => None,
        };
        let phase_window_start = windows.len();
        let retrains_at_entry = store.snapshot().retrains;
        let pace = phase.rate_ops_per_sec.map(|r| Duration::from_secs_f64(1.0 / r));
        let mut next_due = Instant::now();

        for op_i in 0..phase.ops {
            if let Some(gap) = pace {
                let now = Instant::now();
                if next_due > now {
                    std::thread::sleep(next_due - now);
                }
                next_due += gap;
            }
            if let Some(b) = phase.burst {
                if op_i > 0 && op_i % b.ops.max(1) == 0 {
                    std::thread::sleep(b.quiesce);
                    next_due = Instant::now();
                }
            }

            match &phase.keys {
                KeyDist::Replacement { working_set, delete_oldest } => {
                    if *delete_oldest && live_ring.len() >= *working_set {
                        let old = live_ring.pop_front().expect("ring non-empty");
                        let _ = store.delete(old);
                    }
                    let key = next_key;
                    next_key += 1;
                    vgen.fill(key, &mut val_buf, &mut rng);
                    match put(store, key, &val_buf, phase.ttl_ms, ttl_active) {
                        Ok(r) => {
                            acc.record_put(&r);
                            if *delete_oldest {
                                live_ring.push_back(key);
                            }
                        }
                        Err(StoreError::Full) => {
                            // No reclaimable tenant (e.g. retention off
                            // and the stream outgrew capacity): shed the
                            // oldest and carry on.
                            full_errors += 1;
                            if let Some(old) = live_ring.pop_front() {
                                let _ = store.delete(old);
                            }
                        }
                        Err(e) => panic!("scenario put failed: {e}"),
                    }
                }
                KeyDist::Zipf { theta: _, key_base } => {
                    let key =
                        key_base + zipf.as_ref().expect("zipf sampler built").sample(&mut rng);
                    let dice: u8 = rng.gen_range(0..100u8);
                    if dice < phase.mix.put_pct {
                        vgen.fill(key, &mut val_buf, &mut rng);
                        match put(store, key, &val_buf, phase.ttl_ms, ttl_active) {
                            Ok(r) => acc.record_put(&r),
                            Err(StoreError::Full) => {
                                full_errors += 1;
                                let _ = store.delete(key);
                            }
                            Err(e) => panic!("scenario put failed: {e}"),
                        }
                    } else if dice < phase.mix.put_pct + phase.mix.get_pct {
                        let _ = store.get_into(key, &mut get_buf).expect("get ok");
                    } else {
                        let _ = store.delete(key).expect("delete ok");
                    }
                }
            }
            acc.ops += 1;

            if acc.ops >= sc.window_ops as u64 {
                acc.flush(store, &phase.name, &mut windows);
            }
        }
        if acc.ops > 0 {
            // Close the phase's partial window so no phase's traffic
            // bleeds into the next phase's first row.
            acc.flush(store, &phase.name, &mut windows);
        }
        let retrains = store.snapshot().retrains - retrains_at_entry;
        phases.push(summarize(&phase.name, &windows[phase_window_start..], retrains));
    }

    let recovery_ratio = match (phases.first(), phases.last()) {
        (Some(a), Some(b)) if a.steady_flips_per_put > 0.0 => {
            b.steady_flips_per_put / a.steady_flips_per_put
        }
        _ => 0.0,
    };
    ScenarioReport {
        scenario: sc.name.clone(),
        backend: store.name().to_string(),
        ttl: ttl_active,
        windows,
        phases,
        recovery_ratio,
        full_errors,
    }
}

fn put(
    store: &dyn Store,
    key: u64,
    value: &[u8],
    ttl_ms: Option<u64>,
    ttl_active: bool,
) -> Result<OpReport, StoreError> {
    match ttl_ms {
        Some(ms) if ttl_active => store.put_with_expiry(key, value, now_unix_ms() + ms),
        _ => store.put(key, value),
    }
}

fn summarize(name: &str, rows: &[WindowRow], retrains: u64) -> PhaseSummary {
    // Steady state: the last third of the phase's windows (at least one),
    // PUT-weighted so sparse windows don't dominate.
    let tail = rows.len().div_ceil(3).clamp(1, rows.len().max(1));
    let steady = &rows[rows.len().saturating_sub(tail)..];
    let puts: u64 = steady.iter().map(|w| w.puts).sum();
    let flips: u64 = steady.iter().map(|w| w.value_flips).sum();
    let weighted_512: f64 = steady.iter().map(|w| w.flips_per_512 * w.puts as f64).sum();
    PhaseSummary {
        phase: name.to_string(),
        windows: rows.len(),
        steady_flips_per_put: if puts == 0 { 0.0 } else { flips as f64 / puts as f64 },
        steady_flips_per_512: if puts == 0 { 0.0 } else { weighted_512 / puts as f64 },
        retrains,
    }
}

// ---------------------------------------------------------------------------
// Canonical scenarios.

/// The first regime's pattern family.
const FAMILY_A: [u8; 4] = [0x00, 0xFF, 0x0F, 0xAA];
/// The shifted regime's family — disjoint from [`FAMILY_A`] but the same
/// size and tail, so steady states are directly comparable.
const FAMILY_B: [u8; 4] = [0x33, 0xCC, 0x55, 0xF0];

/// A scenario plus the store configuration that gives it meaning.
pub struct Spec {
    /// The phased workload.
    pub scenario: Scenario,
    /// The PNW store configuration to run it against.
    pub store_cfg: PnwConfig,
    /// Shard count for the store.
    pub shards: usize,
    /// Working-set size the store is warmed to before replay.
    pub warm: usize,
}

/// The three-phase distribution-drift scenario (§VI-F as a replayable
/// artifact): steady → shift (stale model) → adapted (background retrain
/// installed). Acceptance: the last phase's steady flips/PUT re-converges
/// to within ~10% of the first phase's.
pub fn drift(scale: Scale) -> Spec {
    let capacity = scale.pick(768, 4096);
    let working_set = capacity * 7 / 10;
    let value_size = 64;
    let per_phase = scale.pick(1500, 20_000);
    let phase = |name: &str, fills: [u8; 4], ops: usize| Phase {
        name: name.to_string(),
        ops,
        mix: OpMix::write_only(),
        keys: KeyDist::Replacement { working_set, delete_oldest: true },
        values: ValueSource::Patterns { fills: fills.to_vec() },
        ttl_ms: None,
        rate_ops_per_sec: None,
        burst: None,
    };
    Spec {
        scenario: Scenario {
            name: "drift".to_string(),
            seed: 0xD21F7,
            key_space: capacity as u64,
            value_size,
            window_ops: scale.pick(150, 1000),
            phases: vec![
                phase("steady", FAMILY_A, per_phase),
                // The shift phase runs double-length so the background
                // retrain both triggers and installs inside it; the third
                // phase then measures the adapted regime alone.
                phase("shift", FAMILY_B, per_phase * 2),
                phase("adapted", FAMILY_B, per_phase),
            ],
        },
        store_cfg: PnwConfig::new(capacity, value_size)
            .with_clusters(4)
            .with_seed(0xD21F7)
            // The 70% working set sits past the load factor, keeping
            // background retraining armed through every phase.
            .with_load_factor(0.6)
            .with_retrain(RetrainMode::Background),
        shards: 4,
        warm: working_set,
    }
}

/// The §VI-C CCTV recorder as a TTL/ring-retention scenario: frames are
/// written with a deadline and never explicitly deleted; expiry and
/// earliest-deadline eviction keep the ring bounded. Three phases (day /
/// night / day) shift the frame patterns so steering stays visible, and
/// burst/quiesce cycling gives deadlines time to lapse.
pub fn cctv(scale: Scale) -> Spec {
    let capacity = scale.pick(512, 2048);
    let value_size = 64;
    let per_phase = scale.pick(1200, 12_000);
    let phase = |name: &str, fills: [u8; 4]| Phase {
        name: name.to_string(),
        ops: per_phase,
        mix: OpMix::write_only(),
        keys: KeyDist::Replacement {
            working_set: capacity / 2,
            // Retention is the store's job here: expired frames reclaim
            // lazily and the ring evicts the earliest deadline when full.
            delete_oldest: false,
        },
        values: ValueSource::Patterns { fills: fills.to_vec() },
        ttl_ms: Some(scale.pick(400, 4000)),
        rate_ops_per_sec: None,
        burst: Some(Burst { ops: per_phase / 4, quiesce: Duration::from_millis(50) }),
    };
    Spec {
        scenario: Scenario {
            name: "cctv".to_string(),
            seed: 0xCC71,
            key_space: capacity as u64,
            value_size,
            window_ops: scale.pick(150, 1000),
            phases: vec![
                phase("day", FAMILY_A),
                phase("night", FAMILY_B),
                phase("day2", FAMILY_A),
            ],
        },
        store_cfg: PnwConfig::new(capacity, value_size)
            .with_clusters(4)
            .with_seed(0xCC71)
            .with_ring_retention()
            .with_load_factor(0.6)
            .with_retrain(RetrainMode::Background),
        shards: 4,
        warm: capacity / 2,
    }
}

/// Builds the spec's store, warms it with the first phase's distribution
/// (keys `0..spec.warm`), trains the model on the warm set and resets the
/// measurement window — the same warm-train-reset protocol every harness
/// uses.
pub fn build_store(spec: &Spec) -> Arc<dyn Store> {
    let store = ShardedPnwStore::new(spec.store_cfg.clone().with_shards(spec.shards));
    let mut rng = StdRng::seed_from_u64(spec.scenario.seed ^ 0x5EED);
    let mut vgen = spec.scenario.phases[0].values.build(spec.scenario.seed);
    let ttl_ms = spec.scenario.phases[0].ttl_ms;
    let mut buf = vec![0u8; spec.scenario.value_size];
    for key in 0..spec.warm as u64 {
        vgen.fill(key, &mut buf, &mut rng);
        match ttl_ms {
            Some(ms) if store.supports_ttl() => {
                store.put_with_expiry(key, &buf, now_unix_ms() + ms).expect("warm-up fits");
            }
            _ => {
                store.put(key, &buf).expect("warm-up fits");
            }
        }
    }
    store.retrain_now().expect("warm-up training");
    store.reset_device_stats();
    Arc::new(store)
}

/// [`replay_from`] with the spec's warm-set size as the key origin.
pub fn replay_spec(store: &dyn Store, spec: &Spec) -> ScenarioReport {
    replay_from(store, &spec.scenario, spec.warm as u64)
}

// ---------------------------------------------------------------------------
// JSON.

/// Serializes reports as JSON (hand-rolled — the workspace has no JSON
/// dependency) for the committed artifact `BENCH_scenario.json`.
pub fn to_json(reports: &[ScenarioReport]) -> String {
    let mut out = String::from("{\n  \"bench\": \"scenario\",\n  \"results\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"backend\": \"{}\", \"ttl\": {}, \
             \"recovery_ratio\": {:.4}, \"full_errors\": {},\n",
            r.scenario, r.backend, r.ttl, r.recovery_ratio, r.full_errors
        ));
        out.push_str("     \"phases\": [\n");
        for (j, p) in r.phases.iter().enumerate() {
            out.push_str(&format!(
                "       {{\"phase\": \"{}\", \"windows\": {}, \
                 \"steady_flips_per_put\": {:.3}, \"steady_flips_per_512\": {:.3}, \
                 \"retrains\": {}}}{}\n",
                p.phase,
                p.windows,
                p.steady_flips_per_put,
                p.steady_flips_per_512,
                p.retrains,
                if j + 1 < r.phases.len() { "," } else { "" },
            ));
        }
        out.push_str("     ],\n     \"windows\": [\n");
        for (j, w) in r.windows.iter().enumerate() {
            out.push_str(&format!(
                "       {{\"phase\": \"{}\", \"window\": {}, \"ops\": {}, \
                 \"wall_ms\": {:.3}, \"ops_per_sec\": {:.1}, \"puts\": {}, \
                 \"value_flips\": {}, \"flips_per_put\": {:.3}, \
                 \"flips_per_512\": {:.3}, \"retrains\": {}, \"model_epoch\": {}, \
                 \"mean_predict_ns\": {}, \"live\": {}, \"expired\": {}, \
                 \"evicted\": {}}}{}\n",
                w.phase,
                w.window,
                w.ops,
                w.wall_ms,
                w.ops_per_sec,
                w.puts,
                w.value_flips,
                w.flips_per_put,
                w.flips_per_512,
                w.retrains,
                w.model_epoch,
                w.mean_predict_ns,
                w.live,
                w.expired,
                w.evicted,
                if j + 1 < r.windows.len() { "," } else { "" },
            ));
        }
        out.push_str(&format!("     ]}}{}\n", if i + 1 < reports.len() { "," } else { "" }));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes [`to_json`] output to `path`.
pub fn write_json(path: &Path, reports: &[ScenarioReport]) -> std::io::Result<()> {
    std::fs::write(path, to_json(reports))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drift_quick_replays_and_reconverges() {
        let spec = drift(Scale::Quick);
        let store = build_store(&spec);
        let r = replay_spec(&*store, &spec);
        assert_eq!(r.scenario, "drift");
        assert_eq!(r.phases.len(), 3);
        assert!(r.windows.len() >= 3, "windows: {}", r.windows.len());
        assert!(r.phases.iter().all(|p| p.steady_flips_per_put > 0.0));
        // The background retrain must have fired during the run.
        let retrains: u64 = r.phases.iter().map(|p| p.retrains).sum();
        assert!(retrains >= 1, "no retrain during the drift scenario");
        // Model-epoch transitions are visible in the windowed series.
        let first = r.windows.first().unwrap().model_epoch;
        let last = r.windows.last().unwrap().model_epoch;
        assert!(last > first, "model epoch never advanced: {first} -> {last}");
        let j = to_json(&[r]);
        assert!(j.contains("\"scenario\": \"drift\""));
        assert!(j.contains("\"flips_per_put\""));
        assert!(j.contains("\"model_epoch\""));
    }

    #[test]
    fn cctv_quick_retains_by_ttl_and_ring() {
        let spec = cctv(Scale::Quick);
        let store = build_store(&spec);
        assert!(store.supports_ttl());
        let r = replay_spec(&*store, &spec);
        assert_eq!(r.phases.len(), 3);
        assert!(r.ttl);
        // Retention must have reclaimed something: frames either expired
        // (deadline passed) or were evicted (earliest-deadline tenant).
        let reclaimed: u64 = r.windows.iter().map(|w| w.expired + w.evicted).sum();
        assert!(reclaimed > 0, "ring retention never reclaimed a frame");
        // The driver never deletes, so the store alone bounded occupancy.
        assert!(store.len() <= spec.store_cfg.capacity);
    }

    #[test]
    fn zipf_phase_mixes_ops() {
        let sc = Scenario {
            name: "mixed".to_string(),
            seed: 9,
            key_space: 128,
            value_size: 16,
            window_ops: 100,
            phases: vec![Phase {
                name: "mixed".to_string(),
                ops: 400,
                mix: OpMix::mixed(),
                keys: KeyDist::Zipf { theta: 0.99, key_base: 0 },
                values: ValueSource::Patterns { fills: FAMILY_A.to_vec() },
                ttl_ms: None,
                rate_ops_per_sec: None,
                burst: None,
            }],
        };
        let store = ShardedPnwStore::new(PnwConfig::new(512, 16).with_clusters(2).with_shards(2));
        let r = replay(&store, &sc);
        assert_eq!(r.windows.len(), 4);
        assert!(r.windows.iter().map(|w| w.puts).sum::<u64>() > 0);
        assert!(!store.is_empty());
    }

    #[test]
    fn paced_phase_respects_rate() {
        let sc = Scenario {
            name: "paced".to_string(),
            seed: 5,
            key_space: 32,
            value_size: 8,
            window_ops: 50,
            phases: vec![Phase {
                name: "paced".to_string(),
                ops: 100,
                mix: OpMix::write_only(),
                keys: KeyDist::Zipf { theta: 0.0, key_base: 0 },
                values: ValueSource::Patterns { fills: vec![0xAA] },
                ttl_ms: None,
                rate_ops_per_sec: Some(5_000.0),
                burst: None,
            }],
        };
        let store = ShardedPnwStore::new(PnwConfig::new(64, 8).with_shards(1));
        let start = Instant::now();
        let r = replay(&store, &sc);
        // 100 ops at 5k/s ≈ 20 ms offered duration.
        assert!(start.elapsed() >= Duration::from_millis(15), "pacing ignored");
        assert_eq!(r.windows.len(), 2);
    }
}
