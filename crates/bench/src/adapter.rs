//! [`KvStore`] adapter for the PNW store, so Figure 9's harness can drive
//! PNW and the three baselines through one interface.

use pnw_baselines::{KvStore, StoreError};
use pnw_core::{PnwError, PnwStore};
use pnw_nvm_sim::{DeviceStats, NvmDevice};

/// Wraps a [`PnwStore`] as a [`KvStore`].
pub struct PnwKv(pub PnwStore);

fn convert(e: PnwError) -> StoreError {
    match e {
        PnwError::Full => StoreError::Full,
        PnwError::WrongValueSize { expected, got } => StoreError::WrongValueSize { expected, got },
        PnwError::ModelUnavailable => StoreError::Full,
        PnwError::Nvm(e) => StoreError::Nvm(e),
    }
}

impl KvStore for PnwKv {
    fn name(&self) -> &'static str {
        "PNW"
    }

    fn value_size(&self) -> usize {
        self.0.config().value_size
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<(), StoreError> {
        self.0.put(key, value).map(|_| ()).map_err(convert)
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        self.0.get(key).map_err(convert)
    }

    fn delete(&mut self, key: u64) -> Result<bool, StoreError> {
        self.0.delete(key).map_err(convert)
    }

    fn len(&self) -> usize {
        self.0.len()
    }

    fn device_stats(&self) -> &DeviceStats {
        self.0.device_stats()
    }

    fn device(&self) -> &NvmDevice {
        self.0.device()
    }

    fn reset_device_stats(&mut self) {
        self.0.reset_device_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnw_core::PnwConfig;

    #[test]
    fn adapter_roundtrip() {
        let mut s = PnwKv(PnwStore::new(PnwConfig::new(32, 8).with_clusters(2)));
        assert_eq!(s.name(), "PNW");
        assert_eq!(s.value_size(), 8);
        s.put(1, &[1u8; 8]).unwrap();
        assert_eq!(s.get(1).unwrap().unwrap(), vec![1u8; 8]);
        assert!(s.delete(1).unwrap());
        assert!(s.is_empty());
    }

    #[test]
    fn errors_convert() {
        let mut s = PnwKv(PnwStore::new(PnwConfig::new(2, 8).with_clusters(1)));
        assert!(matches!(
            s.put(1, &[0u8; 4]),
            Err(StoreError::WrongValueSize { .. })
        ));
        s.put(1, &[0u8; 8]).unwrap();
        s.put(2, &[0u8; 8]).unwrap();
        assert!(matches!(s.put(3, &[0u8; 8]), Err(StoreError::Full)));
    }
}
