//! Figure 9: written cache lines per request across K/V stores.
fn main() {
    let scale = pnw_bench::Scale::from_env();
    println!("Figure 9 — avg written cache lines per request\n");
    println!("{}", pnw_bench::figures::fig9(scale).render());
}
