//! Multi-threaded throughput sweep over the sharded store.
//!
//! ```text
//! cargo run --release -p pnw-bench --bin throughput -- [--quick]
//!     [--threads 1,2,4] [--shards N] [--ops N] [--value-size N]
//!     [--no-latency] [--out BENCH_throughput.json]
//! ```
//!
//! Emits a table plus `BENCH_throughput.json` (the perf-trajectory file)
//! in the working directory.

use pnw_bench::throughput::{run, write_json, ThroughputConfig, ThroughputReport};
use pnw_bench::Scale;

struct Args {
    threads: Vec<usize>,
    cfg: ThroughputConfig,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let scale = Scale::from_env();
    let mut out = Args {
        threads: vec![1, 2, 4],
        cfg: ThroughputConfig {
            ops_per_thread: scale.pick(500, 2_000),
            ..Default::default()
        },
        out: "BENCH_throughput.json".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--quick" => {} // consumed by Scale::from_env
            "--threads" => {
                out.threads = grab("--threads")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("bad thread count: {e}")))
                    .collect::<Result<_, _>>()?;
                if out.threads.is_empty() {
                    return Err("--threads needs at least one value".into());
                }
            }
            "--shards" => {
                out.cfg.shards = grab("--shards")?.parse().map_err(|e| format!("{e}"))?
            }
            "--ops" => {
                out.cfg.ops_per_thread = grab("--ops")?.parse().map_err(|e| format!("{e}"))?
            }
            "--value-size" => {
                out.cfg.value_size = grab("--value-size")?.parse().map_err(|e| format!("{e}"))?
            }
            "--no-latency" => out.cfg.emulate_latency = false,
            "--out" => out.out = grab("--out")?.into(),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(out)
}

fn print_row(r: &ThroughputReport) {
    println!(
        "{:>7} {:>7} {:>10} {:>12.0} {:>12} {:>12} {:>9} {:>9} {:>8} {:>8} {:>8}",
        r.threads,
        r.shards,
        r.total_ops,
        r.ops_per_sec,
        r.p50_modeled_ns,
        r.p99_modeled_ns,
        r.predict_p50_ns,
        r.predict_p99_ns,
        r.puts,
        r.gets,
        r.deletes,
    );
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "Throughput sweep — {} ops/thread, {} shards, mixed {}% put / {}% get / {}% del, Zipf θ={}",
        args.cfg.ops_per_thread,
        args.cfg.shards,
        args.cfg.mix.put_pct,
        args.cfg.mix.get_pct,
        args.cfg.mix.del_pct,
        args.cfg.zipf_theta,
    );
    println!(
        "{:>7} {:>7} {:>10} {:>12} {:>12} {:>12} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "threads",
        "shards",
        "ops",
        "ops/sec",
        "p50(ns)",
        "p99(ns)",
        "pr50(ns)",
        "pr99(ns)",
        "puts",
        "gets",
        "dels"
    );
    let mut reports = Vec::new();
    for &threads in &args.threads {
        let r = run(&ThroughputConfig {
            threads,
            ..args.cfg.clone()
        });
        print_row(&r);
        println!(
            "        model: epoch {}, {} retrains, last train {:.2} ms on {} samples ({} pre-cap)",
            r.model_epoch,
            r.retrains,
            r.last_train_ms,
            r.train_samples_post_cap,
            r.train_samples_pre_cap,
        );
        reports.push(r);
    }
    match write_json(&args.out, &reports) {
        Ok(()) => println!("\nwrote {}", args.out.display()),
        Err(e) => eprintln!("error writing {}: {e}", args.out.display()),
    }
}
