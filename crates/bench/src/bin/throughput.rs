//! Multi-threaded throughput sweep over any [`Store`](pnw_core::Store)
//! backend, per-op or batched.
//!
//! ```text
//! cargo run --release -p pnw-bench --bin throughput -- [--quick]
//!     [--store pnw|fptree|lsm|path] [--batch N]
//!     [--threads 1,2,4] [--shards N] [--ops N] [--value-size N]
//!     [--mix mixed|write|read] [--write-only] [--locked-reads]
//!     [--no-latency] [--out BENCH_throughput.json]
//! ```
//!
//! With no backend/batch/mix flags, the full suite runs: the classic mixed
//! per-op sweep over the sharded PNW store (with emulated device latency),
//! a GET-heavy 90/10 read-scaling comparison of locked vs lock-free reads,
//! then a batched-vs-per-op PUT comparison at batch 64 with latency
//! emulation off — the configuration where software-path overhead, which
//! batching amortizes, is what's measured. All rows land in one
//! `BENCH_throughput.json` (the perf-trajectory file).

use pnw_bench::throughput::{
    run, write_json, Backend, OpMix, ThroughputConfig, ThroughputReport,
};
use pnw_bench::Scale;

struct Args {
    threads: Vec<usize>,
    cfg: ThroughputConfig,
    /// `--store` and/or `--batch` given: run exactly what was asked.
    explicit: bool,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let scale = Scale::from_env();
    let mut out = Args {
        threads: vec![1, 2, 4],
        cfg: ThroughputConfig {
            ops_per_thread: scale.pick(500, 2_000),
            ..Default::default()
        },
        explicit: false,
        out: "BENCH_throughput.json".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--quick" => {} // consumed by Scale::from_env
            "--store" => {
                let s = grab("--store")?;
                out.cfg.backend = Backend::parse(&s)
                    .ok_or_else(|| format!("unknown backend '{s}' (pnw|fptree|lsm|path)"))?;
                out.explicit = true;
            }
            "--batch" => {
                out.cfg.batch = grab("--batch")?.parse().map_err(|e| format!("{e}"))?;
                out.explicit = true;
            }
            "--threads" => {
                out.threads = grab("--threads")?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("bad thread count: {e}")))
                    .collect::<Result<_, _>>()?;
                if out.threads.is_empty() {
                    return Err("--threads needs at least one value".into());
                }
            }
            "--shards" => {
                out.cfg.shards = grab("--shards")?.parse().map_err(|e| format!("{e}"))?
            }
            "--ops" => {
                out.cfg.ops_per_thread = grab("--ops")?.parse().map_err(|e| format!("{e}"))?
            }
            "--value-size" => {
                out.cfg.value_size = grab("--value-size")?.parse().map_err(|e| format!("{e}"))?
            }
            "--mix" => {
                let m = grab("--mix")?;
                out.cfg.mix = match m.as_str() {
                    "mixed" => OpMix::mixed(),
                    "write" => OpMix::write_only(),
                    "read" => OpMix::read_heavy(),
                    other => return Err(format!("unknown mix '{other}' (mixed|write|read)")),
                };
                out.explicit = true;
            }
            "--write-only" => {
                out.cfg.mix = OpMix::write_only();
                out.explicit = true;
            }
            "--locked-reads" => out.cfg.locked_reads = true,
            "--no-latency" => out.cfg.emulate_latency = false,
            "--out" => out.out = grab("--out")?.into(),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(out)
}

fn print_header() {
    println!(
        "{:>12} {:>7} {:>7} {:>6} {:>8} {:>10} {:>12} {:>12} {:>12} {:>9} {:>9} {:>8} {:>8} {:>8}",
        "backend",
        "threads",
        "shards",
        "batch",
        "reads",
        "ops",
        "ops/sec",
        "p50(ns)",
        "p99(ns)",
        "pr50(ns)",
        "pr99(ns)",
        "puts",
        "gets",
        "dels"
    );
}

fn print_row(r: &ThroughputReport) {
    println!(
        "{:>12} {:>7} {:>7} {:>6} {:>8} {:>10} {:>12.0} {:>12} {:>12} {:>9} {:>9} {:>8} {:>8} {:>8}",
        r.backend,
        r.threads,
        r.shards,
        r.batch,
        if r.locked_reads { "locked" } else { "seqlock" },
        r.total_ops,
        r.ops_per_sec,
        r.p50_modeled_ns,
        r.p99_modeled_ns,
        r.predict_p50_ns,
        r.predict_p99_ns,
        r.puts,
        r.gets,
        r.deletes,
    );
}

fn run_sweep(base: &ThroughputConfig, threads: &[usize], reports: &mut Vec<ThroughputReport>) {
    for &t in threads {
        let r = run(&ThroughputConfig {
            threads: t,
            ..base.clone()
        });
        print_row(&r);
        if r.retrains > 0 {
            println!(
                "        model: epoch {}, {} retrains, last train {:.2} ms on {} samples ({} pre-cap)",
                r.model_epoch,
                r.retrains,
                r.last_train_ms,
                r.train_samples_post_cap,
                r.train_samples_pre_cap,
            );
        }
        reports.push(r);
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "Throughput sweep — {} backend, {} ops/thread, {} shards, {}% put / {}% get / {}% del, Zipf θ={}",
        args.cfg.backend.flag(),
        args.cfg.ops_per_thread,
        args.cfg.shards,
        args.cfg.mix.put_pct,
        args.cfg.mix.get_pct,
        args.cfg.mix.del_pct,
        args.cfg.zipf_theta,
    );
    print_header();
    let mut reports = Vec::new();
    run_sweep(&args.cfg, &args.threads, &mut reports);

    if !args.explicit {
        // Read scaling: the 90/10 GET-heavy mix with the engine-lock read
        // path versus the lock-free seqlock path, interleaved per thread
        // count so host noise hits both alike. Latency emulation stays on
        // (clients wait on the modeled device, as in the mixed sweep) —
        // what changes is whether waiting writers stall readers.
        println!("\nGET-heavy read scaling (90% get / 10% put, locked vs lock-free reads):");
        print_header();
        let read_base = ThroughputConfig {
            mix: OpMix::read_heavy(),
            ..args.cfg.clone()
        };
        for &t in &args.threads {
            for locked_reads in [true, false] {
                let r = run(&ThroughputConfig {
                    threads: t,
                    locked_reads,
                    ..read_base.clone()
                });
                print_row(&r);
                reports.push(r);
            }
        }

        // The batched-vs-per-op comparison: write-only, latency emulation
        // off (the sleep would otherwise mask the amortized software
        // path). The two modes are interleaved per thread count and each
        // keeps its best of three runs, so a slow host window (shared-CPU
        // noisy neighbors) hits both modes alike instead of whichever
        // section it lands on.
        println!("\nBatched vs per-op PUT path (write-only, no latency emulation, best of 3):");
        print_header();
        let base = ThroughputConfig {
            mix: OpMix::write_only(),
            emulate_latency: false,
            ..args.cfg.clone()
        };
        let mut per_op_rows = Vec::new();
        let mut batched_rows = Vec::new();
        for &t in &args.threads {
            let mut best: [Option<ThroughputReport>; 2] = [None, None];
            for _ in 0..3 {
                for (slot, batch) in [(0usize, 0usize), (1, 64)] {
                    let r = run(&ThroughputConfig {
                        threads: t,
                        batch,
                        ..base.clone()
                    });
                    if best[slot]
                        .as_ref()
                        .is_none_or(|b| r.ops_per_sec > b.ops_per_sec)
                    {
                        best[slot] = Some(r);
                    }
                }
            }
            let [per_op, batched] = best.map(|r| r.expect("three runs per mode"));
            print_row(&per_op);
            print_row(&batched);
            per_op_rows.push(per_op);
            batched_rows.push(batched);
        }
        reports.extend(per_op_rows);
        reports.extend(batched_rows);
    }

    match write_json(&args.out, &reports) {
        Ok(()) => println!("\nwrote {}", args.out.display()),
        Err(e) => eprintln!("error writing {}: {e}", args.out.display()),
    }
}
