//! Packed-vs-float prediction microbenchmark.
//!
//! ```text
//! cargo run --release -p pnw-bench --bin predict -- [--quick]
//!     [--iters N] [--out BENCH_predict.json]
//! ```
//!
//! Prints a ns/op table and writes `BENCH_predict.json` (the prediction
//! perf-trajectory file) in the working directory. `--quick` shrinks the
//! iteration count for CI smoke runs.

use pnw_bench::predictbench::{default_cases, run_sweep, write_json};
use pnw_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let mut iters: u64 = scale.pick(20_000u64, 200_000u64);
    let mut out = std::path::PathBuf::from("BENCH_predict.json");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {} // consumed by Scale::from_env
            "--iters" => {
                iters = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("error: --iters needs a number");
                        std::process::exit(2);
                    })
            }
            "--out" => {
                out = it
                    .next()
                    .map(Into::into)
                    .unwrap_or_else(|| {
                        eprintln!("error: --out needs a path");
                        std::process::exit(2);
                    })
            }
            other => {
                eprintln!("error: unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }

    println!("Prediction kernel — packed LUT (SIMD and scalar) vs float featurize+scan ({iters} iters/case)");
    println!(
        "{:>10} {:>6} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "value", "K", "packed(ns)", "scalar(ns)", "float(ns)", "vs float", "vs scalar"
    );
    let results = run_sweep(&default_cases(), iters, 0xACE5);
    for r in &results {
        println!(
            "{:>9}B {:>6} {:>12.1} {:>12.1} {:>12.1} {:>8.1}x {:>8.1}x",
            r.value_size, r.k, r.packed_ns, r.packed_scalar_ns, r.float_ns, r.speedup, r.simd_speedup
        );
    }
    match write_json(&out, &results) {
        Ok(()) => println!("\nwrote {}", out.display()),
        Err(e) => eprintln!("error writing {}: {e}", out.display()),
    }
}
