//! Figure 12: per-address write-count CDFs at k=5 and k=30.
fn main() {
    let scale = pnw_bench::Scale::from_env();
    for k in [5usize, 30] {
        let r = pnw_bench::figures::fig12_13(k, scale);
        let (tw, _) = pnw_bench::figures::wear_tables(k, &r);
        println!("Figure 12 — max update addresses CDF, k={k}\n");
        println!("{}", tw.render());
    }
}
