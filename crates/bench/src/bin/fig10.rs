//! Figure 10: MNIST -> Fashion-MNIST workload shift over four phases.
fn main() {
    let scale = pnw_bench::Scale::from_env();
    let (t, _) = pnw_bench::figures::fig10(scale);
    println!("Figure 10 — bit updates over time across the workload shift\n");
    println!("{}", t.render());
    println!("(phase 1: MNIST; 2: Fashion:MNIST 2:1; 3: Fashion; 4: Fashion after retrain)");
}
