//! Figure 8: average write latency vs K on the PubMed-like workload.
fn main() {
    let scale = pnw_bench::Scale::from_env();
    println!("Figure 8 — write latency vs K (PubMed-like, insert:delete 1:1)\n");
    println!("{}", pnw_bench::figures::fig8(scale).render());
}
