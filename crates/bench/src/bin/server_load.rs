//! Open-loop load generation against `pnw-server`, with a mid-run
//! simulated crash — the CI `server-smoke` lane and the source of
//! `BENCH_server.json`.
//!
//! ```text
//! cargo run --release -p pnw-bench --bin server_load -- [--quick]
//!     [--wear] [--value-size N] [--out BENCH_server.json]
//! ```
//!
//! The run is a scripted robustness scenario, all in one process:
//!
//! 1. Open a **durable** sharded store in a temp dir and serve it over a
//!    Unix socket.
//! 2. Phase 1: open-loop load at a moderate offered rate **with fault
//!    injection on** — connection kills, torn frames, corrupt frames —
//!    while recording coordinated-omission-safe sojourn percentiles.
//! 3. Kill the server **without a checkpoint** (simulated crash), reopen
//!    the store from the same directory (WAL replay), restart the server
//!    on the same socket; clients reconnect.
//! 4. Phase 2: open-loop load **past saturation** against a deliberately
//!    small admission gate — backpressure/overload rejections and backlog
//!    growth must show up as typed errors and p99, not as a wedged server.
//! 5. Graceful drain. The process exits 0 only if the drain was clean.
//!
//! Both load points land in `BENCH_server.json`, labeled
//! `loop_mode: "open"`.
//!
//! `--wear` runs the same scenario on wearing-out media: a low endurance
//! threshold with probabilistic stuck-at latching, the background
//! scrubber on, and a small key space so hot words genuinely cross the
//! threshold mid-run. The exit-code contract tightens: the server must
//! stay up through the latching, any corruption must surface as the
//! *typed* non-retryable wire error (counted per phase, never a
//! quarantine or a crash), the wear machinery must demonstrably engage
//! (latched bits or retired buckets in the final snapshot), and the
//! drain must still be clean.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use pnw_bench::serverbench::{run_open_loop, write_json, FaultPlan, LoadConfig, LoadReport};
use pnw_bench::Scale;
use pnw_core::{PnwConfig, ShardedPnwStore, Store};
use pnw_server::{RetryPolicy, Server, ServerAddr, ServerConfig};

struct Args {
    value_size: usize,
    wear: bool,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { value_size: 64, wear: false, out: "BENCH_server.json".into() };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {} // consumed by Scale::from_env
            "--wear" => args.wear = true,
            "--value-size" => {
                args.value_size = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--value-size needs a number")?;
            }
            "--out" => {
                args.out = it.next().ok_or("--out needs a path")?.into();
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn print_report(label: &str, r: &LoadReport) {
    println!(
        "{label}: offered {:.0}/s achieved {:.0}/s completed {} failed {} \
         retries {} backpressure {} overloaded {} deadline {} corruption {} \
         faults {} reconnects {} p50 {}µs p90 {}µs p99 {}µs max {}µs",
        r.offered_ops_per_sec,
        r.achieved_ops_per_sec,
        r.completed,
        r.failed,
        r.retries,
        r.backpressure,
        r.overloaded,
        r.deadline_exceeded,
        r.corruption,
        r.faults_injected,
        r.reconnects,
        r.p50_us,
        r.p90_us,
        r.p99_us,
        r.max_us,
    );
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("server_load: {e}");
            return ExitCode::FAILURE;
        }
    };
    let scale = Scale::from_env();

    let dir = std::env::temp_dir().join(format!("pnw-server-load-{}", std::process::id()));
    let store_dir = dir.join("store");
    let sock = dir.join("pnw.sock");
    if let Err(e) = std::fs::create_dir_all(&store_dir) {
        eprintln!("server_load: cannot create {}: {e}", store_dir.display());
        return ExitCode::FAILURE;
    }
    let addr = ServerAddr::Unix(sock);
    let result = scenario(&args, scale, &store_dir, &addr);
    let _ = std::fs::remove_dir_all(&dir);
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("server_load: {e}");
            ExitCode::FAILURE
        }
    }
}

fn scenario(
    args: &Args,
    scale: Scale,
    store_dir: &std::path::Path,
    addr: &ServerAddr,
) -> Result<(), String> {
    let store_cfg = || {
        let mut c = PnwConfig::new(scale.pick(16_384, 131_072), args.value_size)
            .with_clusters(4)
            .with_shards(4)
            .with_path(store_dir);
        if args.wear {
            // Endurance 2 with a 10% latch draw: the shrunken key space
            // below rewrites hot words well past the threshold mid-run,
            // so cells genuinely latch while the background scrubber
            // races the clients to the damage.
            c = c.with_endurance(2).with_stuck_latch_probability(0.1).with_scrub(20_000);
        }
        c
    };
    // Wear mode concentrates the load on few keys so per-word write
    // counts actually cross the endurance threshold within a CI run.
    let key_space = if args.wear { 96 } else { 4_096 };
    let open_store = || -> Result<Arc<dyn Store>, String> {
        Ok(Arc::new(
            ShardedPnwStore::open(store_cfg()).map_err(|e| format!("open store: {e}"))?,
        ))
    };

    // Phase 1: moderate load, faults on, durable server.
    let server = Server::start(open_store()?, addr, ServerConfig::default())
        .map_err(|e| format!("bind {addr}: {e}"))?;
    println!("server_load: phase 1 (faults on) against {addr}");
    let phase1 = run_open_loop(
        addr,
        &LoadConfig {
            connections: 4,
            // Below this host class's saturation point (~3k/s synchronous
            // durable PUTs over 4 conns) so phase 1 is the healthy
            // baseline and phase 2 is the one past saturation.
            offered_ops_per_sec: scale.pick(1_000.0, 2_000.0),
            arrivals_per_conn: scale.pick(300, 5_000),
            value_size: args.value_size,
            key_space,
            faults: FaultPlan::aggressive(),
            retry: RetryPolicy { max_retries: 6, ..Default::default() },
            seed: 0xFA17,
            ..Default::default()
        },
    );
    print_report("phase1", &phase1);
    if phase1.completed == 0 {
        return Err("phase 1 completed nothing".into());
    }
    if phase1.faults_injected == 0 {
        return Err("phase 1 injected no faults".into());
    }

    // Simulated crash: no checkpoint — the reopen below must replay the
    // WAL. The store object is dropped with the server.
    let stats = server.stats();
    println!(
        "server_load: killing server (no checkpoint); stats: ok {} err {} quarantined {}",
        stats.requests_ok, stats.requests_err, stats.quarantined
    );
    server.abort();

    // Restart on the same socket, same durable dir; a small admission
    // gate makes the saturation point cheap to reach. Keep a handle on
    // the store so the wear machinery can be audited after the drain.
    let store = open_store()?;
    let server = Server::start(
        store.clone(),
        addr,
        ServerConfig { max_inflight: 2, max_waiting: 8, ..ServerConfig::default() },
    )
    .map_err(|e| format!("rebind {addr}: {e}"))?;
    println!("server_load: restarted after crash (WAL replayed); phase 2 past saturation");
    let phase2 = run_open_loop(
        addr,
        &LoadConfig {
            connections: 8,
            offered_ops_per_sec: scale.pick(60_000.0, 200_000.0),
            arrivals_per_conn: scale.pick(250, 3_000),
            value_size: args.value_size,
            key_space,
            deadline: Some(Duration::from_millis(100)),
            retry: RetryPolicy { max_retries: 2, ..Default::default() },
            seed: 0x5A70,
            ..Default::default()
        },
    );
    print_report("phase2", &phase2);
    let saturated = phase2.achieved_ops_per_sec < phase2.offered_ops_per_sec * 0.9
        || phase2.overloaded + phase2.backpressure + phase2.deadline_exceeded > 0
        || phase2.p99_us > phase1.p99_us.saturating_mul(4);
    if !saturated {
        println!("server_load: warning: phase 2 did not visibly saturate this host");
    }

    let corruption_answers = phase1.corruption + phase2.corruption;
    write_json(&args.out, &[phase1, phase2]).map_err(|e| format!("write json: {e}"))?;
    println!("server_load: wrote {}", args.out.display());

    // Graceful drain gates the exit code — the CI lane's whole point.
    let report = server.drain().map_err(|e| format!("drain checkpoint: {e}"))?;
    if !report.clean {
        return Err(format!("drain forced {} straggler connection(s)", report.stragglers));
    }
    println!("server_load: clean drain in {:?}", report.elapsed);

    let scrub = store.snapshot().scrub;
    println!(
        "server_load: scrub: scanned {} crc_failures {} repairs {} retired {} \
         stuck_bits {}; typed corruption answers {corruption_answers}",
        scrub.scanned, scrub.crc_failures, scrub.repairs, scrub.retired, scrub.stuck_bits,
    );
    if args.wear && scrub.stuck_bits == 0 && scrub.retired == 0 {
        // A wear run where nothing latched tested nothing — the knobs
        // above are tuned so this cannot happen on an honest run.
        return Err("wear mode latched no bits and retired no buckets".into());
    }
    Ok(())
}
