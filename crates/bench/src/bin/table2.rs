//! Table II: the 6-entry worked example of §IV.
fn main() {
    println!("Table II — worked clustering example\n");
    println!("{}", pnw_bench::figures::table2().render());
}
