//! Cost-breakdown probe for the batched PUT hot path: times each layer of
//! one batched overwrite in isolation — device bucket write, lock-free
//! index insert/remove, Zipf sampling, value generation — and the
//! end-to-end `Store::apply` per-op cost, so a perf regression can be
//! pinned to a layer without a system profiler.
//!
//! ```text
//! cargo run --release -p pnw-bench --bin opcost
//! ```

use std::time::Instant;

use pnw_bench::throughput::Zipfian;
use pnw_core::{Batch, PnwConfig, RetrainMode, ShardedPnwStore, Store};
use pnw_index::{AtomicHashIndex, KeyIndex};
use pnw_nvm_sim::{NvmConfig, NvmDevice, WriteMode};
use rand::{rngs::StdRng, Rng, SeedableRng};

const VALUE: usize = 64;
const HDR: usize = 16;

fn time<R>(label: &str, iters: u64, mut f: impl FnMut() -> R) {
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
    println!("{label:<44} {ns:>9.1} ns/op");
}

fn main() {
    let iters = 200_000u64;
    println!("Batched-PUT layer costs ({iters} iters each):\n");

    // Device: one 80-byte bucket write (header + 64-B value), overwrite
    // mode — the flag-diff + wear accounting cost of every placement.
    let mut dev = NvmDevice::new(NvmConfig::default().with_size(4096 * (HDR + VALUE)));
    let mut img = vec![0u8; HDR + VALUE];
    let mut rng = StdRng::seed_from_u64(1);
    time("device: 80B bucket write (diff+wear)", iters, || {
        let addr = (rng.gen_range(0..4096usize)) * (HDR + VALUE);
        img[HDR..].fill(rng.gen());
        dev.write(addr, &img, WriteMode::Diff).unwrap()
    });
    time("device: 8B flag-word write", iters, || {
        let addr = (rng.gen_range(0..4096usize)) * (HDR + VALUE);
        dev.write(addr, &[rng.gen::<u8>(), 0, 0, 0, 0, 0, 0, 0], WriteMode::Diff)
            .unwrap()
    });

    // Index: lock-free table insert + remove churn at ~50% load.
    let mut idx = AtomicHashIndex::with_capacity(8192);
    for k in 0..4096u64 {
        idx.insert(&mut dev, k, k % 97).unwrap();
    }
    time("index: atomic insert+remove pair", iters, || {
        let k = 10_000 + rng.gen_range(0..4096u64);
        idx.insert(&mut dev, k, 7).unwrap();
        idx.remove(&mut dev, k).unwrap()
    });
    time("index: atomic lookup (hit)", iters, || {
        idx.lookup(&dev, rng.gen_range(0..4096u64)).unwrap()
    });

    // Harness: key sampling and value generation.
    let zipf = Zipfian::new(4096, 0.99);
    time("harness: zipf sample", iters, || zipf.sample(&mut rng));
    time("harness: value fill (reused buf)", iters, || {
        img[HDR..].iter_mut().for_each(|b| *b = 0xA5);
        let tail = img.len() - 8;
        for b in &mut img[tail..] {
            *b = rng.gen();
        }
    });

    // End to end: batched overwrites against the warmed sharded store —
    // the number the write-only throughput row reports.
    let store = ShardedPnwStore::new(
        PnwConfig::new(8192, VALUE)
            .with_clusters(4)
            .with_shards(8)
            .with_seed(3)
            .with_load_factor(0.95)
            .with_retrain(RetrainMode::Background),
    );
    let mut warm = StdRng::seed_from_u64(2);
    for key in 0..2048u64 {
        let mut v = vec![0xA5u8; VALUE];
        for b in &mut v[VALUE - 8..] {
            *b = warm.gen();
        }
        store.put(key, &v).unwrap();
    }
    store.retrain_now().unwrap();
    let mut batch = Batch::with_capacity(64);
    let mut val = vec![0xA5u8; VALUE];
    let batches = iters / 64;
    let t0 = Instant::now();
    for _ in 0..batches {
        batch.clear();
        for _ in 0..64 {
            let key = zipf.sample(&mut rng);
            for b in &mut val[VALUE - 8..] {
                *b = rng.gen();
            }
            batch.put(key, &val);
        }
        let r = store.apply(&batch);
        assert!(r.all_ok(), "{:?}", r.failures);
    }
    let ns = t0.elapsed().as_nanos() as f64 / (batches * 64) as f64;
    println!("{:<44} {ns:>9.1} ns/op", "store: batched overwrite end-to-end");
}
