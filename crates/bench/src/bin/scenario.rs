//! Phased-scenario replay: the drift (§VI-F) and CCTV TTL/ring (§VI-C)
//! scenarios through the scenario engine, emitting windowed time-series
//! metrics.
//!
//! ```text
//! cargo run --release -p pnw-bench --bin scenario -- [--quick]
//!     [--scenario drift|cctv|all] [--out BENCH_scenario.json]
//! ```

use pnw_bench::scenario::{build_store, cctv, drift, replay_spec, write_json, ScenarioReport};
use pnw_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let mut which = "all".to_string();
    let mut out = std::path::PathBuf::from("BENCH_scenario.json");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {} // consumed by Scale::from_env
            "--scenario" => {
                which = it.next().cloned().unwrap_or_else(|| {
                    eprintln!("--scenario needs a value (drift|cctv|all)");
                    std::process::exit(2);
                });
            }
            "--out" => {
                out = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| {
                        eprintln!("--out needs a path");
                        std::process::exit(2);
                    })
                    .into();
            }
            other => {
                eprintln!("unknown flag '{other}'");
                eprintln!(
                    "usage: scenario [--quick] [--scenario drift|cctv|all] [--out PATH]"
                );
                std::process::exit(2);
            }
        }
    }

    let specs = match which.as_str() {
        "drift" => vec![drift(scale)],
        "cctv" => vec![cctv(scale)],
        "all" => vec![drift(scale), cctv(scale)],
        other => {
            eprintln!("unknown scenario '{other}' (drift|cctv|all)");
            std::process::exit(2);
        }
    };

    let mut reports: Vec<ScenarioReport> = Vec::new();
    for spec in &specs {
        println!(
            "== scenario '{}' ({} phases, window {} ops) ==",
            spec.scenario.name,
            spec.scenario.phases.len(),
            spec.scenario.window_ops
        );
        let store = build_store(spec);
        let r = replay_spec(&*store, spec);
        for p in &r.phases {
            println!(
                "  phase {:<10} windows {:>3}  steady flips/PUT {:>8.1}  \
                 steady flips/512b {:>6.2}  retrains {}",
                p.phase, p.windows, p.steady_flips_per_put, p.steady_flips_per_512, p.retrains
            );
        }
        println!(
            "  recovery ratio (last/first steady flips/PUT): {:.3}   \
             ttl: {}   full errors: {}",
            r.recovery_ratio, r.ttl, r.full_errors
        );
        if r.ttl {
            let expired: u64 = r.windows.iter().map(|w| w.expired).sum();
            let evicted: u64 = r.windows.iter().map(|w| w.evicted).sum();
            println!("  retention: {expired} expired, {evicted} evicted");
        }
        reports.push(r);
    }

    write_json(&out, &reports).expect("write scenario JSON");
    println!("wrote {}", out.display());
}
