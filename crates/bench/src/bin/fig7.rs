//! Figure 7: end-to-end write latency, normalized to the conventional
//! write, per dataset per method.
fn main() {
    let scale = pnw_bench::Scale::from_env();
    println!("Figure 7 — normalized end-to-end write latency (conv = 1.0)\n");
    println!("{}", pnw_bench::figures::fig7(scale).render());
}
