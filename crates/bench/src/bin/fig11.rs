//! Figure 11: K-means training time, 1 core vs 4 cores.
fn main() {
    let scale = pnw_bench::Scale::from_env();
    println!("Figure 11 — model training time (video datasets)\n");
    println!("{}", pnw_bench::figures::fig11(scale).render());
}
