//! Figure 3: PCA variance ratio vs number of principal components.
fn main() {
    let scale = pnw_bench::Scale::from_env();
    println!("Figure 3 — PCA cumulative explained variance (MNIST-like)\n");
    println!("{}", pnw_bench::figures::fig3(scale).render());
}
