//! Runs every table/figure harness in sequence (the full reproduction).
//! Pass --quick for a smoke run.
use pnw_bench::{figures, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("== PNW reproduction: all tables and figures ({scale:?}) ==\n");

    println!("Table I — memory technologies\n{}", figures::table1().render());
    println!("Table II — worked clustering example\n{}", figures::table2().render());
    println!("Figure 3 — PCA cumulative variance\n{}", figures::fig3(scale).render());
    let (t4, elbow) = figures::fig4(scale);
    println!("Figure 4 — SSE vs K\n{}\nelbow at K = {elbow}\n", t4.render());
    for d in figures::fig6_datasets() {
        println!("Figure 6 — {}\n{}", d.name(), figures::fig6(d, scale).render());
    }
    println!("Figure 7 — normalized write latency\n{}", figures::fig7(scale).render());
    println!("Figure 8 — latency vs K (PubMed-like)\n{}", figures::fig8(scale).render());
    println!("Figure 9 — written cache lines per request\n{}", figures::fig9(scale).render());
    let (t10, _) = figures::fig10(scale);
    println!("Figure 10 — workload shift\n{}", t10.render());
    println!("Figure 11 — training time\n{}", figures::fig11(scale).render());
    for k in [5usize, 30] {
        let r = figures::fig12_13(k, scale);
        let (tw, tb) = figures::wear_tables(k, &r);
        println!("Figure 12 (k={k})\n{}", tw.render());
        println!("Figure 13 (k={k})\n{}", tb.render());
    }
}
