//! Figure 13: per-bit wear-leveling CDFs at k=5 and k=30.
fn main() {
    let scale = pnw_bench::Scale::from_env();
    for k in [5usize, 30] {
        let r = pnw_bench::figures::fig12_13(k, scale);
        let (_, tb) = pnw_bench::figures::wear_tables(k, &r);
        println!("Figure 13 — wear-leveling CDF (bit level), k={k}\n");
        println!("{}", tb.render());
    }
}
