//! Figure 4: SSE-vs-K elbow curve.
fn main() {
    let scale = pnw_bench::Scale::from_env();
    let (t, elbow) = pnw_bench::figures::fig4(scale);
    println!("Figure 4 — Sum of Squared Error vs K (MNIST-like)\n");
    println!("{}", t.render());
    println!("Detected elbow: K = {elbow} (paper: K = 5 on MNIST)");
}
