//! Packed-vs-float retraining benchmark.
//!
//! ```text
//! cargo run --release -p pnw-bench --bin train -- [--quick]
//!     [--out BENCH_train.json]
//! ```
//!
//! Prints a ms/retrain table and writes `BENCH_train.json` (the training
//! perf-trajectory file) in the working directory. `--quick` divides the
//! sample counts by 20 for CI smoke runs.

use pnw_bench::trainbench::{default_cases, run_sweep, write_json};
use pnw_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let mut out = std::path::PathBuf::from("BENCH_train.json");
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => {} // consumed by Scale::from_env
            "--out" => {
                out = it.next().map(Into::into).unwrap_or_else(|| {
                    eprintln!("error: --out needs a path");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("error: unknown flag '{other}'");
                std::process::exit(2);
            }
        }
    }

    println!("Training pipeline — packed bit-domain vs float featurize+Lloyd");
    println!(
        "{:>10} {:>6} {:>9} {:>12} {:>12} {:>9} {:>9}",
        "value", "K", "samples", "packed(ms)", "float(ms)", "speedup", "SSE-ratio"
    );
    let results = run_sweep(&default_cases(scale), 0xACE5);
    for r in &results {
        println!(
            "{:>9}B {:>6} {:>9} {:>12.1} {:>12.1} {:>8.1}x {:>9.4}",
            r.value_size, r.k, r.samples, r.packed_ms, r.float_ms, r.speedup, r.inertia_ratio
        );
    }
    match write_json(&out, &results) {
        Ok(()) => println!("\nwrote {}", out.display()),
        Err(e) => eprintln!("error writing {}: {e}", out.display()),
    }
}
