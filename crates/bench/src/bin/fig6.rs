//! Figure 6: bit updates per 512 bits, all methods, one panel per dataset.
//! Usage: `fig6 [--quick] [dataset]` — dataset in: amazon road sherbrooke
//! traffic normal uniform; default = all six panels.
use pnw_workloads::DatasetKind;

fn main() {
    let scale = pnw_bench::Scale::from_env();
    let chosen: Vec<DatasetKind> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .filter_map(|a| a.parse().ok())
        .collect();
    let panels = if chosen.is_empty() {
        pnw_bench::figures::fig6_datasets().to_vec()
    } else {
        chosen
    };
    for d in panels {
        println!("Figure 6 — {} \n", d.name());
        println!("{}", pnw_bench::figures::fig6(d, scale).render());
    }
}
