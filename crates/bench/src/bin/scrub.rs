//! Integrity and scrubbing overhead bench — the wear-out robustness
//! trajectory file `BENCH_scrub.json`.
//!
//! ```text
//! cargo run --release -p pnw-bench --bin scrub -- [--quick]
//!     [--threads N] [--ops N] [--out BENCH_scrub.json]
//! ```
//!
//! Three sections, all on the sharded store with lock-free reads:
//!
//! 1. **GET overhead** — the same key set read with integrity off versus
//!    on (seal at PUT, CRC-32C verify on every GET), measured two ways:
//!    the *raw* software path (no device time — the worst case for
//!    relative overhead, since a read costs almost nothing), and the
//!    *serving* path, where every GET also pays the modeled NVM read
//!    latency at 1x, spin-waited for nanosecond accuracy (`sleep` cannot
//!    hit 100ns-scale waits; the throughput harness's `emulate_latency`
//!    uses 10x for the same reason). The 15% budget applies to the
//!    serving path — the cost a client of this store observes.
//! 2. **PUT overhead** — same comparison on the raw write path (seal +
//!    write-verify read-back).
//! 3. **Scrub under load** — a mixed workload with the background
//!    scrubber running against wear-out media (finite endurance, latching
//!    cells): throughput with the scrubber stealing cycles, plus the
//!    scrub counters proving it actually scanned/repaired/retired.
//!
//! Each throughput number is the best of three interleaved runs, so a
//! noisy host window hits both sides of a comparison alike.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

use pnw_bench::Scale;
use pnw_core::{PnwConfig, RetrainMode, ShardedPnwStore};
use pnw_nvm_sim::LatencyModel;
use rand::{rngs::StdRng, Rng, SeedableRng};

const VALUE_SIZE: usize = 64;
const KEYS: u64 = 4_096;
/// The acceptance budget: integrity-on GETs may cost at most this much
/// throughput relative to integrity-off.
const GET_BUDGET_PCT: f64 = 15.0;
/// Background scrub rate for the time-to-detect section: a full pass over
/// the 8192-bucket store every ~160ms.
const DETECT_SCRUB_RATE: u32 = 50_000;

struct Args {
    threads: usize,
    ops_per_thread: usize,
    out: std::path::PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let scale = Scale::from_env();
    let mut out = Args {
        threads: 4,
        ops_per_thread: scale.pick(20_000, 200_000),
        out: "BENCH_scrub.json".into(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        let mut grab = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--quick" => {} // consumed by Scale::from_env
            "--threads" => out.threads = grab("--threads")?.parse().map_err(|e| format!("{e}"))?,
            "--ops" => {
                out.ops_per_thread = grab("--ops")?.parse().map_err(|e| format!("{e}"))?
            }
            "--out" => out.out = grab("--out")?.into(),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(out)
}

fn base_cfg() -> PnwConfig {
    PnwConfig::new(KEYS as usize * 2, VALUE_SIZE)
        .with_clusters(4)
        .with_shards(4)
        .with_seed(0x5C2B)
        .with_retrain(RetrainMode::Manual)
}

fn fill_random(rng: &mut StdRng, buf: &mut [u8]) {
    for b in buf.iter_mut() {
        *b = rng.gen();
    }
}

/// A warmed store: every key present, model trained on the live data.
fn warmed(cfg: PnwConfig) -> Arc<ShardedPnwStore> {
    let s = ShardedPnwStore::new(cfg);
    let mut rng = StdRng::seed_from_u64(7);
    let mut v = vec![0u8; VALUE_SIZE];
    for k in 0..KEYS {
        fill_random(&mut rng, &mut v);
        s.put(k, &v).expect("capacity 2x key space");
    }
    s.retrain_now().expect("manual retrain");
    Arc::new(s)
}

/// Drives `threads` workers for `ops_per_thread` ops each and returns
/// aggregate ops/sec. `put_pct` of ops are overwriting PUTs, the rest
/// GETs, over uniform random keys. With `device_ns > 0`, every op also
/// spin-waits that long — the modeled NVM access at 1x, applied
/// identically to both sides of a comparison.
fn drive(
    s: &Arc<ShardedPnwStore>,
    threads: usize,
    ops_per_thread: usize,
    put_pct: u8,
    device_ns: u64,
) -> f64 {
    let barrier = Arc::new(Barrier::new(threads + 1));
    let failures = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::new();
    for t in 0..threads {
        let s = Arc::clone(s);
        let barrier = Arc::clone(&barrier);
        let failures = Arc::clone(&failures);
        handles.push(std::thread::spawn(move || {
            let mut rng = StdRng::seed_from_u64(0xBEEF + t as u64);
            let mut buf = vec![0u8; VALUE_SIZE];
            let mut val = vec![0u8; VALUE_SIZE];
            barrier.wait();
            for _ in 0..ops_per_thread {
                let k = rng.gen_range(0..KEYS);
                if rng.gen_range(0..100u8) < put_pct {
                    fill_random(&mut rng, &mut val);
                    if s.put(k, &val).is_err() {
                        failures.fetch_add(1, Ordering::Relaxed);
                    }
                } else if s.get_into(k, &mut buf).is_err() {
                    // On worn media a GET may loudly report Corruption —
                    // counted, never panicked on: loud loss is the contract.
                    failures.fetch_add(1, Ordering::Relaxed);
                }
                if device_ns > 0 {
                    let t0 = Instant::now();
                    while (t0.elapsed().as_nanos() as u64) < device_ns {
                        std::hint::spin_loop();
                    }
                }
            }
        }));
    }
    barrier.wait();
    let start = Instant::now();
    for h in handles {
        h.join().expect("worker");
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    (threads * ops_per_thread) as f64 / elapsed
}

/// Best-of-3 interleaved A/B: returns (best_a, best_b) ops/sec.
fn best_of_3(mut run_a: impl FnMut() -> f64, mut run_b: impl FnMut() -> f64) -> (f64, f64) {
    let (mut a, mut b) = (0f64, 0f64);
    for _ in 0..3 {
        a = a.max(run_a());
        b = b.max(run_b());
    }
    (a, b)
}

fn overhead_pct(off: f64, on: f64) -> f64 {
    if off <= 0.0 {
        0.0
    } else {
        (off - on) / off * 100.0
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    println!(
        "Integrity/scrub overhead — {} threads, {} ops/thread, {} keys x {}B",
        args.threads, args.ops_per_thread, KEYS, VALUE_SIZE
    );

    // 1. GET path: integrity off vs on — raw software path, then the
    // serving path (modeled NVM read at 1x, spin-waited per op).
    let read_ns = LatencyModel::xpoint()
        .read_cost(VALUE_SIZE.div_ceil(64) as u64)
        .as_nanos() as u64;
    let s_off = warmed(base_cfg().with_integrity(false));
    let s_on = warmed(base_cfg());
    let (raw_off, raw_on) = best_of_3(
        || drive(&s_off, args.threads, args.ops_per_thread, 0, 0),
        || drive(&s_on, args.threads, args.ops_per_thread, 0, 0),
    );
    let raw_pct = overhead_pct(raw_off, raw_on);
    println!(
        "GET raw:     integrity off {raw_off:>12.0} ops/s   on {raw_on:>12.0} ops/s   overhead {raw_pct:+.1}%"
    );
    let (get_off, get_on) = best_of_3(
        || drive(&s_off, args.threads, args.ops_per_thread / 2, 0, read_ns),
        || drive(&s_on, args.threads, args.ops_per_thread / 2, 0, read_ns),
    );
    let get_pct = overhead_pct(get_off, get_on);
    println!(
        "GET serving: integrity off {get_off:>12.0} ops/s   on {get_on:>12.0} ops/s   overhead {get_pct:+.1}% (modeled read {read_ns} ns, budget {GET_BUDGET_PCT}%)"
    );
    if get_pct > GET_BUDGET_PCT {
        eprintln!("warning: GET integrity overhead {get_pct:.1}% exceeds the {GET_BUDGET_PCT}% budget");
    }

    // 2. PUT path: seal + write-verify vs neither.
    let (put_off, put_on) = best_of_3(
        || drive(&s_off, args.threads, args.ops_per_thread / 4, 100, 0),
        || drive(&s_on, args.threads, args.ops_per_thread / 4, 100, 0),
    );
    let put_pct = overhead_pct(put_off, put_on);
    println!(
        "PUT raw:     integrity off {put_off:>12.0} ops/s   on {put_on:>12.0} ops/s   overhead {put_pct:+.1}%"
    );

    // 3. Scrub under load on wear-out media: finite endurance, cells that
    // latch once worn, background scrubber sweeping at a fixed rate.
    // Endurance 16: the mixed phase re-writes each key ~20 times, so hot
    // words genuinely cross the wear-out threshold mid-run.
    let worn = warmed(
        base_cfg()
            .with_endurance(16)
            .with_stuck_latch_probability(0.002)
            .with_scrub(20_000),
    );
    let mixed = drive(&worn, args.threads, args.ops_per_thread / 4, 40, 0);
    let snap = worn.snapshot();
    println!(
        "SCRUB under load: {mixed:.0} ops/s — scanned {}, crc_failures {}, repairs {}, retired {}, stuck_bits {}",
        snap.scrub.scanned, snap.scrub.crc_failures, snap.scrub.repairs, snap.scrub.retired, snap.scrub.stuck_bits
    );

    // 4. Time-to-detect: arm faults that definitely corrupt live values
    // (each latches the *opposite* of the stored bit), then clock how
    // long the background scrubber takes to find every one of them.
    let det = warmed(base_cfg().with_scrub(DETECT_SCRUB_RATE));
    let n_faults = 16u64;
    for k in 0..n_faults {
        let v = det.get(k).unwrap().expect("warmed key");
        let bit = (k * 37 % (VALUE_SIZE as u64 * 8)) as u32;
        let set = v[(bit / 8) as usize] >> (bit % 8) & 1 == 1;
        det.arm_stuck_at_key(k, bit, !set).unwrap();
    }
    let armed_at = Instant::now();
    let deadline = armed_at + std::time::Duration::from_secs(30);
    let mut detect_ms = None;
    while Instant::now() < deadline {
        if det.snapshot().scrub.crc_failures >= n_faults {
            detect_ms = Some(armed_at.elapsed().as_secs_f64() * 1e3);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    match detect_ms {
        Some(ms) => println!(
            "DETECT: {n_faults} armed faults all found in {ms:.1} ms (scrub rate {DETECT_SCRUB_RATE} buckets/s)"
        ),
        None => eprintln!("warning: scrubber missed armed faults within 30s"),
    }

    let json = format!(
        "{{\n  \"bench\": \"scrub\",\n  \"threads\": {},\n  \"ops_per_thread\": {},\n  \
         \"value_size\": {},\n  \"keys\": {},\n  \
         \"get_raw\": {{\"ops_per_sec_integrity_off\": {:.1}, \
         \"ops_per_sec_integrity_on\": {:.1}, \"overhead_pct\": {:.2}}},\n  \
         \"get_serving\": {{\"modeled_read_ns\": {}, \"ops_per_sec_integrity_off\": {:.1}, \
         \"ops_per_sec_integrity_on\": {:.1}, \"overhead_pct\": {:.2}, \"budget_pct\": {:.1}, \
         \"within_budget\": {}}},\n  \"put_raw\": {{\"ops_per_sec_integrity_off\": {:.1}, \
         \"ops_per_sec_integrity_on\": {:.1}, \"overhead_pct\": {:.2}}},\n  \
         \"scrub_under_load\": {{\"ops_per_sec\": {:.1}, \"scanned\": {}, \"crc_failures\": {}, \
         \"repairs\": {}, \"retired\": {}, \"stuck_bits\": {}, \"capacity\": {}, \"live\": {}}},\n  \
         \"time_to_detect\": {{\"faults_armed\": {}, \"scrub_rate_buckets_per_sec\": {}, \
         \"detect_ms\": {}, \"all_detected\": {}}}\n}}\n",
        args.threads,
        args.ops_per_thread,
        VALUE_SIZE,
        KEYS,
        raw_off,
        raw_on,
        raw_pct,
        read_ns,
        get_off,
        get_on,
        get_pct,
        GET_BUDGET_PCT,
        get_pct <= GET_BUDGET_PCT,
        put_off,
        put_on,
        put_pct,
        mixed,
        snap.scrub.scanned,
        snap.scrub.crc_failures,
        snap.scrub.repairs,
        snap.scrub.retired,
        snap.scrub.stuck_bits,
        snap.capacity,
        snap.live,
        n_faults,
        DETECT_SCRUB_RATE,
        detect_ms.map_or("null".to_string(), |ms| format!("{ms:.1}")),
        detect_ms.is_some(),
    );
    match std::fs::write(&args.out, &json) {
        Ok(()) => println!("\nwrote {}", args.out.display()),
        Err(e) => eprintln!("error writing {}: {e}", args.out.display()),
    }
}
