//! Table I: memory-technology characteristics used by the latency model.
fn main() {
    println!("Table I — memory technologies\n");
    println!("{}", pnw_bench::figures::table1().render());
}
