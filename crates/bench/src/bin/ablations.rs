//! Quality-side ablations: how each design choice affects *bit flips*
//! (Criterion's `ablations` bench covers the time side).
//!
//! Run with: `cargo run --release -p pnw-bench --bin ablations [--quick]`

use pnw_bench::replace::{run_pnw, ReplaceParams};
use pnw_bench::table::{f2, Table};
use pnw_bench::Scale;
use pnw_core::{PcaPolicy, PnwConfig, PnwStore, RetrainMode, UpdatePolicy};
use pnw_workloads::{DatasetKind, Workload};

fn main() {
    let scale = Scale::from_env();
    println!("== PNW design-choice ablations (bit-flip side) ==\n");
    update_policy(scale);
    pca_quality(scale);
    k_sensitivity(scale);
}

/// DELETE+PUT steering vs in-place updates: the §V-B.3 trade-off made
/// concrete — in-place sacrifices bit flips for the shorter path.
fn update_policy(scale: Scale) {
    let n = scale.pick(256, 2048);
    let mut t = Table::new(vec!["update policy", "bit updates / 512 bits"]);
    for (name, policy) in [
        ("delete+put (endurance-first)", UpdatePolicy::DeletePut),
        ("in-place (latency-first)", UpdatePolicy::InPlace),
    ] {
        let mut w = DatasetKind::Normal.build(41);
        let store = PnwStore::new(
            PnwConfig::new(n, 4)
                .with_clusters(12)
                .with_update_policy(policy)
                .with_retrain(RetrainMode::Manual),
        );
        store.prefill_free_buckets(|| w.next_value()).expect("prefill");
        store.retrain_now().expect("train");
        // Build a live set, then update every key twice.
        for key in 0..(n / 2) as u64 {
            store.put(key, &w.next_value()).expect("room");
        }
        store.reset_device_stats();
        let mut flips = 0u64;
        let mut bits = 0u64;
        for round in 0..2 {
            for key in 0..(n / 2) as u64 {
                let _ = round;
                let r = store.put(key, &w.next_value()).expect("update");
                flips += r.value_write.total_bit_flips();
                bits += r.value_write.bits_addressed;
            }
        }
        t.row(vec![
            name.to_string(),
            f2(flips as f64 * 512.0 / bits.max(1) as f64),
        ]);
    }
    println!("ablation: update policy (normal u32 stream)\n{}", t.render());
}

/// PCA on vs off for large values: does the projection cost clustering
/// quality (flips), on top of the latency it saves?
fn pca_quality(scale: Scale) {
    let n = scale.pick(256, 1024);
    let writes = scale.pick(256, 2048);
    let mut t = Table::new(vec!["PCA", "bit updates / 512 bits", "predict µs"]);
    for (name, threshold) in [("on (32 comps)", 1024usize), ("off (raw 6272 bits)", usize::MAX / 2)]
    {
        let mut w = DatasetKind::Mnist.build(43);
        let store = PnwStore::new(
            PnwConfig::new(n, 784)
                .with_clusters(10)
                .with_pca(PcaPolicy {
                    threshold_bits: threshold,
                    components: 32,
                    sample: 192,
                })
                .with_retrain(RetrainMode::Manual),
        );
        store.prefill_free_buckets(|| w.next_value()).expect("prefill");
        store.retrain_now().expect("train");
        store.reset_device_stats();
        let mut flips = 0u64;
        let mut bits = 0u64;
        let mut predict_ns = 0u128;
        for i in 0..writes as u64 {
            let v = w.next_value();
            let r = store.put(i, &v).expect("room");
            flips += r.value_write.total_bit_flips();
            bits += r.value_write.bits_addressed;
            predict_ns += r.predict.as_nanos();
            store.delete(i).expect("present");
        }
        t.row(vec![
            name.to_string(),
            f2(flips as f64 * 512.0 / bits.max(1) as f64),
            f2(predict_ns as f64 / 1000.0 / writes as f64),
        ]);
    }
    println!("ablation: PCA for large values (MNIST-like)\n{}", t.render());
}

/// K sensitivity beyond Figure 6's sweep: diminishing returns past the
/// number of latent classes.
fn k_sensitivity(scale: Scale) {
    let p = ReplaceParams {
        buckets: scale.pick(256, 2048),
        writes: scale.pick(256, 2048),
        seed: 47,
    };
    let mut t = Table::new(vec!["K", "bit updates / 512 bits"]);
    for k in [1usize, 4, 8, 12, 16, 24, 48, 96] {
        let s = run_pnw(DatasetKind::Amazon, k, &p, 1);
        t.row(vec![k.to_string(), f2(s.flips_per_512)]);
    }
    println!("ablation: K beyond the paper's sweep (Amazon-like)\n{}", t.render());
}
