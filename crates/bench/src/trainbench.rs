//! Packed-vs-float retraining benchmark.
//!
//! PR 3 moved *prediction* into the packed bit domain; this harness
//! measures the same move on the *training* side: the old pipeline
//! (featurize every sampled value into one `f32` per bit — a 32× memory
//! blow-up — then dense float Lloyd iterations) against the packed pipeline
//! ([`pnw_ml::packedmatrix::PackedMatrix`]: per-iteration byte LUTs for the
//! assignment step, integer bit-count accumulators for the centroid
//! update, Hamming-popcount k-means++ seeding). Both paths run the same
//! algorithm from the same seed, so the comparison is representation-only;
//! the recorded `inertia_ratio` guards against quality drift.
//!
//! The numbers land in `BENCH_train.json` via the `train` binary; the
//! acceptance point is 64 B / K = 16 / 100k samples.

use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

use pnw_ml::featurize::featurize_values;
use pnw_ml::kmeans::{KMeans, KMeansConfig};
use pnw_ml::packedmatrix::PackedMatrix;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::Scale;

/// Lloyd iteration cap for both paths: enough for family-structured data
/// to converge, low enough that the float baseline finishes in CI time.
const MAX_ITERS: usize = 10;

/// One (value size, cluster count, sample count) measurement point.
#[derive(Debug, Clone, Copy)]
pub struct TrainCase {
    /// Value size in bytes.
    pub value_size: usize,
    /// Cluster count K.
    pub k: usize,
    /// Training-set size in samples.
    pub samples: usize,
}

/// The default sweep: value sizes around the paper's small-item regime, a
/// K sweep at 64 B, and sample counts up to the acceptance point
/// (64 B / K = 16 / 100k). `Scale::Quick` divides sample counts by 20 for
/// CI smoke runs.
pub fn default_cases(scale: Scale) -> Vec<TrainCase> {
    let div = scale.pick(20, 1);
    [
        (16, 16, 50_000),
        (64, 4, 100_000),
        (64, 16, 100_000),
        (64, 64, 50_000),
        (256, 16, 25_000),
    ]
    .into_iter()
    .map(|(value_size, k, samples)| TrainCase {
        value_size,
        k,
        samples: (samples / div).max(256),
    })
    .collect()
}

/// Wall-clock results for one case, in milliseconds per full retrain
/// (tensor construction + fit, i.e. what a background retrain pays).
#[derive(Debug, Clone)]
pub struct TrainResult {
    /// Value size in bytes.
    pub value_size: usize,
    /// Cluster count K actually fitted.
    pub k: usize,
    /// Samples trained on.
    pub samples: usize,
    /// Packed pipeline: pack + bit-domain Lloyd, milliseconds.
    pub packed_ms: f64,
    /// Float pipeline: featurize + dense float Lloyd, milliseconds.
    pub float_ms: f64,
    /// `float_ms / packed_ms`.
    pub speedup: f64,
    /// `packed.inertia / float.inertia` — 1.0 when the two fits converge to
    /// the same objective (quality guard; representation must not cost SSE).
    pub inertia_ratio: f64,
}

/// Deterministic value generator: `families` byte-fill patterns plus a
/// random tail, the same shape the predict bench and throughput harness
/// use — enough structure for K-means to find real clusters.
fn gen_values(n: usize, value_size: usize, families: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let fill = (255 / families.max(1) * (i % families.max(1))) as u8;
            let mut v = vec![fill; value_size];
            let tail = value_size.min(4);
            for b in &mut v[value_size - tail..] {
                *b = rng.gen();
            }
            v
        })
        .collect()
}

/// Measures one case: one full retrain per path on identical values with
/// identical seeds and iteration caps.
pub fn measure_case(case: TrainCase, seed: u64) -> TrainResult {
    let values = gen_values(case.samples, case.value_size, case.k.max(4), seed ^ 0xFEED);
    let cfg = KMeansConfig::new(case.k)
        .with_seed(seed)
        .with_max_iters(MAX_ITERS);

    // Packed pipeline: pack the bytes, fit in the bit domain.
    let t0 = Instant::now();
    let packed_set = PackedMatrix::from_values(&values);
    let packed = KMeans::fit_set(black_box(&packed_set), &cfg);
    let packed_ms = t0.elapsed().as_secs_f64() * 1e3;

    // Float pipeline: what every retrain paid before this PR — expand to
    // one f32 per bit, then dense Lloyd.
    let t0 = Instant::now();
    let floats = featurize_values(&values);
    let float = KMeans::fit(black_box(&floats), &cfg);
    let float_ms = t0.elapsed().as_secs_f64() * 1e3;

    TrainResult {
        value_size: case.value_size,
        k: packed.k(),
        samples: case.samples,
        packed_ms,
        float_ms,
        speedup: float_ms / packed_ms.max(1e-9),
        inertia_ratio: packed.inertia as f64 / (float.inertia as f64).max(1e-9),
    }
}

/// Runs the whole sweep.
pub fn run_sweep(cases: &[TrainCase], seed: u64) -> Vec<TrainResult> {
    cases.iter().map(|&c| measure_case(c, seed)).collect()
}

/// Serializes results as JSON (hand-rolled, like the other harnesses — the
/// workspace has no JSON dependency) for `BENCH_train.json`.
pub fn to_json(results: &[TrainResult]) -> String {
    let mut out = String::from("{\n  \"bench\": \"train\",\n  \"unit\": \"ms/retrain\",\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"value_size\": {}, \"k\": {}, \"samples\": {}, \
             \"packed_ms\": {:.1}, \"float_ms\": {:.1}, \"speedup\": {:.2}, \
             \"inertia_ratio\": {:.4}}}{}\n",
            r.value_size,
            r.k,
            r.samples,
            r.packed_ms,
            r.float_ms,
            r.speedup,
            r.inertia_ratio,
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes [`to_json`] output to `path`.
pub fn write_json(path: &Path, results: &[TrainResult]) -> std::io::Result<()> {
    std::fs::write(path, to_json(results))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_case_produces_sane_numbers() {
        let r = measure_case(
            TrainCase {
                value_size: 16,
                k: 4,
                samples: 400,
            },
            7,
        );
        assert_eq!(r.value_size, 16);
        assert_eq!(r.k, 4);
        assert!(r.packed_ms > 0.0);
        assert!(r.float_ms > 0.0);
        assert!(r.speedup > 0.0);
        // Same seed, same algorithm: the fits converge to the same
        // objective (decisive family margins, so no tie-cascade drift).
        assert!(
            (r.inertia_ratio - 1.0).abs() < 0.01,
            "inertia_ratio {}",
            r.inertia_ratio
        );
    }

    #[test]
    fn json_shape() {
        let j = to_json(&run_sweep(
            &[TrainCase {
                value_size: 8,
                k: 2,
                samples: 300,
            }],
            3,
        ));
        assert!(j.contains("\"bench\": \"train\""));
        assert!(j.contains("\"packed_ms\""));
        assert!(j.contains("\"speedup\""));
        assert!(j.contains("\"inertia_ratio\""));
    }

    #[test]
    fn quick_cases_are_scaled_down() {
        let quick = default_cases(Scale::Quick);
        let full = default_cases(Scale::Full);
        assert_eq!(quick.len(), full.len());
        for (q, f) in quick.iter().zip(&full) {
            assert!(q.samples < f.samples);
            assert_eq!(q.k, f.k);
        }
        // The acceptance point is present at full scale.
        assert!(full
            .iter()
            .any(|c| c.value_size == 64 && c.k == 16 && c.samples == 100_000));
    }
}
