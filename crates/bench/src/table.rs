//! Minimal aligned-table rendering for harness output.

/// A printable table: header + rows of strings.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Column headers.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let mut r: Vec<String> = cells.into_iter().map(Into::into).collect();
        r.resize(self.header.len(), String::new());
        self.rows.push(r);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::new();
            for (i, c) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{c:>width$}", width = widths[i]));
            }
            s
        };
        let mut out = line(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["k", "flips"]);
        t.row(vec!["1", "512.00"]);
        t.row(vec!["30", "77.10"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('k'));
        assert!(lines[2].ends_with("512.00"));
        assert!(lines[3].starts_with("30"));
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.row(vec!["1"]);
        assert_eq!(t.rows[0].len(), 3);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(f2(1.005), "1.00"); // ties to even via format!
        assert_eq!(f3(0.12345), "0.123");
    }
}
