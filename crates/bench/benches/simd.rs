//! Criterion bench for the SIMD bit kernels in [`pnw_ml::simd`]: the
//! runtime-dispatched LUT-gather distance accumulator against its scalar
//! fallback on identical tables, plus the popcount helpers. CI compiles
//! this target (`cargo bench --no-run`) so kernel signature drift is
//! caught without paying for a measurement run.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pnw_bench::predictbench::{default_cases, trained_manager};
use pnw_ml::packed::{popcount_bytes, PackedPredictor};
use pnw_ml::simd::simd_active;

fn bench_lut_kernels(c: &mut Criterion) {
    for case in default_cases() {
        let m = trained_manager(case, 0xACE5);
        let packed = PackedPredictor::from_centroids(m.kmeans().centroids());
        let v = vec![0x5Au8; case.value_size];
        let mut dist = vec![0.0f32; packed.k()];
        let label = format!("{}B-k{}", case.value_size, case.k);

        let mut g = c.benchmark_group(if simd_active() {
            "lut_simd"
        } else {
            "lut_simd(scalar-host)"
        });
        g.bench_function(&label, |b| {
            b.iter(|| packed.distances_into(black_box(&v), &mut dist))
        });
        g.finish();

        let mut g = c.benchmark_group("lut_scalar");
        g.bench_function(&label, |b| {
            b.iter(|| packed.distances_into_scalar(black_box(&v), &mut dist))
        });
        g.finish();
    }
}

fn bench_popcount(c: &mut Criterion) {
    let mut g = c.benchmark_group("popcount_bytes");
    for size in [64usize, 256, 4096] {
        let buf = vec![0xA7u8; size];
        g.bench_function(format!("{size}B"), |b| {
            b.iter(|| popcount_bytes(black_box(&buf)))
        });
    }
    g.finish();
}

/// Short windows: deterministic kernels on shared CI (same rationale as
/// `micro.rs`).
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_lut_kernels, bench_popcount
}
criterion_main!(benches);
