//! Criterion bench for the training pipeline: the packed bit-domain fit
//! (LUT assignment + integer bit-count centroid update over `u64` words)
//! against the float featurize-then-Lloyd reference, at a size small
//! enough for criterion's repeated sampling (the full sweep, including the
//! 100k-sample acceptance point, lives in the `train` binary /
//! `BENCH_train.json`).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pnw_ml::featurize::featurize_values;
use pnw_ml::kmeans::{KMeans, KMeansConfig};
use pnw_ml::packedmatrix::PackedMatrix;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn values(n: usize, bytes: usize, families: usize) -> Vec<Vec<u8>> {
    let mut rng = StdRng::seed_from_u64(0xACE5);
    (0..n)
        .map(|i| {
            let fill = (255 / families * (i % families)) as u8;
            let mut v = vec![fill; bytes];
            for b in &mut v[bytes - 4..] {
                *b = rng.gen();
            }
            v
        })
        .collect()
}

fn bench_train_paths(c: &mut Criterion) {
    let vals = values(2_000, 64, 8);
    let cfg = KMeansConfig::new(8).with_seed(5).with_max_iters(10);

    let mut g = c.benchmark_group("train_packed");
    g.sample_size(10);
    g.bench_function("64B-k8-2000", |b| {
        b.iter(|| KMeans::fit_set(&PackedMatrix::from_values(black_box(&vals)), &cfg))
    });
    g.finish();

    let mut g = c.benchmark_group("train_float");
    g.sample_size(10);
    g.bench_function("64B-k8-2000", |b| {
        b.iter(|| KMeans::fit(&featurize_values(black_box(&vals)), &cfg))
    });
    g.finish();
}

/// Short windows: deterministic kernels on shared CI (same rationale as
/// `micro.rs`).
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(3))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_train_paths
}
criterion_main!(benches);
