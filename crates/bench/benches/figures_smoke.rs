//! `cargo bench` entry that regenerates every paper table/figure at Quick
//! scale, so the full pipeline is exercised on each bench run. The
//! minutes-scale numbers in EXPERIMENTS.md come from the `repro_all` binary
//! at Full scale.

use pnw_bench::{figures, Scale};

fn main() {
    // Criterion passes --bench; ignore argv entirely.
    let scale = Scale::Quick;
    println!("[figures_smoke] regenerating all tables/figures at {scale:?} scale");

    println!("\nTable I\n{}", figures::table1().render());
    println!("Table II\n{}", figures::table2().render());
    println!("Figure 3\n{}", figures::fig3(scale).render());
    let (t4, elbow) = figures::fig4(scale);
    println!("Figure 4 (elbow K={elbow})\n{}", t4.render());
    for d in figures::fig6_datasets() {
        println!("Figure 6 — {}\n{}", d.name(), figures::fig6(d, scale).render());
    }
    println!("Figure 7\n{}", figures::fig7(scale).render());
    println!("Figure 8\n{}", figures::fig8(scale).render());
    println!("Figure 9\n{}", figures::fig9(scale).render());
    let (t10, _) = figures::fig10(scale);
    println!("Figure 10\n{}", t10.render());
    println!("Figure 11\n{}", figures::fig11(scale).render());
    for k in [5usize, 30] {
        let r = figures::fig12_13(k, scale);
        let (tw, tb) = figures::wear_tables(k, &r);
        println!("Figure 12 (k={k})\n{}", tw.render());
        println!("Figure 13 (k={k})\n{}", tb.render());
    }
    println!("[figures_smoke] done");
}
