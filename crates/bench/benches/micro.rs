//! Criterion micro-benchmarks for the hot kernels: the Hamming distance,
//! featurization, PCA projection, model prediction and the write schemes.
//!
//! The paper reports 5–6 µs prediction latency per item on 2015-era
//! hardware (§VI-D); `predict/*` measures our equivalent.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pnw_core::{PnwConfig, PnwStore, RetrainMode, UpdatePolicy};
use pnw_ml::featurize::bits_to_features;
use pnw_nvm_sim::device::hamming;
use pnw_nvm_sim::{NvmConfig, NvmDevice};
use pnw_schemes::{apply, make_scheme, SchemeKind};
use pnw_workloads::{DatasetKind, Workload};

fn bench_hamming(c: &mut Criterion) {
    let mut g = c.benchmark_group("hamming");
    for size in [8usize, 64, 784, 4096] {
        let a = vec![0xA5u8; size];
        let b = vec![0x5Au8; size];
        g.bench_function(format!("{size}B"), |bench| {
            bench.iter(|| hamming(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

fn bench_featurize(c: &mut Criterion) {
    let mut g = c.benchmark_group("featurize");
    for size in [4usize, 64, 784] {
        let v = vec![0xC3u8; size];
        g.bench_function(format!("{size}B"), |bench| {
            bench.iter(|| bits_to_features(black_box(&v)))
        });
    }
    g.finish();
}

/// Builds a trained store over a dataset for prediction/put benchmarks.
fn trained_store(dataset: DatasetKind, k: usize) -> (PnwStore, Box<dyn Workload>) {
    let mut w = dataset.build(77);
    let vs = w.value_size();
    let store = PnwStore::new(
        PnwConfig::new(1024, vs)
            .with_clusters(k)
            .with_retrain(RetrainMode::Manual),
    );
    store.prefill_free_buckets(|| w.next_value()).expect("prefill");
    store.retrain_now().expect("train");
    (store, w)
}

fn bench_predict(c: &mut Criterion) {
    let mut g = c.benchmark_group("predict");
    // Small values: raw 32-bit features.
    let (store, mut w) = trained_store(DatasetKind::Normal, 10);
    let v = w.next_value();
    g.bench_function("u32-k10", |b| b.iter(|| store.predict(black_box(&v))));
    // Large values: PCA-projected image features.
    let (store, mut w) = trained_store(DatasetKind::Mnist, 30);
    let v = w.next_value();
    g.bench_function("mnist-k30-pca", |b| {
        b.iter(|| store.predict(black_box(&v)))
    });
    g.finish();
}

fn bench_schemes(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheme_write_64B");
    for kind in SchemeKind::all() {
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(4096));
        let mut scheme = make_scheme(kind);
        let mut w = DatasetKind::Amazon.build(5);
        let value = w.next_value();
        let v64 = &value[..64];
        g.bench_function(kind.name(), |b| {
            b.iter(|| apply(scheme.as_mut(), &mut dev, 0, black_box(v64)))
        });
    }
    g.finish();
}

fn bench_store_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("store");
    g.bench_function("put-delete-u32-k10", |b| {
        let (store, mut w) = trained_store(DatasetKind::Normal, 10);
        let mut key = 0u64;
        b.iter(|| {
            let v = w.next_value();
            store.put(key, &v).expect("room");
            store.delete(key).expect("present");
            key += 1;
        })
    });
    g.bench_function("get-u32", |b| {
        let (store, mut w) = trained_store(DatasetKind::Normal, 10);
        store.put(1, &w.next_value()).expect("room");
        b.iter(|| store.get(black_box(1)))
    });
    g.bench_function("put-inplace-update", |b| {
        let mut w = DatasetKind::Normal.build(3);
        let store = PnwStore::new(
            PnwConfig::new(256, 4)
                .with_clusters(10)
                .with_update_policy(UpdatePolicy::InPlace),
        );
        store.put(1, &w.next_value()).expect("room");
        b.iter(|| store.put(1, &w.next_value()))
    });
    g.finish();
}

/// Short measurement windows: the suite runs on shared single-CPU CI
/// alongside the figure harnesses; Criterion's statistics stay meaningful
/// at 20 samples for these deterministic kernels.
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_hamming, bench_featurize, bench_predict, bench_schemes, bench_store_ops
}
criterion_main!(benches);
