//! Criterion ablations over the design choices DESIGN.md calls out:
//! initialization strategy, mini-batch vs full Lloyd retraining, PCA on/off
//! for large values, and the update policy's latency cost.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pnw_core::{PcaPolicy, PnwConfig, PnwStore, RetrainMode, UpdatePolicy};
use pnw_ml::kmeans::{Init, KMeans, KMeansConfig};
use pnw_ml::matrix::Matrix;
use pnw_ml::minibatch::MiniBatchKMeans;
use pnw_workloads::{DatasetKind, Workload};

fn features(n: usize) -> Matrix {
    let mut w = DatasetKind::Normal.build(91);
    let rows: Vec<Vec<f32>> = (0..n)
        .map(|_| pnw_ml::featurize::bits_to_features(&w.next_value()))
        .collect();
    Matrix::from_rows(&rows)
}

/// ablation_init: k-means++ vs random initialization (training time; the
/// `ablations` binary reports the quality side).
fn ablation_init(c: &mut Criterion) {
    let data = features(2000);
    let mut g = c.benchmark_group("ablation_init");
    g.sample_size(10);
    for (name, init) in [("kmeans++", Init::KMeansPlusPlus), ("random", Init::Random)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                KMeans::fit(
                    black_box(&data),
                    &KMeansConfig::new(10).with_seed(5).with_init(init),
                )
            })
        });
    }
    g.finish();
}

/// ablation_minibatch: mini-batch vs full-Lloyd retraining cost (§V-C
/// background retraining budget).
fn ablation_minibatch(c: &mut Criterion) {
    let data = features(4000);
    let mut g = c.benchmark_group("ablation_minibatch");
    g.sample_size(10);
    g.bench_function("lloyd-full", |b| {
        b.iter(|| KMeans::fit(black_box(&data), &KMeansConfig::new(10).with_seed(5)))
    });
    g.bench_function("minibatch-256x50", |b| {
        let t = MiniBatchKMeans::new(10)
            .with_batch_size(256)
            .with_steps(50)
            .with_seed(5);
        b.iter(|| t.fit(black_box(&data), None))
    });
    g.finish();
}

/// ablation_pca: prediction latency with and without dimensionality
/// reduction on 784-byte values (§V-A.1 "curse of dimensionality").
fn ablation_pca(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_pca");
    g.sample_size(20);
    for (name, threshold) in [("pca-on", 1024usize), ("pca-off", usize::MAX / 2)] {
        let mut w = DatasetKind::Mnist.build(13);
        let store = PnwStore::new(
            PnwConfig::new(512, 784)
                .with_clusters(10)
                .with_pca(PcaPolicy {
                    threshold_bits: threshold,
                    components: 32,
                    sample: 192,
                })
                .with_retrain(RetrainMode::Manual),
        );
        store.prefill_free_buckets(|| w.next_value()).expect("prefill");
        store.retrain_now().expect("train");
        let v = w.next_value();
        g.bench_function(name, |b| b.iter(|| store.predict(black_box(&v))));
    }
    g.finish();
}

/// ablation_update_policy: DELETE+PUT (endurance-first) vs in-place
/// (latency-first) update cost (§V-B.3).
fn ablation_update_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_update_policy");
    for (name, policy) in [
        ("delete-put", UpdatePolicy::DeletePut),
        ("in-place", UpdatePolicy::InPlace),
    ] {
        let mut w = DatasetKind::Road.build(17);
        let vs = w.value_size();
        let store = PnwStore::new(
            PnwConfig::new(512, vs)
                .with_clusters(10)
                .with_update_policy(policy)
                .with_retrain(RetrainMode::Manual),
        );
        store.prefill_free_buckets(|| w.next_value()).expect("prefill");
        store.retrain_now().expect("train");
        store.put(1, &w.next_value()).expect("room");
        g.bench_function(name, |b| b.iter(|| store.put(1, &w.next_value())));
    }
    g.finish();
}

/// Same shortened windows as the micro suite (single-CPU CI budget).
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(10)
}

criterion_group! {
    name = benches;
    config = config();
    targets = ablation_init, ablation_minibatch, ablation_pca, ablation_update_policy
}
criterion_main!(benches);
