//! Criterion bench for the prediction kernel: the packed bit-domain LUT
//! path against the reference float featurize-then-scan path, across value
//! sizes and cluster counts (the `BENCH_predict.json` sweep's criterion
//! twin; §VI-D of the paper budgets 5–6 µs per prediction).

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pnw_bench::predictbench::{default_cases, trained_manager};
use pnw_core::PredictScratch;
use pnw_ml::featurize::bits_to_features;

fn bench_predict_paths(c: &mut Criterion) {
    for case in default_cases() {
        let m = trained_manager(case, 0xACE5);
        let v = vec![0x5Au8; case.value_size];
        let label = format!("{}B-k{}", case.value_size, case.k);

        let mut g = c.benchmark_group("predict_packed");
        let mut scratch = PredictScratch::new();
        g.bench_function(&label, |b| {
            b.iter(|| m.predict_into(black_box(&v), &mut scratch))
        });
        g.finish();

        let mut g = c.benchmark_group("predict_float");
        g.bench_function(&label, |b| {
            b.iter(|| m.kmeans().predict(&bits_to_features(black_box(&v))))
        });
        g.finish();
    }
}

/// Short windows: deterministic kernels on shared CI (same rationale as
/// `micro.rs`).
fn config() -> Criterion {
    Criterion::default()
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2))
        .sample_size(20)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_predict_paths
}
criterion_main!(benches);
