//! Criterion micro-benchmarks for the wire protocol: request/response
//! encode + decode and frame read/write (with its CRC pass) — the
//! per-request serving overhead the open-loop latency numbers sit on.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pnw_server::protocol::{
    decode_request, decode_response, encode_request, encode_response, read_frame, write_frame,
    Request, RequestFrame, Response, ResponseFrame, WireOp, DEFAULT_MAX_FRAME,
};

fn bench_request_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol/request");
    for vs in [16usize, 64, 256] {
        let frame = RequestFrame {
            id: 42,
            deadline_us: 1_000,
            req: Request::Put { key: 7, value: vec![0xAB; vs] },
        };
        let mut buf = Vec::new();
        g.bench_function(format!("encode_put_{vs}B"), |b| {
            b.iter(|| encode_request(black_box(&frame), &mut buf))
        });
        encode_request(&frame, &mut buf);
        g.bench_function(format!("decode_put_{vs}B"), |b| {
            b.iter(|| decode_request(black_box(&buf)).unwrap())
        });
    }
    let batch = RequestFrame {
        id: 43,
        deadline_us: 0,
        req: Request::Batch {
            ops: (0..64u64)
                .map(|k| {
                    if k % 8 == 0 {
                        WireOp::Delete { key: k }
                    } else {
                        WireOp::Put { key: k, value: vec![k as u8; 64] }
                    }
                })
                .collect(),
        },
    };
    let mut buf = Vec::new();
    g.bench_function("encode_batch64_64B", |b| {
        b.iter(|| encode_request(black_box(&batch), &mut buf))
    });
    encode_request(&batch, &mut buf);
    g.bench_function("decode_batch64_64B", |b| {
        b.iter(|| decode_request(black_box(&buf)).unwrap())
    });
    g.finish();
}

fn bench_response_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol/response");
    let frame = ResponseFrame { id: 42, resp: Response::Get(Some(vec![0xCD; 64])) };
    let mut buf = Vec::new();
    g.bench_function("encode_get_64B", |b| {
        b.iter(|| encode_response(black_box(&frame), &mut buf))
    });
    encode_response(&frame, &mut buf);
    g.bench_function("decode_get_64B", |b| {
        b.iter(|| decode_response(black_box(&buf)).unwrap())
    });
    g.finish();
}

fn bench_framing(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol/frame");
    for size in [29usize, 85, 1024] {
        let payload = vec![0x3Cu8; size];
        let mut wire = Vec::new();
        g.bench_function(format!("write_{size}B"), |b| {
            b.iter(|| {
                wire.clear();
                write_frame(&mut wire, black_box(&payload)).unwrap()
            })
        });
        wire.clear();
        write_frame(&mut wire, &payload).unwrap();
        let mut buf = Vec::new();
        g.bench_function(format!("read_{size}B"), |b| {
            b.iter(|| read_frame(&mut black_box(&wire[..]), DEFAULT_MAX_FRAME, &mut buf).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_request_codec, bench_response_codec, bench_framing);
criterion_main!(benches);
