//! # pnw-workloads — deterministic stand-ins for the paper's datasets
//!
//! The PNW evaluation (§VI) uses real datasets we cannot redistribute
//! (UCI Amazon Access Samples, 3D Road Network, PubMed DocWord, the
//! Sherbrooke and AAU traffic-surveillance videos, MNIST/Fashion-MNIST,
//! CIFAR-10) plus two synthetic distributions. Each generator here
//! reproduces the *structural property* that makes its original dataset
//! behave the way Figure 6 shows — see `DESIGN.md` §5 for the substitution
//! rationale:
//!
//! | Generator | Stands in for | Preserved property |
//! |---|---|---|
//! | [`SparseBinary`] | Amazon Access Samples | sparse binary rows with attribute-group structure |
//! | [`RoadNetwork3d`] | 3D Road Network | spatial locality ⇒ shared high-order bits |
//! | [`BagOfWords`] | PubMed abstracts | Zipfian sparse count vectors with topics |
//! | [`VideoFrames`] | Sherbrooke / traffic seq2 | temporal similarity between frames |
//! | [`TemplateImages`] (Digits) | MNIST | 10-class stroke images, low ink |
//! | [`TemplateImages`] (Fashion) | Fashion-MNIST | 10-class textured images, high ink |
//! | [`CifarLike`] | CIFAR-10 | class-tinted RGB tiles |
//! | [`NormalU32`] / [`UniformU32`] | §VI-D synthetic | N(2³¹, 2²⁸) and uniform 32-bit integers |
//!
//! Everything is seeded and deterministic: the same seed replays the same
//! byte stream, which the experiment harnesses rely on.
//!
//! ```
//! use pnw_workloads::{NormalU32, Workload};
//!
//! let mut w = NormalU32::new(42);
//! let v = w.next_value();
//! assert_eq!(v.len(), 4);
//! assert_eq!(w.value_size(), 4);
//! ```

#![warn(missing_docs)]

pub mod bow;
pub mod images;
pub mod mix;
pub mod road;
pub mod sparse;
pub mod synth;
pub mod traits;
pub mod video;

pub use bow::BagOfWords;
pub use images::{CifarLike, ImageStyle, TemplateImages};
pub use mix::{Interleaved, Phased};
pub use road::RoadNetwork3d;
pub use sparse::SparseBinary;
pub use synth::{NormalU32, UniformU32};
pub use traits::{DatasetKind, Workload};
pub use video::{VideoConfig, VideoFrames};
