//! Class-structured image generators — MNIST, Fashion-MNIST and CIFAR-10
//! stand-ins (Figures 3, 4, 7, 9, 10, 12, 13).
//!
//! Figure 10's workload-shift experiment needs two image distributions that
//! (a) each cluster into ~10 classes and (b) are *mutually distant*, so that
//! switching from one to the other visibly degrades a stale model. We render
//! 28×28 grayscale images from per-class templates:
//!
//! * [`ImageStyle::Digits`] — sparse stroke skeletons (low ink fraction,
//!   like handwritten digits);
//! * [`ImageStyle::Fashion`] — dense filled/textured silhouettes (high ink
//!   fraction, like apparel photos).
//!
//! Samples jitter their template with pixel noise and ±1-pixel translation,
//! which is what keeps intra-class Hamming distance low but nonzero.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traits::Workload;

/// Image side length (28 matches MNIST; values are 784 bytes).
pub const IMG_SIDE: usize = 28;

/// Which distribution the generator mimics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageStyle {
    /// MNIST-like sparse strokes.
    Digits,
    /// Fashion-MNIST-like dense textures.
    Fashion,
}

/// Template-based 10-class image generator.
#[derive(Debug, Clone)]
pub struct TemplateImages {
    style: ImageStyle,
    rng: StdRng,
    templates: Vec<Vec<u8>>,
}

impl TemplateImages {
    /// Builds the 10 class templates from the seed.
    pub fn new(style: ImageStyle, seed: u64) -> Self {
        // The template RNG is *style-keyed* so Digits and Fashion streams
        // with the same seed still look nothing alike.
        let style_key = match style {
            ImageStyle::Digits => 0x6D6E_6973_7400_0000u64,
            ImageStyle::Fashion => 0x6661_7368_696F_6E00u64,
        };
        let mut trng = StdRng::seed_from_u64(seed ^ style_key);
        let templates = (0..10).map(|_| Self::render_template(style, &mut trng)).collect();
        TemplateImages {
            style,
            rng: StdRng::seed_from_u64(seed.rotate_left(17) ^ style_key),
            templates,
        }
    }

    fn render_template(style: ImageStyle, rng: &mut StdRng) -> Vec<u8> {
        let mut img = vec![0u8; IMG_SIDE * IMG_SIDE];
        match style {
            ImageStyle::Digits => {
                // 3-5 random strokes: short runs of bright pixels.
                let strokes = rng.gen_range(3..6);
                for _ in 0..strokes {
                    let mut x = rng.gen_range(4..IMG_SIDE as i32 - 4);
                    let mut y = rng.gen_range(4..IMG_SIDE as i32 - 4);
                    let (dx, dy) = loop {
                        let d = (rng.gen_range(-1..=1), rng.gen_range(-1..=1));
                        if d != (0, 0) {
                            break d;
                        }
                    };
                    for _ in 0..rng.gen_range(8..18) {
                        if (0..IMG_SIDE as i32).contains(&x) && (0..IMG_SIDE as i32).contains(&y) {
                            img[y as usize * IMG_SIDE + x as usize] = 255;
                            // 1-pixel-thick strokes get a soft halo.
                            let hx = (x + dy) as usize;
                            let hy = (y + dx) as usize;
                            if hx < IMG_SIDE && hy < IMG_SIDE {
                                img[hy * IMG_SIDE + hx] = 128;
                            }
                        }
                        x += dx;
                        y += dy;
                    }
                }
            }
            ImageStyle::Fashion => {
                // A filled rectangle silhouette with texture bands.
                // Fashion-MNIST silhouettes fill most of the frame: keep
                // the rectangle ≥ 20×20 of the 28×28 image so every
                // template stays dense (> half the pixels inked).
                let x0 = rng.gen_range(1..5usize);
                let y0 = rng.gen_range(1..5usize);
                let x1 = rng.gen_range(24..28usize);
                let y1 = rng.gen_range(24..28usize);
                let base: u8 = rng.gen_range(120..220);
                let band = rng.gen_range(2..5usize);
                for y in y0..y1 {
                    for x in x0..x1 {
                        let tex = if (y / band) % 2 == 0 { 0 } else { 40 };
                        img[y * IMG_SIDE + x] = base.saturating_sub(tex);
                    }
                }
            }
        }
        img
    }

    /// Generates a sample of class `class` (0..10).
    pub fn sample_class(&mut self, class: usize) -> Vec<u8> {
        let t = &self.templates[class % 10];
        let mut img = vec![0u8; t.len()];
        // ±1 pixel translation for digits (handwriting wobbles). Fashion
        // photos are centered crops: translating a dense textured silhouette
        // would shift every band boundary and blow up within-class Hamming
        // distance far beyond what Fashion-MNIST exhibits.
        let (dx, dy) = match self.style {
            ImageStyle::Digits => (
                self.rng.gen_range(-1i32..=1),
                self.rng.gen_range(-1i32..=1),
            ),
            ImageStyle::Fashion => (0, 0),
        };
        for y in 0..IMG_SIDE as i32 {
            for x in 0..IMG_SIDE as i32 {
                let (sx, sy) = (x - dx, y - dy);
                if (0..IMG_SIDE as i32).contains(&sx) && (0..IMG_SIDE as i32).contains(&sy) {
                    img[y as usize * IMG_SIDE + x as usize] =
                        t[sy as usize * IMG_SIDE + sx as usize];
                }
            }
        }
        // Pixel noise: flip ~1.5% of pixels' intensity.
        for _ in 0..(IMG_SIDE * IMG_SIDE) / 64 {
            let p = self.rng.gen_range(0..img.len());
            img[p] = img[p].wrapping_add(self.rng.gen_range(1..=64));
        }
        img
    }

    /// The style of this generator.
    pub fn style(&self) -> ImageStyle {
        self.style
    }

    /// Re-seeds the *sample* stream while keeping the class templates.
    ///
    /// Generators with one seed share templates **and** replay the same
    /// sample sequence; experiments that warm a store from one stream and
    /// then measure against another need the same distribution but fresh
    /// samples — that is what a distinct stream seed provides.
    pub fn with_stream_seed(mut self, seed: u64) -> Self {
        self.rng = StdRng::seed_from_u64(seed ^ 0x57AE_A11B_57AE_A11B);
        self
    }
}

impl Workload for TemplateImages {
    fn name(&self) -> &'static str {
        match self.style {
            ImageStyle::Digits => "MNIST-like",
            ImageStyle::Fashion => "Fashion-MNIST-like",
        }
    }

    fn value_size(&self) -> usize {
        IMG_SIDE * IMG_SIDE
    }

    fn next_value(&mut self) -> Vec<u8> {
        let class = self.rng.gen_range(0..10);
        self.sample_class(class)
    }
}

/// CIFAR-10-like 32×32 RGB tiles: per-class dominant tint + texture.
#[derive(Debug, Clone)]
pub struct CifarLike {
    rng: StdRng,
    tints: Vec<[u8; 3]>,
}

/// CIFAR tile side length.
pub const CIFAR_SIDE: usize = 32;

impl CifarLike {
    /// Builds 10 class tints from the seed.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4349_4641_5231_3000);
        let tints = (0..10).map(|_| [rng.gen(), rng.gen(), rng.gen()]).collect();
        CifarLike { rng, tints }
    }
}

impl CifarLike {
    /// Generates a tile of a specific class (0..10).
    pub fn sample_class(&mut self, class: usize) -> Vec<u8> {
        let tint = self.tints[class % self.tints.len()];
        self.render(tint)
    }
}

impl Workload for CifarLike {
    fn name(&self) -> &'static str {
        "CIFAR-like"
    }

    fn value_size(&self) -> usize {
        CIFAR_SIDE * CIFAR_SIDE * 3
    }

    fn next_value(&mut self) -> Vec<u8> {
        let tint = self.tints[self.rng.gen_range(0..self.tints.len())];
        self.render(tint)
    }
}

impl CifarLike {
    fn render(&mut self, tint: [u8; 3]) -> Vec<u8> {
        let mut img = vec![0u8; self.value_size()];
        // Low-frequency texture: a quarter of the 4×4 blocks get a small
        // brightness offset. Kept weak so intra-tint Hamming distance stays
        // well below inter-tint distance (the clusterable structure PNW
        // exploits on CIFAR).
        let mut block_off = [[0i16; CIFAR_SIDE / 4]; CIFAR_SIDE / 4];
        for row in &mut block_off {
            for v in row.iter_mut() {
                if self.rng.gen::<f64>() < 0.25 {
                    *v = self.rng.gen_range(-8..8);
                }
            }
        }
        for y in 0..CIFAR_SIDE {
            for x in 0..CIFAR_SIDE {
                let off = block_off[y / 4][x / 4];
                for c in 0..3 {
                    let v = (i16::from(tint[c]) + off).clamp(0, 255) as u8;
                    img[(y * CIFAR_SIDE + x) * 3 + c] = v;
                }
            }
        }
        img
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ink(img: &[u8]) -> f64 {
        img.iter().filter(|&&p| p > 0).count() as f64 / img.len() as f64
    }

    fn hamming(a: &[u8], b: &[u8]) -> u64 {
        a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones() as u64).sum()
    }

    #[test]
    fn digits_are_sparse_fashion_is_dense() {
        let mut d = TemplateImages::new(ImageStyle::Digits, 5);
        let mut f = TemplateImages::new(ImageStyle::Fashion, 5);
        let di = ink(&d.next_value());
        let fi = ink(&f.next_value());
        assert!(di < 0.35, "digit ink {di}");
        assert!(fi > 0.4, "fashion ink {fi}");
    }

    #[test]
    fn same_class_is_closer_than_cross_class() {
        let mut g = TemplateImages::new(ImageStyle::Digits, 6);
        let a1 = g.sample_class(3);
        let a2 = g.sample_class(3);
        let b = g.sample_class(7);
        assert!(hamming(&a1, &a2) < hamming(&a1, &b), "intra vs inter class");
    }

    #[test]
    fn digits_and_fashion_are_mutually_distant() {
        // The Figure 10 premise: cross-distribution distance is large.
        let mut d = TemplateImages::new(ImageStyle::Digits, 7);
        let mut f = TemplateImages::new(ImageStyle::Fashion, 7);
        let dv = d.next_value();
        let dv2 = d.next_value();
        let fv = f.next_value();
        assert!(hamming(&dv, &fv) > hamming(&dv, &dv2));
    }

    #[test]
    fn cifar_tiles_cluster_by_tint() {
        let mut c = CifarLike::new(8);
        let mut intra = 0u64;
        let mut inter = 0u64;
        let mut intra_n = 0u64;
        let mut inter_n = 0u64;
        for class_a in 0..5 {
            let a1 = c.sample_class(class_a);
            let a2 = c.sample_class(class_a);
            intra += hamming(&a1, &a2);
            intra_n += 1;
            for class_b in (class_a + 1)..5 {
                let b = c.sample_class(class_b);
                inter += hamming(&a1, &b);
                inter_n += 1;
            }
        }
        let intra_mean = intra as f64 / intra_n as f64;
        let inter_mean = inter as f64 / inter_n as f64;
        assert!(
            inter_mean > intra_mean * 1.5,
            "intra={intra_mean} inter={inter_mean}"
        );
    }

    #[test]
    fn value_sizes() {
        assert_eq!(TemplateImages::new(ImageStyle::Digits, 0).value_size(), 784);
        assert_eq!(CifarLike::new(0).value_size(), 3072);
    }
}
