//! Spatially-correlated road-network points — the 3D Road Network stand-in
//! (Figure 6b).
//!
//! The original dataset holds (id, longitude, latitude, altitude) tuples for
//! North Jutland roads over a 185 × 135 km box. What PNW exploits is spatial
//! locality: consecutive road segments share coordinate prefixes, so their
//! fixed-point encodings agree in the high-order bits. The generator walks
//! several "road builders" across the same bounding box, emitting 32-byte
//! records (id: u32 + pad, lon/lat/alt as IEEE f64 — the original CSV's
//! representation) whose bit patterns cluster by region exactly like the
//! original: nearby points share sign, exponent and the leading mantissa
//! bits of every coordinate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traits::Workload;

/// Bounding box matching the paper's region (degrees / meters).
const LON_MIN: f64 = 8.15;
const LON_MAX: f64 = 10.65; // ~185 km at 57°N
const LAT_MIN: f64 = 56.6;
const LAT_MAX: f64 = 57.8; // ~135 km
const ALT_MIN: f64 = 0.0;
const ALT_MAX: f64 = 150.0;

/// One in-progress road being walked across the map.
#[derive(Debug, Clone)]
struct RoadWalker {
    lon: f64,
    lat: f64,
    alt: f64,
    heading: f64,
}

/// 3D road-network record generator.
#[derive(Debug, Clone)]
pub struct RoadNetwork3d {
    rng: StdRng,
    walkers: Vec<RoadWalker>,
    /// Per-walker segment counters: record ids are `(walker << 24) | seq`,
    /// mirroring how the original dataset's OSM ids cluster per road — a
    /// globally sequential id would inject 32 bits of avoidable entropy
    /// into every record.
    next_seq: Vec<u32>,
}

impl RoadNetwork3d {
    /// Creates the generator with 24 concurrent road walkers.
    ///
    /// The original dataset has 434K points over a dense road graph; many
    /// slow walkers reproduce its key property — each locality's points
    /// stay tightly packed, so region clusters have low internal Hamming
    /// distance.
    pub fn new(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x3C79_AC49_2BA7_B653);
        let walkers: Vec<RoadWalker> = (0..24)
            .map(|_| RoadWalker {
                lon: rng.gen_range(LON_MIN..LON_MAX),
                lat: rng.gen_range(LAT_MIN..LAT_MAX),
                alt: rng.gen_range(ALT_MIN..ALT_MAX),
                heading: rng.gen_range(0.0..std::f64::consts::TAU),
            })
            .collect();
        let n = walkers.len();
        RoadNetwork3d {
            rng,
            walkers,
            next_seq: vec![0; n],
        }
    }

    /// Fixed-point encoder kept for custom record layouts (and exercised by
    /// the unit tests).
    #[cfg_attr(not(test), allow(dead_code))]
    fn fixed_point(v: f64, lo: f64, hi: f64) -> u32 {
        let t = ((v - lo) / (hi - lo)).clamp(0.0, 1.0);
        (t * u32::MAX as f64) as u32
    }
}

impl Workload for RoadNetwork3d {
    fn name(&self) -> &'static str {
        "3D Road Network"
    }

    fn value_size(&self) -> usize {
        32
    }

    fn next_value(&mut self) -> Vec<u8> {
        let w_idx = self.rng.gen_range(0..self.walkers.len());
        // ~100 m steps with small heading drift: successive points on the
        // same road share coordinate prefixes.
        let turn = (self.rng.gen::<f64>() - 0.5) * 0.4;
        let step = 0.0003 + self.rng.gen::<f64>() * 0.0002;
        let w = &mut self.walkers[w_idx];
        w.heading += turn;
        w.lon += step * w.heading.cos();
        w.lat += step * w.heading.sin() * 0.55; // deg-lat is larger than deg-lon
        w.alt += (self.rng.gen::<f64>() - 0.5) * 1.5;
        // Reflect at the bounding box.
        if w.lon < LON_MIN || w.lon > LON_MAX {
            w.heading = std::f64::consts::PI - w.heading;
            w.lon = w.lon.clamp(LON_MIN, LON_MAX);
        }
        if w.lat < LAT_MIN || w.lat > LAT_MAX {
            w.heading = -w.heading;
            w.lat = w.lat.clamp(LAT_MIN, LAT_MAX);
        }
        w.alt = w.alt.clamp(ALT_MIN, ALT_MAX);

        let id = ((w_idx as u32) << 24) | (self.next_seq[w_idx] & 0x00FF_FFFF);
        self.next_seq[w_idx] = self.next_seq[w_idx].wrapping_add(1);
        let mut v = Vec::with_capacity(32);
        v.extend_from_slice(&id.to_le_bytes());
        v.extend_from_slice(&[0u8; 4]); // pad to the 8-byte double boundary
        v.extend_from_slice(&w.lon.to_le_bytes());
        v.extend_from_slice(&w.lat.to_le_bytes());
        v.extend_from_slice(&w.alt.to_le_bytes());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_layout() {
        let mut w = RoadNetwork3d::new(1);
        let v = w.next_value();
        assert_eq!(v.len(), 32);
        // Ids are walker-scoped: (walker << 24) | seq — the first record of
        // any walker carries sequence 0.
        let id = u32::from_le_bytes(v[0..4].try_into().unwrap());
        assert_eq!(id & 0x00FF_FFFF, 0);
        assert!((id >> 24) < 24, "walker tag in high byte");
        // Sequence numbers increment within each walker.
        let mut seen = std::collections::HashMap::new();
        seen.insert(id >> 24, id & 0x00FF_FFFF);
        for _ in 0..50 {
            let v = w.next_value();
            let id = u32::from_le_bytes(v[0..4].try_into().unwrap());
            let prev = seen.insert(id >> 24, id & 0x00FF_FFFF);
            if let Some(p) = prev {
                assert_eq!(id & 0x00FF_FFFF, p + 1, "per-walker seq increments");
            }
        }
    }

    #[test]
    fn coordinates_stay_in_box() {
        let mut w = RoadNetwork3d::new(2);
        for _ in 0..5000 {
            let v = w.next_value();
            let lon = f64::from_le_bytes(v[8..16].try_into().unwrap());
            let lat = f64::from_le_bytes(v[16..24].try_into().unwrap());
            assert!((LON_MIN..=LON_MAX).contains(&lon));
            assert!((LAT_MIN..=LAT_MAX).contains(&lat));
        }
        for wk in &w.walkers {
            assert!((LON_MIN..=LON_MAX).contains(&wk.lon));
            assert!((LAT_MIN..=LAT_MAX).contains(&wk.lat));
            assert!((ALT_MIN..=ALT_MAX).contains(&wk.alt));
        }
    }

    #[test]
    fn spatial_locality_shares_high_bytes() {
        // Consecutive emissions from the same walker share the top byte of
        // lon/lat far more often than random pairs would.
        let mut w = RoadNetwork3d::new(3);
        let vals: Vec<Vec<u8>> = (0..2000).map(|_| w.next_value()).collect();
        let mut same_top = 0usize;
        let mut total = 0usize;
        for pair in vals.windows(2) {
            // lon's IEEE exponent + leading mantissa live in the top bytes
            // of the LE f64 at offset 8 — bytes 14..16.
            if pair[0][14..16] == pair[1][14..16] {
                same_top += 1;
            }
            total += 1;
        }
        // With 8 walkers the *stream* interleaves, but positions evolve so
        // slowly that consecutive records still often share the region byte.
        assert!(
            same_top as f64 / total as f64 > 0.10,
            "{same_top}/{total}"
        );
    }

    #[test]
    fn fixed_point_monotone() {
        let a = RoadNetwork3d::fixed_point(0.0, 0.0, 10.0);
        let b = RoadNetwork3d::fixed_point(5.0, 0.0, 10.0);
        let c = RoadNetwork3d::fixed_point(10.0, 0.0, 10.0);
        assert!(a < b && b < c);
        assert_eq!(a, 0);
        assert_eq!(c, u32::MAX);
    }
}
