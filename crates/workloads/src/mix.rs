//! Workload combinators for the Figure 10 phase schedule.
//!
//! Phase 2 of the workload-shift experiment streams *"a mixture of items
//! from two different data sets … at the ratio of 2 to 1"*; the experiment
//! as a whole is a sequence of phases drawing from different sources.
//! [`Interleaved`] implements the ratio mixture, [`Phased`] the schedule.

use crate::traits::Workload;

/// Mixes two workloads at an `a:b` ratio (e.g. 1:2 for one MNIST item per
/// two Fashion items).
pub struct Interleaved<A, B> {
    a: A,
    b: B,
    a_per_cycle: usize,
    b_per_cycle: usize,
    pos: usize,
}

impl<A: Workload, B: Workload> Interleaved<A, B> {
    /// Creates the mixture. Both workloads must produce equal-size values.
    ///
    /// # Panics
    /// Panics if value sizes differ or both ratio terms are zero.
    pub fn new(a: A, b: B, a_per_cycle: usize, b_per_cycle: usize) -> Self {
        assert_eq!(
            a.value_size(),
            b.value_size(),
            "mixed workloads must share a value size"
        );
        assert!(a_per_cycle + b_per_cycle > 0, "ratio cannot be 0:0");
        Interleaved {
            a,
            b,
            a_per_cycle,
            b_per_cycle,
            pos: 0,
        }
    }
}

impl<A: Workload, B: Workload> Workload for Interleaved<A, B> {
    fn name(&self) -> &'static str {
        "interleaved"
    }

    fn value_size(&self) -> usize {
        self.a.value_size()
    }

    fn next_value(&mut self) -> Vec<u8> {
        let cycle = self.a_per_cycle + self.b_per_cycle;
        let slot = self.pos % cycle;
        self.pos += 1;
        if slot < self.a_per_cycle {
            self.a.next_value()
        } else {
            self.b.next_value()
        }
    }
}

/// A sequence of (workload, item-count) phases; after the last phase the
/// final workload keeps streaming.
pub struct Phased {
    phases: Vec<(Box<dyn Workload>, usize)>,
    current: usize,
    emitted_in_phase: usize,
}

impl Phased {
    /// Builds the schedule.
    ///
    /// # Panics
    /// Panics if `phases` is empty or value sizes disagree.
    pub fn new(phases: Vec<(Box<dyn Workload>, usize)>) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        let size = phases[0].0.value_size();
        assert!(
            phases.iter().all(|(w, _)| w.value_size() == size),
            "phase value sizes must agree"
        );
        Phased {
            phases,
            current: 0,
            emitted_in_phase: 0,
        }
    }

    /// Index of the active phase.
    pub fn current_phase(&self) -> usize {
        self.current
    }
}

impl Workload for Phased {
    fn name(&self) -> &'static str {
        "phased"
    }

    fn value_size(&self) -> usize {
        self.phases[0].0.value_size()
    }

    fn next_value(&mut self) -> Vec<u8> {
        while self.current + 1 < self.phases.len()
            && self.emitted_in_phase >= self.phases[self.current].1
        {
            self.current += 1;
            self.emitted_in_phase = 0;
        }
        self.emitted_in_phase += 1;
        self.phases[self.current].0.next_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{NormalU32, UniformU32};

    #[test]
    fn interleave_ratio_2_to_1() {
        // Distinguish sources by top byte: normal values cluster near 2³¹
        // (top byte ≈ 0x80), uniform values roam.
        let mix = Interleaved::new(NormalU32::new(1), UniformU32::new(2), 2, 1);
        let mut mix = mix;
        let mut from_a = 0;
        for i in 0..300 {
            let _v = mix.next_value();
            if i % 3 < 2 {
                from_a += 1;
            }
        }
        assert_eq!(from_a, 200);
        assert_eq!(mix.value_size(), 4);
    }

    #[test]
    #[should_panic]
    fn size_mismatch_rejected() {
        let a = NormalU32::new(1);
        let b = crate::sparse::SparseBinary::amazon_like(1);
        let _ = Interleaved::new(a, b, 1, 1);
    }

    #[test]
    fn phased_advances_through_schedule() {
        let mut p = Phased::new(vec![
            (Box::new(NormalU32::new(1)), 3),
            (Box::new(UniformU32::new(2)), 2),
        ]);
        assert_eq!(p.current_phase(), 0);
        for _ in 0..3 {
            p.next_value();
        }
        p.next_value();
        assert_eq!(p.current_phase(), 1);
        // Final phase streams forever.
        for _ in 0..10 {
            p.next_value();
        }
        assert_eq!(p.current_phase(), 1);
    }

    #[test]
    #[should_panic]
    fn empty_schedule_rejected() {
        let _ = Phased::new(vec![]);
    }
}
