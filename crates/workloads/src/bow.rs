//! Zipfian bag-of-words vectors — the PubMed DocWord stand-in (Figure 8).
//!
//! The original "bags-of-words" collection stores per-document word counts.
//! Two structural properties matter to PNW: word frequencies are Zipfian
//! (a few words dominate; most counts are zero) and documents cluster by
//! topic (documents on one topic share vocabulary). Values are fixed-size
//! arrays of saturating u8 counts over a vocabulary window.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traits::Workload;

/// Bag-of-words document generator.
#[derive(Debug, Clone)]
pub struct BagOfWords {
    rng: StdRng,
    vocab: usize,
    words_per_doc: usize,
    /// Per-topic word-preference tables: cumulative sampling weights.
    topics: Vec<Vec<f64>>,
}

impl BagOfWords {
    /// PubMed-like configuration: 512-word vocabulary window, ~120 words
    /// per abstract, 8 topics.
    pub fn pubmed_like(seed: u64) -> Self {
        BagOfWords::new(seed, 512, 120, 8)
    }

    /// Fully parameterized constructor.
    pub fn new(seed: u64, vocab: usize, words_per_doc: usize, n_topics: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x94D0_49BB_1331_11EB);
        // Global Zipf ranks, then per-topic boosts over a random vocabulary
        // subset.
        let zipf: Vec<f64> = (0..vocab).map(|r| 1.0 / (r + 1) as f64).collect();
        let topics = (0..n_topics.max(1))
            .map(|_| {
                let mut weights = zipf.clone();
                // Boost a contiguous ~10% band of the vocabulary for this
                // topic. Bag-of-words dictionaries are built corpus-order,
                // so topical vocabulary clusters in id space — which is what
                // lets same-topic documents share whole zero regions (and
                // whole cache lines) in their count vectors.
                let band = vocab / 10;
                let start = rng.gen_range(0..vocab.saturating_sub(band).max(1));
                let end = (start + band).min(vocab);
                for w in &mut weights[start..end] {
                    *w *= 500.0;
                }
                // Cumulative distribution for O(log V) sampling.
                let mut acc = 0.0;
                for w in &mut weights {
                    acc += *w;
                    *w = acc;
                }
                weights
            })
            .collect();
        BagOfWords {
            rng,
            vocab,
            words_per_doc,
            topics,
        }
    }

    fn sample_word(cdf: &[f64], u: f64) -> usize {
        let target = u * cdf.last().copied().unwrap_or(1.0);
        cdf.partition_point(|&c| c < target).min(cdf.len() - 1)
    }
}

impl Workload for BagOfWords {
    fn name(&self) -> &'static str {
        "PubMed abstracts"
    }

    fn value_size(&self) -> usize {
        self.vocab
    }

    fn next_value(&mut self) -> Vec<u8> {
        let t = self.rng.gen_range(0..self.topics.len());
        let mut counts = vec![0u8; self.vocab];
        for _ in 0..self.words_per_doc {
            let u = self.rng.gen::<f64>();
            let w = Self::sample_word(&self.topics[t], u);
            counts[w] = counts[w].saturating_add(1);
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_sum_to_words_per_doc() {
        let mut w = BagOfWords::new(1, 128, 60, 4);
        let v = w.next_value();
        let total: u32 = v.iter().map(|&c| u32::from(c)).sum();
        // Saturation can only lose counts; with 60 words it rarely bites.
        assert!(total <= 60);
        assert!(total >= 55, "total={total}");
    }

    #[test]
    fn most_entries_are_zero() {
        let mut w = BagOfWords::pubmed_like(2);
        let v = w.next_value();
        let zeros = v.iter().filter(|&&c| c == 0).count();
        assert!(zeros as f64 / v.len() as f64 > 0.6, "zeros={zeros}");
    }

    #[test]
    fn zipf_head_dominates() {
        // Heavy-tailed frequencies: the most frequent 10% of words (by
        // observed count — boosts move the head around the vocabulary) hold
        // the majority of all occurrences.
        let mut w = BagOfWords::new(3, 256, 100, 1);
        let mut totals = vec![0u64; 256];
        for _ in 0..100 {
            for (t, c) in totals.iter_mut().zip(w.next_value()) {
                *t += u64::from(c);
            }
        }
        let all: u64 = totals.iter().sum();
        totals.sort_unstable_by(|a, b| b.cmp(a));
        let head: u64 = totals[..26].iter().sum();
        assert!(head as f64 / all as f64 > 0.5, "head share {head}/{all}");
    }

    #[test]
    fn sample_word_bounds() {
        let cdf = [1.0, 3.0, 6.0];
        assert_eq!(BagOfWords::sample_word(&cdf, 0.0), 0);
        assert_eq!(BagOfWords::sample_word(&cdf, 0.99), 2);
        // u = 0.4 → target 2.4 → first cdf ≥ 2.4 is index 1.
        assert_eq!(BagOfWords::sample_word(&cdf, 0.4), 1);
    }
}
