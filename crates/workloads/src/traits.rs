//! The [`Workload`] trait and dataset registry.

/// A deterministic stream of fixed-size values.
pub trait Workload: Send {
    /// Display name used in experiment output (matches the paper's figure
    /// captions, e.g. `"3D Road Network"`).
    fn name(&self) -> &'static str;

    /// Size in bytes of every value this workload yields.
    fn value_size(&self) -> usize;

    /// Produces the next value. Infinite stream: generators wrap around
    /// rather than exhaust.
    fn next_value(&mut self) -> Vec<u8>;

    /// Collects `n` values.
    fn take_values(&mut self, n: usize) -> Vec<Vec<u8>>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.next_value()).collect()
    }
}

impl Workload for Box<dyn Workload> {
    fn name(&self) -> &'static str {
        self.as_ref().name()
    }
    fn value_size(&self) -> usize {
        self.as_ref().value_size()
    }
    fn next_value(&mut self) -> Vec<u8> {
        self.as_mut().next_value()
    }
}

/// Collects `n` values from a trait object (mirror of
/// [`Workload::take_values`] for unsized receivers).
pub fn take_values(w: &mut dyn Workload, n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|_| w.next_value()).collect()
}

/// Every dataset of the paper's evaluation, name-addressable for the
/// experiment harnesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// Amazon Access Samples stand-in (Fig 6a).
    Amazon,
    /// 3D Road Network stand-in (Fig 6b).
    Road,
    /// Sherbrooke video stand-in (Fig 6c).
    Sherbrooke,
    /// Traffic-surveillance "day sequence 2" stand-in (Fig 6d).
    Traffic,
    /// Normal 32-bit integers (Fig 6e).
    Normal,
    /// Uniform 32-bit integers (Fig 6f).
    Uniform,
    /// PubMed bag-of-words stand-in (Fig 8).
    PubMed,
    /// MNIST-like digit images (Figs 3, 4, 10, 12, 13).
    Mnist,
    /// Fashion-MNIST-like images (Figs 10, 12, 13).
    Fashion,
    /// CIFAR-10-like RGB tiles (Figs 7, 9).
    Cifar,
}

impl DatasetKind {
    /// All datasets.
    pub fn all() -> [DatasetKind; 10] {
        [
            DatasetKind::Amazon,
            DatasetKind::Road,
            DatasetKind::Sherbrooke,
            DatasetKind::Traffic,
            DatasetKind::Normal,
            DatasetKind::Uniform,
            DatasetKind::PubMed,
            DatasetKind::Mnist,
            DatasetKind::Fashion,
            DatasetKind::Cifar,
        ]
    }

    /// Figure-caption name.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Amazon => "Amazon Access Samples",
            DatasetKind::Road => "3D Road Network",
            DatasetKind::Sherbrooke => "Sherbrooke",
            DatasetKind::Traffic => "seq2 traffic surveillance",
            DatasetKind::Normal => "normal distribution",
            DatasetKind::Uniform => "uniform distribution",
            DatasetKind::PubMed => "PubMed abstracts",
            DatasetKind::Mnist => "MNIST-like",
            DatasetKind::Fashion => "Fashion-MNIST-like",
            DatasetKind::Cifar => "CIFAR-like",
        }
    }

    /// Builds the generator for this dataset with the given seed.
    pub fn build(&self, seed: u64) -> Box<dyn Workload> {
        use crate::*;
        match self {
            DatasetKind::Amazon => Box::new(SparseBinary::amazon_like(seed)),
            DatasetKind::Road => Box::new(RoadNetwork3d::new(seed)),
            DatasetKind::Sherbrooke => {
                Box::new(VideoFrames::new(VideoConfig::sherbrooke_like(), seed))
            }
            DatasetKind::Traffic => Box::new(VideoFrames::new(VideoConfig::traffic_like(), seed)),
            DatasetKind::Normal => Box::new(NormalU32::new(seed)),
            DatasetKind::Uniform => Box::new(UniformU32::new(seed)),
            DatasetKind::PubMed => Box::new(BagOfWords::pubmed_like(seed)),
            DatasetKind::Mnist => Box::new(TemplateImages::new(ImageStyle::Digits, seed)),
            DatasetKind::Fashion => Box::new(TemplateImages::new(ImageStyle::Fashion, seed)),
            DatasetKind::Cifar => Box::new(CifarLike::new(seed)),
        }
    }
}

impl std::str::FromStr for DatasetKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "amazon" => Ok(DatasetKind::Amazon),
            "road" | "road3d" => Ok(DatasetKind::Road),
            "sherbrooke" => Ok(DatasetKind::Sherbrooke),
            "traffic" | "seq2" => Ok(DatasetKind::Traffic),
            "normal" => Ok(DatasetKind::Normal),
            "uniform" => Ok(DatasetKind::Uniform),
            "pubmed" => Ok(DatasetKind::PubMed),
            "mnist" => Ok(DatasetKind::Mnist),
            "fashion" => Ok(DatasetKind::Fashion),
            "cifar" => Ok(DatasetKind::Cifar),
            other => Err(format!("unknown dataset '{other}'")),
        }
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_dataset_builds_and_streams() {
        for kind in DatasetKind::all() {
            let mut w = kind.build(1);
            let size = w.value_size();
            assert!(size >= 4, "{kind:?}");
            for _ in 0..3 {
                assert_eq!(w.next_value().len(), size, "{kind:?}");
            }
        }
    }

    #[test]
    fn determinism_per_seed() {
        for kind in DatasetKind::all() {
            let mut a = kind.build(99);
            let mut b = kind.build(99);
            for _ in 0..5 {
                assert_eq!(a.next_value(), b.next_value(), "{kind:?}");
            }
        }
    }

    #[test]
    fn different_seeds_differ() {
        // At least one of the first few values should differ between seeds
        // (video backgrounds, templates etc. are seed-derived).
        for kind in DatasetKind::all() {
            let mut a = kind.build(1);
            let mut b = kind.build(2);
            let differs = (0..5).any(|_| a.next_value() != b.next_value());
            assert!(differs, "{kind:?} ignored its seed");
        }
    }

    #[test]
    fn parse_names() {
        assert_eq!("amazon".parse::<DatasetKind>().unwrap(), DatasetKind::Amazon);
        assert_eq!("ROAD".parse::<DatasetKind>().unwrap(), DatasetKind::Road);
        assert!("nope".parse::<DatasetKind>().is_err());
    }
}
