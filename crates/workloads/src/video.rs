//! Synthetic surveillance video — the Sherbrooke / AAU traffic stand-in
//! (Figures 6c, 6d, 11).
//!
//! A CCTV stream recorded to NVM is the paper's motivating media workload:
//! consecutive frames share the static background, so frames are mutually
//! close in Hamming distance and cluster by scene. The generator renders a
//! seed-derived static background, moves a handful of rectangular "vehicles"
//! across it with per-frame position updates, and adds salt-and-pepper
//! sensor noise.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traits::Workload;

/// Video stream geometry and dynamics.
#[derive(Debug, Clone)]
pub struct VideoConfig {
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// 1 = grayscale, 3 = RGB.
    pub channels: usize,
    /// Number of moving objects.
    pub objects: usize,
    /// Per-pixel probability of sensor noise.
    pub noise: f64,
}

impl VideoConfig {
    /// Grayscale 48×36 stream mirroring the Sherbrooke intersection video
    /// (scaled from 800×600 to keep values cache-friendly; similarity
    /// structure is resolution-independent).
    pub fn sherbrooke_like() -> Self {
        VideoConfig {
            width: 48,
            height: 36,
            channels: 1,
            objects: 5,
            noise: 0.01,
        }
    }

    /// RGB 32×24 stream mirroring the AAU traffic "day sequence 2" camera
    /// (640×480 RGB in the original).
    pub fn traffic_like() -> Self {
        VideoConfig {
            width: 32,
            height: 24,
            channels: 3,
            objects: 7,
            noise: 0.015,
        }
    }

    /// Bytes per frame.
    pub fn frame_bytes(&self) -> usize {
        self.width * self.height * self.channels
    }
}

#[derive(Debug, Clone)]
struct MovingObject {
    x: f64,
    y: f64,
    vx: f64,
    vy: f64,
    w: usize,
    h: usize,
    color: [u8; 3],
}

/// Frame-sequence generator.
#[derive(Debug, Clone)]
pub struct VideoFrames {
    cfg: VideoConfig,
    rng: StdRng,
    /// Scene-mode backgrounds (lighting conditions / camera presets); real
    /// surveillance footage alternates between a few such modes, and the
    /// mode structure is what clustering exploits beyond frame-to-frame
    /// similarity.
    backgrounds: Vec<Vec<u8>>,
    mode: usize,
    objects: Vec<MovingObject>,
    frame_no: u64,
}

impl VideoFrames {
    /// Creates a stream; the background and object fleet derive from the
    /// seed.
    pub fn new(cfg: VideoConfig, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6C62_272E_07BB_0142);
        // Scene modes: the same gradient-plus-texture background rendered
        // under four lighting conditions (dawn/day/dusk/night). The camera
        // dwells in a mode for stretches of frames.
        let row_tex: Vec<u8> = (0..cfg.height).map(|_| rng.gen_range(0..32)).collect();
        let backgrounds: Vec<Vec<u8>> = (0..4u8)
            .map(|mode| {
                let mut background = vec![0u8; cfg.frame_bytes()];
                let light = 30 + mode * 55;
                for y in 0..cfg.height {
                    for x in 0..cfg.width {
                        for c in 0..cfg.channels {
                            let base = light.wrapping_add((x * 100 / cfg.width.max(1)) as u8);
                            let px = base
                                .wrapping_add(row_tex[y])
                                .wrapping_add((c as u8) * 10);
                            background[(y * cfg.width + x) * cfg.channels + c] = px;
                        }
                    }
                }
                background
            })
            .collect();
        let objects = (0..cfg.objects)
            .map(|_| MovingObject {
                x: rng.gen_range(0.0..cfg.width as f64),
                y: rng.gen_range(0.0..cfg.height as f64),
                vx: rng.gen_range(-1.5..1.5),
                vy: rng.gen_range(-0.5..0.5),
                w: rng.gen_range(2..(cfg.width / 4).max(3)),
                h: rng.gen_range(2..(cfg.height / 4).max(3)),
                color: [rng.gen(), rng.gen(), rng.gen()],
            })
            .collect();
        VideoFrames {
            cfg,
            rng,
            backgrounds,
            mode: 0,
            objects,
            frame_no: 0,
        }
    }

    /// Number of frames emitted so far.
    pub fn frames_emitted(&self) -> u64 {
        self.frame_no
    }
}

impl Workload for VideoFrames {
    fn name(&self) -> &'static str {
        if self.cfg.channels == 1 {
            "Sherbrooke"
        } else {
            "seq2 traffic surveillance"
        }
    }

    fn value_size(&self) -> usize {
        self.cfg.frame_bytes()
    }

    fn next_value(&mut self) -> Vec<u8> {
        // Dwell in a lighting mode; switch occasionally (≈ every 50 frames).
        if self.rng.gen::<f64>() < 0.02 {
            self.mode = self.rng.gen_range(0..self.backgrounds.len());
        }
        let mut frame = self.backgrounds[self.mode].clone();
        let (w, h, ch) = (self.cfg.width, self.cfg.height, self.cfg.channels);

        // Advance and draw objects.
        for obj in &mut self.objects {
            obj.x += obj.vx;
            obj.y += obj.vy;
            // Wrap around the scene like traffic re-entering the frame.
            if obj.x < -(obj.w as f64) {
                obj.x = w as f64;
            }
            if obj.x > w as f64 {
                obj.x = -(obj.w as f64);
            }
            obj.y = obj.y.rem_euclid(h as f64);
            let ox = obj.x as isize;
            let oy = obj.y as isize;
            for dy in 0..obj.h as isize {
                for dx in 0..obj.w as isize {
                    let (px, py) = (ox + dx, oy + dy);
                    if px < 0 || py < 0 || px >= w as isize || py >= h as isize {
                        continue;
                    }
                    let idx = (py as usize * w + px as usize) * ch;
                    for c in 0..ch {
                        frame[idx + c] = obj.color[c.min(2)];
                    }
                }
            }
        }

        // Sensor noise.
        let noisy_pixels = (self.cfg.noise * (w * h) as f64) as usize;
        for _ in 0..noisy_pixels {
            let p = self.rng.gen_range(0..w * h);
            for c in 0..ch {
                frame[p * ch + c] = self.rng.gen();
            }
        }

        self.frame_no += 1;
        frame
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hamming(a: &[u8], b: &[u8]) -> u64 {
        a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones() as u64).sum()
    }

    #[test]
    fn frame_sizes() {
        assert_eq!(VideoConfig::sherbrooke_like().frame_bytes(), 48 * 36);
        assert_eq!(VideoConfig::traffic_like().frame_bytes(), 32 * 24 * 3);
    }

    #[test]
    fn consecutive_frames_are_similar() {
        let mut v = VideoFrames::new(VideoConfig::sherbrooke_like(), 1);
        let a = v.next_value();
        let b = v.next_value();
        let total_bits = (a.len() * 8) as u64;
        let d = hamming(&a, &b);
        // Background dominates: well under a quarter of bits differ.
        assert!(d < total_bits / 4, "d={d}/{total_bits}");
        assert!(d > 0, "frames should not be identical (objects move)");
    }

    #[test]
    fn distant_streams_differ_more_than_consecutive_frames() {
        let mut v1 = VideoFrames::new(VideoConfig::sherbrooke_like(), 1);
        let mut v2 = VideoFrames::new(VideoConfig::sherbrooke_like(), 2);
        let a1 = v1.next_value();
        let a2 = v1.next_value();
        let b1 = v2.next_value();
        assert!(hamming(&a1, &b1) > hamming(&a1, &a2));
    }

    #[test]
    fn objects_eventually_move_everything() {
        let mut v = VideoFrames::new(VideoConfig::traffic_like(), 3);
        let first = v.next_value();
        for _ in 0..50 {
            v.next_value();
        }
        let late = v.next_value();
        assert_ne!(first, late);
        assert_eq!(v.frames_emitted(), 52);
    }

    #[test]
    fn rgb_frames_have_three_channels() {
        let mut v = VideoFrames::new(VideoConfig::traffic_like(), 4);
        assert_eq!(v.next_value().len(), 32 * 24 * 3);
    }
}
