//! Synthetic integer distributions (§VI-D).
//!
//! *"For the synthetic data sets, we used 32-bit keys and values. We also
//! generated two types of integer data (normal and uniformly distributed),
//! ranging from 0 to 2³². … for the normal data set, we generated a
//! synthetic data set of 100M unique values sampled from a normal
//! distribution with µ = 2³¹ and σ = 2²⁸."*

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traits::Workload;

/// Uniform 32-bit values — the paper's hard-to-cluster worst case
/// (Figure 6f).
#[derive(Debug, Clone)]
pub struct UniformU32 {
    rng: StdRng,
}

impl UniformU32 {
    /// Creates the generator.
    pub fn new(seed: u64) -> Self {
        UniformU32 {
            rng: StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15),
        }
    }
}

impl Workload for UniformU32 {
    fn name(&self) -> &'static str {
        "uniform distribution"
    }
    fn value_size(&self) -> usize {
        4
    }
    fn next_value(&mut self) -> Vec<u8> {
        self.rng.gen::<u32>().to_le_bytes().to_vec()
    }
}

/// Normal 32-bit values with the paper's µ = 2³¹, σ = 2²⁸ (Figure 6e).
#[derive(Debug, Clone)]
pub struct NormalU32 {
    rng: StdRng,
    mu: f64,
    sigma: f64,
    /// Spare Box-Muller deviate.
    spare: Option<f64>,
}

impl NormalU32 {
    /// The paper's parameters.
    pub fn new(seed: u64) -> Self {
        Self::with_params(seed, 2f64.powi(31), 2f64.powi(28))
    }

    /// Custom mean and standard deviation.
    pub fn with_params(seed: u64, mu: f64, sigma: f64) -> Self {
        NormalU32 {
            rng: StdRng::seed_from_u64(seed ^ 0x5851_F42D_4C95_7F2D),
            mu,
            sigma,
            spare: None,
        }
    }

    /// One standard normal deviate via Box–Muller.
    fn std_normal(&mut self) -> f64 {
        if let Some(z) = self.spare.take() {
            return z;
        }
        // Avoid ln(0).
        let u1: f64 = loop {
            let u = self.rng.gen::<f64>();
            if u > f64::EPSILON {
                break u;
            }
        };
        let u2: f64 = self.rng.gen();
        let r = (-2.0 * u1.ln()).sqrt();
        let (s, c) = (2.0 * std::f64::consts::PI * u2).sin_cos();
        self.spare = Some(r * s);
        r * c
    }
}

impl Workload for NormalU32 {
    fn name(&self) -> &'static str {
        "normal distribution"
    }
    fn value_size(&self) -> usize {
        4
    }
    fn next_value(&mut self) -> Vec<u8> {
        let z = self.std_normal();
        let v = (self.mu + self.sigma * z).clamp(0.0, u32::MAX as f64) as u32;
        v.to_le_bytes().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_the_range() {
        let mut w = UniformU32::new(1);
        let vals: Vec<u32> = (0..2000)
            .map(|_| u32::from_le_bytes(w.next_value().try_into().unwrap()))
            .collect();
        let lo = vals.iter().filter(|&&v| v < u32::MAX / 2).count();
        // Roughly half below the midpoint.
        assert!((800..1200).contains(&lo), "lo={lo}");
    }

    #[test]
    fn normal_concentrates_around_mu() {
        let mut w = NormalU32::new(2);
        let vals: Vec<f64> = (0..4000)
            .map(|_| u32::from_le_bytes(w.next_value().try_into().unwrap()) as f64)
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let mu = 2f64.powi(31);
        let sigma = 2f64.powi(28);
        assert!((mean - mu).abs() < sigma, "mean={mean:e}");
        // ~68% within one sigma.
        let within = vals.iter().filter(|&&v| (v - mu).abs() < sigma).count();
        let frac = within as f64 / vals.len() as f64;
        assert!((0.6..0.76).contains(&frac), "frac={frac}");
    }

    #[test]
    fn normal_shares_high_bits_more_than_uniform() {
        // The reason PNW clusters normal data well: high-order bytes repeat.
        let mut n = NormalU32::new(3);
        let mut u = UniformU32::new(3);
        let top_byte = |v: Vec<u8>| v[3];
        let mut n_hist = [0u32; 256];
        let mut u_hist = [0u32; 256];
        for _ in 0..2000 {
            n_hist[top_byte(n.next_value()) as usize] += 1;
            u_hist[top_byte(u.next_value()) as usize] += 1;
        }
        let n_distinct = n_hist.iter().filter(|&&c| c > 0).count();
        let u_distinct = u_hist.iter().filter(|&&c| c > 0).count();
        assert!(n_distinct < u_distinct, "n={n_distinct} u={u_distinct}");
    }

    #[test]
    fn box_muller_spare_is_consumed() {
        let mut w = NormalU32::new(4);
        // Two draws exercise both halves of the Box-Muller pair.
        let a = w.next_value();
        let b = w.next_value();
        assert_ne!(a, b);
    }
}
