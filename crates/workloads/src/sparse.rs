//! Sparse-binary rows — the Amazon Access Samples stand-in (Figure 6a).
//!
//! The original dataset has 20K binary attributes of which *"only less than
//! 10% of them are used for each sample"*, and samples cluster by which
//! attribute groups they touch (users in the same role request similar
//! resources). The generator reproduces both properties: a configurable
//! attribute space, per-sample density below 10%, and latent groups whose
//! members share most attributes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::traits::Workload;

/// Sparse binary attribute-vector generator.
#[derive(Debug, Clone)]
pub struct SparseBinary {
    rng: StdRng,
    /// Attribute-space size in bits.
    attrs: usize,
    /// Latent groups; each sample belongs to one.
    group_bases: Vec<Vec<usize>>,
    /// Probability of dropping a base attribute / adding a stray one.
    jitter: f64,
}

impl SparseBinary {
    /// The configuration mirroring the Amazon Access Samples structure,
    /// scaled to 2048 attributes (the original's 20K attributes at 10%
    /// density would make every value 2.5 KB; 2048 bits = 256 B values keep
    /// experiments laptop-sized while preserving sparsity and grouping).
    pub fn amazon_like(seed: u64) -> Self {
        SparseBinary::new(seed, 2048, 12, 0.06, 0.15)
    }

    /// Fully parameterized constructor.
    ///
    /// * `attrs` — attribute-space size in bits (rounded up to whole bytes).
    /// * `groups` — number of latent groups.
    /// * `density` — fraction of attributes set in a group's base pattern.
    /// * `jitter` — per-sample probability of perturbing each base attribute.
    pub fn new(seed: u64, attrs: usize, groups: usize, density: f64, jitter: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA24B_AED4_963E_E407);
        let per_group = ((attrs as f64 * density) as usize).max(1);
        let group_bases = (0..groups.max(1))
            .map(|_| {
                (0..per_group)
                    .map(|_| rng.gen_range(0..attrs))
                    .collect::<Vec<_>>()
            })
            .collect();
        SparseBinary {
            rng,
            attrs,
            group_bases,
            jitter,
        }
    }

    /// Number of latent groups.
    pub fn groups(&self) -> usize {
        self.group_bases.len()
    }
}

impl Workload for SparseBinary {
    fn name(&self) -> &'static str {
        "Amazon Access Samples"
    }

    fn value_size(&self) -> usize {
        self.attrs.div_ceil(8)
    }

    fn next_value(&mut self) -> Vec<u8> {
        let g = self.rng.gen_range(0..self.group_bases.len());
        let mut v = vec![0u8; self.value_size()];
        // The clone is cheap relative to generation and keeps the borrow
        // checker happy alongside `self.rng`.
        let base = self.group_bases[g].clone();
        for attr in base {
            // Keep each base attribute with probability 1 - jitter.
            if self.rng.gen::<f64>() >= self.jitter {
                v[attr / 8] |= 1 << (attr % 8);
            }
        }
        // A few stray attributes outside the group.
        let strays = (self.attrs as f64 * 0.002) as usize;
        for _ in 0..strays {
            if self.rng.gen::<f64>() < self.jitter {
                let attr = self.rng.gen_range(0..self.attrs);
                v[attr / 8] |= 1 << (attr % 8);
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn popcount(v: &[u8]) -> u32 {
        v.iter().map(|b| b.count_ones()).sum()
    }

    #[test]
    fn density_below_ten_percent() {
        let mut w = SparseBinary::amazon_like(1);
        for _ in 0..50 {
            let v = w.next_value();
            let frac = popcount(&v) as f64 / (v.len() * 8) as f64;
            assert!(frac < 0.10, "density {frac}");
            assert!(frac > 0.0, "all-zero sample");
        }
    }

    #[test]
    fn samples_cluster_by_group() {
        // Average intra-group Hamming distance must beat inter-group.
        let mut w = SparseBinary::new(7, 512, 4, 0.08, 0.1);
        let samples: Vec<Vec<u8>> = (0..200).map(|_| w.next_value()).collect();
        // Greedy: group samples by nearest of 4 "anchor" samples; verify
        // anchors separate the population (weak but deterministic check).
        let ham = |a: &[u8], b: &[u8]| -> u32 {
            a.iter().zip(b).map(|(x, y)| (x ^ y).count_ones()).sum()
        };
        let mut close_pairs = 0;
        let mut far_pairs = 0;
        let mut close_sum = 0u64;
        let mut far_sum = 0u64;
        for i in 0..samples.len() {
            for j in (i + 1)..samples.len().min(i + 20) {
                let d = ham(&samples[i], &samples[j]);
                if d < 20 {
                    close_pairs += 1;
                    close_sum += u64::from(d);
                } else {
                    far_pairs += 1;
                    far_sum += u64::from(d);
                }
            }
        }
        // A grouped distribution has a bimodal distance structure: plenty of
        // near-duplicate pairs AND plenty of distant pairs.
        assert!(close_pairs > 50, "close={close_pairs}");
        assert!(far_pairs > 50, "far={far_pairs}");
        let close_mean = close_sum as f64 / close_pairs as f64;
        let far_mean = far_sum as f64 / far_pairs as f64;
        assert!(far_mean > close_mean * 3.0, "{close_mean} vs {far_mean}");
    }

    #[test]
    fn value_size_rounds_up() {
        let w = SparseBinary::new(3, 9, 2, 0.5, 0.0);
        assert_eq!(w.value_size(), 2);
    }

    #[test]
    fn groups_accessor() {
        assert_eq!(SparseBinary::amazon_like(0).groups(), 12);
    }
}
