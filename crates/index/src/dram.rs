//! The DRAM-resident hash index (Figure 2a).
//!
//! For small keys the paper keeps the index in DRAM: *"we do not pay any
//! cost for the extra bit flipping that is caused by the write amplification
//! of the indexing structures. Nonetheless, we need to build the whole data
//! structure from scratch during recovery after a crash."* The store's
//! recovery path does exactly that (see `pnw-core`).

use std::collections::HashMap;

use pnw_nvm_sim::NvmDevice;

use crate::traits::{IndexError, KeyIndex};

/// A plain DRAM hash map; never touches the NVM device.
#[derive(Debug, Default, Clone)]
pub struct DramHashIndex {
    map: HashMap<u64, u64>,
}

impl DramHashIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates with capacity (avoids rehashing during warm-up).
    pub fn with_capacity(n: usize) -> Self {
        DramHashIndex {
            map: HashMap::with_capacity(n),
        }
    }

    /// Iterates over `(key, addr)` pairs (used by recovery verification).
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.map.iter().map(|(&k, &a)| (k, a))
    }
}

impl KeyIndex for DramHashIndex {
    fn name(&self) -> &'static str {
        "dram-hash"
    }

    fn insert(&mut self, _dev: &mut NvmDevice, key: u64, addr: u64) -> Result<(), IndexError> {
        self.map.insert(key, addr);
        Ok(())
    }

    fn get(&mut self, _dev: &mut NvmDevice, key: u64) -> Result<Option<u64>, IndexError> {
        Ok(self.map.get(&key).copied())
    }

    fn lookup(&self, _dev: &NvmDevice, key: u64) -> Result<Option<u64>, IndexError> {
        Ok(self.map.get(&key).copied())
    }

    fn remove(&mut self, _dev: &mut NvmDevice, key: u64) -> Result<Option<u64>, IndexError> {
        Ok(self.map.remove(&key))
    }

    fn clear(&mut self, _dev: &mut NvmDevice) -> Result<(), IndexError> {
        self.map.clear();
        Ok(())
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnw_nvm_sim::NvmConfig;

    fn dev() -> NvmDevice {
        NvmDevice::new(NvmConfig::default().with_size(64))
    }

    #[test]
    fn basic_crud() {
        let mut d = dev();
        let mut idx = DramHashIndex::new();
        idx.insert(&mut d, 1, 100).unwrap();
        idx.insert(&mut d, 2, 200).unwrap();
        assert_eq!(idx.get(&mut d, 1).unwrap(), Some(100));
        assert_eq!(idx.len(), 2);
        idx.insert(&mut d, 1, 150).unwrap(); // update
        assert_eq!(idx.get(&mut d, 1).unwrap(), Some(150));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.remove(&mut d, 1).unwrap(), Some(150));
        assert_eq!(idx.get(&mut d, 1).unwrap(), None);
        assert!(!idx.is_empty());
    }

    #[test]
    fn charges_no_nvm_traffic() {
        let mut d = dev();
        let mut idx = DramHashIndex::new();
        for k in 0..100 {
            idx.insert(&mut d, k, k * 10).unwrap();
        }
        assert_eq!(d.stats().write_ops, 0);
        assert_eq!(d.stats().totals.bit_flips, 0);
    }
}
