//! Lock-free index read handles.
//!
//! A [`KeyIndex`](crate::KeyIndex) that supports lock-free probing hands
//! out an [`IndexReader`] via [`KeyIndex::reader`](crate::KeyIndex::reader).
//! The reader is detached from the writer-side index object: it stays
//! valid for the life of the store, across crash recovery and model swaps,
//! because it holds either a shared atomic table ([`AtomicTable`]) or pure
//! geometry that probes the device cells through a [`CellView`].
//!
//! Reads racing the single writer may observe **torn or stale** state;
//! the store's per-shard seqlock counter brackets every mutation, so a
//! reader validates the counter after the probe and retries on change.

use std::sync::Arc;

use pnw_nvm_sim::CellView;

use crate::atomic::AtomicTable;
use crate::path_hash::PathHashReader;

/// A lock-free, wait-free-probing read handle for one shard's index.
#[derive(Debug, Clone)]
pub enum IndexReader {
    /// DRAM placement: probes a shared atomic open-addressing table.
    Atomic(Arc<AtomicTable>),
    /// NVM placement: probes the Path Hashing buckets straight out of the
    /// device cells (geometry only — no shared mutable state).
    PathHash(PathHashReader),
}

impl IndexReader {
    /// Probes for `key` without taking any lock. `view` is the device's
    /// cell view (used by NVM-resident placements; ignored by DRAM ones).
    ///
    /// The result may be stale or torn relative to a racing writer; the
    /// caller's seqlock validation decides whether to trust it.
    #[inline]
    pub fn lookup(&self, view: &CellView, key: u64) -> Option<u64> {
        match self {
            IndexReader::Atomic(table) => table.probe(key),
            IndexReader::PathHash(r) => r.lookup(view, key),
        }
    }
}
