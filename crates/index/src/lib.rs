//! # pnw-index — key → physical-address indexes
//!
//! PNW's hash index (§V-A.3) maps each key to the NVM location holding its
//! value. The paper discusses two placements and we implement both:
//!
//! * [`DramHashIndex`] — the Figure 2a architecture for small keys: the
//!   index lives in DRAM, costs no NVM bit flips, but must be rebuilt after
//!   a crash.
//! * [`PathHashIndex`] — the Figure 2b architecture: a write-friendly
//!   *Path Hashing* table (Zuo & Hua, TPDS 2017) persisted in NVM. Path
//!   hashing resolves collisions by walking up an inverted complete binary
//!   tree of buckets instead of rehashing or evicting, so an insertion
//!   writes exactly one bucket — the property that makes it the paper's
//!   pick for the worst-case "index on PCM" evaluation (§V-A.3).
//!
//! Deletions follow the paper's flag-bit protocol: *"whenever we receive a
//! delete request, we can reset its corresponding bit in the hash index …
//! instead of deleting it"* — a one-bit NVM update.

#![warn(missing_docs)]

pub mod atomic;
pub mod dram;
pub mod path_hash;
pub mod reader;
pub mod traits;

pub use atomic::{AtomicHashIndex, AtomicTable};
pub use dram::DramHashIndex;
pub use path_hash::{PathHashIndex, PathHashReader};
pub use reader::IndexReader;
pub use traits::{IndexError, KeyIndex};
