//! A DRAM hash index whose slots are atomics, so a single writer can
//! mutate it **in place** while lock-free readers probe it concurrently.
//!
//! This is the DRAM-placement counterpart of the seqlock read view: the
//! classic `HashMap` index rehashes on growth, which would move memory out
//! from under a racing reader. [`AtomicHashIndex`] instead uses open
//! addressing over a fixed power-of-two slot array sized at ≥ 2× the
//! store's bucket capacity — it **never rehashes**, so the [`AtomicTable`]
//! published to readers stays valid for the life of the store (including
//! across crash recovery, which clears and repopulates the same table).
//!
//! Concurrency contract:
//!
//! * exactly one writer at a time (the store's per-shard single-writer
//!   discipline guarantees this);
//! * readers call [`AtomicTable::probe`] with no lock; a probe racing a
//!   writer may return a stale or torn result — the enclosing seqlock
//!   validation in the store detects this and retries;
//! * deletion uses backward-shift compaction (no tombstones), so probe
//!   chains never degrade over time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pnw_nvm_sim::NvmDevice;

use crate::traits::{IndexError, KeyIndex};

/// Sentinel meaning "slot empty". Keys may be any `u64` (including 0 and
/// `u64::MAX`), so occupancy state lives in the address word: device byte
/// addresses are always far below `u64::MAX`.
const EMPTY_ADDR: u64 = u64::MAX;

struct Slot {
    key: AtomicU64,
    addr: AtomicU64,
}

/// The fixed-size slot array shared between the writer-side
/// [`AtomicHashIndex`] and lock-free readers.
pub struct AtomicTable {
    mask: usize,
    slots: Box<[Slot]>,
}

impl std::fmt::Debug for AtomicTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AtomicTable")
            .field("slots", &self.slots.len())
            .finish()
    }
}

#[inline]
fn splitmix64(key: u64) -> u64 {
    let mut x = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

impl AtomicTable {
    fn new(slot_count: usize) -> Self {
        debug_assert!(slot_count.is_power_of_two());
        let slots = (0..slot_count)
            .map(|_| Slot {
                key: AtomicU64::new(0),
                addr: AtomicU64::new(EMPTY_ADDR),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        AtomicTable {
            mask: slot_count - 1,
            slots,
        }
    }

    #[inline]
    fn home(&self, key: u64) -> usize {
        splitmix64(key) as usize & self.mask
    }

    /// Lock-free probe: returns the address mapped to `key`, if any.
    ///
    /// Safe to call concurrently with the single writer; a probe racing a
    /// mutation may return a result that is stale or torn relative to the
    /// store's cells — callers validate through the seqlock counter and
    /// retry. In quiescent state the result is exact.
    pub fn probe(&self, key: u64) -> Option<u64> {
        let mut i = self.home(key);
        // Bounded scan: linear probing terminates at the first empty slot;
        // the explicit bound keeps a reader finite even if it races a
        // backward-shift that transiently fills its stop condition.
        for _ in 0..self.slots.len() {
            let addr = self.slots[i].addr.load(Ordering::Acquire);
            if addr == EMPTY_ADDR {
                return None;
            }
            if self.slots[i].key.load(Ordering::Relaxed) == key {
                return Some(addr);
            }
            i = (i + 1) & self.mask;
        }
        None
    }
}

/// Writer-side handle: an open-addressing hash index over an
/// [`AtomicTable`]. Implements [`KeyIndex`] (ignoring the device — the
/// table lives in DRAM) and hands the shared table to lock-free readers
/// via [`KeyIndex::reader`].
#[derive(Debug)]
pub struct AtomicHashIndex {
    table: Arc<AtomicTable>,
    live: usize,
}

impl AtomicHashIndex {
    /// Creates an index able to hold `capacity` entries. The slot array is
    /// sized at `(2 * capacity).next_power_of_two()` (load factor ≤ 50%)
    /// and never grows.
    pub fn with_capacity(capacity: usize) -> Self {
        let slot_count = (capacity.max(1) * 2).next_power_of_two().max(8);
        AtomicHashIndex {
            table: Arc::new(AtomicTable::new(slot_count)),
            live: 0,
        }
    }

    /// The shared slot array (what readers probe).
    pub fn table(&self) -> Arc<AtomicTable> {
        Arc::clone(&self.table)
    }

    /// Writer-side exact probe for `key`'s slot.
    fn slot_of(&self, key: u64) -> Option<usize> {
        let t = &self.table;
        let mut i = t.home(key);
        for _ in 0..t.slots.len() {
            let addr = t.slots[i].addr.load(Ordering::Relaxed);
            if addr == EMPTY_ADDR {
                return None;
            }
            if t.slots[i].key.load(Ordering::Relaxed) == key {
                return Some(i);
            }
            i = (i + 1) & t.mask;
        }
        None
    }
}

impl KeyIndex for AtomicHashIndex {
    fn name(&self) -> &'static str {
        "atomic-hash"
    }

    fn insert(&mut self, _dev: &mut NvmDevice, key: u64, addr: u64) -> Result<(), IndexError> {
        debug_assert_ne!(addr, EMPTY_ADDR, "EMPTY_ADDR is reserved");
        let t = &self.table;
        let mut i = t.home(key);
        for _ in 0..t.slots.len() {
            let a = t.slots[i].addr.load(Ordering::Relaxed);
            if a == EMPTY_ADDR {
                // New entry: publish the key before the address — a reader
                // that observes the address (Acquire) must also see the key.
                t.slots[i].key.store(key, Ordering::Relaxed);
                t.slots[i].addr.store(addr, Ordering::Release);
                self.live += 1;
                return Ok(());
            }
            if t.slots[i].key.load(Ordering::Relaxed) == key {
                t.slots[i].addr.store(addr, Ordering::Release);
                return Ok(());
            }
            i = (i + 1) & t.mask;
        }
        Err(IndexError::Full)
    }

    fn get(&mut self, _dev: &mut NvmDevice, key: u64) -> Result<Option<u64>, IndexError> {
        Ok(self
            .slot_of(key)
            .map(|i| self.table.slots[i].addr.load(Ordering::Relaxed)))
    }

    fn lookup(&self, _dev: &NvmDevice, key: u64) -> Result<Option<u64>, IndexError> {
        Ok(self.table.probe(key))
    }

    fn remove(&mut self, _dev: &mut NvmDevice, key: u64) -> Result<Option<u64>, IndexError> {
        let Some(hole) = self.slot_of(key) else {
            return Ok(None);
        };
        let t = &self.table;
        let old = t.slots[hole].addr.load(Ordering::Relaxed);
        // Backward-shift compaction: walk the probe chain after the hole
        // and move back any entry whose home position precedes (or is) the
        // hole, so lookups never need tombstones.
        let mut i = hole;
        let mut j = hole;
        loop {
            j = (j + 1) & t.mask;
            let aj = t.slots[j].addr.load(Ordering::Relaxed);
            if aj == EMPTY_ADDR {
                break;
            }
            let kj = t.slots[j].key.load(Ordering::Relaxed);
            let home = t.home(kj);
            // Entry at j may fill hole i iff its home is cyclically no
            // later than i (i.e. it lies on a probe chain through i).
            if (j.wrapping_sub(home) & t.mask) >= (j.wrapping_sub(i) & t.mask) {
                t.slots[i].key.store(kj, Ordering::Relaxed);
                t.slots[i].addr.store(aj, Ordering::Release);
                i = j;
            }
        }
        t.slots[i].addr.store(EMPTY_ADDR, Ordering::Release);
        self.live -= 1;
        Ok(Some(old))
    }

    fn clear(&mut self, _dev: &mut NvmDevice) -> Result<(), IndexError> {
        for s in self.table.slots.iter() {
            s.addr.store(EMPTY_ADDR, Ordering::Release);
            s.key.store(0, Ordering::Relaxed);
        }
        self.live = 0;
        Ok(())
    }

    fn len(&self) -> usize {
        self.live
    }

    fn reader(&self) -> Option<crate::reader::IndexReader> {
        Some(crate::reader::IndexReader::Atomic(self.table()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnw_nvm_sim::NvmConfig;

    fn dev() -> NvmDevice {
        NvmDevice::new(NvmConfig::default().with_size(64))
    }

    #[test]
    fn basic_crud() {
        let mut d = dev();
        let mut idx = AtomicHashIndex::with_capacity(16);
        idx.insert(&mut d, 1, 100).unwrap();
        idx.insert(&mut d, 2, 200).unwrap();
        assert_eq!(idx.get(&mut d, 1).unwrap(), Some(100));
        assert_eq!(idx.lookup(&d, 2).unwrap(), Some(200));
        assert_eq!(idx.len(), 2);
        idx.insert(&mut d, 1, 150).unwrap();
        assert_eq!(idx.get(&mut d, 1).unwrap(), Some(150));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.remove(&mut d, 1).unwrap(), Some(150));
        assert_eq!(idx.get(&mut d, 1).unwrap(), None);
        assert_eq!(idx.remove(&mut d, 1).unwrap(), None);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn zero_and_max_keys_are_valid() {
        let mut d = dev();
        let mut idx = AtomicHashIndex::with_capacity(8);
        idx.insert(&mut d, 0, 11).unwrap();
        idx.insert(&mut d, u64::MAX, 22).unwrap();
        assert_eq!(idx.lookup(&d, 0).unwrap(), Some(11));
        assert_eq!(idx.lookup(&d, u64::MAX).unwrap(), Some(22));
        assert_eq!(idx.remove(&mut d, 0).unwrap(), Some(11));
        assert_eq!(idx.lookup(&d, 0).unwrap(), None);
        assert_eq!(idx.lookup(&d, u64::MAX).unwrap(), Some(22));
    }

    #[test]
    fn never_rehashes_table_identity_is_stable() {
        let mut d = dev();
        let mut idx = AtomicHashIndex::with_capacity(64);
        let table = idx.table();
        for k in 0..64u64 {
            idx.insert(&mut d, k, k * 8).unwrap();
        }
        idx.clear(&mut d).unwrap();
        for k in 0..64u64 {
            idx.insert(&mut d, k, k * 16).unwrap();
        }
        // Probes through the pre-churn Arc still see current state.
        assert_eq!(table.probe(10), Some(160));
        assert_eq!(idx.len(), 64);
    }

    #[test]
    fn reports_full_past_slot_count() {
        let mut d = dev();
        // capacity 4 -> 8 slots.
        let mut idx = AtomicHashIndex::with_capacity(4);
        let mut stored = 0u64;
        let mut full = false;
        for k in 0..16u64 {
            match idx.insert(&mut d, k, k) {
                Ok(()) => stored += 1,
                Err(IndexError::Full) => {
                    full = true;
                    break;
                }
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(stored, 8);
        assert!(full);
    }

    #[test]
    fn backward_shift_preserves_probe_chains() {
        let mut d = dev();
        let mut idx = AtomicHashIndex::with_capacity(128);
        // Insert enough keys that probe chains form, then delete half in
        // an order that exercises the shift, and verify every survivor.
        for k in 0..128u64 {
            idx.insert(&mut d, k, k + 1000).unwrap();
        }
        for k in (0..128u64).step_by(2) {
            assert_eq!(idx.remove(&mut d, k).unwrap(), Some(k + 1000), "key {k}");
        }
        for k in 0..128u64 {
            let want = if k % 2 == 0 { None } else { Some(k + 1000) };
            assert_eq!(idx.lookup(&d, k).unwrap(), want, "key {k}");
            assert_eq!(idx.get(&mut d, k).unwrap(), want, "key {k}");
        }
        assert_eq!(idx.len(), 64);
    }

    #[test]
    fn matches_hashmap_model() {
        use std::collections::HashMap;
        let mut d = dev();
        let mut idx = AtomicHashIndex::with_capacity(64);
        let mut model: HashMap<u64, u64> = HashMap::new();
        // Deterministic pseudo-random op sequence.
        let mut x = 0x1234_5678_9ABC_DEF0u64;
        for _ in 0..4000 {
            x = splitmix64(x);
            let key = x % 48;
            match x % 3 {
                0 => {
                    idx.insert(&mut d, key, x >> 8).unwrap();
                    model.insert(key, x >> 8);
                }
                1 => {
                    assert_eq!(idx.get(&mut d, key).unwrap(), model.get(&key).copied());
                }
                _ => {
                    assert_eq!(idx.remove(&mut d, key).unwrap(), model.remove(&key));
                }
            }
            assert_eq!(idx.len(), model.len());
        }
    }
}
