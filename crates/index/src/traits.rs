//! The [`KeyIndex`] trait shared by DRAM and NVM index implementations.

use pnw_nvm_sim::{NvmDevice, NvmError};

/// Index operation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// No bucket available for the key (the table needs to grow).
    Full,
    /// Underlying device error.
    Nvm(NvmError),
}

impl From<NvmError> for IndexError {
    fn from(e: NvmError) -> Self {
        IndexError::Nvm(e)
    }
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Full => write!(f, "index is full"),
            IndexError::Nvm(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for IndexError {}

/// A key → address map whose persistent variants charge their writes to an
/// [`NvmDevice`]. DRAM implementations ignore the device parameter.
///
/// The trait is object-safe and `Send + Sync`: a sharded store holds one
/// boxed index per shard behind that shard's lock, and concurrent readers
/// go through [`KeyIndex::lookup`], which needs only shared references.
pub trait KeyIndex: Send + Sync {
    /// Implementation name for experiment output.
    fn name(&self) -> &'static str;

    /// Inserts or updates `key → addr`.
    fn insert(&mut self, dev: &mut NvmDevice, key: u64, addr: u64) -> Result<(), IndexError>;

    /// Looks up a key.
    fn get(&mut self, dev: &mut NvmDevice, key: u64) -> Result<Option<u64>, IndexError>;

    /// Looks up a key through shared references only.
    ///
    /// NVM implementations probe via [`NvmDevice::peek`], so a lookup
    /// records no device statistics and takes no write lock — this is the
    /// read path of the concurrent store (GETs *"do not go through the
    /// model or the dynamic address pool"*, §VI-E, and with this method
    /// they do not serialize on the device either).
    fn lookup(&self, dev: &NvmDevice, key: u64) -> Result<Option<u64>, IndexError>;

    /// Removes a key, returning its previous address. NVM implementations
    /// reset the entry's valid flag (a 1-bit write) rather than erasing it.
    fn remove(&mut self, dev: &mut NvmDevice, key: u64) -> Result<Option<u64>, IndexError>;

    /// Removes every entry, keeping the index's backing storage (and any
    /// [`IndexReader`](crate::IndexReader) handed out earlier) valid.
    /// Recovery uses this to rebuild in place so lock-free readers created
    /// before the crash keep probing the same table afterwards.
    fn clear(&mut self, dev: &mut NvmDevice) -> Result<(), IndexError>;

    /// Number of live entries.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A lock-free read handle for this index, if the implementation
    /// supports concurrent probing (see [`crate::IndexReader`]). `None`
    /// means readers must fall back to locked [`KeyIndex::lookup`] calls.
    fn reader(&self) -> Option<crate::IndexReader> {
        None
    }
}

/// Compile-time proof that [`KeyIndex`] stays object-safe (the sharded
/// store boxes one per shard).
const _: fn(&dyn KeyIndex) = |_| {};
