//! Path Hashing (Zuo & Hua, "A write-friendly and cache-optimized hashing
//! scheme for non-volatile memory systems", TPDS 2017) — the paper's NVM
//! index (§V-A.3).
//!
//! The table is an inverted complete binary tree. Level 0 holds `L` leaf
//! buckets; level `l` holds `L >> l`. A key hashes to two leaf positions;
//! the buckets it may occupy are those two leaves plus their ancestors
//! (`leaf >> l` at level `l`). Insertion writes the first empty bucket along
//! the two paths — no rehashing, no evictions, so each insert costs exactly
//! one bucket write. Deletion resets the bucket's valid flag: a single bit.
//!
//! Bucket layout (24 bytes, word aligned):
//!
//! ```text
//! [ flags: u8 | pad ×7 | key: u64 LE | addr: u64 LE ]
//! ```

use pnw_nvm_sim::{CellView, NvmDevice, Region, WriteMode};

use crate::traits::{IndexError, KeyIndex};

/// Bytes per bucket.
pub const BUCKET_BYTES: usize = 24;
const FLAG_VALID: u8 = 1;

#[inline]
fn h1(key: u64) -> u64 {
    // splitmix64 finalizer.
    let mut x = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[inline]
fn h2(key: u64) -> u64 {
    // Murmur3-style finalizer with different constants.
    let mut x = key.wrapping_mul(0xFF51_AFD7_ED55_8CCD) ^ 0xDEAD_BEEF_CAFE_F00D;
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

/// The pure geometry of a path-hashing table: region placement, leaf
/// count and per-level offsets. Doubles as the **lock-free read handle**
/// for the NVM index placement — it holds no mutable state, so it stays
/// valid forever and can probe the persistent buckets straight out of a
/// [`CellView`] while the writer mutates them (torn reads are resolved by
/// the store's seqlock validation).
#[derive(Debug, Clone)]
pub struct PathHashReader {
    region: Region,
    /// Leaf count (power of two).
    leaves: usize,
    /// Number of tree levels (`log2(leaves) + 1`).
    levels: usize,
    /// Per-level bucket offsets into the region.
    level_offsets: Vec<usize>,
}

impl PathHashReader {
    /// Byte address of the bucket at `level` on the path from `leaf`.
    #[inline]
    fn bucket_addr(&self, leaf: usize, level: usize) -> usize {
        let pos = leaf >> level;
        self.region
            .at((self.level_offsets[level] + pos) * BUCKET_BYTES)
    }

    /// Iterates candidate bucket addresses for a key: both paths, level by
    /// level (leaves first — the cache-optimized probe order of the paper).
    fn candidates(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        let l1 = (h1(key) as usize) & (self.leaves - 1);
        let l2 = (h2(key) as usize) & (self.leaves - 1);
        (0..self.levels).flat_map(move |lvl| {
            let a = self.bucket_addr(l1, lvl);
            let b = self.bucket_addr(l2, lvl);
            // On shared upper levels the two paths can coincide.
            if a == b {
                vec![a]
            } else {
                vec![a, b]
            }
        })
    }

    #[inline]
    fn probe_bucket(&self, view: &CellView, addr: usize, key: u64) -> Option<Option<u64>> {
        let mut buf = [0u8; BUCKET_BYTES];
        if !view.read_into(addr, &mut buf) {
            return Some(None); // out of bounds: treat as absent
        }
        let flags = buf[0];
        let k = u64::from_le_bytes(buf[8..16].try_into().unwrap());
        if flags & FLAG_VALID != 0 && k == key {
            let val = u64::from_le_bytes(buf[16..24].try_into().unwrap());
            return Some(Some(val));
        }
        None // keep probing
    }

    /// Lock-free probe for `key` through the device's cell view.
    ///
    /// Allocation-free; a probe racing the writer may return a stale or
    /// torn result — the caller's seqlock validation decides.
    pub fn lookup(&self, view: &CellView, key: u64) -> Option<u64> {
        let l1 = (h1(key) as usize) & (self.leaves - 1);
        let l2 = (h2(key) as usize) & (self.leaves - 1);
        for lvl in 0..self.levels {
            let a = self.bucket_addr(l1, lvl);
            if let Some(hit) = self.probe_bucket(view, a, key) {
                return hit;
            }
            let b = self.bucket_addr(l2, lvl);
            if b != a {
                if let Some(hit) = self.probe_bucket(view, b, key) {
                    return hit;
                }
            }
        }
        None
    }
}

/// A persistent path-hashing index over a region of an NVM device.
#[derive(Debug, Clone)]
pub struct PathHashIndex {
    geom: PathHashReader,
    live: usize,
}

impl PathHashIndex {
    /// Total buckets needed for `leaves` leaf positions.
    pub fn buckets_for(leaves: usize) -> usize {
        assert!(leaves.is_power_of_two(), "leaf count must be a power of two");
        2 * leaves - 1
    }

    /// Region size in bytes needed for `leaves` leaf positions.
    pub fn region_bytes_for(leaves: usize) -> usize {
        Self::buckets_for(leaves) * BUCKET_BYTES
    }

    /// Creates a fresh index over `region`, zeroing nothing (a zeroed device
    /// already reads as all-invalid buckets).
    ///
    /// # Panics
    /// Panics if the region is too small or `leaves` is not a power of two.
    pub fn create(region: Region, leaves: usize) -> Self {
        assert!(
            region.len >= Self::region_bytes_for(leaves),
            "region too small: need {} bytes, have {}",
            Self::region_bytes_for(leaves),
            region.len
        );
        let levels = leaves.trailing_zeros() as usize + 1;
        let mut level_offsets = Vec::with_capacity(levels);
        let mut off = 0usize;
        for l in 0..levels {
            level_offsets.push(off);
            off += leaves >> l;
        }
        PathHashIndex {
            geom: PathHashReader {
                region,
                leaves,
                levels,
                level_offsets,
            },
            live: 0,
        }
    }

    /// Reopens an existing index after a crash, recounting live entries from
    /// the persistent flags (the index itself needs no rebuild — that is the
    /// point of placing it in NVM, §V-A.3).
    pub fn recover(region: Region, leaves: usize, dev: &NvmDevice) -> Self {
        let mut idx = Self::create(region, leaves);
        let mut live = 0;
        for b in 0..Self::buckets_for(leaves) {
            let addr = idx.geom.region.at(b * BUCKET_BYTES);
            if let Ok(bytes) = dev.peek(addr, 1) {
                if bytes[0] & FLAG_VALID != 0 {
                    live += 1;
                }
            }
        }
        idx.live = live;
        idx
    }

    /// Leaf capacity.
    pub fn leaves(&self) -> usize {
        self.geom.leaves
    }

    /// A detached lock-free read handle (geometry only).
    pub fn reader_handle(&self) -> PathHashReader {
        self.geom.clone()
    }

    fn candidates(&self, key: u64) -> impl Iterator<Item = usize> + '_ {
        self.geom.candidates(key)
    }

    /// Every live `(key, addr)` mapping, in table order. Reads through
    /// [`NvmDevice::peek`] (no stats, shared access) — stores whose data
    /// zone holds values only enumerate their key set through this for
    /// range scans.
    pub fn entries(&self, dev: &NvmDevice) -> Result<Vec<(u64, u64)>, IndexError> {
        let mut out = Vec::with_capacity(self.live);
        for b in 0..Self::buckets_for(self.geom.leaves) {
            let addr = self.geom.region.at(b * BUCKET_BYTES);
            let (flags, key, val) = Self::peek_bucket(dev, addr)?;
            if flags & FLAG_VALID != 0 {
                out.push((key, val));
            }
        }
        Ok(out)
    }

    fn read_bucket(dev: &mut NvmDevice, addr: usize) -> Result<(u8, u64, u64), IndexError> {
        let bytes = dev.read(addr, BUCKET_BYTES)?;
        let flags = bytes[0];
        let key = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let val = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        Ok((flags, key, val))
    }

    /// Reads a bucket through [`NvmDevice::peek`] — no stats, no write lock.
    fn peek_bucket(dev: &NvmDevice, addr: usize) -> Result<(u8, u64, u64), IndexError> {
        let bytes = dev.peek(addr, BUCKET_BYTES)?;
        let flags = bytes[0];
        let key = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        let val = u64::from_le_bytes(bytes[16..24].try_into().unwrap());
        Ok((flags, key, val))
    }

    fn write_bucket(
        dev: &mut NvmDevice,
        addr: usize,
        key: u64,
        val: u64,
    ) -> Result<(), IndexError> {
        let mut buf = [0u8; BUCKET_BYTES];
        buf[0] = FLAG_VALID;
        buf[8..16].copy_from_slice(&key.to_le_bytes());
        buf[16..24].copy_from_slice(&val.to_le_bytes());
        dev.write(addr, &buf, WriteMode::Diff)?;
        Ok(())
    }

    /// Finds the bucket currently holding `key`, if any.
    fn find(&self, dev: &mut NvmDevice, key: u64) -> Result<Option<usize>, IndexError> {
        let addrs: Vec<usize> = self.candidates(key).collect();
        for addr in addrs {
            let (flags, k, _) = Self::read_bucket(dev, addr)?;
            if flags & FLAG_VALID != 0 && k == key {
                return Ok(Some(addr));
            }
        }
        Ok(None)
    }
}

impl KeyIndex for PathHashIndex {
    fn name(&self) -> &'static str {
        "path-hash"
    }

    fn insert(&mut self, dev: &mut NvmDevice, key: u64, addr: u64) -> Result<(), IndexError> {
        // Update in place if present.
        if let Some(baddr) = self.find(dev, key)? {
            Self::write_bucket(dev, baddr, key, addr)?;
            return Ok(());
        }
        let addrs: Vec<usize> = self.candidates(key).collect();
        for baddr in addrs {
            let (flags, _, _) = Self::read_bucket(dev, baddr)?;
            if flags & FLAG_VALID == 0 {
                Self::write_bucket(dev, baddr, key, addr)?;
                self.live += 1;
                return Ok(());
            }
        }
        Err(IndexError::Full)
    }

    fn get(&mut self, dev: &mut NvmDevice, key: u64) -> Result<Option<u64>, IndexError> {
        match self.find(dev, key)? {
            Some(baddr) => {
                let (_, _, val) = Self::read_bucket(dev, baddr)?;
                Ok(Some(val))
            }
            None => Ok(None),
        }
    }

    fn lookup(&self, dev: &NvmDevice, key: u64) -> Result<Option<u64>, IndexError> {
        // Unlike `find`, no `&mut dev` conflict forces collecting the
        // candidates — probe straight off the iterator.
        for addr in self.candidates(key) {
            let (flags, k, val) = Self::peek_bucket(dev, addr)?;
            if flags & FLAG_VALID != 0 && k == key {
                return Ok(Some(val));
            }
        }
        Ok(None)
    }

    fn remove(&mut self, dev: &mut NvmDevice, key: u64) -> Result<Option<u64>, IndexError> {
        match self.find(dev, key)? {
            Some(baddr) => {
                let (_, _, val) = Self::read_bucket(dev, baddr)?;
                // Reset the valid flag only: a single-bit NVM update.
                dev.write(baddr, &[0u8], WriteMode::Diff)?;
                self.live -= 1;
                Ok(Some(val))
            }
            None => Ok(None),
        }
    }

    fn clear(&mut self, dev: &mut NvmDevice) -> Result<(), IndexError> {
        for b in 0..Self::buckets_for(self.geom.leaves) {
            let addr = self.geom.region.at(b * BUCKET_BYTES);
            let flags = dev.peek(addr, 1)?[0];
            if flags & FLAG_VALID != 0 {
                dev.write(addr, &[0u8], WriteMode::Diff)?;
            }
        }
        self.live = 0;
        Ok(())
    }

    fn len(&self) -> usize {
        self.live
    }

    fn reader(&self) -> Option<crate::reader::IndexReader> {
        Some(crate::reader::IndexReader::PathHash(self.reader_handle()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnw_nvm_sim::{NvmConfig, RegionAllocator};

    fn setup(leaves: usize) -> (NvmDevice, PathHashIndex) {
        let bytes = PathHashIndex::region_bytes_for(leaves);
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(bytes + 4096));
        let mut alloc = RegionAllocator::new(dev.size());
        let region = alloc.alloc(bytes, 64).unwrap();
        let idx = PathHashIndex::create(region, leaves);
        let _ = &mut dev;
        (dev, idx)
    }

    #[test]
    fn insert_get_remove() {
        let (mut dev, mut idx) = setup(64);
        idx.insert(&mut dev, 42, 1000).unwrap();
        assert_eq!(idx.get(&mut dev, 42).unwrap(), Some(1000));
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.remove(&mut dev, 42).unwrap(), Some(1000));
        assert_eq!(idx.get(&mut dev, 42).unwrap(), None);
        assert_eq!(idx.len(), 0);
    }

    #[test]
    fn update_in_place_does_not_grow() {
        let (mut dev, mut idx) = setup(64);
        idx.insert(&mut dev, 7, 1).unwrap();
        idx.insert(&mut dev, 7, 2).unwrap();
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.get(&mut dev, 7).unwrap(), Some(2));
    }

    #[test]
    fn fills_well_past_leaf_collisions() {
        // Path hashing's point: load factors well above what two-choice
        // leaf-only hashing would allow. 64 leaves -> 127 buckets.
        let (mut dev, mut idx) = setup(64);
        let mut stored = 0;
        for k in 0..100u64 {
            match idx.insert(&mut dev, k, k * 2) {
                Ok(()) => stored += 1,
                Err(IndexError::Full) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert!(stored >= 70, "only stored {stored}/100");
        for k in 0..stored as u64 {
            assert_eq!(idx.get(&mut dev, k).unwrap(), Some(k * 2), "key {k}");
        }
    }

    #[test]
    fn delete_costs_one_bit() {
        let (mut dev, mut idx) = setup(64);
        idx.insert(&mut dev, 9, 90).unwrap();
        let before = dev.stats().totals.bit_flips;
        idx.remove(&mut dev, 9).unwrap();
        let delta = dev.stats().totals.bit_flips - before;
        assert_eq!(delta, 1, "delete must reset exactly the valid flag bit");
    }

    #[test]
    fn survives_crash_and_recover() {
        let (mut dev, mut idx) = setup(64);
        for k in 0..30u64 {
            idx.insert(&mut dev, k, k + 1000).unwrap();
        }
        idx.remove(&mut dev, 5).unwrap();
        let region = idx.geom.region;
        dev.crash();
        dev.recover();
        let mut idx2 = PathHashIndex::recover(region, 64, &dev);
        assert_eq!(idx2.len(), 29);
        assert_eq!(idx2.get(&mut dev, 10).unwrap(), Some(1010));
        assert_eq!(idx2.get(&mut dev, 5).unwrap(), None);
    }

    #[test]
    fn lookup_matches_get_without_read_stats() {
        let (mut dev, mut idx) = setup(64);
        for k in 0..20u64 {
            idx.insert(&mut dev, k, k + 500).unwrap();
        }
        let reads_before = dev.stats().read_ops;
        for k in 0..25u64 {
            let via_lookup = idx.lookup(&dev, k).unwrap();
            assert_eq!(via_lookup, idx.get(&mut dev, k).unwrap(), "key {k}");
        }
        // get() above recorded reads; lookup() itself must not have.
        let gets_only = dev.stats().read_ops - reads_before;
        assert!(gets_only > 0);
        let reads_now = dev.stats().read_ops;
        idx.lookup(&dev, 3).unwrap();
        assert_eq!(dev.stats().read_ops, reads_now);
    }

    #[test]
    fn usable_as_boxed_trait_object() {
        let (mut dev, idx) = setup(32);
        let mut boxed: Box<dyn KeyIndex> = Box::new(idx);
        boxed.insert(&mut dev, 1, 10).unwrap();
        assert_eq!(boxed.lookup(&dev, 1).unwrap(), Some(10));
        assert_eq!(boxed.name(), "path-hash");
    }

    #[test]
    fn missing_key_is_none() {
        let (mut dev, mut idx) = setup(32);
        assert_eq!(idx.get(&mut dev, 999).unwrap(), None);
        assert_eq!(idx.remove(&mut dev, 999).unwrap(), None);
    }

    #[test]
    fn full_table_reports_full() {
        let (mut dev, mut idx) = setup(2); // 3 buckets total
        let mut errs = 0;
        for k in 0..10u64 {
            if matches!(idx.insert(&mut dev, k, k), Err(IndexError::Full)) {
                errs += 1;
            }
        }
        assert!(errs > 0);
        assert!(idx.len() <= 3);
    }

    #[test]
    fn region_sizing() {
        assert_eq!(PathHashIndex::buckets_for(8), 15);
        assert_eq!(PathHashIndex::region_bytes_for(8), 15 * 24);
    }
}

#[cfg(test)]
mod proptests {
    use std::collections::HashMap;

    use proptest::prelude::*;

    use super::*;
    use pnw_nvm_sim::{NvmConfig, NvmDevice, RegionAllocator};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Path hashing behaves like a hash map for any op sequence that
        /// stays under the table's guaranteed-placeable load.
        #[test]
        fn matches_hashmap(ops in proptest::collection::vec(
            (0u8..3, 0u64..24, any::<u64>()), 1..100)) {
            let leaves = 64usize;
            let bytes = PathHashIndex::region_bytes_for(leaves);
            let mut dev = NvmDevice::new(NvmConfig::default().with_size(bytes + 128));
            let mut alloc = RegionAllocator::new(dev.size());
            let region = alloc.alloc(bytes, 64).unwrap();
            let mut idx = PathHashIndex::create(region, leaves);
            let mut model: HashMap<u64, u64> = HashMap::new();

            for (op, key, val) in ops {
                match op {
                    0 => {
                        // 24 keys over 127 buckets: never fills.
                        idx.insert(&mut dev, key, val).expect("low load");
                        model.insert(key, val);
                    }
                    1 => {
                        prop_assert_eq!(
                            idx.get(&mut dev, key).expect("ok"),
                            model.get(&key).copied()
                        );
                    }
                    _ => {
                        prop_assert_eq!(
                            idx.remove(&mut dev, key).expect("ok"),
                            model.remove(&key)
                        );
                    }
                }
                prop_assert_eq!(idx.len(), model.len());
            }
        }

        /// Recovery from the persistent image preserves exactly the live
        /// entries.
        #[test]
        fn recovery_is_lossless(keys in proptest::collection::btree_set(0u64..64, 1..32)) {
            let leaves = 128usize;
            let bytes = PathHashIndex::region_bytes_for(leaves);
            let mut dev = NvmDevice::new(NvmConfig::default().with_size(bytes + 128));
            let mut alloc = RegionAllocator::new(dev.size());
            let region = alloc.alloc(bytes, 64).unwrap();
            let mut idx = PathHashIndex::create(region, leaves);
            for &k in &keys {
                idx.insert(&mut dev, k, k * 10).expect("low load");
            }
            let mut idx2 = PathHashIndex::recover(region, leaves, &dev);
            prop_assert_eq!(idx2.len(), keys.len());
            for &k in &keys {
                prop_assert_eq!(idx2.get(&mut dev, k).expect("ok"), Some(k * 10));
            }
        }
    }
}
