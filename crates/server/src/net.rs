//! Transport: one [`Conn`] type over TCP and Unix-domain sockets, and the
//! [`ServerAddr`] spelling (`tcp://host:port` / `unix:///path`) shared by
//! the server binary, the client library and the load generator.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::Duration;

/// Where a server listens / a client connects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerAddr {
    /// A TCP address (`host:port`). Port 0 lets the OS pick; the server
    /// reports the bound port.
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl ServerAddr {
    /// Parses `tcp://host:port` or `unix:///path`.
    pub fn parse(s: &str) -> Result<ServerAddr, String> {
        if let Some(rest) = s.strip_prefix("tcp://") {
            if rest.is_empty() {
                return Err("tcp:// needs host:port".into());
            }
            Ok(ServerAddr::Tcp(rest.to_string()))
        } else if let Some(rest) = s.strip_prefix("unix://") {
            if rest.is_empty() {
                return Err("unix:// needs a path".into());
            }
            Ok(ServerAddr::Unix(PathBuf::from(rest)))
        } else {
            Err(format!("address '{s}' must start with tcp:// or unix://"))
        }
    }

    /// Connects a client stream to this address.
    pub fn connect(&self) -> std::io::Result<Conn> {
        match self {
            ServerAddr::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            ServerAddr::Unix(path) => Ok(Conn::Unix(UnixStream::connect(path)?)),
        }
    }
}

impl std::fmt::Display for ServerAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerAddr::Tcp(a) => write!(f, "tcp://{a}"),
            ServerAddr::Unix(p) => write!(f, "unix://{}", p.display()),
        }
    }
}

/// One bidirectional byte stream: a TCP or Unix-domain socket.
#[derive(Debug)]
pub enum Conn {
    /// A TCP connection.
    Tcp(TcpStream),
    /// A Unix-domain connection.
    Unix(UnixStream),
}

impl Conn {
    /// Sets (or clears) the read timeout.
    pub fn set_read_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(d),
            Conn::Unix(s) => s.set_read_timeout(d),
        }
    }

    /// Sets (or clears) the write timeout.
    pub fn set_write_timeout(&self, d: Option<Duration>) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_write_timeout(d),
            Conn::Unix(s) => s.set_write_timeout(d),
        }
    }

    /// Shuts down both directions (a hard close the peer observes as EOF).
    pub fn shutdown(&self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            Conn::Unix(s) => s.shutdown(std::net::Shutdown::Both),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_parsing() {
        assert_eq!(
            ServerAddr::parse("tcp://127.0.0.1:9000").unwrap(),
            ServerAddr::Tcp("127.0.0.1:9000".into())
        );
        assert_eq!(
            ServerAddr::parse("unix:///tmp/pnw.sock").unwrap(),
            ServerAddr::Unix(PathBuf::from("/tmp/pnw.sock"))
        );
        assert!(ServerAddr::parse("http://x").is_err());
        assert!(ServerAddr::parse("tcp://").is_err());
        assert!(ServerAddr::parse("unix://").is_err());
        assert_eq!(
            ServerAddr::parse("unix:///a/b.sock").unwrap().to_string(),
            "unix:///a/b.sock"
        );
    }
}
