//! The `pnw-server` binary: serve a (durable or volatile) PNW store over
//! TCP or a Unix socket until SIGTERM/SIGINT, then drain gracefully —
//! stop accepting, flush in-flight requests, checkpoint, exit.
//!
//! Exit codes: 0 = clean drain; 1 = bad usage or startup failure;
//! 2 = drain deadline forced stragglers or the final checkpoint failed.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use pnw_core::{PnwConfig, ShardedPnwStore, Store};
use pnw_server::{install_shutdown_handler, shutdown_requested, Server, ServerAddr, ServerConfig};

const USAGE: &str = "\
pnw-server — serve a Predict-and-Write store over TCP or a Unix socket

USAGE: pnw-server [OPTIONS]

Store:
  --path <DIR>            durable directory (opened/recovered; omit = volatile)
  --capacity <N>          total buckets                  [default: 65536]
  --value-size <B>        value bytes per bucket         [default: 64]
  --shards <N>            shard count                    [default: 4]
  --clusters <K>          K-means clusters per shard     [default: 4]
  --queue-depth <N>       per-shard write queue bound    [default: 1024]
  --scrub <N>             background scrub rate, buckets/sec (omit = off)
  --endurance <N>         simulate wear-out: cells start sticking after
                          ~N writes (omit = perfect media)
  --no-integrity          disable CRC sealing/verification (benchmark knob)

Serving:
  --listen <ADDR>         tcp://host:port or unix:///path
                                           [default: tcp://127.0.0.1:7464]
  --max-conns <N>         concurrent connections         [default: 64]
  --max-inflight <N>      requests executing at once     [default: 32]
  --max-waiting <N>       requests parked for admission  [default: 128]
  --idle-timeout-ms <MS>  close silent connections after [default: 30000]
  --drain-deadline-ms <MS> bound on graceful drain       [default: 5000]
  --max-frame <B>         frame payload size limit       [default: 1048576]

  -h, --help              print this help
";

struct Args {
    listen: ServerAddr,
    path: Option<String>,
    capacity: usize,
    value_size: usize,
    shards: usize,
    clusters: usize,
    queue_depth: usize,
    scrub: Option<u32>,
    endurance: Option<u32>,
    integrity: bool,
    cfg: ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        listen: ServerAddr::Tcp("127.0.0.1:7464".into()),
        path: None,
        capacity: 65536,
        value_size: 64,
        shards: 4,
        clusters: 4,
        queue_depth: 1024,
        scrub: None,
        endurance: None,
        integrity: true,
        cfg: ServerConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "-h" || flag == "--help" {
            return Err(String::new());
        }
        let mut val = || it.next().ok_or(format!("{flag} needs a value"));
        match flag.as_str() {
            "--listen" => args.listen = ServerAddr::parse(&val()?)?,
            "--path" => args.path = Some(val()?),
            "--capacity" => args.capacity = parse_num(&flag, &val()?)?,
            "--value-size" => args.value_size = parse_num(&flag, &val()?)?,
            "--shards" => args.shards = parse_num(&flag, &val()?)?,
            "--clusters" => args.clusters = parse_num(&flag, &val()?)?,
            "--queue-depth" => args.queue_depth = parse_num(&flag, &val()?)?,
            "--scrub" => args.scrub = Some(parse_num(&flag, &val()?)?),
            "--endurance" => args.endurance = Some(parse_num(&flag, &val()?)?),
            "--no-integrity" => args.integrity = false,
            "--max-conns" => args.cfg.max_conns = parse_num(&flag, &val()?)?,
            "--max-inflight" => args.cfg.max_inflight = parse_num(&flag, &val()?)?,
            "--max-waiting" => args.cfg.max_waiting = parse_num(&flag, &val()?)?,
            "--idle-timeout-ms" => {
                args.cfg.idle_timeout = Duration::from_millis(parse_num(&flag, &val()?)?)
            }
            "--drain-deadline-ms" => {
                args.cfg.drain_deadline = Duration::from_millis(parse_num(&flag, &val()?)?)
            }
            "--max-frame" => args.cfg.max_frame = parse_num(&flag, &val()?)?,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn parse_num<T: std::str::FromStr>(flag: &str, s: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: '{s}' is not a valid number"))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("pnw-server: {msg}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut cfg = PnwConfig::new(args.capacity, args.value_size)
        .with_clusters(args.clusters)
        .with_shards(args.shards)
        .with_shard_queue_depth(args.queue_depth)
        .with_integrity(args.integrity);
    if let Some(rate) = args.scrub {
        cfg = cfg.with_scrub(rate);
    }
    if let Some(writes) = args.endurance {
        cfg = cfg.with_endurance(writes);
    }
    let durable = args.path.is_some();
    if let Some(path) = &args.path {
        cfg = cfg.with_path(path);
    }
    let store: Arc<dyn Store> = if durable {
        match ShardedPnwStore::open(cfg) {
            Ok(s) => Arc::new(s),
            Err(e) => {
                eprintln!("pnw-server: failed to open store: {e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        Arc::new(ShardedPnwStore::new(cfg))
    };

    install_shutdown_handler();
    let server = match Server::start(store, &args.listen, args.cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pnw-server: failed to bind {}: {e}", args.listen);
            return ExitCode::FAILURE;
        }
    };
    println!("pnw-server: serving on {}", server.local_addr());

    while !shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("pnw-server: shutdown signal received; draining");
    match server.drain() {
        Ok(report) if report.clean => {
            eprintln!("pnw-server: drained cleanly in {:?}", report.elapsed);
            ExitCode::SUCCESS
        }
        Ok(report) => {
            eprintln!(
                "pnw-server: drain deadline forced {} straggler connection(s)",
                report.stragglers
            );
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("pnw-server: final checkpoint failed: {e}");
            ExitCode::from(2)
        }
    }
}
