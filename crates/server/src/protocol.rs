//! The wire protocol: length-prefixed, CRC-framed binary frames.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! ┌────────────┬────────────┬──────────────────┐
//! │ len: u32 LE│ crc: u32 LE│ payload (len B)  │
//! └────────────┴────────────┴──────────────────┘
//! ```
//!
//! `crc` is the CRC-32 (IEEE) of the payload, computed with the same
//! [`crc32`] the durable file formats use — a torn or bit-flipped frame is
//! detected before any field of it is interpreted. `len == 0` and
//! `len > max_frame` are protocol errors: the server answers with a typed
//! error and **quarantines the connection** (closes it) without touching
//! any other connection.
//!
//! Request payload: `id: u64`, `op: u8`, `deadline_us: u32`, op body.
//! Response payload: `id: u64`, `status: u8` (0 = ok), ok body or a
//! [`WireError`]. Request ids are chosen by the client and echoed verbatim,
//! so many requests can be pipelined on one connection and matched to
//! their responses in order.
//!
//! Everything here is pure (`&[u8]` in, `Vec<u8>` out) so the same
//! encoder/decoder pair serves the server, the client, the fuzz-ish
//! robustness tests and the protocol microbenchmark.

use std::io::{Read, Write};

use pnw_core::StoreError;
use pnw_nvm_sim::crc32;

/// Frame header bytes: `len: u32` + `crc: u32`.
pub const FRAME_HDR: usize = 8;

/// Default cap on one frame's payload. A PUT frame needs
/// `21 + value_size` bytes, a BATCH frame `13 + Σ per-op`; 1 MiB leaves
/// room for batches of thousands of 64 B values while bounding what one
/// malicious or confused client can make the server buffer.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Request opcodes (the `op` byte).
pub mod opcode {
    /// Insert or update one key.
    pub const PUT: u8 = 1;
    /// Read one key.
    pub const GET: u8 = 2;
    /// Delete one key.
    pub const DELETE: u8 = 3;
    /// Apply a batch of writes.
    pub const BATCH: u8 = 4;
    /// Liveness probe.
    pub const PING: u8 = 5;
    /// Ordered range scan.
    pub const SCAN: u8 = 6;
}

/// One operation inside a BATCH request (mirrors `pnw_core::Op`, owned).
#[derive(Debug, Clone, PartialEq)]
pub enum WireOp {
    /// Insert or update `key`.
    Put {
        /// The key.
        key: u64,
        /// The value bytes.
        value: Vec<u8>,
    },
    /// Delete `key`.
    Delete {
        /// The key.
        key: u64,
    },
}

/// A decoded request body.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Insert or update one key.
    Put {
        /// The key.
        key: u64,
        /// The value bytes.
        value: Vec<u8>,
    },
    /// Read one key.
    Get {
        /// The key.
        key: u64,
    },
    /// Delete one key.
    Delete {
        /// The key.
        key: u64,
    },
    /// Apply a batch of writes through `Store::apply`.
    Batch {
        /// The operations, in submission order.
        ops: Vec<WireOp>,
    },
    /// Ordered range scan over `lo..=hi` (see `Store::scan`).
    Scan {
        /// Inclusive lower key bound.
        lo: u64,
        /// Inclusive upper key bound.
        hi: u64,
        /// Cap on returned entries; 0 means server-chosen (the server
        /// always bounds the reply by its frame limit regardless).
        limit: u32,
    },
    /// Liveness probe; answered without touching the store.
    Ping,
}

/// One request frame: client-chosen id, optional deadline, body.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Client-chosen id, echoed verbatim in the response.
    pub id: u64,
    /// Per-request deadline in microseconds from server receipt; 0 means
    /// no deadline. A request that cannot be *admitted* before its
    /// deadline fails with [`WireError::DeadlineExceeded`] instead of
    /// occupying a queue slot forever.
    pub deadline_us: u32,
    /// The operation.
    pub req: Request,
}

/// A decoded response body.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// PUT applied.
    Put,
    /// GET result: `None` = key absent.
    Get(Option<Vec<u8>>),
    /// DELETE completed; whether the key existed.
    Delete(bool),
    /// BATCH outcome: ops completed plus per-op failures by batch index.
    Batch {
        /// Ops that completed (puts + deletes).
        completed: u32,
        /// `(batch index, error)` for every failed op.
        failures: Vec<(u32, WireError)>,
    },
    /// SCAN result: ascending `(key, value)` entries.
    Scan {
        /// Whether the reply covers the whole requested range; `false`
        /// means the server truncated at the client's `limit` or at its
        /// own frame budget, and the client should continue from
        /// `entries.last().key + 1`.
        complete: bool,
        /// The entries, ascending by key.
        entries: Vec<(u64, Vec<u8>)>,
    },
    /// PING answered.
    Pong,
    /// The whole request failed.
    Err(WireError),
}

/// One response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// The id of the request this answers (0 for connection-level errors
    /// whose request id could not be decoded).
    pub id: u64,
    /// The outcome.
    pub resp: Response,
}

/// The typed errors a server can put on the wire. The first seven mirror
/// [`StoreError`] one-to-one (nothing collapsed); the rest are
/// serving-layer conditions that only exist across a process boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// Store/shard out of space ([`StoreError::Full`]).
    Full,
    /// Value size does not match the store's fixed bucket size.
    WrongValueSize {
        /// Configured value size.
        expected: u32,
        /// Supplied size.
        got: u32,
    },
    /// The store's model was unavailable (a store bug; never collapsed
    /// into `Full`).
    ModelUnavailable,
    /// A shard's bounded write queue rejected the op — the store-level
    /// admission control. Carries the rejecting shard and its queue depth
    /// so the client (and the server log) can tell one hot shard from
    /// store-wide saturation. Retryable with backoff.
    Backpressure {
        /// Rejecting shard id.
        shard: u32,
        /// Queue depth at rejection.
        depth: u32,
    },
    /// Invalid store configuration.
    Config(String),
    /// Underlying device failure.
    Nvm(String),
    /// Durable state failed validation.
    Corrupt(String),
    /// The request's deadline expired before it could be admitted or
    /// executed. Retryable (the op was **not** applied).
    DeadlineExceeded,
    /// The server's admission gate is full: too many requests already
    /// executing or waiting. Retryable with backoff.
    Overloaded,
    /// The server is draining (graceful shutdown): no new work is
    /// accepted. Clients should reconnect elsewhere or retry later.
    Draining,
    /// The client broke the framing or encoding; the connection is
    /// quarantined (closed) after this error is sent.
    Protocol(String),
    /// A frame exceeded the server's size limit; the connection is
    /// quarantined after this error is sent.
    TooLarge {
        /// The server's frame limit.
        limit: u32,
        /// The declared frame length.
        got: u32,
    },
    /// The stored value failed end-to-end CRC verification — the media
    /// under this key is corrupt ([`StoreError::Corruption`]).
    /// **Non-retryable**: a retry re-reads the same bad cells. The store
    /// keeps the key indexed so the loss stays loud; a background scrub
    /// may still repair it from the durable layer.
    Corruption {
        /// The key whose bucket failed verification.
        key: u64,
        /// The shard that detected the corruption.
        shard: u32,
    },
}

impl WireError {
    /// The one-byte code this error travels as.
    pub fn code(&self) -> u8 {
        match self {
            WireError::Full => 1,
            WireError::WrongValueSize { .. } => 2,
            WireError::ModelUnavailable => 3,
            WireError::Backpressure { .. } => 4,
            WireError::Config(_) => 5,
            WireError::Nvm(_) => 6,
            WireError::Corrupt(_) => 7,
            WireError::DeadlineExceeded => 8,
            WireError::Overloaded => 9,
            WireError::Draining => 10,
            WireError::Protocol(_) => 11,
            WireError::TooLarge { .. } => 12,
            WireError::Corruption { .. } => 13,
        }
    }

    /// Whether a client should retry the operation (with backoff): the
    /// op was rejected *before* being applied by an admission mechanism
    /// that drains over time.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            WireError::Backpressure { .. }
                | WireError::Overloaded
                | WireError::DeadlineExceeded
                | WireError::Draining
        )
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Full => write!(f, "store full"),
            WireError::WrongValueSize { expected, got } => {
                write!(f, "value size {got} != configured size {expected}")
            }
            WireError::ModelUnavailable => write!(f, "model unavailable"),
            WireError::Backpressure { shard, depth } => {
                write!(f, "backpressure: shard {shard} queue full at depth {depth}")
            }
            WireError::Config(m) => write!(f, "invalid configuration: {m}"),
            WireError::Nvm(m) => write!(f, "device error: {m}"),
            WireError::Corrupt(m) => write!(f, "durable state corrupt: {m}"),
            WireError::DeadlineExceeded => write!(f, "deadline exceeded"),
            WireError::Overloaded => write!(f, "server admission gate full"),
            WireError::Draining => write!(f, "server draining"),
            WireError::Protocol(m) => write!(f, "protocol error: {m}"),
            WireError::TooLarge { limit, got } => {
                write!(f, "frame of {got} bytes exceeds the {limit}-byte limit")
            }
            WireError::Corruption { key, shard } => {
                write!(f, "key {key} failed CRC verification on shard {shard}")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<&StoreError> for WireError {
    fn from(e: &StoreError) -> Self {
        match e {
            StoreError::Full => WireError::Full,
            StoreError::WrongValueSize { expected, got } => WireError::WrongValueSize {
                expected: *expected as u32,
                got: *got as u32,
            },
            StoreError::ModelUnavailable => WireError::ModelUnavailable,
            StoreError::Backpressure { shard, depth } => WireError::Backpressure {
                shard: *shard as u32,
                depth: *depth as u32,
            },
            StoreError::Config(c) => WireError::Config(c.to_string()),
            StoreError::Nvm(n) => WireError::Nvm(n.to_string()),
            StoreError::Corrupt(m) => WireError::Corrupt(m.clone()),
            StoreError::Corruption { key, shard } => WireError::Corruption {
                key: *key,
                shard: *shard as u32,
            },
        }
    }
}

/// Why a payload failed to decode.
pub type ProtoError = String;

// ---------------------------------------------------------------------------
// Little-endian cursor helpers.

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "payload truncated: wanted {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    fn done(&self) -> Result<(), ProtoError> {
        if self.pos != self.buf.len() {
            return Err(format!(
                "{} trailing bytes after a complete message",
                self.buf.len() - self.pos
            ));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// WireError encoding: code u8, aux1 u32, aux2 u32, msg_len u16, msg bytes.
// One fixed shape everywhere (top-level errors and per-op batch failures).

fn encode_wire_error(e: &WireError, out: &mut Vec<u8>) {
    let shard_buf;
    let (aux1, aux2, msg): (u32, u32, &str) = match e {
        WireError::WrongValueSize { expected, got } => (*expected, *got, ""),
        WireError::Backpressure { shard, depth } => (*shard, *depth, ""),
        WireError::TooLarge { limit, got } => (*limit, *got, ""),
        // The key needs both aux words; the shard rides in the message
        // slot as decimal text (the one fixed error shape everywhere).
        WireError::Corruption { key, shard } => {
            shard_buf = shard.to_string();
            (*key as u32, (*key >> 32) as u32, shard_buf.as_str())
        }
        WireError::Config(m) | WireError::Nvm(m) | WireError::Corrupt(m)
        | WireError::Protocol(m) => (0, 0, m.as_str()),
        _ => (0, 0, ""),
    };
    out.push(e.code());
    out.extend_from_slice(&aux1.to_le_bytes());
    out.extend_from_slice(&aux2.to_le_bytes());
    let msg = &msg.as_bytes()[..msg.len().min(u16::MAX as usize)];
    out.extend_from_slice(&(msg.len() as u16).to_le_bytes());
    out.extend_from_slice(msg);
}

fn decode_wire_error(c: &mut Cursor<'_>) -> Result<WireError, ProtoError> {
    let code = c.u8()?;
    let aux1 = c.u32()?;
    let aux2 = c.u32()?;
    let mlen = c.u16()? as usize;
    let msg = String::from_utf8_lossy(c.take(mlen)?).into_owned();
    Ok(match code {
        1 => WireError::Full,
        2 => WireError::WrongValueSize { expected: aux1, got: aux2 },
        3 => WireError::ModelUnavailable,
        4 => WireError::Backpressure { shard: aux1, depth: aux2 },
        5 => WireError::Config(msg),
        6 => WireError::Nvm(msg),
        7 => WireError::Corrupt(msg),
        8 => WireError::DeadlineExceeded,
        9 => WireError::Overloaded,
        10 => WireError::Draining,
        11 => WireError::Protocol(msg),
        12 => WireError::TooLarge { limit: aux1, got: aux2 },
        13 => WireError::Corruption {
            key: u64::from(aux2) << 32 | u64::from(aux1),
            shard: msg
                .parse()
                .map_err(|_| format!("bad shard id in corruption error: {msg:?}"))?,
        },
        other => return Err(format!("unknown error code {other}")),
    })
}

// ---------------------------------------------------------------------------
// Request encoding.

/// Encodes a request into `out` (payload only; framing is separate).
pub fn encode_request(frame: &RequestFrame, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&frame.id.to_le_bytes());
    let op = match &frame.req {
        Request::Put { .. } => opcode::PUT,
        Request::Get { .. } => opcode::GET,
        Request::Delete { .. } => opcode::DELETE,
        Request::Batch { .. } => opcode::BATCH,
        Request::Scan { .. } => opcode::SCAN,
        Request::Ping => opcode::PING,
    };
    out.push(op);
    out.extend_from_slice(&frame.deadline_us.to_le_bytes());
    match &frame.req {
        Request::Put { key, value } => {
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(value);
        }
        Request::Get { key } | Request::Delete { key } => {
            out.extend_from_slice(&key.to_le_bytes());
        }
        Request::Batch { ops } => {
            out.extend_from_slice(&(ops.len() as u32).to_le_bytes());
            for op in ops {
                match op {
                    WireOp::Put { key, value } => {
                        out.push(opcode::PUT);
                        out.extend_from_slice(&key.to_le_bytes());
                        out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                        out.extend_from_slice(value);
                    }
                    WireOp::Delete { key } => {
                        out.push(opcode::DELETE);
                        out.extend_from_slice(&key.to_le_bytes());
                    }
                }
            }
        }
        Request::Scan { lo, hi, limit } => {
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
            out.extend_from_slice(&limit.to_le_bytes());
        }
        Request::Ping => {}
    }
}

/// Decodes a request payload.
pub fn decode_request(payload: &[u8]) -> Result<RequestFrame, ProtoError> {
    let mut c = Cursor::new(payload);
    let id = c.u64()?;
    let op = c.u8()?;
    let deadline_us = c.u32()?;
    let req = match op {
        opcode::PUT => {
            let key = c.u64()?;
            Request::Put { key, value: c.rest().to_vec() }
        }
        opcode::GET => Request::Get { key: c.u64()? },
        opcode::DELETE => Request::Delete { key: c.u64()? },
        opcode::BATCH => {
            let n = c.u32()? as usize;
            // Each op needs ≥ 9 bytes; reject counts the payload cannot hold
            // before allocating for them.
            if n > payload.len() / 9 + 1 {
                return Err(format!("batch count {n} exceeds payload capacity"));
            }
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                let kind = c.u8()?;
                let key = c.u64()?;
                match kind {
                    opcode::PUT => {
                        let vlen = c.u32()? as usize;
                        ops.push(WireOp::Put { key, value: c.take(vlen)?.to_vec() });
                    }
                    opcode::DELETE => ops.push(WireOp::Delete { key }),
                    other => return Err(format!("unknown batch op kind {other}")),
                }
            }
            Request::Batch { ops }
        }
        opcode::SCAN => {
            let lo = c.u64()?;
            let hi = c.u64()?;
            let limit = c.u32()?;
            Request::Scan { lo, hi, limit }
        }
        opcode::PING => Request::Ping,
        other => return Err(format!("unknown opcode {other}")),
    };
    c.done()?;
    Ok(RequestFrame { id, deadline_us, req })
}

// ---------------------------------------------------------------------------
// Response encoding.

/// Encodes a response into `out` (payload only).
pub fn encode_response(frame: &ResponseFrame, out: &mut Vec<u8>) {
    out.clear();
    out.extend_from_slice(&frame.id.to_le_bytes());
    match &frame.resp {
        Response::Err(e) => {
            out.push(1);
            encode_wire_error(e, out);
        }
        ok => {
            out.push(0);
            match ok {
                Response::Put => out.push(opcode::PUT),
                Response::Get(value) => {
                    out.push(opcode::GET);
                    match value {
                        Some(v) => {
                            out.push(1);
                            out.extend_from_slice(v);
                        }
                        None => out.push(0),
                    }
                }
                Response::Delete(existed) => {
                    out.push(opcode::DELETE);
                    out.push(u8::from(*existed));
                }
                Response::Batch { completed, failures } => {
                    out.push(opcode::BATCH);
                    out.extend_from_slice(&completed.to_le_bytes());
                    out.extend_from_slice(&(failures.len() as u32).to_le_bytes());
                    for (idx, e) in failures {
                        out.extend_from_slice(&idx.to_le_bytes());
                        encode_wire_error(e, out);
                    }
                }
                Response::Scan { complete, entries } => {
                    out.push(opcode::SCAN);
                    out.push(u8::from(*complete));
                    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                    for (key, value) in entries {
                        out.extend_from_slice(&key.to_le_bytes());
                        out.extend_from_slice(&(value.len() as u32).to_le_bytes());
                        out.extend_from_slice(value);
                    }
                }
                Response::Pong => out.push(opcode::PING),
                Response::Err(_) => unreachable!("handled above"),
            }
        }
    }
}

/// Decodes a response payload.
pub fn decode_response(payload: &[u8]) -> Result<ResponseFrame, ProtoError> {
    let mut c = Cursor::new(payload);
    let id = c.u64()?;
    let status = c.u8()?;
    let resp = match status {
        1 => Response::Err(decode_wire_error(&mut c)?),
        0 => match c.u8()? {
            opcode::PUT => Response::Put,
            opcode::GET => match c.u8()? {
                0 => Response::Get(None),
                1 => Response::Get(Some(c.rest().to_vec())),
                other => return Err(format!("bad GET found flag {other}")),
            },
            opcode::DELETE => Response::Delete(c.u8()? != 0),
            opcode::BATCH => {
                let completed = c.u32()?;
                let n = c.u32()? as usize;
                if n > payload.len() / 15 + 1 {
                    return Err(format!("failure count {n} exceeds payload capacity"));
                }
                let mut failures = Vec::with_capacity(n);
                for _ in 0..n {
                    let idx = c.u32()?;
                    failures.push((idx, decode_wire_error(&mut c)?));
                }
                Response::Batch { completed, failures }
            }
            opcode::SCAN => {
                let complete = match c.u8()? {
                    0 => false,
                    1 => true,
                    other => return Err(format!("bad SCAN complete flag {other}")),
                };
                let n = c.u32()? as usize;
                // Each entry needs ≥ 12 bytes; reject counts the payload
                // cannot hold before allocating for them.
                if n > payload.len() / 12 + 1 {
                    return Err(format!("scan count {n} exceeds payload capacity"));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let key = c.u64()?;
                    let vlen = c.u32()? as usize;
                    entries.push((key, c.take(vlen)?.to_vec()));
                }
                Response::Scan { complete, entries }
            }
            opcode::PING => Response::Pong,
            other => return Err(format!("unknown response kind {other}")),
        },
        other => return Err(format!("bad status byte {other}")),
    };
    c.done()?;
    Ok(ResponseFrame { id, resp })
}

// ---------------------------------------------------------------------------
// Framing.

/// Writes one frame (`len`, `crc`, payload) to `w`. Does not flush.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&crc32(payload).to_le_bytes())?;
    w.write_all(payload)
}

/// Why a blocking [`read_frame`] did not produce a payload.
#[derive(Debug)]
pub enum FrameError {
    /// Clean end of stream at a frame boundary.
    Eof,
    /// The stream ended mid-frame.
    Truncated,
    /// The declared length was zero.
    Empty,
    /// The declared length exceeds the limit; the payload was not read.
    TooLarge {
        /// The caller's frame limit.
        limit: u32,
        /// The declared length.
        got: u32,
    },
    /// The payload's CRC-32 did not match the header.
    BadCrc,
    /// An I/O error from the underlying stream.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "end of stream"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::Empty => write!(f, "zero-length frame"),
            FrameError::TooLarge { limit, got } => {
                write!(f, "frame of {got} bytes exceeds the {limit}-byte limit")
            }
            FrameError::BadCrc => write!(f, "frame CRC mismatch"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

/// Blocking frame read into `buf` (replaced, not appended). Distinguishes
/// a clean EOF at a frame boundary from a mid-frame truncation.
pub fn read_frame(
    r: &mut impl Read,
    max_frame: usize,
    buf: &mut Vec<u8>,
) -> Result<(), FrameError> {
    let mut hdr = [0u8; FRAME_HDR];
    let mut pos = 0;
    while pos < hdr.len() {
        match r.read(&mut hdr[pos..]) {
            Ok(0) => {
                return Err(if pos == 0 { FrameError::Eof } else { FrameError::Truncated })
            }
            Ok(n) => pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(hdr[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
    if len == 0 {
        return Err(FrameError::Empty);
    }
    if len as usize > max_frame {
        return Err(FrameError::TooLarge { limit: max_frame as u32, got: len });
    }
    buf.clear();
    buf.resize(len as usize, 0);
    let mut pos = 0;
    while pos < buf.len() {
        match r.read(&mut buf[pos..]) {
            Ok(0) => return Err(FrameError::Truncated),
            Ok(n) => pos += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    if crc32(buf) != crc {
        return Err(FrameError::BadCrc);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_req(frame: RequestFrame) {
        let mut p = Vec::new();
        encode_request(&frame, &mut p);
        assert_eq!(decode_request(&p).unwrap(), frame);
    }

    fn roundtrip_resp(frame: ResponseFrame) {
        let mut p = Vec::new();
        encode_response(&frame, &mut p);
        assert_eq!(decode_response(&p).unwrap(), frame);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_req(RequestFrame {
            id: 7,
            deadline_us: 1500,
            req: Request::Put { key: 42, value: vec![0xAB; 64] },
        });
        roundtrip_req(RequestFrame { id: 8, deadline_us: 0, req: Request::Get { key: 1 } });
        roundtrip_req(RequestFrame { id: 9, deadline_us: 0, req: Request::Delete { key: 2 } });
        roundtrip_req(RequestFrame { id: 10, deadline_us: 0, req: Request::Ping });
        roundtrip_req(RequestFrame {
            id: 11,
            deadline_us: 250,
            req: Request::Scan { lo: 10, hi: u64::MAX, limit: 1000 },
        });
        roundtrip_req(RequestFrame {
            id: u64::MAX,
            deadline_us: u32::MAX,
            req: Request::Batch {
                ops: vec![
                    WireOp::Put { key: 1, value: vec![1, 2, 3] },
                    WireOp::Delete { key: 2 },
                    WireOp::Put { key: 3, value: vec![] },
                ],
            },
        });
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_resp(ResponseFrame { id: 1, resp: Response::Put });
        roundtrip_resp(ResponseFrame { id: 2, resp: Response::Get(None) });
        roundtrip_resp(ResponseFrame { id: 3, resp: Response::Get(Some(vec![9; 32])) });
        roundtrip_resp(ResponseFrame { id: 4, resp: Response::Delete(true) });
        roundtrip_resp(ResponseFrame { id: 5, resp: Response::Pong });
        roundtrip_resp(ResponseFrame {
            id: 11,
            resp: Response::Scan { complete: true, entries: vec![] },
        });
        roundtrip_resp(ResponseFrame {
            id: 12,
            resp: Response::Scan {
                complete: false,
                entries: vec![(1, vec![0xAA; 16]), (2, vec![]), (u64::MAX, vec![7; 8])],
            },
        });
        roundtrip_resp(ResponseFrame {
            id: 6,
            resp: Response::Batch {
                completed: 63,
                failures: vec![
                    (7, WireError::Full),
                    (8, WireError::Backpressure { shard: 3, depth: 1024 }),
                ],
            },
        });
    }

    #[test]
    fn every_wire_error_roundtrips() {
        let errors = [
            WireError::Full,
            WireError::WrongValueSize { expected: 64, got: 3 },
            WireError::ModelUnavailable,
            WireError::Backpressure { shard: 5, depth: 256 },
            WireError::Config("bad".into()),
            WireError::Nvm("crashed".into()),
            WireError::Corrupt("checkpoint CRC".into()),
            WireError::DeadlineExceeded,
            WireError::Overloaded,
            WireError::Draining,
            WireError::Protocol("trailing bytes".into()),
            WireError::TooLarge { limit: 1024, got: 4096 },
            WireError::Corruption { key: u64::MAX - 5, shard: 3 },
        ];
        let mut codes: Vec<u8> = errors.iter().map(|e| e.code()).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), errors.len(), "codes must be distinct");
        for e in errors {
            roundtrip_resp(ResponseFrame { id: 9, resp: Response::Err(e) });
        }
    }

    #[test]
    fn store_errors_map_losslessly() {
        let e: WireError = (&StoreError::Backpressure { shard: 2, depth: 77 }).into();
        assert_eq!(e, WireError::Backpressure { shard: 2, depth: 77 });
        let e: WireError = (&StoreError::WrongValueSize { expected: 8, got: 4 }).into();
        assert_eq!(e, WireError::WrongValueSize { expected: 8, got: 4 });
        let e: WireError = (&StoreError::ModelUnavailable).into();
        assert_eq!(e, WireError::ModelUnavailable);
        assert_ne!(e, WireError::Full, "ModelUnavailable must never collapse into Full");
        let e: WireError = (&StoreError::Corrupt("sb".into())).into();
        assert_eq!(e, WireError::Corrupt("sb".into()));
        let e: WireError = (&StoreError::Corruption { key: 1 << 40, shard: 2 }).into();
        assert_eq!(e, WireError::Corruption { key: 1 << 40, shard: 2 });
    }

    #[test]
    fn retryable_classification() {
        assert!(WireError::Backpressure { shard: 0, depth: 1 }.is_retryable());
        assert!(WireError::Overloaded.is_retryable());
        assert!(WireError::DeadlineExceeded.is_retryable());
        assert!(WireError::Draining.is_retryable());
        assert!(!WireError::Full.is_retryable());
        assert!(!WireError::Protocol("x".into()).is_retryable());
        assert!(
            !WireError::Corruption { key: 1, shard: 0 }.is_retryable(),
            "retrying corruption re-reads the same bad cells"
        );
    }

    #[test]
    fn framing_roundtrip_and_crc() {
        let payload = b"predict and write".to_vec();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        assert_eq!(wire.len(), FRAME_HDR + payload.len());

        let mut buf = Vec::new();
        read_frame(&mut wire.as_slice(), DEFAULT_MAX_FRAME, &mut buf).unwrap();
        assert_eq!(buf, payload);

        // A flipped payload bit is caught by the CRC.
        let mut torn = wire.clone();
        let last = torn.len() - 1;
        torn[last] ^= 0x10;
        assert!(matches!(
            read_frame(&mut torn.as_slice(), DEFAULT_MAX_FRAME, &mut buf),
            Err(FrameError::BadCrc)
        ));

        // A truncated stream is distinguished from a clean EOF.
        let cut = &wire[..wire.len() - 3];
        assert!(matches!(
            read_frame(&mut &cut[..], DEFAULT_MAX_FRAME, &mut buf),
            Err(FrameError::Truncated)
        ));
        assert!(matches!(
            read_frame(&mut &[][..], DEFAULT_MAX_FRAME, &mut buf),
            Err(FrameError::Eof)
        ));
    }

    #[test]
    fn oversized_and_empty_frames_rejected() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &[0u8; 100]).unwrap();
        let mut buf = Vec::new();
        assert!(matches!(
            read_frame(&mut wire.as_slice(), 64, &mut buf),
            Err(FrameError::TooLarge { limit: 64, got: 100 })
        ));
        let empty = [0u8; FRAME_HDR];
        assert!(matches!(
            read_frame(&mut &empty[..], 64, &mut buf),
            Err(FrameError::Empty)
        ));
    }

    #[test]
    fn garbage_payload_decodes_to_error_not_panic() {
        // Deterministic fuzz-ish sweep: random-ish bytes must never panic
        // the decoders, only return Err.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        for len in 0..64usize {
            let mut payload = vec![0u8; len];
            for b in &mut payload {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                *b = state as u8;
            }
            let _ = decode_request(&payload);
            let _ = decode_response(&payload);
        }
        // Trailing garbage after a valid message is rejected.
        let mut p = Vec::new();
        encode_request(
            &RequestFrame { id: 1, deadline_us: 0, req: Request::Get { key: 5 } },
            &mut p,
        );
        p.push(0xFF);
        assert!(decode_request(&p).is_err());
    }
}
