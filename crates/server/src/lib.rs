//! Serving the Predict-and-Write store over a socket.
//!
//! The store crates reproduce the ICDE 2021 "Predict and Write" design:
//! a K-means model steers each PUT to a cluster-affine free bucket so NVM
//! cells flip fewer bits. This crate puts a process boundary in front of
//! it — the piece every real deployment has and most reproductions skip —
//! without changing a single store-side invariant:
//!
//! * [`protocol`] — length-prefixed, CRC-framed binary messages
//!   (PUT/GET/DELETE/BATCH/PING) with typed errors; pure encode/decode
//!   shared by server, client, tests, and benchmarks.
//! * [`Server`] — TCP or Unix-socket front end: per-connection
//!   pipelining, a bounded admission gate surfacing
//!   [`WireError::Overloaded`](protocol::WireError), store-level
//!   [`Backpressure`](protocol::WireError::Backpressure) forwarded with
//!   shard id and queue depth, per-request deadlines, idle timeouts,
//!   malformed-frame quarantine, and a graceful drain that checkpoints
//!   the store on the way out.
//! * [`Client`] — synchronous calls, explicit pipelining, bounded
//!   full-jitter retry, and the fault-injection hooks (killed
//!   connections, torn frames, corrupt frames) the robustness tests and
//!   the open-loop load generator drive the server with.
//!
//! # Quick start
//!
//! ```
//! use std::sync::Arc;
//! use pnw_core::{PnwConfig, PnwStore, Store};
//! use pnw_server::{Client, Server, ServerAddr, ServerConfig};
//!
//! let store: Arc<dyn Store> =
//!     Arc::new(PnwStore::new(PnwConfig::new(1024, 16).with_clusters(4)));
//! let server = Server::start(
//!     store,
//!     &ServerAddr::parse("tcp://127.0.0.1:0").unwrap(),
//!     ServerConfig::default(),
//! )
//! .unwrap();
//!
//! let mut client = Client::connect(server.local_addr()).unwrap();
//! client.put(7, &[0xAB; 16]).unwrap();
//! assert_eq!(client.get(7).unwrap(), Some(vec![0xAB; 16]));
//!
//! drop(client);
//! let report = server.drain().unwrap(); // graceful: flush, checkpoint, close
//! assert!(report.clean);
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod net;
pub mod protocol;
pub mod server;

pub use client::{Client, ClientError, RetryPolicy};
pub use net::{Conn, ServerAddr};
pub use protocol::{Request, Response, WireError, WireOp};
pub use server::{DrainReport, Server, ServerConfig, ServerStats};

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn note_shutdown(_signum: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs SIGTERM/SIGINT handlers that set a flag readable via
/// [`shutdown_requested`] — the process-level trigger for
/// [`Server::drain`]. Uses the C `signal(2)` the standard library already
/// links rather than pulling in a signals crate; storing to an atomic is
/// async-signal-safe.
pub fn install_shutdown_handler() {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, note_shutdown as *const () as usize);
        signal(SIGINT, note_shutdown as *const () as usize);
    }
}

/// Whether a shutdown signal has arrived since
/// [`install_shutdown_handler`] ran.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Clears the shutdown flag (tests that simulate repeated signals).
pub fn reset_shutdown_flag() {
    SHUTDOWN.store(false, Ordering::SeqCst);
}
