//! The client library: synchronous calls, explicit pipelining, bounded
//! retry with full-jitter backoff, and the fault-injection hooks the
//! open-loop load generator uses to attack the server.
//!
//! # Retry contract
//!
//! Only [`WireError::is_retryable`] errors (backpressure, overload,
//! deadline, draining) and *connection* failures are retried — the op was
//! rejected before being applied, or its fate is unknown and every store
//! op is idempotent (PUT overwrites, DELETE of an absent key reports
//! `false`), so re-issuing is safe. Retries back off with **full jitter**:
//! sleep `uniform(0, min(cap, base · 2^attempt))`, the standard cure for
//! retry herds reconverging on a saturated server at the same instant.

use std::io::Write;
use std::time::Duration;

use crate::net::{Conn, ServerAddr};
use crate::protocol::{
    decode_response, encode_request, read_frame, write_frame, FrameError, Request, RequestFrame,
    Response, ResponseFrame, WireError, DEFAULT_MAX_FRAME,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// A socket-level failure (connect, send, receive).
    Io(std::io::Error),
    /// The server's frame failed validation (truncated stream, bad CRC…).
    Frame(FrameError),
    /// The server's payload decoded wrongly or answered the wrong id.
    Protocol(String),
    /// A typed error from the server.
    Server(WireError),
}

impl ClientError {
    /// Whether retrying (possibly after a reconnect) can succeed: typed
    /// retryable server errors, and connection-level failures where the
    /// op's fate is unknown but re-issuing is idempotent.
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Server(e) => e.is_retryable(),
            ClientError::Io(_) | ClientError::Frame(_) => true,
            ClientError::Protocol(_) => false,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Frame(e) => write!(f, "bad frame from server: {e}"),
            ClientError::Protocol(m) => write!(f, "protocol error: {m}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

/// Bounded exponential backoff with full jitter.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = try once).
    pub max_retries: u32,
    /// Backoff base; attempt `n` sleeps `uniform(0, min(cap, base·2ⁿ))`.
    pub base: Duration,
    /// Ceiling on any single backoff sleep.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 8,
            base: Duration::from_micros(200),
            cap: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry `attempt` (0-based), drawn from
    /// `rng` (xorshift state).
    pub fn backoff(&self, attempt: u32, rng: &mut u64) -> Duration {
        let ceil = self
            .base
            .saturating_mul(1u32 << attempt.min(20))
            .min(self.cap)
            .as_nanos() as u64;
        if ceil == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(xorshift(rng) % ceil)
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// A connection to one [`Server`](crate::Server), with synchronous calls,
/// explicit pipelining, and fault-injection hooks.
pub struct Client {
    addr: ServerAddr,
    conn: Option<Conn>,
    next_id: u64,
    deadline_us: u32,
    max_frame: usize,
    rng: u64,
    req_buf: Vec<u8>,
    resp_buf: Vec<u8>,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: &ServerAddr) -> Result<Client, ClientError> {
        let conn = addr.connect()?;
        Ok(Client {
            addr: addr.clone(),
            conn: Some(conn),
            next_id: 1,
            deadline_us: 0,
            max_frame: DEFAULT_MAX_FRAME,
            rng: 0x9E37_79B9_7F4A_7C15,
            req_buf: Vec::new(),
            resp_buf: Vec::new(),
        })
    }

    /// Sets the per-request deadline stamped on every subsequent request
    /// (`None` = no deadline). Durations above ~71 minutes saturate.
    pub fn set_deadline(&mut self, d: Option<Duration>) {
        self.deadline_us = match d {
            Some(d) => u32::try_from(d.as_micros()).unwrap_or(u32::MAX).max(1),
            None => 0,
        };
    }

    /// Caps how long a blocking receive waits (`None` = forever).
    pub fn set_recv_timeout(&mut self, d: Option<Duration>) -> Result<(), ClientError> {
        self.live()?.set_read_timeout(d)?;
        Ok(())
    }

    /// Reseeds the jitter RNG (so concurrent clients don't share a
    /// backoff schedule).
    pub fn reseed(&mut self, seed: u64) {
        self.rng = seed | 1;
    }

    /// The server address this client (re)connects to.
    pub fn addr(&self) -> &ServerAddr {
        &self.addr
    }

    fn live(&mut self) -> Result<&mut Conn, ClientError> {
        self.conn.as_mut().ok_or_else(|| {
            ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::NotConnected,
                "connection was killed; call reconnect()",
            ))
        })
    }

    // -- pipelining ---------------------------------------------------------

    /// Sends one request without waiting; returns the id to match the
    /// response by. Responses come back in send order on a connection.
    pub fn send(&mut self, req: &Request) -> Result<u64, ClientError> {
        let id = self.next_id;
        self.next_id += 1;
        let frame = RequestFrame { id, deadline_us: self.deadline_us, req: req.clone() };
        encode_request(&frame, &mut self.req_buf);
        let buf = std::mem::take(&mut self.req_buf);
        let conn = self.live()?;
        let res = write_frame(conn, &buf).and_then(|()| conn.flush());
        self.req_buf = buf;
        res?;
        Ok(id)
    }

    /// Receives the next response frame.
    pub fn recv(&mut self) -> Result<ResponseFrame, ClientError> {
        let max = self.max_frame;
        let mut buf = std::mem::take(&mut self.resp_buf);
        let conn = self.live()?;
        let res = read_frame(conn, max, &mut buf);
        self.resp_buf = buf;
        res?;
        decode_response(&self.resp_buf).map_err(ClientError::Protocol)
    }

    // -- synchronous calls --------------------------------------------------

    /// Sends `req` and waits for its response, unwrapping typed errors.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        let id = self.send(req)?;
        let frame = self.recv()?;
        if frame.id != id {
            return Err(ClientError::Protocol(format!(
                "response id {} does not match request id {id}",
                frame.id
            )));
        }
        match frame.resp {
            Response::Err(e) => Err(ClientError::Server(e)),
            ok => Ok(ok),
        }
    }

    /// Inserts or updates one key.
    pub fn put(&mut self, key: u64, value: &[u8]) -> Result<(), ClientError> {
        match self.call(&Request::Put { key, value: value.to_vec() })? {
            Response::Put => Ok(()),
            other => Err(unexpected("PUT", &other)),
        }
    }

    /// Reads one key.
    pub fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, ClientError> {
        match self.call(&Request::Get { key })? {
            Response::Get(v) => Ok(v),
            other => Err(unexpected("GET", &other)),
        }
    }

    /// Deletes one key; returns whether it existed.
    pub fn delete(&mut self, key: u64) -> Result<bool, ClientError> {
        match self.call(&Request::Delete { key })? {
            Response::Delete(existed) => Ok(existed),
            other => Err(unexpected("DELETE", &other)),
        }
    }

    /// Applies a batch of writes; returns `(completed, failures)`.
    #[allow(clippy::type_complexity)]
    pub fn batch(
        &mut self,
        ops: Vec<crate::protocol::WireOp>,
    ) -> Result<(u32, Vec<(u32, WireError)>), ClientError> {
        match self.call(&Request::Batch { ops })? {
            Response::Batch { completed, failures } => Ok((completed, failures)),
            other => Err(unexpected("BATCH", &other)),
        }
    }

    /// Ordered range scan over `lo..=hi`. Returns the ascending
    /// `(key, value)` entries plus whether the reply covers the whole
    /// range — `false` means the server truncated at `limit` (0 =
    /// server-chosen) or at its frame budget, and the caller continues
    /// from the last returned key + 1.
    #[allow(clippy::type_complexity)]
    pub fn scan(
        &mut self,
        lo: u64,
        hi: u64,
        limit: u32,
    ) -> Result<(Vec<(u64, Vec<u8>)>, bool), ClientError> {
        match self.call(&Request::Scan { lo, hi, limit })? {
            Response::Scan { complete, entries } => Ok((entries, complete)),
            other => Err(unexpected("SCAN", &other)),
        }
    }

    /// Liveness probe (answered even while the server drains).
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected("PING", &other)),
        }
    }

    // -- retry --------------------------------------------------------------

    /// [`Client::call`] under a [`RetryPolicy`]: retryable typed errors
    /// back off with full jitter; connection failures reconnect first.
    /// Safe because every store op is idempotent (see module docs).
    pub fn call_with_retry(
        &mut self,
        req: &Request,
        policy: &RetryPolicy,
    ) -> Result<Response, ClientError> {
        let mut attempt = 0u32;
        loop {
            let err = match self.call(req) {
                Ok(resp) => return Ok(resp),
                Err(e) => e,
            };
            if !err.is_retryable() || attempt >= policy.max_retries {
                return Err(err);
            }
            if matches!(err, ClientError::Io(_) | ClientError::Frame(_)) {
                // The connection is toast; a fresh one is part of the
                // backoff. Failure to reconnect consumes the attempt.
                let _ = self.reconnect();
            }
            std::thread::sleep(policy.backoff(attempt, &mut self.rng));
            attempt += 1;
        }
    }

    // -- fault injection ----------------------------------------------------

    /// Drops the connection without any protocol goodbye — the peer sees
    /// a hard EOF or reset mid-conversation.
    pub fn kill(&mut self) {
        if let Some(conn) = self.conn.take() {
            let _ = conn.shutdown();
        }
    }

    /// Opens a fresh connection (after [`Client::kill`] or a server
    /// restart). Pipelined-but-unacked requests are forgotten.
    pub fn reconnect(&mut self) -> Result<(), ClientError> {
        self.kill();
        self.conn = Some(self.addr.connect()?);
        Ok(())
    }

    /// Writes `bytes` verbatim onto the socket — for frames no honest
    /// encoder would produce.
    pub fn send_raw(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        let conn = self.live()?;
        conn.write_all(bytes)?;
        conn.flush()?;
        Ok(())
    }

    /// Encodes `req` as a frame but sends only the first `keep` bytes —
    /// a torn frame, as if the sender died mid-write. The connection is
    /// then killed so the server observes the truncation.
    pub fn send_torn_frame(&mut self, req: &Request, keep: usize) -> Result<(), ClientError> {
        let frame =
            RequestFrame { id: self.next_id, deadline_us: self.deadline_us, req: req.clone() };
        self.next_id += 1;
        encode_request(&frame, &mut self.req_buf);
        let mut wire = Vec::new();
        write_frame(&mut wire, &self.req_buf)?;
        let keep = keep.min(wire.len().saturating_sub(1)).max(1);
        let conn = self.live()?;
        conn.write_all(&wire[..keep])?;
        conn.flush()?;
        self.kill();
        Ok(())
    }

    /// Sends `req` as a complete frame whose CRC field has one bit
    /// flipped — an in-flight corruption the server must detect before
    /// decoding a single payload field.
    pub fn send_corrupt_frame(&mut self, req: &Request) -> Result<(), ClientError> {
        let frame =
            RequestFrame { id: self.next_id, deadline_us: self.deadline_us, req: req.clone() };
        self.next_id += 1;
        encode_request(&frame, &mut self.req_buf);
        let mut wire = Vec::new();
        write_frame(&mut wire, &self.req_buf)?;
        wire[4] ^= 0x01; // one bit of the CRC field
        let conn = self.live()?;
        conn.write_all(&wire)?;
        conn.flush()?;
        Ok(())
    }
}

fn unexpected(what: &str, got: &Response) -> ClientError {
    ClientError::Protocol(format!("{what} answered with mismatched response {got:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use pnw_core::{PnwConfig, PnwStore, Store};
    use std::sync::Arc;

    fn start_server() -> (Server, Client) {
        let store: Arc<dyn Store> =
            Arc::new(PnwStore::new(PnwConfig::new(256, 16).with_clusters(2)));
        let server = Server::start(
            store,
            &ServerAddr::parse("tcp://127.0.0.1:0").unwrap(),
            ServerConfig::default(),
        )
        .unwrap();
        let client = Client::connect(server.local_addr()).unwrap();
        (server, client)
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let (server, mut c) = start_server();
        c.put(1, &[7u8; 16]).unwrap();
        assert_eq!(c.get(1).unwrap(), Some(vec![7u8; 16]));
        assert_eq!(c.get(2).unwrap(), None);
        assert!(c.delete(1).unwrap());
        assert!(!c.delete(1).unwrap());
        c.ping().unwrap();
        drop(c);
        server.drain().unwrap();
    }

    #[test]
    fn wrong_value_size_is_a_typed_error() {
        let (server, mut c) = start_server();
        match c.put(1, &[1u8; 3]) {
            Err(ClientError::Server(WireError::WrongValueSize { expected: 16, got: 3 })) => {}
            other => panic!("expected WrongValueSize, got {other:?}"),
        }
        drop(c);
        server.drain().unwrap();
    }

    #[test]
    fn pipelined_batchs_and_singles_interleave() {
        let (server, mut c) = start_server();
        let mut ids = Vec::new();
        for k in 0..8u64 {
            ids.push(c.send(&Request::Put { key: k, value: vec![k as u8; 16] }).unwrap());
        }
        for expected in ids {
            let frame = c.recv().unwrap();
            assert_eq!(frame.id, expected);
            assert_eq!(frame.resp, Response::Put);
        }
        let (completed, failures) = c
            .batch(vec![
                crate::protocol::WireOp::Put { key: 100, value: vec![1u8; 16] },
                crate::protocol::WireOp::Delete { key: 0 },
            ])
            .unwrap();
        assert_eq!(completed, 2);
        assert!(failures.is_empty());
        drop(c);
        server.drain().unwrap();
    }

    #[test]
    fn kill_then_reconnect_restores_service() {
        let (server, mut c) = start_server();
        c.put(1, &[1u8; 16]).unwrap();
        c.kill();
        assert!(c.get(1).is_err());
        c.reconnect().unwrap();
        assert_eq!(c.get(1).unwrap(), Some(vec![1u8; 16]));
        drop(c);
        server.drain().unwrap();
    }

    #[test]
    fn backoff_is_bounded_and_jittered() {
        let p = RetryPolicy {
            max_retries: 4,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(8),
        };
        let mut rng = 42u64;
        for attempt in 0..16 {
            let ceil = Duration::from_millis(1 << attempt.min(3)).min(p.cap);
            for _ in 0..32 {
                assert!(p.backoff(attempt, &mut rng) < ceil.max(Duration::from_nanos(1)));
            }
        }
        // Not all draws are equal (it *is* jittered).
        let draws: Vec<_> = (0..8).map(|_| p.backoff(3, &mut rng)).collect();
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }
}
