//! The serving front end: accept loop, per-connection handlers, admission
//! gate, and the drain state machine.
//!
//! # Threading model
//!
//! One OS thread per connection, bounded by [`ServerConfig::max_conns`].
//! The store API is blocking (`Store::put` may wait on a shard's
//! flat-combining engine), so every in-flight request needs a thread
//! anyway; a reactor multiplexing many connections onto few threads would
//! let one blocked store call stall every connection sharing its thread.
//! The admission gate — not the thread count — is what bounds
//! concurrent store work.
//!
//! # Admission control
//!
//! Two layers, each producing a *typed* wire error:
//!
//! 1. The server gate caps requests executing ([`ServerConfig::max_inflight`])
//!    and waiting ([`ServerConfig::max_waiting`]). A request that cannot
//!    even wait gets [`WireError::Overloaded`]; one whose deadline expires
//!    while waiting gets [`WireError::DeadlineExceeded`]. Permits are RAII
//!    ([`Drop`]-released), so an error path can never leak a slot.
//! 2. The store's own bounded per-shard write queues reject with
//!    [`StoreError::Backpressure`], forwarded losslessly as
//!    [`WireError::Backpressure`] with the shard id and queue depth.
//!
//! # Drain
//!
//! `drain()` runs the graceful-shutdown state machine: set the draining
//! flag (the accept loop stops accepting, connections answer
//! [`WireError::Draining`] to new frames for a short grace window, then
//! close) → wait for in-flight requests and connections to finish, bounded
//! by [`ServerConfig::drain_deadline`] → checkpoint the store → return.
//! `abort()` is the unclean variant for crash testing: connections are cut
//! and **no checkpoint is written**, so recovery replays the WAL.

use std::io::{Read, Write};
use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use pnw_core::{Batch, Store, StoreError};

use crate::net::{Conn, ServerAddr};
use crate::protocol::{
    decode_request, encode_response, read_frame, write_frame, FrameError, Request, RequestFrame,
    Response, ResponseFrame, WireError, DEFAULT_MAX_FRAME,
};

/// How often a parked connection thread wakes to check the draining and
/// stopped flags (and its idle budget).
const POLL: Duration = Duration::from_millis(50);

/// Tuning knobs for one [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Largest frame payload accepted or sent, in bytes. A larger declared
    /// length is answered with [`WireError::TooLarge`] and the connection
    /// is quarantined.
    pub max_frame: usize,
    /// Concurrent connections accepted; further connects receive a
    /// best-effort [`WireError::Overloaded`] and are closed.
    pub max_conns: usize,
    /// Requests executing against the store at once (gate permits).
    pub max_inflight: usize,
    /// Requests allowed to *wait* for a permit; the request after that is
    /// rejected immediately with [`WireError::Overloaded`].
    pub max_waiting: usize,
    /// A connection with no complete frame for this long is closed.
    pub idle_timeout: Duration,
    /// Once a frame's first byte arrives, each subsequent read must make
    /// progress within this budget or the connection is quarantined as
    /// stalled mid-frame (defeats a client that sends half a frame and
    /// walks away).
    pub frame_timeout: Duration,
    /// How long connections keep answering [`WireError::Draining`] after
    /// drain starts before closing — long enough for a pipelining client
    /// to observe the typed error instead of a bare EOF.
    pub drain_grace: Duration,
    /// Hard bound on the whole drain: past this, remaining connections are
    /// cut and the drain is reported as forced.
    pub drain_deadline: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_frame: DEFAULT_MAX_FRAME,
            max_conns: 64,
            max_inflight: 32,
            max_waiting: 128,
            idle_timeout: Duration::from_secs(30),
            frame_timeout: Duration::from_secs(2),
            drain_grace: Duration::from_millis(200),
            drain_deadline: Duration::from_secs(5),
        }
    }
}

// ---------------------------------------------------------------------------
// Admission gate.

#[derive(Debug)]
struct GateState {
    executing: usize,
    waiting: usize,
    closed: bool,
}

/// Why [`Gate::acquire`] refused a permit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateReject {
    /// Executing and waiting rooms are both full.
    Overloaded,
    /// The request's deadline expired while waiting for a permit.
    DeadlineExceeded,
    /// The gate was closed (server draining or stopping).
    Closed,
}

/// Bounded two-stage admission: at most `max_inflight` permits out, at
/// most `max_waiting` callers parked waiting for one.
#[derive(Debug)]
struct Gate {
    state: Mutex<GateState>,
    cv: Condvar,
    max_inflight: usize,
    max_waiting: usize,
}

impl Gate {
    fn new(max_inflight: usize, max_waiting: usize) -> Self {
        Gate {
            state: Mutex::new(GateState { executing: 0, waiting: 0, closed: false }),
            cv: Condvar::new(),
            max_inflight: max_inflight.max(1),
            max_waiting,
        }
    }

    /// Acquires a permit, waiting until `deadline` (forever if `None`).
    fn acquire(&self, deadline: Option<Instant>) -> Result<GatePermit<'_>, GateReject> {
        let mut st = self.state.lock().unwrap();
        if st.closed {
            return Err(GateReject::Closed);
        }
        if st.executing < self.max_inflight {
            st.executing += 1;
            return Ok(GatePermit { gate: self });
        }
        if st.waiting >= self.max_waiting {
            return Err(GateReject::Overloaded);
        }
        st.waiting += 1;
        let res = loop {
            if st.closed {
                break Err(GateReject::Closed);
            }
            if st.executing < self.max_inflight {
                st.executing += 1;
                break Ok(());
            }
            match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        break Err(GateReject::DeadlineExceeded);
                    }
                    let (g, _) = self.cv.wait_timeout(st, d - now).unwrap();
                    st = g;
                }
                None => st = self.cv.wait(st).unwrap(),
            }
        };
        st.waiting -= 1;
        drop(st);
        res.map(|()| GatePermit { gate: self })
    }

    fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.cv.notify_all();
    }

    fn in_use(&self) -> (usize, usize) {
        let st = self.state.lock().unwrap();
        (st.executing, st.waiting)
    }
}

/// An execution slot; returning it (on any path, including panics and
/// error returns) is [`Drop`]'s job, so a slot cannot leak.
#[derive(Debug)]
struct GatePermit<'a> {
    gate: &'a Gate,
}

impl Drop for GatePermit<'_> {
    fn drop(&mut self) {
        let mut st = self.gate.state.lock().unwrap();
        st.executing -= 1;
        drop(st);
        self.gate.cv.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Shared server state and statistics.

#[derive(Default)]
struct Counters {
    accepted: AtomicU64,
    conn_rejects: AtomicU64,
    requests_ok: AtomicU64,
    requests_err: AtomicU64,
    overload_rejects: AtomicU64,
    deadline_rejects: AtomicU64,
    backpressure_errors: AtomicU64,
    draining_rejects: AtomicU64,
    quarantined: AtomicU64,
    corruption_errors: AtomicU64,
}

/// A point-in-time snapshot of the server's counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections currently open.
    pub active_conns: usize,
    /// Requests executing against the store right now.
    pub executing: usize,
    /// Requests parked waiting for a gate permit right now.
    pub waiting: usize,
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections refused because `max_conns` was reached.
    pub conn_rejects: u64,
    /// Requests answered with an ok status.
    pub requests_ok: u64,
    /// Requests answered with any error status.
    pub requests_err: u64,
    /// Requests rejected with [`WireError::Overloaded`].
    pub overload_rejects: u64,
    /// Requests rejected with [`WireError::DeadlineExceeded`].
    pub deadline_rejects: u64,
    /// Store-level [`WireError::Backpressure`] errors forwarded.
    pub backpressure_errors: u64,
    /// Requests rejected with [`WireError::Draining`].
    pub draining_rejects: u64,
    /// Connections quarantined (closed) for protocol violations.
    pub quarantined: u64,
    /// [`WireError::Corruption`] errors served — every one is a read that
    /// was detected as corrupt instead of silently returning bad bytes.
    pub corruption_errors: u64,
}

struct Shared {
    store: Arc<dyn Store>,
    cfg: ServerConfig,
    gate: Gate,
    /// Graceful shutdown requested: stop accepting, answer `Draining`.
    draining: AtomicBool,
    /// Hard stop: connection loops exit at the next poll tick.
    stopped: AtomicBool,
    conns: Mutex<usize>,
    conns_cv: Condvar,
    stats: Counters,
}

impl Shared {
    fn conn_opened(&self) {
        *self.conns.lock().unwrap() += 1;
    }

    fn conn_closed(&self) {
        let mut n = self.conns.lock().unwrap();
        *n -= 1;
        drop(n);
        self.conns_cv.notify_all();
    }

    /// Waits until no connections remain or `deadline` passes; returns the
    /// number of connections still open.
    fn wait_conns_zero(&self, deadline: Instant) -> usize {
        let mut n = self.conns.lock().unwrap();
        while *n > 0 {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            let (g, _) = self.conns_cv.wait_timeout(n, deadline - now).unwrap();
            n = g;
        }
        *n
    }
}

// ---------------------------------------------------------------------------
// The server proper.

enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener, PathBuf),
}

impl Listener {
    fn bind(addr: &ServerAddr) -> std::io::Result<(Listener, ServerAddr)> {
        match addr {
            ServerAddr::Tcp(spec) => {
                let l = TcpListener::bind(spec)?;
                let bound = ServerAddr::Tcp(l.local_addr()?.to_string());
                l.set_nonblocking(true)?;
                Ok((Listener::Tcp(l), bound))
            }
            ServerAddr::Unix(path) => {
                let l = UnixListener::bind(path)?;
                l.set_nonblocking(true)?;
                Ok((Listener::Unix(l, path.clone()), ServerAddr::Unix(path.clone())))
            }
        }
    }

    /// Nonblocking accept; `Ok(None)` when no connection is pending.
    fn accept(&self) -> std::io::Result<Option<Conn>> {
        match self {
            Listener::Tcp(l) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nodelay(true).ok();
                    s.set_nonblocking(false)?;
                    Ok(Some(Conn::Tcp(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
            Listener::Unix(l, _) => match l.accept() {
                Ok((s, _)) => {
                    s.set_nonblocking(false)?;
                    Ok(Some(Conn::Unix(s)))
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Ok(None),
                Err(e) => Err(e),
            },
        }
    }
}

impl Drop for Listener {
    fn drop(&mut self) {
        if let Listener::Unix(_, path) = self {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// What a graceful [`Server::drain`] accomplished.
#[derive(Debug, Clone)]
pub struct DrainReport {
    /// `true` when every connection closed within the drain deadline;
    /// `false` when stragglers had to be cut.
    pub clean: bool,
    /// Connections still open when the deadline hit (0 on a clean drain).
    pub stragglers: usize,
    /// Wall time the drain took.
    pub elapsed: Duration,
}

/// A running store server. Dropping it without calling [`Server::drain`]
/// or [`Server::abort`] stops it uncleanly (like `abort`, minus the
/// bounded wait for connection threads).
pub struct Server {
    shared: Arc<Shared>,
    accept_thread: Option<JoinHandle<()>>,
    local: ServerAddr,
}

impl Server {
    /// Binds `addr` and starts accepting connections against `store`.
    pub fn start(
        store: Arc<dyn Store>,
        addr: &ServerAddr,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        let (listener, local) = Listener::bind(addr)?;
        let shared = Arc::new(Shared {
            gate: Gate::new(cfg.max_inflight, cfg.max_waiting),
            store,
            cfg,
            draining: AtomicBool::new(false),
            stopped: AtomicBool::new(false),
            conns: Mutex::new(0),
            conns_cv: Condvar::new(),
            stats: Counters::default(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("pnw-accept".into())
            .spawn(move || accept_loop(accept_shared, listener))?;
        Ok(Server { shared, accept_thread: Some(accept_thread), local })
    }

    /// The address actually bound (for `tcp://…:0`, with the real port).
    pub fn local_addr(&self) -> &ServerAddr {
        &self.local
    }

    /// A snapshot of the server's counters and live gauges.
    pub fn stats(&self) -> ServerStats {
        let s = &self.shared.stats;
        let (executing, waiting) = self.shared.gate.in_use();
        ServerStats {
            active_conns: *self.shared.conns.lock().unwrap(),
            executing,
            waiting,
            accepted: s.accepted.load(Ordering::Relaxed),
            conn_rejects: s.conn_rejects.load(Ordering::Relaxed),
            requests_ok: s.requests_ok.load(Ordering::Relaxed),
            requests_err: s.requests_err.load(Ordering::Relaxed),
            overload_rejects: s.overload_rejects.load(Ordering::Relaxed),
            deadline_rejects: s.deadline_rejects.load(Ordering::Relaxed),
            backpressure_errors: s.backpressure_errors.load(Ordering::Relaxed),
            draining_rejects: s.draining_rejects.load(Ordering::Relaxed),
            quarantined: s.quarantined.load(Ordering::Relaxed),
            corruption_errors: s.corruption_errors.load(Ordering::Relaxed),
        }
    }

    /// Graceful shutdown: stop accepting → answer [`WireError::Draining`]
    /// through a grace window → wait (bounded by
    /// [`ServerConfig::drain_deadline`]) for connections to close →
    /// checkpoint the store. A checkpoint failure is returned after the
    /// network side has already shut down.
    pub fn drain(mut self) -> Result<DrainReport, StoreError> {
        let start = Instant::now();
        let deadline = start + self.shared.cfg.drain_deadline;
        self.shared.draining.store(true, Ordering::SeqCst);
        let stragglers = self.shared.wait_conns_zero(deadline);
        // Force whatever remains, then give those loops a few poll ticks
        // to observe the stop flag so their threads actually exit.
        self.shutdown_network();
        if stragglers > 0 {
            self.shared.wait_conns_zero(Instant::now() + 20 * POLL);
        }
        self.shared.store.checkpoint()?;
        Ok(DrainReport { clean: stragglers == 0, stragglers, elapsed: start.elapsed() })
    }

    /// Unclean shutdown for crash testing: cut connections, **skip the
    /// checkpoint** so the next open must replay the WAL. In-flight store
    /// operations still finish (a process kill mid-store-op is the WAL
    /// torn-write tests' territory); responses may or may not be
    /// delivered — exactly the window the acknowledged-prefix recovery
    /// test exercises.
    pub fn abort(mut self) {
        self.shutdown_network();
        self.shared.wait_conns_zero(Instant::now() + 40 * POLL);
    }

    fn shutdown_network(&mut self) {
        self.shared.stopped.store(true, Ordering::SeqCst);
        self.shared.gate.close();
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_network();
    }
}

fn accept_loop(shared: Arc<Shared>, listener: Listener) {
    loop {
        if shared.stopped.load(Ordering::SeqCst) || shared.draining.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok(Some(conn)) => {
                let at_cap = *shared.conns.lock().unwrap() >= shared.cfg.max_conns;
                if at_cap {
                    shared.stats.conn_rejects.fetch_add(1, Ordering::Relaxed);
                    reject_conn(conn);
                    continue;
                }
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                shared.conn_opened();
                let conn_shared = Arc::clone(&shared);
                let spawned = std::thread::Builder::new()
                    .name("pnw-conn".into())
                    .spawn(move || {
                        handle_conn(&conn_shared, conn);
                        conn_shared.conn_closed();
                    });
                if spawned.is_err() {
                    shared.conn_closed();
                }
            }
            Ok(None) => std::thread::sleep(Duration::from_millis(10)),
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    // Listener drops here; a Unix socket file is removed with it.
}

/// Best-effort typed rejection for a connection past `max_conns`.
fn reject_conn(mut conn: Conn) {
    let mut payload = Vec::new();
    encode_response(
        &ResponseFrame { id: 0, resp: Response::Err(WireError::Overloaded) },
        &mut payload,
    );
    let _ = write_frame(&mut conn, &payload);
    let _ = conn.flush();
    let _ = conn.shutdown();
}

// ---------------------------------------------------------------------------
// Per-connection handler.

/// `Read` adapter yielding one stashed byte (the frame's first, consumed
/// by the idle poll) before the underlying stream.
struct Prepend<'a> {
    first: Option<u8>,
    inner: &'a mut Conn,
}

impl Read for Prepend<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if let Some(b) = self.first.take() {
            if buf.is_empty() {
                self.first = Some(b);
                return Ok(0);
            }
            buf[0] = b;
            return Ok(1);
        }
        self.inner.read(buf)
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

fn handle_conn(shared: &Shared, mut conn: Conn) {
    if conn.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    let _ = conn.set_write_timeout(Some(shared.cfg.frame_timeout));
    let mut payload = Vec::new();
    let mut out = Vec::new();
    let mut idle_since = Instant::now();
    let mut draining_since: Option<Instant> = None;
    loop {
        if shared.stopped.load(Ordering::SeqCst) {
            break;
        }
        if shared.draining.load(Ordering::SeqCst) {
            let t = *draining_since.get_or_insert_with(Instant::now);
            if t.elapsed() >= shared.cfg.drain_grace {
                break;
            }
        }
        // Poll for a frame's first byte so this loop stays interruptible.
        let mut first = [0u8; 1];
        match conn.read(&mut first) {
            Ok(0) => break, // clean EOF between frames
            Ok(_) => {}
            Err(e) if is_timeout(&e) => {
                if idle_since.elapsed() >= shared.cfg.idle_timeout {
                    break;
                }
                continue;
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
        // A frame has started: read the rest under the per-read frame
        // budget (a stalled sender is quarantined, not waited on forever).
        if conn.set_read_timeout(Some(shared.cfg.frame_timeout)).is_err() {
            break;
        }
        let read = read_frame(
            &mut Prepend { first: Some(first[0]), inner: &mut conn },
            shared.cfg.max_frame,
            &mut payload,
        );
        if conn.set_read_timeout(Some(POLL)).is_err() {
            break;
        }
        idle_since = Instant::now();
        let recv = Instant::now();
        match read {
            Ok(()) => {}
            Err(err) => {
                // Every malformed frame quarantines exactly this
                // connection: best-effort typed error, then close.
                let wire = match err {
                    FrameError::TooLarge { limit, got } => WireError::TooLarge { limit, got },
                    FrameError::Io(ref e) if is_timeout(e) => {
                        WireError::Protocol("frame stalled mid-read".into())
                    }
                    other => WireError::Protocol(other.to_string()),
                };
                shared.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                shared.stats.requests_err.fetch_add(1, Ordering::Relaxed);
                send_resp(&mut conn, &mut out, ResponseFrame { id: 0, resp: Response::Err(wire) });
                break;
            }
        }
        let frame = match decode_request(&payload) {
            Ok(f) => f,
            Err(msg) => {
                // The frame was intact (CRC passed) but the payload does
                // not decode: same quarantine, but the request id is
                // recoverable from the fixed prefix.
                let id = payload
                    .get(0..8)
                    .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
                    .unwrap_or(0);
                shared.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                shared.stats.requests_err.fetch_add(1, Ordering::Relaxed);
                send_resp(
                    &mut conn,
                    &mut out,
                    ResponseFrame { id, resp: Response::Err(WireError::Protocol(msg)) },
                );
                break;
            }
        };
        let resp = execute(shared, frame, recv);
        let failed = matches!(resp.resp, Response::Err(_));
        if failed {
            shared.stats.requests_err.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.stats.requests_ok.fetch_add(1, Ordering::Relaxed);
        }
        if !send_resp(&mut conn, &mut out, resp) {
            break;
        }
    }
    let _ = conn.shutdown();
}

fn send_resp(conn: &mut Conn, scratch: &mut Vec<u8>, frame: ResponseFrame) -> bool {
    encode_response(&frame, scratch);
    write_frame(conn, scratch).and_then(|()| conn.flush()).is_ok()
}

/// Runs one decoded request to a response. Admission order: drain check →
/// gate (bounded wait, deadline-aware) → post-wait deadline check → store.
fn execute(shared: &Shared, frame: RequestFrame, recv: Instant) -> ResponseFrame {
    let RequestFrame { id, deadline_us, req } = frame;
    // PING bypasses admission: it measures liveness, not store capacity,
    // and must keep answering during drain.
    if matches!(req, Request::Ping) {
        return ResponseFrame { id, resp: Response::Pong };
    }
    if shared.draining.load(Ordering::SeqCst) {
        shared.stats.draining_rejects.fetch_add(1, Ordering::Relaxed);
        return ResponseFrame { id, resp: Response::Err(WireError::Draining) };
    }
    let deadline =
        (deadline_us > 0).then(|| recv + Duration::from_micros(u64::from(deadline_us)));
    let permit = match shared.gate.acquire(deadline) {
        Ok(p) => p,
        Err(GateReject::Overloaded) => {
            shared.stats.overload_rejects.fetch_add(1, Ordering::Relaxed);
            return ResponseFrame { id, resp: Response::Err(WireError::Overloaded) };
        }
        Err(GateReject::DeadlineExceeded) => {
            shared.stats.deadline_rejects.fetch_add(1, Ordering::Relaxed);
            return ResponseFrame { id, resp: Response::Err(WireError::DeadlineExceeded) };
        }
        Err(GateReject::Closed) => {
            shared.stats.draining_rejects.fetch_add(1, Ordering::Relaxed);
            return ResponseFrame { id, resp: Response::Err(WireError::Draining) };
        }
    };
    // Admitted, but possibly too late: the op has not touched the store
    // yet, so rejecting here is still side-effect-free.
    if let Some(d) = deadline {
        if Instant::now() >= d {
            shared.stats.deadline_rejects.fetch_add(1, Ordering::Relaxed);
            drop(permit);
            return ResponseFrame { id, resp: Response::Err(WireError::DeadlineExceeded) };
        }
    }
    let resp = run_store_op(shared, req);
    drop(permit);
    match &resp {
        Response::Err(WireError::Backpressure { .. }) => {
            shared.stats.backpressure_errors.fetch_add(1, Ordering::Relaxed);
        }
        Response::Err(WireError::Corruption { .. }) => {
            shared.stats.corruption_errors.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    }
    ResponseFrame { id, resp }
}

fn run_store_op(shared: &Shared, req: Request) -> Response {
    let store = &*shared.store;
    match req {
        Request::Put { key, value } => match store.put(key, &value) {
            Ok(_) => Response::Put,
            Err(e) => Response::Err((&e).into()),
        },
        Request::Get { key } => match store.get(key) {
            Ok(v) => Response::Get(v),
            Err(e) => Response::Err((&e).into()),
        },
        Request::Delete { key } => match store.delete(key) {
            Ok(existed) => Response::Delete(existed),
            Err(e) => Response::Err((&e).into()),
        },
        Request::Batch { ops } => {
            let mut batch = Batch::with_capacity(ops.len());
            for op in &ops {
                match op {
                    crate::protocol::WireOp::Put { key, value } => {
                        batch.put(*key, value);
                    }
                    crate::protocol::WireOp::Delete { key } => {
                        batch.delete(*key);
                    }
                }
            }
            let report = store.apply(&batch);
            Response::Batch {
                completed: report.completed() as u32,
                failures: report
                    .failures
                    .iter()
                    .map(|(i, e)| (*i as u32, e.into()))
                    .collect(),
            }
        }
        Request::Scan { lo, hi, limit } => match store.scan(lo, hi) {
            Ok(mut entries) => {
                let mut complete = true;
                if limit > 0 && entries.len() > limit as usize {
                    entries.truncate(limit as usize);
                    complete = false;
                }
                // Bound the reply by the frame limit too: each entry
                // costs 12 bytes + the value; leave slack for the
                // response prefix. A truncated reply says so, and the
                // client resumes from the last key + 1.
                let budget = shared.cfg.max_frame.saturating_sub(64);
                let mut used = 0usize;
                let mut fit = entries.len();
                for (i, (_, v)) in entries.iter().enumerate() {
                    used += 12 + v.len();
                    if used > budget {
                        fit = i;
                        break;
                    }
                }
                if fit < entries.len() {
                    entries.truncate(fit);
                    complete = false;
                }
                Response::Scan { complete, entries }
            }
            Err(e) => Response::Err((&e).into()),
        },
        Request::Ping => Response::Pong,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnw_core::{PnwConfig, PnwStore};

    #[test]
    fn gate_admits_up_to_inflight_then_bounds_waiters() {
        let gate = Gate::new(2, 1);
        let a = gate.acquire(None).unwrap();
        let b = gate.acquire(None).unwrap();
        assert_eq!(gate.in_use(), (2, 0));
        // Third caller with an already-expired deadline: waits, then times
        // out without leaking the waiting slot.
        let expired = Instant::now() - Duration::from_millis(1);
        assert_eq!(gate.acquire(Some(expired)).unwrap_err(), GateReject::DeadlineExceeded);
        assert_eq!(gate.in_use(), (2, 0));
        drop(a);
        let c = gate.acquire(Some(Instant::now() + Duration::from_secs(1))).unwrap();
        drop(b);
        drop(c);
        assert_eq!(gate.in_use(), (0, 0));
    }

    #[test]
    fn gate_rejects_overflow_waiters_immediately() {
        let gate = Gate::new(1, 0);
        let held = gate.acquire(None).unwrap();
        // max_waiting = 0: no waiting room at all.
        assert_eq!(
            gate.acquire(Some(Instant::now() + Duration::from_secs(5))).unwrap_err(),
            GateReject::Overloaded
        );
        drop(held);
    }

    #[test]
    fn gate_close_wakes_waiters() {
        let gate = Arc::new(Gate::new(1, 4));
        let held = gate.acquire(None).unwrap();
        let g2 = Arc::clone(&gate);
        let waiter = std::thread::spawn(move || g2.acquire(None).unwrap_err());
        // Give the waiter time to park, then close.
        std::thread::sleep(Duration::from_millis(50));
        gate.close();
        assert_eq!(waiter.join().unwrap(), GateReject::Closed);
        drop(held);
    }

    #[test]
    fn permit_released_on_drop_even_mid_panic() {
        let gate = Arc::new(Gate::new(1, 0));
        let g2 = Arc::clone(&gate);
        let _ = std::thread::spawn(move || {
            let _p = g2.acquire(None).unwrap();
            panic!("op panicked while holding a permit");
        })
        .join();
        // The permit came back despite the panic.
        assert_eq!(gate.in_use(), (0, 0));
        drop(gate.acquire(None).unwrap());
    }

    /// Raw-socket smoke test: a TCP server answers PUT/GET/PING framed by
    /// hand, without the client library.
    #[test]
    fn tcp_server_answers_raw_frames() {
        use crate::protocol::{decode_response, encode_request};

        let store: Arc<dyn Store> =
            Arc::new(PnwStore::new(PnwConfig::new(256, 16).with_clusters(2)));
        let server = Server::start(
            store,
            &ServerAddr::parse("tcp://127.0.0.1:0").unwrap(),
            ServerConfig::default(),
        )
        .unwrap();
        let mut conn = server.local_addr().connect().unwrap();

        let mut payload = Vec::new();
        let mut buf = Vec::new();
        for (id, req) in [
            (1u64, Request::Put { key: 7, value: vec![0xAB; 16] }),
            (2, Request::Get { key: 7 }),
            (3, Request::Get { key: 999 }),
            (4, Request::Ping),
        ] {
            encode_request(&RequestFrame { id, deadline_us: 0, req }, &mut payload);
            write_frame(&mut conn, &payload).unwrap();
        }
        conn.flush().unwrap();
        let mut got = Vec::new();
        for _ in 0..4 {
            read_frame(&mut conn, DEFAULT_MAX_FRAME, &mut buf).unwrap();
            got.push(decode_response(&buf).unwrap());
        }
        assert_eq!(got[0], ResponseFrame { id: 1, resp: Response::Put });
        assert_eq!(got[1], ResponseFrame { id: 2, resp: Response::Get(Some(vec![0xAB; 16])) });
        assert_eq!(got[2], ResponseFrame { id: 3, resp: Response::Get(None) });
        assert_eq!(got[3], ResponseFrame { id: 4, resp: Response::Pong });

        let stats = server.stats();
        assert_eq!(stats.accepted, 1);
        assert_eq!(stats.requests_ok, 4);
        drop(conn);
        let report = server.drain().unwrap();
        assert!(report.clean);
    }
}
