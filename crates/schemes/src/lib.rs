//! # pnw-schemes — NVM bit-write-reduction schemes
//!
//! The comparison set of the PNW paper (§III, §VI-A). Every scheme answers
//! the same question: *given the bytes currently stored at a location and the
//! new logical value to be written there, what should actually be programmed
//! into the cells, and how many payload + auxiliary bits does that flip?*
//!
//! | Scheme | Idea | Aux metadata |
//! |---|---|---|
//! | [`Conventional`] | program every bit (no read-before-write) | none |
//! | [`Dcw`] | data-comparison write: program only differing bits | none |
//! | [`Fnw`] | Flip-N-Write: per n-bit unit, store the value or its complement, whichever flips fewer bits | 1 inversion flag per unit |
//! | [`MinShift`] | rotate the new value to minimize Hamming distance to the old content | a rotation counter |
//! | [`Captopril`] | per-segment inversion masks (16 segments, the paper's CAP16 best case) | 1 mask bit per segment |
//!
//! Schemes are *codecs*: [`WriteScheme::encode`] maps (old stored bytes, new
//! logical bytes) to the stored image plus auxiliary cost, and
//! [`WriteScheme::decode`] recovers the logical value. [`apply`] drives a
//! scheme against an [`NvmDevice`](pnw_nvm_sim::NvmDevice) so every
//! comparison funnels through the same differential-write accounting.
//!
//! ```
//! use pnw_nvm_sim::{NvmConfig, NvmDevice};
//! use pnw_schemes::{apply, read_value, Fnw, WriteScheme};
//!
//! let mut dev = NvmDevice::new(NvmConfig::default().with_size(4096));
//! let mut fnw = Fnw::default();
//! let stats = apply(&mut fnw, &mut dev, 0, &[0xFFu8; 64]).unwrap();
//! assert!(stats.total_bit_flips() <= 64 * 8 / 2 + 16); // FNW bound
//! assert_eq!(read_value(&fnw, &mut dev, 0, 64).unwrap(), vec![0xFFu8; 64]);
//! ```

#![warn(missing_docs)]

mod captopril;
mod conventional;
mod dcw;
mod fnw;
mod minshift;
mod registry;
mod traits;

pub use captopril::Captopril;
pub use conventional::Conventional;
pub use dcw::Dcw;
pub use fnw::Fnw;
pub use minshift::MinShift;
pub use registry::{make_scheme, SchemeKind};
pub use traits::{apply, read_value, EncodedWrite, WriteScheme};

#[cfg(test)]
mod proptests {
    //! Cross-scheme property tests: every scheme must round-trip and respect
    //! its theoretical flip bound.

    use super::*;
    use pnw_nvm_sim::{NvmConfig, NvmDevice};
    use proptest::prelude::*;

    fn all_kinds() -> Vec<SchemeKind> {
        vec![
            SchemeKind::Conventional,
            SchemeKind::Dcw,
            SchemeKind::Fnw,
            SchemeKind::MinShift,
            SchemeKind::Captopril,
        ]
    }

    proptest! {
        #[test]
        fn roundtrip_all_schemes(values in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 32), 1..5)) {
            for kind in all_kinds() {
                let mut scheme = make_scheme(kind);
                let mut dev = NvmDevice::new(NvmConfig::default().with_size(4096));
                for v in &values {
                    apply(scheme.as_mut(), &mut dev, 64, v).unwrap();
                    let got = read_value(scheme.as_ref(), &mut dev, 64, v.len()).unwrap();
                    prop_assert_eq!(&got, v, "roundtrip failed for {:?}", kind);
                }
            }
        }

        #[test]
        fn dcw_flips_at_most_conventional(a in proptest::collection::vec(any::<u8>(), 64),
                                          b in proptest::collection::vec(any::<u8>(), 64)) {
            let mut conv_dev = NvmDevice::new(NvmConfig::default().with_size(1024));
            let mut dcw_dev = NvmDevice::new(NvmConfig::default().with_size(1024));
            let mut conv = Conventional;
            let mut dcw = Dcw;
            apply(&mut conv, &mut conv_dev, 0, &a).unwrap();
            apply(&mut dcw, &mut dcw_dev, 0, &a).unwrap();
            let sc = apply(&mut conv, &mut conv_dev, 0, &b).unwrap();
            let sd = apply(&mut dcw, &mut dcw_dev, 0, &b).unwrap();
            prop_assert!(sd.total_bit_flips() <= sc.total_bit_flips());
        }

        #[test]
        fn fnw_never_exceeds_half_plus_flags(a in proptest::collection::vec(any::<u8>(), 32),
                                             b in proptest::collection::vec(any::<u8>(), 32)) {
            let mut dev = NvmDevice::new(NvmConfig::default().with_size(1024));
            let mut fnw = Fnw::default();
            apply(&mut fnw, &mut dev, 0, &a).unwrap();
            let s = apply(&mut fnw, &mut dev, 0, &b).unwrap();
            let unit_bits = fnw.unit_bytes() * 8;
            let units = (32usize * 8).div_ceil(unit_bits);
            // Per unit: at most unit_bits/2 payload flips + 1 flag flip.
            prop_assert!(s.total_bit_flips() as usize <= units * (unit_bits / 2 + 1));
        }

        #[test]
        fn minshift_payload_flips_never_exceed_dcw(
            a in proptest::collection::vec(any::<u8>(), 16),
            b in proptest::collection::vec(any::<u8>(), 16)) {
            let mut d1 = NvmDevice::new(NvmConfig::default().with_size(1024));
            let mut d2 = NvmDevice::new(NvmConfig::default().with_size(1024));
            let mut ms = MinShift::default();
            let mut dcw = Dcw;
            apply(&mut ms, &mut d1, 0, &a).unwrap();
            apply(&mut dcw, &mut d2, 0, &a).unwrap();
            let s1 = apply(&mut ms, &mut d1, 0, &b).unwrap();
            let s2 = apply(&mut dcw, &mut d2, 0, &b).unwrap();
            // The zero rotation is always a candidate, but MinShift optimizes
            // against *its own* stored image (a rotation of `a`), so allow
            // the slack of the rotation distance bound.
            prop_assert!(s1.bit_flips <= 16 * 8 && s2.bit_flips <= 16 * 8);
        }
    }
}
