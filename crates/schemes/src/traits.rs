//! The [`WriteScheme`] codec trait and the device driver functions.

use pnw_nvm_sim::{NvmDevice, NvmError, WriteMode, WriteStats};

/// Result of encoding a logical value for storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedWrite {
    /// The byte image to program at the target address.
    pub stored: Vec<u8>,
    /// Auxiliary metadata bits flipped by this write (inversion flags,
    /// rotation counters, segment masks). These bits live in NVM too and the
    /// paper counts them toward total bit flips.
    pub aux_bits_flipped: u64,
}

impl EncodedWrite {
    /// A plain encoding with no auxiliary cost.
    pub fn plain(stored: Vec<u8>) -> Self {
        EncodedWrite {
            stored,
            aux_bits_flipped: 0,
        }
    }
}

/// A bit-write-reduction scheme, modeled as a stored-representation codec.
///
/// Implementations may keep per-address metadata (flags/counters/masks);
/// [`WriteScheme::encode`] both consults and updates it. The metadata is
/// conceptually stored in NVM: its update cost must be reported through
/// [`EncodedWrite::aux_bits_flipped`].
pub trait WriteScheme: Send {
    /// Human-readable name used in experiment output (e.g. `"FNW"`).
    fn name(&self) -> &'static str;

    /// How the device should program the stored image. Only
    /// [`Conventional`](crate::Conventional) uses [`WriteMode::Raw`].
    fn mode(&self) -> WriteMode {
        WriteMode::Diff
    }

    /// Encodes `new` for a location whose cells currently hold `old_stored`
    /// (the *stored* image, i.e. possibly already encoded by a previous
    /// write of this scheme).
    fn encode(&mut self, addr: usize, old_stored: &[u8], new: &[u8]) -> EncodedWrite;

    /// Recovers the logical value from the stored image.
    fn decode(&self, addr: usize, stored: &[u8]) -> Vec<u8>;

    /// Drops any per-address metadata for `addr` (used when a store frees a
    /// bucket).
    fn forget(&mut self, _addr: usize) {}
}

/// Writes `new` at `addr` on `dev` through `scheme`, returning the combined
/// payload + auxiliary write statistics.
///
/// This is the single accounting path used by every figure harness: read the
/// old stored image (charged by the device as RBW traffic in `Diff` mode),
/// encode, differentially program, then charge the auxiliary bits.
pub fn apply(
    scheme: &mut (impl WriteScheme + ?Sized),
    dev: &mut NvmDevice,
    addr: usize,
    new: &[u8],
) -> Result<WriteStats, NvmError> {
    let old = dev.peek(addr, new.len())?.to_vec();
    let enc = scheme.encode(addr, &old, new);
    debug_assert_eq!(enc.stored.len(), new.len(), "codec must preserve length");
    let mut stats = dev.write(addr, &enc.stored, scheme.mode())?;
    stats.aux_bit_flips += enc.aux_bits_flipped;
    dev.charge_aux(enc.aux_bits_flipped);
    Ok(stats)
}

/// Reads the logical value of length `len` stored at `addr`.
pub fn read_value(
    scheme: &(impl WriteScheme + ?Sized),
    dev: &mut NvmDevice,
    addr: usize,
    len: usize,
) -> Result<Vec<u8>, NvmError> {
    let stored = dev.read(addr, len)?.to_vec();
    Ok(scheme.decode(addr, &stored))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Conventional, Dcw};
    use pnw_nvm_sim::NvmConfig;

    #[test]
    fn apply_charges_aux_into_device_totals() {
        struct Fake;
        impl WriteScheme for Fake {
            fn name(&self) -> &'static str {
                "fake"
            }
            fn encode(&mut self, _a: usize, _o: &[u8], new: &[u8]) -> EncodedWrite {
                EncodedWrite {
                    stored: new.to_vec(),
                    aux_bits_flipped: 3,
                }
            }
            fn decode(&self, _a: usize, stored: &[u8]) -> Vec<u8> {
                stored.to_vec()
            }
        }
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        let s = apply(&mut Fake, &mut dev, 0, &[1u8; 8]).unwrap();
        assert_eq!(s.aux_bit_flips, 3);
        assert_eq!(dev.stats().totals.aux_bit_flips, 3);
    }

    #[test]
    fn conventional_vs_dcw_on_identical_rewrite() {
        let mut d1 = NvmDevice::new(NvmConfig::default().with_size(256));
        let mut d2 = NvmDevice::new(NvmConfig::default().with_size(256));
        let v = [0x5Au8; 64];
        apply(&mut Conventional, &mut d1, 0, &v).unwrap();
        apply(&mut Dcw, &mut d2, 0, &v).unwrap();
        let sc = apply(&mut Conventional, &mut d1, 0, &v).unwrap();
        let sd = apply(&mut Dcw, &mut d2, 0, &v).unwrap();
        assert_eq!(sc.bit_flips, 512);
        assert_eq!(sd.bit_flips, 0);
        assert_eq!(sc.lines_written, 1);
        assert_eq!(sd.lines_written, 0);
    }

    #[test]
    fn read_value_roundtrips() {
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        apply(&mut Dcw, &mut dev, 8, b"roundtrip").unwrap();
        assert_eq!(read_value(&Dcw, &mut dev, 8, 9).unwrap(), b"roundtrip");
    }
}
