//! FNW — Flip-N-Write (Cho & Lee, MICRO 2009).
//!
//! For each n-bit unit, the cells store either the value or its bitwise
//! complement, whichever is closer (in Hamming distance) to what the cells
//! already hold; one flag bit per unit records the choice. This guarantees at
//! most `n/2 + 1` bit flips per unit per write.
//!
//! The flags live in NVM next to the data; flag changes are charged as
//! auxiliary bit flips, matching the paper's "without any extra flag bits"
//! bookkeeping for PNW vs FNW in §IV.

use std::collections::HashMap;

use crate::traits::{EncodedWrite, WriteScheme};
use pnw_nvm_sim::device::hamming;

/// Flip-N-Write with a configurable unit size (default 4 bytes = the classic
/// 32-bit FNW configuration).
#[derive(Debug, Clone)]
pub struct Fnw {
    unit_bytes: usize,
    /// Per-address inversion flags, one bit per unit, packed into u64 words.
    flags: HashMap<usize, Vec<u64>>,
}

impl Default for Fnw {
    fn default() -> Self {
        Fnw::new(4)
    }
}

impl Fnw {
    /// Creates an FNW codec with the given unit size in bytes.
    ///
    /// # Panics
    /// Panics if `unit_bytes == 0`.
    pub fn new(unit_bytes: usize) -> Self {
        assert!(unit_bytes > 0, "unit size must be positive");
        Fnw {
            unit_bytes,
            flags: HashMap::new(),
        }
    }

    /// The unit size in bytes.
    pub fn unit_bytes(&self) -> usize {
        self.unit_bytes
    }

    fn flag(words: &[u64], unit: usize) -> bool {
        words
            .get(unit / 64)
            .is_some_and(|w| w >> (unit % 64) & 1 == 1)
    }

    fn set_flag(words: &mut Vec<u64>, unit: usize, v: bool) {
        let idx = unit / 64;
        if words.len() <= idx {
            words.resize(idx + 1, 0);
        }
        if v {
            words[idx] |= 1 << (unit % 64);
        } else {
            words[idx] &= !(1 << (unit % 64));
        }
    }
}

impl WriteScheme for Fnw {
    fn name(&self) -> &'static str {
        "FNW"
    }

    fn encode(&mut self, addr: usize, old_stored: &[u8], new: &[u8]) -> EncodedWrite {
        let mut stored = Vec::with_capacity(new.len());
        let mut aux = 0u64;
        let flags = self.flags.entry(addr).or_default();
        let mut inverted_buf = vec![0u8; self.unit_bytes];

        for (unit, chunk) in new.chunks(self.unit_bytes).enumerate() {
            let off = unit * self.unit_bytes;
            let old_chunk = &old_stored[off..off + chunk.len()];
            let old_flag = Self::flag(flags, unit);

            let inv = &mut inverted_buf[..chunk.len()];
            for (d, s) in inv.iter_mut().zip(chunk) {
                *d = !s;
            }

            let cost_plain = hamming(old_chunk, chunk) + u64::from(old_flag);
            let cost_inv = hamming(old_chunk, inv) + u64::from(!old_flag);

            if cost_inv < cost_plain {
                stored.extend_from_slice(inv);
                if !old_flag {
                    Self::set_flag(flags, unit, true);
                    aux += 1;
                }
            } else {
                stored.extend_from_slice(chunk);
                if old_flag {
                    Self::set_flag(flags, unit, false);
                    aux += 1;
                }
            }
        }
        EncodedWrite {
            stored,
            aux_bits_flipped: aux,
        }
    }

    fn decode(&self, addr: usize, stored: &[u8]) -> Vec<u8> {
        let empty = Vec::new();
        let flags = self.flags.get(&addr).unwrap_or(&empty);
        let mut out = Vec::with_capacity(stored.len());
        for (unit, chunk) in stored.chunks(self.unit_bytes).enumerate() {
            if Self::flag(flags, unit) {
                out.extend(chunk.iter().map(|b| !b));
            } else {
                out.extend_from_slice(chunk);
            }
        }
        out
    }

    fn forget(&mut self, addr: usize) {
        self.flags.remove(&addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apply, read_value};
    use pnw_nvm_sim::{NvmConfig, NvmDevice};

    #[test]
    fn inverts_when_cheaper() {
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        let mut fnw = Fnw::new(4);
        // Cells hold all-ones; writing all-zeros should store the complement
        // (all-ones again) and just flip flags: 1 aux bit per unit.
        apply(&mut fnw, &mut dev, 0, &[0xFFu8; 8]).unwrap();
        let s = apply(&mut fnw, &mut dev, 0, &[0x00u8; 8]).unwrap();
        assert_eq!(s.bit_flips, 0);
        assert_eq!(s.aux_bit_flips, 2); // two 4-byte units
        assert_eq!(read_value(&fnw, &mut dev, 0, 8).unwrap(), vec![0u8; 8]);
    }

    #[test]
    fn plain_when_cheaper() {
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        let mut fnw = Fnw::new(4);
        apply(&mut fnw, &mut dev, 0, &[0xFFu8; 4]).unwrap();
        // One differing bit: storing plain flips 1 bit, inverting flips 31+1.
        let s = apply(&mut fnw, &mut dev, 0, &[0xFF, 0xFF, 0xFF, 0xFE]).unwrap();
        assert_eq!(s.bit_flips, 1);
        assert_eq!(s.aux_bit_flips, 0);
    }

    #[test]
    fn half_plus_one_bound_per_unit() {
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        let mut fnw = Fnw::new(4);
        let unit_bits = 32u64;
        apply(&mut fnw, &mut dev, 0, &[0b0101_0101u8; 4]).unwrap();
        for pattern in [[0xAAu8; 4], [0x0Fu8; 4], [0xF0u8; 4], [0x33u8; 4]] {
            let s = apply(&mut fnw, &mut dev, 0, &pattern).unwrap();
            assert!(s.total_bit_flips() <= unit_bits / 2 + 1);
        }
    }

    #[test]
    fn roundtrip_with_partial_tail_unit() {
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        let mut fnw = Fnw::new(4);
        let v = [1u8, 2, 3, 4, 5, 6]; // 1.5 units
        apply(&mut fnw, &mut dev, 0, &v).unwrap();
        apply(&mut fnw, &mut dev, 0, &[0xFE, 0xFD, 0xFC, 0xFB, 0xFA, 0xF9]).unwrap();
        assert_eq!(
            read_value(&fnw, &mut dev, 0, 6).unwrap(),
            vec![0xFE, 0xFD, 0xFC, 0xFB, 0xFA, 0xF9]
        );
    }

    #[test]
    fn forget_clears_flags() {
        let mut fnw = Fnw::new(4);
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        // Cells start at zero, so writing 0xFF inverts (cheaper): stored
        // bytes stay 0x00 with the flag set.
        apply(&mut fnw, &mut dev, 0, &[0xFFu8; 4]).unwrap();
        assert_eq!(dev.peek(0, 4).unwrap(), &[0u8; 4]);
        assert_eq!(read_value(&fnw, &mut dev, 0, 4).unwrap(), vec![0xFFu8; 4]);
        fnw.forget(0);
        // With flags gone, decode treats the stored bytes as plain zeros.
        assert_eq!(read_value(&fnw, &mut dev, 0, 4).unwrap(), vec![0u8; 4]);
    }

    #[test]
    fn independent_addresses_have_independent_flags() {
        let mut fnw = Fnw::new(4);
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        apply(&mut fnw, &mut dev, 0, &[0xFFu8; 4]).unwrap();
        apply(&mut fnw, &mut dev, 0, &[0x00u8; 4]).unwrap(); // addr 0 inverted
        apply(&mut fnw, &mut dev, 64, &[0x11u8; 4]).unwrap(); // addr 64 plain
        assert_eq!(read_value(&fnw, &mut dev, 0, 4).unwrap(), vec![0u8; 4]);
        assert_eq!(read_value(&fnw, &mut dev, 64, 4).unwrap(), vec![0x11u8; 4]);
    }
}
