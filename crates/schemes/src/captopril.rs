//! Captopril — masking hot locations (Jalili & Sarbazi-Azad, DATE 2016).
//!
//! Captopril reduces bit flips by *masking* (inverting) the segments of a
//! block where hot, frequently-flipping bits concentrate. The paper evaluates
//! its best case, CAP16: *"we also considered its best case, which happens
//! when the blocks are partitioned into n = 16 segments"*. In the best case
//! each of the 16 segments independently stores either the data or its
//! complement, whichever flips fewer bits — with one mask bit per segment
//! charged as auxiliary cost.
//!
//! The original proposal derives the masks from an offline profiling phase
//! and cannot adapt afterwards (§III's critique). We implement both:
//! [`Captopril::best_case`] re-derives masks per write (upper bound on the
//! scheme, used for the figures) and [`Captopril::profiled`] freezes masks
//! after a profiling window, which the workload-shift tests use to show the
//! adaptivity gap the paper describes.

use std::collections::HashMap;

use crate::traits::{EncodedWrite, WriteScheme};
use pnw_nvm_sim::device::hamming;

/// How Captopril derives its segment masks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MaskPolicy {
    /// Per-write greedy mask choice (the paper's CAP16 best case).
    BestCase,
    /// Masks are learned from flip counts during the first `window` writes,
    /// then frozen — the static behaviour the paper criticizes.
    Profiled { window: u64 },
}

/// Captopril with 16 segments per block.
#[derive(Debug, Clone)]
pub struct Captopril {
    segments: usize,
    policy: MaskPolicy,
    /// Per-address segment masks (bit i = segment i inverted).
    masks: HashMap<usize, u32>,
    /// Profiling state: flips observed per segment index (global across
    /// addresses, as Captopril's offline profile is workload-level).
    seg_flips: Vec<u64>,
    writes_seen: u64,
    /// Frozen global mask once profiling completes.
    frozen_mask: Option<u32>,
}

impl Default for Captopril {
    fn default() -> Self {
        Captopril::best_case()
    }
}

impl Captopril {
    /// CAP16 best case: per-write greedy segment inversion.
    pub fn best_case() -> Self {
        Captopril {
            segments: 16,
            policy: MaskPolicy::BestCase,
            masks: HashMap::new(),
            seg_flips: vec![0; 16],
            writes_seen: 0,
            frozen_mask: None,
        }
    }

    /// Original profiled Captopril: observes `window` writes, then freezes a
    /// global mask over the segments whose flip counts exceed the mean.
    pub fn profiled(window: u64) -> Self {
        Captopril {
            segments: 16,
            policy: MaskPolicy::Profiled { window },
            masks: HashMap::new(),
            seg_flips: vec![0; 16],
            writes_seen: 0,
            frozen_mask: None,
        }
    }

    /// Number of segments (always 16 for CAP16).
    pub fn segments(&self) -> usize {
        self.segments
    }

    /// Byte ranges of each segment for a value of `len` bytes. Segments are
    /// as even as possible; short values may yield empty tail segments.
    fn segment_ranges(&self, len: usize) -> Vec<std::ops::Range<usize>> {
        let base = len / self.segments;
        let rem = len % self.segments;
        let mut out = Vec::with_capacity(self.segments);
        let mut cur = 0;
        for i in 0..self.segments {
            let sz = base + usize::from(i < rem);
            out.push(cur..cur + sz);
            cur += sz;
        }
        out
    }

    fn mask_of(&self, addr: usize) -> u32 {
        self.masks.get(&addr).copied().unwrap_or(0)
    }
}

impl WriteScheme for Captopril {
    fn name(&self) -> &'static str {
        "CAP16"
    }

    fn encode(&mut self, addr: usize, old_stored: &[u8], new: &[u8]) -> EncodedWrite {
        let ranges = self.segment_ranges(new.len());
        let old_mask = self.mask_of(addr);
        let mut new_mask = 0u32;
        let mut stored = Vec::with_capacity(new.len());
        self.writes_seen += 1;

        let frozen = match self.policy {
            MaskPolicy::BestCase => None,
            MaskPolicy::Profiled { window } => {
                if self.frozen_mask.is_none() && self.writes_seen > window {
                    // Freeze: mask segments with above-average flip counts.
                    let mean =
                        self.seg_flips.iter().sum::<u64>() as f64 / self.segments as f64;
                    let mut m = 0u32;
                    for (i, &f) in self.seg_flips.iter().enumerate() {
                        if f as f64 > mean {
                            m |= 1 << i;
                        }
                    }
                    self.frozen_mask = Some(m);
                }
                self.frozen_mask
            }
        };

        for (i, r) in ranges.iter().enumerate() {
            if r.is_empty() {
                continue;
            }
            let old_chunk = &old_stored[r.clone()];
            let chunk = &new[r.clone()];
            let inv: Vec<u8> = chunk.iter().map(|b| !b).collect();
            let old_bit = old_mask >> i & 1;

            let invert = match frozen {
                Some(m) => m >> i & 1 == 1,
                None => {
                    let cost_plain = hamming(old_chunk, chunk) + u64::from(old_bit == 1);
                    let cost_inv = hamming(old_chunk, &inv) + u64::from(old_bit == 0);
                    cost_inv < cost_plain
                }
            };

            if invert {
                new_mask |= 1 << i;
                stored.extend_from_slice(&inv);
            } else {
                stored.extend_from_slice(chunk);
            }

            // Profiling statistics: where do flips land without masking?
            if matches!(self.policy, MaskPolicy::Profiled { .. }) && self.frozen_mask.is_none() {
                self.seg_flips[i] += hamming(old_chunk, chunk);
            }
        }

        let aux = (old_mask ^ new_mask).count_ones() as u64;
        if new_mask == 0 {
            self.masks.remove(&addr);
        } else {
            self.masks.insert(addr, new_mask);
        }
        EncodedWrite {
            stored,
            aux_bits_flipped: aux,
        }
    }

    fn decode(&self, addr: usize, stored: &[u8]) -> Vec<u8> {
        let mask = self.mask_of(addr);
        if mask == 0 {
            return stored.to_vec();
        }
        let mut out = Vec::with_capacity(stored.len());
        for (i, r) in self.segment_ranges(stored.len()).iter().enumerate() {
            if mask >> i & 1 == 1 {
                out.extend(stored[r.clone()].iter().map(|b| !b));
            } else {
                out.extend_from_slice(&stored[r.clone()]);
            }
        }
        out
    }

    fn forget(&mut self, addr: usize) {
        self.masks.remove(&addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apply, read_value};
    use pnw_nvm_sim::{NvmConfig, NvmDevice};

    #[test]
    fn segment_ranges_cover_exactly() {
        let c = Captopril::best_case();
        for len in [0usize, 5, 16, 64, 100, 784] {
            let rs = c.segment_ranges(len);
            assert_eq!(rs.len(), 16);
            assert_eq!(rs.first().unwrap().start, 0);
            assert_eq!(rs.last().unwrap().end, len);
            // Contiguity
            for w in rs.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn best_case_inverts_hostile_segments() {
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        let mut cap = Captopril::best_case();
        apply(&mut cap, &mut dev, 0, &[0xFFu8; 32]).unwrap();
        let s = apply(&mut cap, &mut dev, 0, &[0x00u8; 32]).unwrap();
        // All 16 segments invert: payload flips 0, mask flips 16.
        assert_eq!(s.bit_flips, 0);
        assert_eq!(s.aux_bit_flips, 16);
        assert_eq!(read_value(&cap, &mut dev, 0, 32).unwrap(), vec![0u8; 32]);
    }

    #[test]
    fn never_much_worse_than_dcw() {
        let mut d1 = NvmDevice::new(NvmConfig::default().with_size(256));
        let mut d2 = NvmDevice::new(NvmConfig::default().with_size(256));
        let mut cap = Captopril::best_case();
        let mut dcw = crate::Dcw;
        let a = [0x3Cu8; 64];
        let b = [0xC3u8; 64];
        apply(&mut cap, &mut d1, 0, &a).unwrap();
        apply(&mut dcw, &mut d2, 0, &a).unwrap();
        let s1 = apply(&mut cap, &mut d1, 0, &b).unwrap();
        let s2 = apply(&mut dcw, &mut d2, 0, &b).unwrap();
        // Greedy per-segment choice is at most DCW + 16 mask bits.
        assert!(s1.total_bit_flips() <= s2.total_bit_flips() + 16);
    }

    #[test]
    fn profiled_freezes_after_window() {
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        let mut cap = Captopril::profiled(4);
        for i in 0..8u8 {
            apply(&mut cap, &mut dev, 0, &[i; 32]).unwrap();
        }
        assert!(cap.frozen_mask.is_some());
        // Still round-trips after freezing.
        apply(&mut cap, &mut dev, 0, &[0xA5u8; 32]).unwrap();
        assert_eq!(read_value(&cap, &mut dev, 0, 32).unwrap(), vec![0xA5u8; 32]);
    }

    #[test]
    fn short_values_roundtrip() {
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        let mut cap = Captopril::best_case();
        // 4-byte value: fewer bytes than segments.
        apply(&mut cap, &mut dev, 0, &[1, 2, 3, 4]).unwrap();
        apply(&mut cap, &mut dev, 0, &[0xFE, 0xFD, 0xFC, 0xFB]).unwrap();
        assert_eq!(
            read_value(&cap, &mut dev, 0, 4).unwrap(),
            vec![0xFE, 0xFD, 0xFC, 0xFB]
        );
    }
}
