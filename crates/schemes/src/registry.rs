//! Scheme registry: name-addressable construction for the experiment
//! harnesses.

use crate::{Captopril, Conventional, Dcw, Fnw, MinShift, WriteScheme};

/// The comparison set of the paper's Figure 6/7.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchemeKind {
    /// Program every bit.
    Conventional,
    /// Data-comparison write.
    Dcw,
    /// Flip-N-Write (32-bit units).
    Fnw,
    /// MinShift with the paper's best-case shift budget.
    MinShift,
    /// Captopril CAP16 best case.
    Captopril,
}

impl SchemeKind {
    /// All kinds, in the order the paper's figures list them.
    pub fn all() -> [SchemeKind; 5] {
        [
            SchemeKind::Conventional,
            SchemeKind::Dcw,
            SchemeKind::Fnw,
            SchemeKind::MinShift,
            SchemeKind::Captopril,
        ]
    }

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            SchemeKind::Conventional => "Conventional",
            SchemeKind::Dcw => "DCW",
            SchemeKind::Fnw => "FNW",
            SchemeKind::MinShift => "MinShift",
            SchemeKind::Captopril => "CAP16",
        }
    }
}

impl std::fmt::Display for SchemeKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for SchemeKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "conventional" | "conv" => Ok(SchemeKind::Conventional),
            "dcw" => Ok(SchemeKind::Dcw),
            "fnw" => Ok(SchemeKind::Fnw),
            "minshift" => Ok(SchemeKind::MinShift),
            "captopril" | "cap16" | "cap" => Ok(SchemeKind::Captopril),
            other => Err(format!("unknown scheme '{other}'")),
        }
    }
}

/// Constructs a boxed scheme of the given kind with the paper's tuning
/// (§VI-A: each baseline is configured for its best case).
pub fn make_scheme(kind: SchemeKind) -> Box<dyn WriteScheme> {
    match kind {
        SchemeKind::Conventional => Box::new(Conventional),
        SchemeKind::Dcw => Box::new(Dcw),
        SchemeKind::Fnw => Box::new(Fnw::default()),
        SchemeKind::MinShift => Box::new(MinShift::default()),
        SchemeKind::Captopril => Box::new(Captopril::best_case()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrip() {
        for kind in SchemeKind::all() {
            let parsed: SchemeKind = kind.name().parse().unwrap();
            assert_eq!(parsed, kind);
        }
        assert!("bogus".parse::<SchemeKind>().is_err());
    }

    #[test]
    fn names_match_paper_legends() {
        assert_eq!(SchemeKind::Captopril.name(), "CAP16");
        assert_eq!(SchemeKind::Fnw.to_string(), "FNW");
    }

    #[test]
    fn make_scheme_constructs_each() {
        for kind in SchemeKind::all() {
            assert_eq!(make_scheme(kind).name(), kind.name());
        }
    }
}
