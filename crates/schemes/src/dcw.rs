//! DCW — data-comparison write (Yang et al., ISCAS 2007).
//!
//! The basic read-before-write scheme: read the old content, program only
//! the bits that differ. The paper notes (§VI-D) that PNW with K=1 clusters
//! degenerates to DCW, which our integration tests verify.

use crate::traits::{EncodedWrite, WriteScheme};

/// Data-comparison write: differential update, identity encoding.
#[derive(Debug, Clone, Copy, Default)]
pub struct Dcw;

impl WriteScheme for Dcw {
    fn name(&self) -> &'static str {
        "DCW"
    }

    fn encode(&mut self, _addr: usize, _old_stored: &[u8], new: &[u8]) -> EncodedWrite {
        EncodedWrite::plain(new.to_vec())
    }

    fn decode(&self, _addr: usize, stored: &[u8]) -> Vec<u8> {
        stored.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply;
    use pnw_nvm_sim::{device::hamming, NvmConfig, NvmDevice};

    #[test]
    fn flips_equal_hamming_distance() {
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        let mut dcw = Dcw;
        let a = [0b1100_1100u8; 16];
        let b = [0b1010_1010u8; 16];
        apply(&mut dcw, &mut dev, 0, &a).unwrap();
        let s = apply(&mut dcw, &mut dev, 0, &b).unwrap();
        assert_eq!(s.bit_flips, hamming(&a, &b));
        assert_eq!(s.aux_bit_flips, 0);
    }

    #[test]
    fn identical_rewrite_is_free() {
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        let mut dcw = Dcw;
        apply(&mut dcw, &mut dev, 0, &[7u8; 32]).unwrap();
        let s = apply(&mut dcw, &mut dev, 0, &[7u8; 32]).unwrap();
        assert_eq!(s.bit_flips, 0);
        assert_eq!(s.words_written, 0);
    }
}
