//! The conventional write: program every bit.
//!
//! This is the "conventional method" the paper's Figure 6 compares against —
//! no read-before-write, so writing a 512-bit value always updates 512 bits
//! regardless of the old content.

use crate::traits::{EncodedWrite, WriteScheme};
use pnw_nvm_sim::WriteMode;

/// Conventional (non-RBW) write scheme: all bits are programmed.
#[derive(Debug, Clone, Copy, Default)]
pub struct Conventional;

impl WriteScheme for Conventional {
    fn name(&self) -> &'static str {
        "Conventional"
    }

    fn mode(&self) -> WriteMode {
        WriteMode::Raw
    }

    fn encode(&mut self, _addr: usize, _old_stored: &[u8], new: &[u8]) -> EncodedWrite {
        EncodedWrite::plain(new.to_vec())
    }

    fn decode(&self, _addr: usize, stored: &[u8]) -> Vec<u8> {
        stored.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apply;
    use pnw_nvm_sim::{NvmConfig, NvmDevice};

    #[test]
    fn charges_all_bits_every_time() {
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        let mut c = Conventional;
        for _ in 0..3 {
            let s = apply(&mut c, &mut dev, 0, &[0u8; 64]).unwrap();
            assert_eq!(s.bit_flips, 512);
            assert_eq!(s.aux_bit_flips, 0);
            assert_eq!(s.lines_written, 1);
            assert_eq!(s.lines_read, 0, "conventional does not read before write");
        }
    }

    #[test]
    fn decode_is_identity() {
        let c = Conventional;
        assert_eq!(c.decode(0, b"abc"), b"abc");
    }
}
