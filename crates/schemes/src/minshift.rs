//! MinShift — bit shifting/flipping (Luo et al., RTCSA 2014).
//!
//! MinShift rotates the new value before storing it, choosing the rotation
//! that minimizes the Hamming distance to the cells' current content; a
//! per-location rotation counter (stored in NVM) records the choice.
//!
//! Following §VI-A — *"we allow MinShift to shift n times, where n is the
//! size of the item instead of the size of the word, which means it always
//! results in its best performance"* — the default configuration searches
//! every bit rotation for small values. For large values an exhaustive
//! bit-granularity search is O(bits²) per write, so rotations are sampled at
//! byte granularity with a candidate cap (documented deviation; it only makes
//! MinShift *weaker* on large values, and Figure 6's large-value datasets are
//! where the paper already shows MinShift trailing).

use std::collections::HashMap;

use crate::traits::{EncodedWrite, WriteScheme};
use pnw_nvm_sim::device::hamming;

/// MinShift codec with configurable candidate budget.
#[derive(Debug, Clone)]
pub struct MinShift {
    /// Values up to this many bytes get an exhaustive bit-rotation search.
    bit_search_limit: usize,
    /// Maximum rotation candidates evaluated per write.
    max_candidates: usize,
    /// Current rotation (in bits) per address.
    rotations: HashMap<usize, u32>,
}

impl Default for MinShift {
    fn default() -> Self {
        MinShift::new(64, 512)
    }
}

impl MinShift {
    /// Creates a MinShift codec.
    ///
    /// * `bit_search_limit` — values up to this many bytes search all bit
    ///   rotations; larger values search byte-granularity rotations.
    /// * `max_candidates` — cap on rotations evaluated per write.
    pub fn new(bit_search_limit: usize, max_candidates: usize) -> Self {
        MinShift {
            bit_search_limit,
            max_candidates: max_candidates.max(1),
            rotations: HashMap::new(),
        }
    }

    /// Candidate rotations (in bits) for a value of `len` bytes.
    fn candidates(&self, len: usize) -> Vec<u32> {
        let total_bits = len * 8;
        if total_bits == 0 {
            return vec![0];
        }
        let step_bits = if len <= self.bit_search_limit { 1 } else { 8 };
        let all: usize = total_bits / step_bits;
        let n = all.min(self.max_candidates);
        // Sample evenly over the rotation space, always including 0.
        (0..n)
            .map(|i| ((i * all) / n * step_bits) as u32)
            .collect()
    }

    /// Width in bits of the rotation counter for a value of `len` bytes.
    fn counter_bits(len: usize) -> u32 {
        let states = (len * 8).max(1) as u64;
        64 - (states - 1).leading_zeros()
    }
}

/// Rotates `data`, viewed as a circular bit string (MSB of byte 0 first),
/// left by `bits`.
pub fn rotl_bits(data: &[u8], bits: u32) -> Vec<u8> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    let total = (n * 8) as u32;
    let bits = bits % total;
    let byte_shift = (bits / 8) as usize;
    let bit_shift = bits % 8;
    let mut out = vec![0u8; n];
    if bit_shift == 0 {
        for i in 0..n {
            out[i] = data[(i + byte_shift) % n];
        }
    } else {
        for i in 0..n {
            let hi = data[(i + byte_shift) % n];
            let lo = data[(i + byte_shift + 1) % n];
            out[i] = (hi << bit_shift) | (lo >> (8 - bit_shift));
        }
    }
    out
}

/// Inverse of [`rotl_bits`].
pub fn rotr_bits(data: &[u8], bits: u32) -> Vec<u8> {
    let total = (data.len() * 8) as u32;
    if total == 0 {
        return Vec::new();
    }
    rotl_bits(data, total - (bits % total))
}

impl WriteScheme for MinShift {
    fn name(&self) -> &'static str {
        "MinShift"
    }

    fn encode(&mut self, addr: usize, old_stored: &[u8], new: &[u8]) -> EncodedWrite {
        let mut best_rot = 0u32;
        let mut best_stored = new.to_vec();
        let mut best_cost = hamming(old_stored, new);

        for rot in self.candidates(new.len()) {
            if rot == 0 {
                continue;
            }
            let cand = rotl_bits(new, rot);
            let cost = hamming(old_stored, &cand);
            if cost < best_cost {
                best_cost = cost;
                best_rot = rot;
                best_stored = cand;
            }
        }

        let old_rot = self.rotations.get(&addr).copied().unwrap_or(0);
        let aux = if new.is_empty() {
            0
        } else {
            // Rotation counter stored in NVM: charge differing counter bits.
            let width = Self::counter_bits(new.len());
            let mask = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
            (u64::from(old_rot ^ best_rot) & mask).count_ones() as u64
        };
        if best_rot == 0 {
            self.rotations.remove(&addr);
        } else {
            self.rotations.insert(addr, best_rot);
        }
        EncodedWrite {
            stored: best_stored,
            aux_bits_flipped: aux,
        }
    }

    fn decode(&self, addr: usize, stored: &[u8]) -> Vec<u8> {
        match self.rotations.get(&addr) {
            Some(&rot) => rotr_bits(stored, rot),
            None => stored.to_vec(),
        }
    }

    fn forget(&mut self, addr: usize) {
        self.rotations.remove(&addr);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apply, read_value};
    use pnw_nvm_sim::{NvmConfig, NvmDevice};

    #[test]
    fn rotl_rotr_inverse() {
        let d = [0b1011_0010u8, 0b0100_1101, 0xFF, 0x00];
        for bits in 0..32 {
            assert_eq!(rotr_bits(&rotl_bits(&d, bits), bits), d, "bits={bits}");
        }
    }

    #[test]
    fn rotl_by_total_is_identity() {
        let d = [1u8, 2, 3];
        assert_eq!(rotl_bits(&d, 24), d);
        assert_eq!(rotl_bits(&d, 0), d);
    }

    #[test]
    fn rotl_whole_byte() {
        assert_eq!(rotl_bits(&[0xAB, 0xCD, 0xEF], 8), vec![0xCD, 0xEF, 0xAB]);
    }

    #[test]
    fn rotl_single_bit() {
        // 1000_0000 0000_0001 rotated left 1 = 0000_0000 0000_0011
        assert_eq!(rotl_bits(&[0x80, 0x01], 1), vec![0x00, 0x03]);
    }

    #[test]
    fn finds_perfect_rotation() {
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        let mut ms = MinShift::default();
        let old = [0b0000_1111u8, 0b0000_0000];
        apply(&mut ms, &mut dev, 0, &old).unwrap();
        // New value is `old` rotated right by 4: MinShift can recover it with
        // a rotation and flip zero payload bits.
        let new = rotr_bits(&old, 4);
        let s = apply(&mut ms, &mut dev, 0, &new).unwrap();
        assert_eq!(s.bit_flips, 0);
        assert!(s.aux_bit_flips > 0); // counter changed
        assert_eq!(read_value(&ms, &mut dev, 0, 2).unwrap(), new);
    }

    #[test]
    fn zero_rotation_kept_when_best() {
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        let mut ms = MinShift::default();
        apply(&mut ms, &mut dev, 0, &[0xAAu8; 8]).unwrap();
        let s = apply(&mut ms, &mut dev, 0, &[0xAAu8; 8]).unwrap();
        assert_eq!(s.bit_flips, 0);
        assert_eq!(s.aux_bit_flips, 0);
    }

    #[test]
    fn large_values_use_byte_granularity() {
        let ms = MinShift::new(4, 16);
        let cands = ms.candidates(100); // > limit -> byte steps
        assert!(cands.len() <= 16);
        assert!(cands.iter().all(|c| c % 8 == 0));
        assert_eq!(cands[0], 0);
    }

    #[test]
    fn counter_bits_width() {
        assert_eq!(MinShift::counter_bits(1), 3); // 8 states
        assert_eq!(MinShift::counter_bits(4), 5); // 32 states
        assert_eq!(MinShift::counter_bits(64), 9); // 512 states
    }

    #[test]
    fn roundtrip_after_many_writes() {
        let mut dev = NvmDevice::new(NvmConfig::default().with_size(256));
        let mut ms = MinShift::default();
        let vals: Vec<Vec<u8>> = (0u8..10).map(|i| vec![i.wrapping_mul(37); 16]).collect();
        for v in &vals {
            apply(&mut ms, &mut dev, 0, v).unwrap();
            assert_eq!(&read_value(&ms, &mut dev, 0, 16).unwrap(), v);
        }
    }
}
