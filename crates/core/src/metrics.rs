//! Per-operation reports and store snapshots — the raw material of every
//! figure harness.

use std::time::Duration;

use pnw_nvm_sim::{DeviceStats, WriteStats};

/// What one PUT/DELETE did, at the granularity the paper measures.
#[derive(Debug, Clone, Default)]
pub struct OpReport {
    /// Cluster the model chose (PUT only).
    pub cluster: usize,
    /// Whether the allocation fell back to a non-predicted cluster.
    pub fallback: bool,
    /// Model prediction time (featurize + PCA projection + centroid scan) —
    /// the "latency of prediction per item" series of Figure 6.
    pub predict: Duration,
    /// Stats of the *value* write alone — Figure 6 counts bit updates per
    /// 512 bits of item data, excluding index/header bookkeeping.
    pub value_write: WriteStats,
    /// Stats of everything this op wrote (header + value + index).
    pub total_write: WriteStats,
    /// Modeled NVM latency of the total write under the device's latency
    /// model (the Figure 7/8 series).
    pub modeled_latency: Duration,
}

impl OpReport {
    /// Bit updates per 512 value bits for this op.
    pub fn value_flips_per_512(&self) -> f64 {
        self.value_write.flips_per_512()
    }
}

/// Retrain observability: what the last completed training run cost and
/// used, plus the model epoch (install/swap counter). Lives on the trainer
/// and is surfaced through [`StoreSnapshot::train`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrainStats {
    /// Wall-clock time of the last completed training run (the Figure 11
    /// measurement), `ZERO` before the first.
    pub last_train_wall: Duration,
    /// Training-snapshot size before the reservoir cap.
    pub samples_pre_cap: usize,
    /// Samples actually trained on (≤ `train_sample_cap`).
    pub samples_post_cap: usize,
    /// Model epoch: completed install/swap count (0 = untrained
    /// placeholder). Every published [`ModelSnapshot`](crate::model::ModelSnapshot)
    /// carries its epoch; this is the latest.
    pub epoch: u64,
}

/// Integrity and wear-out observability: what the CRC verifiers, the
/// write-verify path and the background scrubber have seen. Counters are
/// cumulative since store construction; the sharded snapshot sums them
/// across shards.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubStats {
    /// Buckets the scrubber has CRC-verified (cumulative; a full pass over
    /// a shard scans every *live* bucket once).
    pub scanned: u64,
    /// CRC mismatches detected — by the scrubber, by GET verification or
    /// by PUT write-verify. Every one of these is a corruption that was
    /// *not* silently served.
    pub crc_failures: u64,
    /// Corrupt buckets repaired from the durable layer: the value was
    /// rewritten bit-exact to a fresh bucket and the damaged one retired.
    pub repairs: u64,
    /// Buckets permanently retired from placement (stuck media found by
    /// write-verify, or corruption with no clean durable copy).
    pub retired: u64,
    /// Stuck bits known on this shard's device (armed plus wear-latched).
    pub stuck_bits: u64,
    /// Buckets reclaimed because their TTL deadline passed — by the
    /// scrubber's expiry sweep, by a DELETE that found its key already
    /// overdue, or by ring retention's expired-first pass.
    pub expired: u64,
    /// Live entries evicted by ring retention: the earliest-deadline
    /// tenant removed to make room when the zone was full.
    pub evicted: u64,
}

impl ScrubStats {
    /// Accumulates another shard's counters into this one.
    pub fn merge(&mut self, other: &ScrubStats) {
        self.scanned += other.scanned;
        self.crc_failures += other.crc_failures;
        self.repairs += other.repairs;
        self.retired += other.retired;
        self.stuck_bits += other.stuck_bits;
        self.expired += other.expired;
        self.evicted += other.evicted;
    }
}

/// Point-in-time view of a store.
#[derive(Debug, Clone)]
pub struct StoreSnapshot {
    /// Live key count.
    pub live: usize,
    /// Free data-zone buckets.
    pub free: usize,
    /// Data-zone capacity in buckets.
    pub capacity: usize,
    /// Current cluster count K.
    pub k: usize,
    /// Completed training runs.
    pub retrains: u64,
    /// Retrain observability (wall clock, reservoir cap, model epoch).
    pub train: TrainStats,
    /// Pool allocations that fell back to a non-predicted cluster.
    pub fallbacks: u64,
    /// Cumulative device statistics.
    pub device: DeviceStats,
    /// Total time spent in model prediction.
    pub predict_total: Duration,
    /// PUT operations served.
    pub puts: u64,
    /// GET operations served.
    pub gets: u64,
    /// DELETE operations that removed an existing key (misses are not
    /// counted — the convention every [`Store`](crate::Store) backend
    /// follows, so snapshots stay comparable across backends).
    pub deletes: u64,
    /// Integrity and wear-out counters (scrub scans, CRC failures,
    /// repairs, retirements, known stuck bits).
    pub scrub: ScrubStats,
}

impl StoreSnapshot {
    /// Mean prediction latency per PUT.
    pub fn mean_predict_latency(&self) -> Duration {
        if self.puts == 0 {
            Duration::ZERO
        } else {
            self.predict_total / self.puts.min(u32::MAX as u64) as u32
        }
    }

    /// Pool availability (free fraction of the data zone).
    pub fn availability(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.free as f64 / self.capacity as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_report_normalization() {
        let r = OpReport {
            value_write: WriteStats {
                bit_flips: 16,
                bits_addressed: 1024,
                ..Default::default()
            },
            ..Default::default()
        };
        assert!((r.value_flips_per_512() - 8.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_derived_metrics() {
        let s = StoreSnapshot {
            live: 5,
            free: 15,
            capacity: 20,
            k: 3,
            retrains: 1,
            train: TrainStats::default(),
            fallbacks: 0,
            device: DeviceStats::default(),
            predict_total: Duration::from_micros(50),
            puts: 10,
            gets: 0,
            deletes: 0,
            scrub: ScrubStats::default(),
        };
        assert!((s.availability() - 0.75).abs() < 1e-12);
        assert_eq!(s.mean_predict_latency(), Duration::from_micros(5));
    }

    #[test]
    fn zero_division_guards() {
        let s = StoreSnapshot {
            live: 0,
            free: 0,
            capacity: 0,
            k: 1,
            retrains: 0,
            train: TrainStats::default(),
            fallbacks: 0,
            device: DeviceStats::default(),
            predict_total: Duration::ZERO,
            puts: 0,
            gets: 0,
            deletes: 0,
            scrub: ScrubStats::default(),
        };
        assert_eq!(s.availability(), 0.0);
        assert_eq!(s.mean_predict_latency(), Duration::ZERO);
    }

    #[test]
    fn scrub_stats_merge_sums_every_counter() {
        let mut a = ScrubStats {
            scanned: 1,
            crc_failures: 2,
            repairs: 3,
            retired: 4,
            stuck_bits: 5,
            expired: 6,
            evicted: 7,
        };
        a.merge(&ScrubStats {
            scanned: 10,
            crc_failures: 20,
            repairs: 30,
            retired: 40,
            stuck_bits: 50,
            expired: 60,
            evicted: 70,
        });
        assert_eq!(
            a,
            ScrubStats {
                scanned: 11,
                crc_failures: 22,
                repairs: 33,
                retired: 44,
                stuck_bits: 55,
                expired: 66,
                evicted: 77,
            }
        );
    }
}
