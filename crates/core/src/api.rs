//! The public store API: one [`Store`] trait and the batched-write types.
//!
//! The paper's Figure 9 comparison drives PNW and three baseline stores
//! through one interface. This module is that interface made first-class:
//!
//! * [`Store`] — the `&self`-based key/value contract every backend
//!   implements: [`PnwStore`](crate::PnwStore),
//!   [`ShardedPnwStore`](crate::ShardedPnwStore), and the three baselines
//!   in `pnw-baselines`. Because every method takes `&self`, any backend
//!   can be shared across threads behind an `Arc<dyn Store>` and driven by
//!   the same concurrent harness.
//! * [`Batch`] / [`Op`] / [`BatchReport`] — the batched write API.
//!   [`Store::apply`] executes a group of PUT/DELETE operations in one
//!   call; backends override the default per-op loop to amortize work
//!   across the group. [`ShardedPnwStore`](crate::ShardedPnwStore) groups
//!   the batch by shard and takes each shard's write lock **at most once
//!   per batch**, predicting through the shard's already-loaded model
//!   snapshot and reusing its prediction scratch across the whole group.
//!
//! All operations report the unified [`StoreError`] — one error taxonomy
//! across backends, with nothing collapsed (the old bench-crate adapter
//! reported `ModelUnavailable` as `Full`).
//!
//! # Batch semantics
//!
//! Ops in a [`Batch`] execute independently: an op that fails (say a PUT
//! against a full shard) is recorded in [`BatchReport::failures`] and the
//! remaining ops still run, exactly as if the caller had issued them one
//! by one and ignored the error. Ops on the *same key* execute in batch
//! order. The final logical contents after `apply` are identical to
//! issuing the ops individually — including §V-C reserve extension, which
//! the PNW backends run at the same op boundaries as the per-op path, so
//! a batch never reports [`StoreError::Full`] where the per-op sequence
//! would have extended the zone mid-stream. With
//! [`RetrainMode::Manual`](crate::RetrainMode::Manual) the device-level
//! accounting is bit-for-bit identical too. What batching changes is the
//! amortized cost, the reporting granularity (one aggregate
//! [`BatchReport`] instead of one `OpReport` per op), and the *automatic
//! retrain* boundary: `OnLoadFactor`/`Background` retrains are evaluated
//! once per batch rather than after every due op, so physical placement
//! after a mid-batch trigger may differ from the per-op schedule.

use std::time::Duration;

use pnw_nvm_sim::{DeviceStats, WriteStats};

use crate::error::StoreError;
use crate::metrics::{OpReport, StoreSnapshot};

/// One key/value store over an emulated NVM device, with fixed-size value
/// buckets (the paper's data zone is an array of equal-sized entries,
/// §IV).
///
/// All methods take `&self`: implementations provide their own interior
/// mutability (per-shard locks for the sharded store, one store-wide lock
/// for the single-threaded backends), so any backend can be wrapped in an
/// [`std::sync::Arc`] and driven from several threads.
pub trait Store: Send + Sync {
    /// Store name as it appears in Figure 9 and harness output.
    fn name(&self) -> &'static str;

    /// The fixed value size in bytes.
    fn value_size(&self) -> usize;

    /// Inserts or updates a key, returning what the operation cost.
    /// Backends without a prediction path report `Duration::ZERO` predict
    /// time and cluster 0.
    fn put(&self, key: u64, value: &[u8]) -> Result<OpReport, StoreError>;

    /// Reads a key's value.
    fn get(&self, key: u64) -> Result<Option<Vec<u8>>, StoreError>;

    /// Reads a key's value into a caller-provided buffer of exactly
    /// [`Store::value_size`] bytes — the allocation-free read path.
    /// Returns whether the key was present; `out` is unspecified when it
    /// was not.
    fn get_into(&self, key: u64, out: &mut [u8]) -> Result<bool, StoreError>;

    /// Deletes a key; returns whether it existed.
    fn delete(&self, key: u64) -> Result<bool, StoreError>;

    /// Ordered range scan: every live key in the **inclusive** range
    /// `[lo, hi]` with its value, ascending by key.
    ///
    /// Consistency contract: each returned entry is an atomically-valid
    /// committed `(key, value)` pair — a scan never observes a torn
    /// value, and on integrity-checked backends never a CRC-failing one
    /// (corrupt buckets are *skipped*; the loud
    /// [`StoreError::Corruption`] contract belongs to point GETs, which
    /// pin a specific key). On the sharded store each shard contributes a
    /// seqlock-consistent snapshot; the scan as a whole is not a single
    /// point-in-time cut across shards (a concurrent writer may land in
    /// an already-scanned shard). TTL-enabled backends exclude expired
    /// keys, exactly as GET does.
    fn scan(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, StoreError>;

    /// Inserts or updates a key with an absolute expiry deadline in unix
    /// milliseconds (0 = never expires; compare
    /// [`now_unix_ms`](crate::now_unix_ms)). Backends without TTL
    /// support ignore the deadline — check [`Store::supports_ttl`]. The
    /// default forwards to [`Store::put`].
    fn put_with_expiry(
        &self,
        key: u64,
        value: &[u8],
        expires_at_ms: u64,
    ) -> Result<OpReport, StoreError> {
        let _ = expires_at_ms;
        self.put(key, value)
    }

    /// Whether [`Store::put_with_expiry`] deadlines are honored (PNW
    /// backends built with [`PnwConfig::with_ttl`](crate::PnwConfig::with_ttl)).
    fn supports_ttl(&self) -> bool {
        false
    }

    /// Live key count.
    fn len(&self) -> usize;

    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Point-in-time metrics snapshot. Backends without a model fill the
    /// model/training fields with their defaults.
    fn snapshot(&self) -> StoreSnapshot;

    /// Cumulative NVM statistics (bit flips, words, cache lines), merged
    /// across shards where applicable.
    fn device_stats(&self) -> DeviceStats;

    /// Clears the device's cumulative statistics, so a measurement window
    /// can exclude warm-up traffic (the paper measures after warming the
    /// store with "old data", §VI-A).
    fn reset_device_stats(&self);

    /// Highest write count observed on any single NVM word — the wear
    /// hot spot that bounds device lifetime (feeds
    /// [`pnw_nvm_sim::projected_lifetime_ops`]). Backends without
    /// word-granular wear tracking report 0, which projects as an
    /// unbounded lifetime.
    fn max_word_writes(&self) -> u32 {
        0
    }

    /// Flushes the store's durable state (WAL-truncating atomic
    /// checkpoint on a file-backed store) — the drain hook a serving
    /// front end calls between "stop accepting" and process exit, so a
    /// clean shutdown never replays a WAL on the next open. No-op on
    /// volatile backends, which is the default.
    fn checkpoint(&self) -> Result<(), StoreError> {
        Ok(())
    }

    /// Executes a batch of write operations and returns the aggregate
    /// report. See the [module docs](self) for the exact semantics.
    ///
    /// The default implementation issues the ops one by one; backends with
    /// internal structure to exploit (shards, a shared model snapshot,
    /// per-shard scratch) override it.
    fn apply(&self, batch: &Batch) -> BatchReport {
        let mut report = BatchReport::default();
        for (i, op) in batch.ops().iter().enumerate() {
            match op {
                Op::Put { key, value } => match self.put(*key, value) {
                    Ok(r) => {
                        report.puts += 1;
                        report.write_stats += r.total_write;
                        report.modeled_latency += r.modeled_latency;
                    }
                    Err(e) => report.failures.push((i, e)),
                },
                Op::Delete { key } => match self.delete(*key) {
                    Ok(existed) => {
                        report.deletes += 1;
                        report.deleted_existing += u64::from(existed);
                    }
                    Err(e) => report.failures.push((i, e)),
                },
            }
        }
        report
    }
}

/// Compile-time proof that [`Store`] stays object-safe: the harnesses
/// drive every backend through `Arc<dyn Store>`.
const _: fn(&dyn Store) = |_| {};

/// One write operation in a [`Batch`].
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Insert or update `key` with `value`.
    Put {
        /// The key.
        key: u64,
        /// The value (must match the store's value size).
        value: Vec<u8>,
    },
    /// Delete `key`.
    Delete {
        /// The key.
        key: u64,
    },
}

impl Op {
    /// The key this op addresses (what sharded backends route by).
    pub fn key(&self) -> u64 {
        match self {
            Op::Put { key, .. } | Op::Delete { key } => *key,
        }
    }
}

/// An ordered group of write operations for [`Store::apply`].
///
/// ```
/// use pnw_core::{Batch, PnwConfig, PnwStore, Store};
///
/// let store = PnwStore::new(PnwConfig::new(64, 8).with_clusters(2));
/// let mut batch = Batch::new();
/// batch.put(1, &[0xAA; 8]).put(2, &[0xBB; 8]).delete(1);
/// let report = store.apply(&batch);
/// assert!(report.failures.is_empty());
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Batch {
    ops: Vec<Op>,
    /// Value buffers recovered by [`Batch::clear`], reused by the next
    /// [`Batch::put`] — a harness that refills one batch in a loop
    /// allocates value storage only on its first pass.
    spare: Vec<Vec<u8>>,
}

/// Batches compare by their op sequence; the recycled-buffer pool is an
/// allocation detail.
impl PartialEq for Batch {
    fn eq(&self, other: &Self) -> bool {
        self.ops == other.ops
    }
}

impl Batch {
    /// An empty batch.
    pub fn new() -> Self {
        Batch::default()
    }

    /// An empty batch with room for `n` ops.
    pub fn with_capacity(n: usize) -> Self {
        Batch {
            ops: Vec::with_capacity(n),
            spare: Vec::new(),
        }
    }

    /// Appends a PUT; returns `&mut self` for chaining.
    pub fn put(&mut self, key: u64, value: &[u8]) -> &mut Self {
        let mut buf = self.spare.pop().unwrap_or_default();
        buf.clear();
        buf.extend_from_slice(value);
        self.ops.push(Op::Put { key, value: buf });
        self
    }

    /// Appends a DELETE; returns `&mut self` for chaining.
    pub fn delete(&mut self, key: u64) -> &mut Self {
        self.ops.push(Op::Delete { key });
        self
    }

    /// Appends an already-built [`Op`].
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The ops in submission order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of ops queued.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether no ops are queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Removes all ops, keeping the allocation — harness loops refill one
    /// batch instead of reallocating per group. PUT value buffers are
    /// recycled into a spare pool the next [`Batch::put`] draws from.
    pub fn clear(&mut self) {
        for op in self.ops.drain(..) {
            if let Op::Put { value, .. } = op {
                self.spare.push(value);
            }
        }
    }
}

/// What one [`Store::apply`] call did, aggregated over the whole batch.
#[derive(Debug, Clone, Default)]
pub struct BatchReport {
    /// PUT ops that succeeded.
    pub puts: u64,
    /// DELETE ops that completed (hit or miss).
    pub deletes: u64,
    /// DELETE ops whose key existed.
    pub deleted_existing: u64,
    /// Ops that failed, as `(index into the batch, error)`. Empty on a
    /// fully-applied batch.
    pub failures: Vec<(usize, StoreError)>,
    /// Aggregate device write statistics over the whole batch.
    pub write_stats: WriteStats,
    /// Aggregate modeled NVM latency of the batch's writes under the
    /// device latency model.
    pub modeled_latency: Duration,
    /// Sampled prediction latencies (nanoseconds) from the batch path:
    /// PNW backends time the model-prediction kernel on a stride of the
    /// batch's fresh PUTs (full per-op instrumentation would defeat the
    /// batch path's purpose). Empty for backends without a model.
    pub predict_samples: Vec<u64>,
}

impl BatchReport {
    /// Whether every op in the batch succeeded.
    pub fn all_ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Ops that completed (puts + deletes, failures excluded).
    pub fn completed(&self) -> u64 {
        self.puts + self.deletes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_builder_collects_ops_in_order() {
        let mut b = Batch::with_capacity(3);
        b.put(1, &[1, 2]).delete(2).push(Op::Put {
            key: 3,
            value: vec![9],
        });
        assert_eq!(b.len(), 3);
        assert_eq!(b.ops()[0].key(), 1);
        assert_eq!(b.ops()[1], Op::Delete { key: 2 });
        assert_eq!(b.ops()[2].key(), 3);
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn clear_recycles_put_value_buffers() {
        let mut b = Batch::new();
        b.put(1, &[7u8; 32]).delete(2);
        let ptr = match &b.ops()[0] {
            Op::Put { value, .. } => value.as_ptr(),
            _ => unreachable!(),
        };
        b.clear();
        b.put(9, &[1u8; 16]);
        let reused = match &b.ops()[0] {
            Op::Put { value, .. } => value.as_ptr(),
            _ => unreachable!(),
        };
        assert_eq!(ptr, reused, "the cleared PUT's buffer must be reused");
        assert_eq!(b.ops()[0], Op::Put { key: 9, value: vec![1u8; 16] });
    }

    #[test]
    fn report_accessors() {
        let mut r = BatchReport {
            puts: 3,
            deletes: 2,
            ..Default::default()
        };
        assert!(r.all_ok());
        assert_eq!(r.completed(), 5);
        r.failures.push((1, StoreError::Full));
        assert!(!r.all_ok());
    }
}
