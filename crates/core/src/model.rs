//! The ML model manager: featurization, PCA, K-means, background retraining
//! (§V-A.1).
//!
//! *"The ML model is constructed on DRAM as it does not need to be
//! persistent and can be reconstructed after a crash."* The manager owns the
//! current K-means model (and the PCA basis for large values), serves
//! predictions, and coordinates background retraining: training runs on a
//! worker thread against a snapshot of the data zone, and the trained model
//! is installed at the next store operation — the paper's *"we can hide the
//! re-training latency and the system works without disruptions"*.

use std::time::{Duration, Instant};

use std::sync::mpsc::{sync_channel, Receiver, TryRecvError};
use std::sync::Mutex;
use pnw_ml::featurize::{bits_into_features, bits_to_features};
use pnw_ml::kmeans::{KMeans, KMeansConfig};
use pnw_ml::matrix::Matrix;
use pnw_ml::packed::PackedPredictor;
use pnw_ml::pca::{BitProjector, Pca};

use crate::config::PnwConfig;

/// Reusable buffers for the allocation-free prediction path.
///
/// The manager itself is shared read-only across shards, so the mutable
/// scratch lives with the caller — each [`ShardEngine`](crate::ShardEngine)
/// owns one and threads it through every prediction, making steady-state
/// PUT/DELETE heap-allocation-free. Buffers grow to the model's K (and the
/// PCA component count) on first use and are reused afterwards.
#[derive(Debug, Default)]
pub struct PredictScratch {
    /// PCA-space feature buffer (projector models only).
    features: Vec<f32>,
    /// Per-cluster squared distances from the last
    /// [`ModelManager::predict_into`] call.
    dist: Vec<f32>,
    /// Cluster-index buffer for [`ModelManager::ranked_after_predict`].
    ranking: Vec<usize>,
}

impl PredictScratch {
    /// A fresh scratch (buffers allocate lazily on first prediction).
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-cluster squared distances from the last prediction (empty
    /// before the first [`ModelManager::predict_into`] call).
    pub fn distances(&self) -> &[f32] {
        &self.dist
    }
}

/// Result of one training run.
pub struct TrainedModel {
    /// The fitted K-means model (over raw bits or PCA space).
    pub kmeans: KMeans,
    /// The PCA basis, when the value size warranted one.
    pub pca: Option<Pca>,
    /// Wall-clock training time (the Figure 11 measurement).
    pub elapsed: Duration,
}

/// Owns the live model and the background-training machinery.
pub struct ModelManager {
    clusters: usize,
    auto_k: Option<(usize, usize)>,
    seed: u64,
    threads: usize,
    iters: usize,
    value_bits: usize,
    use_pca: bool,
    pca_components: usize,
    pca_sample: usize,

    pca: Option<Pca>,
    /// Fast byte→PCA-space projector derived from `pca` (kept in sync).
    projector: Option<BitProjector>,
    /// Bit-domain LUT predictor over the current centroids (non-PCA models
    /// only). Rebuilt once per (re)train/swap in [`ModelManager::install`],
    /// never per operation.
    packed: Option<PackedPredictor>,
    kmeans: KMeans,
    trained: bool,
    retrains: u64,
    /// In-flight background training run. Behind a `Mutex` only so that the
    /// manager stays `Sync` — a sharded store shares one manager across all
    /// shards behind an `RwLock`, and `mpsc::Receiver` is not `Sync` on its
    /// own. Mutating methods go through `get_mut` (no lock traffic).
    pending: Mutex<Option<Receiver<TrainedModel>>>,
}

impl ModelManager {
    /// Creates an untrained manager; predictions all map to cluster 0 until
    /// the first training (matching a store whose cells are all zero).
    pub fn new(cfg: &PnwConfig) -> Self {
        let value_bits = cfg.value_size * 8;
        let use_pca = cfg.uses_pca();
        // Until the first training there is no PCA basis, so featurization
        // yields raw bits — the placeholder centroid must match that.
        let dims = value_bits;
        ModelManager {
            clusters: cfg.clusters,
            auto_k: cfg.auto_k,
            seed: cfg.seed,
            threads: cfg.train_threads,
            iters: cfg.train_iters,
            value_bits,
            use_pca,
            pca_components: cfg.pca.components,
            pca_sample: cfg.pca.sample,
            pca: None,
            projector: None,
            packed: Some(PackedPredictor::from_centroids(&Matrix::zeros(1, dims))),
            kmeans: KMeans::from_centroids(Matrix::zeros(1, dims), 0),
            trained: false,
            retrains: 0,
            pending: Mutex::new(None),
        }
    }

    /// Whether a training run has completed (fore- or background).
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Completed training runs.
    pub fn retrains(&self) -> u64 {
        self.retrains
    }

    /// Current number of clusters (1 until trained).
    pub fn k(&self) -> usize {
        self.kmeans.k()
    }

    /// Maps a raw value to model feature space.
    ///
    /// With a PCA basis installed this goes through the sparse
    /// [`BitProjector`] (set bits only, no intermediate bit vector) — the
    /// per-PUT prediction cost the paper's Figure 6 reports as "latency of
    /// prediction per item".
    pub fn featurize(&self, value: &[u8]) -> Vec<f32> {
        debug_assert_eq!(value.len() * 8, self.value_bits);
        match &self.projector {
            Some(p) => p.project(value),
            None => bits_to_features(value),
        }
    }

    /// Predicts the cluster for a value — Algorithm 2 line 1.
    ///
    /// Convenience wrapper over [`ModelManager::predict_into`] with a
    /// throwaway scratch; hot paths hold a [`PredictScratch`] and call
    /// `predict_into` directly.
    pub fn predict(&self, value: &[u8]) -> usize {
        self.predict_into(value, &mut PredictScratch::default())
    }

    /// Predicts the cluster for a value with zero heap allocation
    /// (buffers in `scratch` are reused across calls).
    ///
    /// Non-PCA models go through the bit-domain packed LUT kernel
    /// (`‖c‖² + popcount(x) − 2⟨c,x⟩` over the raw bytes — see
    /// [`pnw_ml::packed`]); PCA models project through the sparse
    /// [`BitProjector`] into the scratch feature buffer and scan the
    /// (small) PCA-space centroids. Either way `scratch` afterwards holds
    /// the per-cluster distances, so a fallback ranking costs one argsort,
    /// not a second scan ([`ModelManager::ranked_after_predict`]).
    pub fn predict_into(&self, value: &[u8], scratch: &mut PredictScratch) -> usize {
        debug_assert_eq!(value.len() * 8, self.value_bits);
        scratch.dist.resize(self.kmeans.k(), 0.0);
        if let Some(packed) = &self.packed {
            packed.distances_into(value, &mut scratch.dist)
        } else if let Some(p) = &self.projector {
            scratch.features.resize(p.n_components(), 0.0);
            p.project_into(value, &mut scratch.features);
            self.kmeans.distances_into(&scratch.features, &mut scratch.dist)
        } else {
            // Defensive fallback (install always builds one of the two):
            // the reference float path through an owned feature buffer.
            scratch.features.resize(self.value_bits, 0.0);
            bits_into_features(value, &mut scratch.features);
            self.kmeans.distances_into(&scratch.features, &mut scratch.dist)
        }
    }

    /// Ranks all clusters nearest-first from the distances the last
    /// [`ModelManager::predict_into`] call left in `scratch` — the lazy
    /// half of the split prediction: the pool only asks for this when the
    /// predicted cluster's free list is empty, so the sort is never paid on
    /// the hit path. Ties break toward the lower cluster index, keeping
    /// `ranked[0]` identical to the predicted argmin.
    pub fn ranked_after_predict<'a>(&self, scratch: &'a mut PredictScratch) -> &'a [usize] {
        scratch.ranking.clear();
        scratch.ranking.extend(0..scratch.dist.len());
        let dist = &scratch.dist;
        scratch
            .ranking
            .sort_unstable_by(|&a, &b| dist[a].total_cmp(&dist[b]).then(a.cmp(&b)));
        &scratch.ranking
    }

    /// Predicts and returns all clusters ranked nearest-first (the eager
    /// convenience form; the store's hot path uses
    /// [`ModelManager::predict_into`] + [`ModelManager::ranked_after_predict`]
    /// so the ranking is only computed on pool fallback).
    pub fn predict_ranked(&self, value: &[u8]) -> (usize, Vec<usize>) {
        let mut scratch = PredictScratch::default();
        let cluster = self.predict_into(value, &mut scratch);
        let ranked = self.ranked_after_predict(&mut scratch).to_vec();
        (cluster, ranked)
    }

    /// The fitted K-means model — the reference float path equivalence
    /// tests and the predict microbench compare the packed kernel against.
    pub fn kmeans(&self) -> &KMeans {
        &self.kmeans
    }

    /// Whether predictions go through the bit-domain packed LUT kernel
    /// (false for PCA-configured models, which keep the sparse projector).
    pub fn uses_packed(&self) -> bool {
        self.packed.is_some()
    }

    #[allow(clippy::too_many_arguments)]
    fn fit(
        values: &[Vec<u8>],
        clusters: usize,
        auto_k: Option<(usize, usize)>,
        seed: u64,
        threads: usize,
        iters: usize,
        use_pca: bool,
        pca_components: usize,
        pca_sample: usize,
    ) -> TrainedModel {
        let start = Instant::now();
        // Featurize into the training tensor; for wide values this step is
        // memory-bound and worth parallelizing alongside PCA and K-means
        // (Figure 11 measures the whole pipeline).
        let bits = featurize_parallel(values, threads);

        let (pca, train_matrix) = if use_pca && bits.rows() > 0 {
            // Fit the basis on a subsample (the eigensolve is cubic), then
            // project everything.
            let sample_idx: Vec<usize> = stride_sample(bits.rows(), pca_sample);
            let sample = bits.select_rows(&sample_idx);
            let pca = Pca::fit_with_threads(&sample, pca_components, threads);
            let projected = pca.transform_with_threads(&bits, threads);
            (Some(pca), projected)
        } else {
            (None, bits)
        };

        // Elbow-method K selection (§V-A.1, Figure 4): sweep the SSE curve
        // on a subsample and pick the knee.
        let k = match auto_k {
            Some((lo, hi)) if train_matrix.rows() > 0 => {
                let sweep_idx = stride_sample(train_matrix.rows(), 512);
                let sweep = train_matrix.select_rows(&sweep_idx);
                let ks: Vec<usize> = (lo..=hi.min(sweep.rows().max(lo))).collect();
                let curve = pnw_ml::elbow::sse_curve(&sweep, &ks, seed);
                pnw_ml::elbow::elbow_point(&curve)
            }
            _ => clusters,
        };

        let kmeans = KMeans::fit(
            &train_matrix,
            &KMeansConfig::new(k)
                .with_seed(seed)
                .with_threads(threads)
                .with_max_iters(iters),
        );
        TrainedModel {
            kmeans,
            pca,
            elapsed: start.elapsed(),
        }
    }

    /// Trains synchronously on a snapshot of data-zone values (Algorithm 1)
    /// and installs the result. Returns the training time.
    pub fn train(&mut self, values: &[Vec<u8>]) -> Duration {
        let m = Self::fit(
            values,
            self.clusters,
            self.auto_k,
            self.seed.wrapping_add(self.retrains),
            self.threads,
            self.iters,
            self.use_pca,
            self.pca_components,
            self.pca_sample,
        );
        let elapsed = m.elapsed;
        self.install(m);
        elapsed
    }

    /// Starts a background training run on the snapshot. No-op if one is
    /// already pending.
    pub fn train_in_background(&mut self, values: Vec<Vec<u8>>) {
        if self.pending.get_mut().unwrap().is_some() {
            return;
        }
        let (tx, rx) = sync_channel(1);
        let (clusters, auto_k, seed, threads, iters) = (
            self.clusters,
            self.auto_k,
            self.seed.wrapping_add(self.retrains),
            self.threads,
            self.iters,
        );
        let (use_pca, pca_components, pca_sample) =
            (self.use_pca, self.pca_components, self.pca_sample);
        std::thread::spawn(move || {
            let m = Self::fit(
                &values, clusters, auto_k, seed, threads, iters, use_pca, pca_components,
                pca_sample,
            );
            // Receiver may have been dropped (store torn down) — ignore.
            let _ = tx.send(m);
        });
        *self.pending.get_mut().unwrap() = Some(rx);
    }

    /// Whether a background run is in flight.
    pub fn training_in_progress(&self) -> bool {
        self.pending.lock().unwrap().is_some()
    }

    /// Installs a finished background model if one is ready. Returns true
    /// when a swap happened (the store must then relabel its pool).
    pub fn try_install_background(&mut self) -> bool {
        let pending = self.pending.get_mut().unwrap();
        let Some(rx) = pending else {
            return false;
        };
        match rx.try_recv() {
            Ok(m) => {
                *pending = None;
                self.install(m);
                true
            }
            Err(TryRecvError::Empty) => false,
            Err(TryRecvError::Disconnected) => {
                *pending = None;
                false
            }
        }
    }

    /// Blocks until the in-flight background run (if any) is installed.
    pub fn wait_for_background(&mut self) -> bool {
        let Some(rx) = self.pending.get_mut().unwrap().take() else {
            return false;
        };
        match rx.recv() {
            Ok(m) => {
                self.install(m);
                true
            }
            Err(_) => false,
        }
    }

    fn install(&mut self, m: TrainedModel) {
        self.kmeans = m.kmeans;
        self.projector = m.pca.as_ref().map(Pca::bit_projector);
        self.pca = m.pca;
        // Rebuild the packed LUTs once per swap — the per-op hot path only
        // ever reads them. PCA models predict in projected space, where
        // inputs are no longer 0/1, so they keep the projector path.
        self.packed = (self.projector.is_none() && self.kmeans.dims() == self.value_bits)
            .then(|| PackedPredictor::from_centroids(self.kmeans.centroids()));
        self.trained = true;
        self.retrains += 1;
    }
}

/// Builds the samples × bits training matrix, splitting rows across
/// `threads` workers.
fn featurize_parallel(values: &[Vec<u8>], threads: usize) -> Matrix {
    use pnw_ml::featurize::bits_into_features;
    let n = values.len();
    if n == 0 {
        return Matrix::zeros(0, 0);
    }
    let bits = values[0].len() * 8;
    let mut m = Matrix::zeros(n, bits);
    let threads = threads.max(1).min(n);
    if threads == 1 {
        for (i, v) in values.iter().enumerate() {
            bits_into_features(v, m.row_mut(i));
        }
        return m;
    }
    let chunk = n.div_ceil(threads);
    let mut bands: Vec<&mut [f32]> = Vec::new();
    {
        let mut rest = m.as_mut_slice();
        while !rest.is_empty() {
            let take = (chunk * bits).min(rest.len());
            let (band, r) = rest.split_at_mut(take);
            bands.push(band);
            rest = r;
        }
    }
    std::thread::scope(|scope| {
        for (t, band) in bands.into_iter().enumerate() {
            scope.spawn(move || {
                for (off, dst) in band.chunks_mut(bits).enumerate() {
                    bits_into_features(&values[t * chunk + off], dst);
                }
            });
        }
    });
    m
}

/// Evenly-strided subsample of `0..n`, at most `cap` indices.
pub fn stride_sample(n: usize, cap: usize) -> Vec<usize> {
    if n <= cap {
        return (0..n).collect();
    }
    (0..cap).map(|i| i * n / cap).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> PnwConfig {
        PnwConfig::new(64, 4).with_clusters(2)
    }

    /// The sharded store shares one manager behind an `RwLock`; that only
    /// compiles if the manager is `Send + Sync`.
    #[test]
    fn manager_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelManager>();
    }

    #[test]
    fn untrained_predicts_zero() {
        let m = ModelManager::new(&small_cfg());
        assert!(!m.is_trained());
        assert_eq!(m.predict(&[0xFF, 0, 0, 0]), 0);
        assert_eq!(m.k(), 1);
    }

    #[test]
    fn train_separates_patterns() {
        let mut m = ModelManager::new(&small_cfg());
        let mut values: Vec<Vec<u8>> = Vec::new();
        for i in 0..20u8 {
            values.push(vec![0x00, 0x00, 0x00, i % 2]); // low pattern
            values.push(vec![0xFF, 0xFF, 0xFF, 0xF0 | (i % 2)]); // high pattern
        }
        m.train(&values);
        assert!(m.is_trained());
        assert_eq!(m.k(), 2);
        let lo = m.predict(&[0, 0, 0, 1]);
        let hi = m.predict(&[0xFF, 0xFF, 0xFF, 0xF1]);
        assert_ne!(lo, hi);
        let (c, ranked) = m.predict_ranked(&[0, 0, 0, 0]);
        assert_eq!(c, lo);
        assert_eq!(ranked.len(), 2);
    }

    #[test]
    fn background_training_installs() {
        let mut m = ModelManager::new(&small_cfg());
        let values: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i, 0, 0, 0]).collect();
        m.train_in_background(values);
        assert!(m.training_in_progress());
        assert!(m.wait_for_background());
        assert!(m.is_trained());
        assert_eq!(m.retrains(), 1);
        assert!(!m.training_in_progress());
    }

    #[test]
    fn second_background_request_is_noop_while_pending() {
        let mut m = ModelManager::new(&small_cfg());
        let values: Vec<Vec<u8>> = (0..200u8).map(|i| vec![i, i, 0, 0]).collect();
        m.train_in_background(values.clone());
        m.train_in_background(values); // ignored
        m.wait_for_background();
        assert_eq!(m.retrains(), 1);
    }

    #[test]
    fn pca_path_for_large_values() {
        let cfg = PnwConfig::new(32, 256).with_clusters(2); // 2048 bits > threshold
        assert!(cfg.uses_pca());
        let mut m = ModelManager::new(&cfg);
        let mut values = Vec::new();
        for i in 0..30u8 {
            let mut a = vec![0u8; 256];
            a[..128].fill(0xFF);
            a[200] = i;
            values.push(a);
            let mut b = vec![0u8; 256];
            b[128..].fill(0xFF);
            b[10] = i;
            values.push(b);
        }
        m.train(&values);
        // Features are PCA-projected: at most the requested components (the
        // basis truncates to the data's actual rank), far below 2048 bits.
        let dims = m.featurize(&values[0]).len();
        assert!(dims > 0 && dims <= cfg.pca.components, "dims={dims}");
        // The two macro-patterns still separate after projection.
        assert_ne!(m.predict(&values[0]), m.predict(&values[1]));
    }

    #[test]
    fn packed_path_matches_reference_float_path() {
        let mut m = ModelManager::new(&small_cfg());
        let values: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i, !i, i ^ 0x3C, i / 3]).collect();
        m.train(&values);
        assert!(m.uses_packed());
        let mut scratch = PredictScratch::new();
        for v in &values {
            let packed = m.predict_into(v, &mut scratch);
            let float = m.kmeans().predict(&bits_to_features(v));
            assert_eq!(packed, float, "value {v:?}");
            // Scratch distances match the float scan within tolerance.
            for (c, &d) in scratch.distances().iter().enumerate() {
                let r = pnw_ml::matrix::sq_dist(m.kmeans().centroid(c), &bits_to_features(v));
                assert!((d - r).abs() <= 1e-3 * (1.0 + r), "c{c}: {d} vs {r}");
            }
        }
    }

    #[test]
    fn ranked_after_predict_orders_scratch_distances() {
        let mut m = ModelManager::new(&PnwConfig::new(64, 4).with_clusters(4));
        let values: Vec<Vec<u8>> = (0..48u8)
            .map(|i| match i % 4 {
                0 => vec![0x00, 0x00, 0x00, i % 2],
                1 => vec![0xFF, 0xFF, 0xFF, i % 2],
                2 => vec![0x0F, 0x0F, 0x0F, i % 2],
                _ => vec![0xF0, 0xF0, 0xF0, i % 2],
            })
            .collect();
        m.train(&values);
        let mut scratch = PredictScratch::new();
        let probe = [0xFFu8, 0xFF, 0xF0, 0x00];
        let cluster = m.predict_into(&probe, &mut scratch);
        let dists = scratch.distances().to_vec();
        let ranked = m.ranked_after_predict(&mut scratch);
        assert_eq!(ranked.len(), m.k());
        assert_eq!(ranked[0], cluster, "nearest-first starts at the argmin");
        for w in ranked.windows(2) {
            assert!(dists[w[0]] <= dists[w[1]]);
        }
        // And the eager form agrees with the split form.
        let (c2, ranked2) = m.predict_ranked(&probe);
        assert_eq!(c2, cluster);
        assert_eq!(ranked2, ranked.to_vec());
    }

    #[test]
    fn pca_model_keeps_projector_path_with_scratch() {
        let cfg = PnwConfig::new(32, 256).with_clusters(2);
        let mut m = ModelManager::new(&cfg);
        assert!(m.uses_packed(), "untrained model is bit-domain");
        let mut values = Vec::new();
        for i in 0..30u8 {
            let mut a = vec![0u8; 256];
            a[..128].fill(0xFF);
            a[200] = i;
            values.push(a);
            let mut b = vec![0u8; 256];
            b[128..].fill(0xFF);
            b[10] = i;
            values.push(b);
        }
        m.train(&values);
        assert!(!m.uses_packed(), "PCA model keeps the projector path");
        let mut scratch = PredictScratch::new();
        for v in values.iter().take(8) {
            assert_eq!(
                m.predict_into(v, &mut scratch),
                m.kmeans().predict(&m.featurize(v)),
            );
        }
    }

    #[test]
    fn retrain_rebuilds_packed_tables() {
        let mut m = ModelManager::new(&small_cfg());
        let low: Vec<Vec<u8>> = (0..20u8).map(|i| vec![0, 0, 0, i % 2]).collect();
        let high: Vec<Vec<u8>> = (0..20u8).map(|i| vec![0xFF, 0xFF, 0xFF, 0xF0 | (i % 2)]).collect();
        let mut both = low.clone();
        both.extend(high.clone());
        m.train(&both);
        let mut scratch = PredictScratch::new();
        let before = m.predict_into(&[0xFF, 0xFF, 0xFF, 0xFF], &mut scratch);
        // Retrain on *only* the low family: the swapped-in model must drive
        // predictions (stale LUTs would keep the old separation).
        m.train(&low);
        for v in &both {
            assert_eq!(
                m.predict_into(v, &mut scratch),
                m.kmeans().predict(&bits_to_features(v)),
            );
        }
        let _ = before;
    }

    #[test]
    fn stride_sample_bounds() {
        assert_eq!(stride_sample(5, 10), vec![0, 1, 2, 3, 4]);
        let s = stride_sample(100, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 0);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(*s.last().unwrap() < 100);
    }

    #[test]
    fn auto_k_picks_cluster_count_near_structure() {
        let cfg = PnwConfig::new(64, 4).with_auto_k(1, 8);
        let mut m = ModelManager::new(&cfg);
        // Three well-separated byte families.
        let mut values = Vec::new();
        for i in 0..60u8 {
            let v = match i % 3 {
                0 => vec![0x00, 0x00, 0x00, i % 2],
                1 => vec![0xFF, 0xFF, 0x00, i % 2],
                _ => vec![0x0F, 0xF0, 0xFF, i % 2],
            };
            values.push(v);
        }
        m.train(&values);
        let k = m.k();
        // 3 byte families × the parity sub-bit = between 3 and 6 real
        // clusters; the elbow must land in that structured range, not at
        // the extremes of the sweep.
        assert!((2..=6).contains(&k), "elbow chose k={k}");
    }

    #[test]
    fn training_time_reported() {
        let mut m = ModelManager::new(&small_cfg());
        let values: Vec<Vec<u8>> = (0..50u8).map(|i| vec![i, 0, i, 0]).collect();
        let t = m.train(&values);
        assert!(t.as_nanos() > 0);
    }
}
