//! The ML model lifecycle: packed-domain training, PCA, background
//! retraining, and immutable epoch-numbered prediction snapshots (§V-A.1).
//!
//! *"The ML model is constructed on DRAM as it does not need to be
//! persistent and can be reconstructed after a crash."* Two types split the
//! paper's "model" along its read/write seam:
//!
//! * [`ModelSnapshot`] — the immutable prediction state (centroids, packed
//!   LUTs, PCA projector), shared as an `Arc` and swapped wholesale at each
//!   (re)train. Prediction through a snapshot takes **no lock**: every
//!   [`ShardEngine`](crate::ShardEngine) holds its own `Arc` clone and a
//!   publish replaces it under the shard's existing lock, so a reader can
//!   never observe a half-updated model.
//! * [`ModelManager`] — the trainer: configuration, the background-training
//!   channel, retrain counters. Touched only on train/install boundaries,
//!   never on the op hot path.
//!
//! Training runs in the packed bit domain end to end for raw bit-feature
//! models ([`pnw_ml::packedmatrix`]): the sampled values are packed into
//! `u64` words instead of being expanded 32× into floats, and both the
//! assignment and centroid-update steps run on words. PCA-configured
//! models keep the float pipeline (projected space is not 0/1). Training
//! snapshots are capped by deterministic reservoir sampling
//! ([`reservoir_sample`], `train_sample_cap` on [`PnwConfig`]) so retrain
//! cost stops scaling with data-zone size.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, TryRecvError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use pnw_ml::featurize::bits_into_features;
use pnw_ml::kmeans::{KMeans, KMeansConfig};
use pnw_ml::matrix::Matrix;
use pnw_ml::packed::PackedPredictor;
use pnw_ml::packedmatrix::PackedMatrix;
use pnw_ml::pca::{BitProjector, Pca};

use crate::config::PnwConfig;
use crate::metrics::TrainStats;

/// Reusable buffers for the allocation-free prediction path.
///
/// Snapshots are shared read-only across shards, so the mutable scratch
/// lives with the caller — each [`ShardEngine`](crate::ShardEngine) owns
/// one and threads it through every prediction, making steady-state
/// PUT/DELETE heap-allocation-free. Buffers grow to the model's K (and the
/// PCA component count) on first use and are reused afterwards.
#[derive(Debug, Default)]
pub struct PredictScratch {
    /// PCA-space feature buffer (projector models only).
    features: Vec<f32>,
    /// Per-cluster squared distances from the last
    /// [`ModelSnapshot::predict_into`] call.
    dist: Vec<f32>,
    /// Cluster-index buffer for [`ModelSnapshot::ranked_after_predict`].
    ranking: Vec<usize>,
}

impl PredictScratch {
    /// A fresh scratch (buffers allocate lazily on first prediction).
    pub fn new() -> Self {
        Self::default()
    }

    /// Per-cluster squared distances from the last prediction (empty
    /// before the first [`ModelSnapshot::predict_into`] call).
    pub fn distances(&self) -> &[f32] {
        &self.dist
    }
}

/// Result of one training run.
pub struct TrainedModel {
    /// The fitted K-means model (over raw bits or PCA space).
    pub kmeans: KMeans,
    /// The PCA basis, when the value size warranted one.
    pub pca: Option<Pca>,
    /// Wall-clock training time (the Figure 11 measurement).
    pub elapsed: Duration,
    /// Snapshot size before the reservoir cap.
    pub samples_pre_cap: usize,
    /// Samples actually trained on (≤ `train_sample_cap`).
    pub samples_post_cap: usize,
}

/// The immutable prediction state of one trained (or untrained) model:
/// centroids, the packed bit-domain LUTs, and the PCA projector when one
/// applies. Epoch-numbered; published as an `Arc` and never mutated, so
/// predictions take no lock and can never see a torn model.
pub struct ModelSnapshot {
    value_bits: usize,
    kmeans: KMeans,
    /// Fast byte→PCA-space projector (PCA models only).
    projector: Option<BitProjector>,
    /// Bit-domain LUT predictor over the centroids (non-PCA models only).
    /// Built once when the snapshot is created, read-only afterwards.
    packed: Option<PackedPredictor>,
    trained: bool,
    /// Install counter: 0 for the untrained placeholder, then one per
    /// completed (re)train. Monotonic per store.
    epoch: u64,
}

impl ModelSnapshot {
    /// The untrained placeholder: one all-zeros centroid over raw bits, so
    /// predictions are total from the first operation (matching a store
    /// whose cells are all zero).
    pub fn untrained(value_bits: usize) -> Self {
        ModelSnapshot {
            value_bits,
            kmeans: KMeans::from_centroids(Matrix::zeros(1, value_bits), 0),
            projector: None,
            packed: Some(PackedPredictor::from_centroids(&Matrix::zeros(
                1, value_bits,
            ))),
            trained: false,
            epoch: 0,
        }
    }

    /// Whether this snapshot came from a completed training run.
    pub fn is_trained(&self) -> bool {
        self.trained
    }

    /// Install counter (0 = untrained placeholder).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.kmeans.k()
    }

    /// Dimensionality of the model's feature space: the PCA component
    /// count for projector models, the raw bit count otherwise.
    pub fn feature_dims(&self) -> usize {
        match &self.projector {
            Some(p) => p.n_components(),
            None => self.value_bits,
        }
    }

    /// Whether predictions go through the bit-domain packed LUT kernel
    /// (false for PCA models, which keep the sparse projector).
    pub fn uses_packed(&self) -> bool {
        self.packed.is_some()
    }

    /// The fitted K-means model — the reference float path the equivalence
    /// tests and the predict microbench compare the packed kernel against.
    pub fn kmeans(&self) -> &KMeans {
        &self.kmeans
    }

    /// Predicts the cluster for a value — Algorithm 2 line 1.
    ///
    /// Convenience wrapper over [`ModelSnapshot::predict_into`] with a
    /// throwaway scratch; hot paths hold a [`PredictScratch`] and call
    /// `predict_into` directly.
    pub fn predict(&self, value: &[u8]) -> usize {
        self.predict_into(value, &mut PredictScratch::default())
    }

    /// Predicts the cluster for a value with zero heap allocation
    /// (buffers in `scratch` are reused across calls).
    ///
    /// Non-PCA models go through the bit-domain packed LUT kernel
    /// (`‖c‖² + popcount(x) − 2⟨c,x⟩` over the raw bytes — see
    /// [`pnw_ml::packed`]); PCA models project through the sparse
    /// [`BitProjector`] into the scratch feature buffer and scan the
    /// (small) PCA-space centroids. Either way `scratch` afterwards holds
    /// the per-cluster distances, so a fallback ranking costs one argsort,
    /// not a second scan ([`ModelSnapshot::ranked_after_predict`]).
    pub fn predict_into(&self, value: &[u8], scratch: &mut PredictScratch) -> usize {
        debug_assert_eq!(value.len() * 8, self.value_bits);
        scratch.dist.resize(self.kmeans.k(), 0.0);
        if let Some(packed) = &self.packed {
            packed.distances_into(value, &mut scratch.dist)
        } else if let Some(p) = &self.projector {
            scratch.features.resize(p.n_components(), 0.0);
            p.project_into(value, &mut scratch.features);
            self.kmeans
                .distances_into(&scratch.features, &mut scratch.dist)
        } else {
            // Defensive fallback (install always builds one of the two):
            // the reference float path through the scratch feature buffer.
            scratch.features.resize(self.value_bits, 0.0);
            bits_into_features(value, &mut scratch.features);
            self.kmeans
                .distances_into(&scratch.features, &mut scratch.dist)
        }
    }

    /// Ranks all clusters nearest-first from the distances the last
    /// [`ModelSnapshot::predict_into`] call left in `scratch` — the lazy
    /// half of the split prediction: the pool only asks for this when the
    /// predicted cluster's free list is empty, so the sort is never paid on
    /// the hit path. Ties break toward the lower cluster index, keeping
    /// `ranked[0]` identical to the predicted argmin.
    pub fn ranked_after_predict<'a>(&self, scratch: &'a mut PredictScratch) -> &'a [usize] {
        scratch.ranking.clear();
        scratch.ranking.extend(0..scratch.dist.len());
        let dist = &scratch.dist;
        scratch
            .ranking
            .sort_unstable_by(|&a, &b| dist[a].total_cmp(&dist[b]).then(a.cmp(&b)));
        &scratch.ranking
    }
}

/// Owns the training machinery and the current published snapshot.
pub struct ModelManager {
    clusters: usize,
    auto_k: Option<(usize, usize)>,
    seed: u64,
    threads: usize,
    iters: usize,
    value_bits: usize,
    use_pca: bool,
    pca_components: usize,
    pca_sample: usize,
    sample_cap: usize,

    current: Arc<ModelSnapshot>,
    retrains: u64,
    last_train: Duration,
    samples_pre_cap: usize,
    samples_post_cap: usize,
    /// In-flight background training run. Behind a `Mutex` only so that the
    /// manager stays `Sync`; mutating methods go through `get_mut` (no lock
    /// traffic).
    pending: Mutex<Option<Receiver<TrainedModel>>>,
}

impl ModelManager {
    /// Creates an untrained manager; predictions all map to cluster 0 until
    /// the first training (matching a store whose cells are all zero).
    pub fn new(cfg: &PnwConfig) -> Self {
        let value_bits = cfg.value_size * 8;
        ModelManager {
            clusters: cfg.clusters,
            auto_k: cfg.auto_k,
            seed: cfg.seed,
            threads: cfg.train_threads,
            iters: cfg.train_iters,
            value_bits,
            use_pca: cfg.uses_pca(),
            pca_components: cfg.pca.components,
            pca_sample: cfg.pca.sample,
            sample_cap: cfg.train_sample_cap,
            current: Arc::new(ModelSnapshot::untrained(value_bits)),
            retrains: 0,
            last_train: Duration::ZERO,
            samples_pre_cap: 0,
            samples_post_cap: 0,
            pending: Mutex::new(None),
        }
    }

    /// The current published snapshot. Engines clone this `Arc` and predict
    /// from it without ever touching the manager again.
    pub fn snapshot(&self) -> Arc<ModelSnapshot> {
        Arc::clone(&self.current)
    }

    /// Whether a training run has completed (fore- or background).
    pub fn is_trained(&self) -> bool {
        self.current.is_trained()
    }

    /// Completed training runs.
    pub fn retrains(&self) -> u64 {
        self.retrains
    }

    /// Retrain observability: last-train wall clock, snapshot sizes before
    /// and after the reservoir cap, and the model epoch.
    pub fn train_stats(&self) -> TrainStats {
        TrainStats {
            last_train_wall: self.last_train,
            samples_pre_cap: self.samples_pre_cap,
            samples_post_cap: self.samples_post_cap,
            epoch: self.retrains,
        }
    }

    /// Current number of clusters (1 until trained).
    pub fn k(&self) -> usize {
        self.current.k()
    }

    /// [`ModelSnapshot::predict`] on the current snapshot.
    pub fn predict(&self, value: &[u8]) -> usize {
        self.current.predict(value)
    }

    /// [`ModelSnapshot::predict_into`] on the current snapshot.
    pub fn predict_into(&self, value: &[u8], scratch: &mut PredictScratch) -> usize {
        self.current.predict_into(value, scratch)
    }

    /// [`ModelSnapshot::ranked_after_predict`] on the current snapshot.
    pub fn ranked_after_predict<'a>(&self, scratch: &'a mut PredictScratch) -> &'a [usize] {
        self.current.ranked_after_predict(scratch)
    }

    /// [`ModelSnapshot::kmeans`] of the current snapshot.
    pub fn kmeans(&self) -> &KMeans {
        self.current.kmeans()
    }

    /// [`ModelSnapshot::feature_dims`] of the current snapshot.
    pub fn feature_dims(&self) -> usize {
        self.current.feature_dims()
    }

    /// Whether the current snapshot predicts through the packed LUT kernel.
    pub fn uses_packed(&self) -> bool {
        self.current.uses_packed()
    }

    #[allow(clippy::too_many_arguments)]
    fn fit(
        values: &[Vec<u8>],
        clusters: usize,
        auto_k: Option<(usize, usize)>,
        seed: u64,
        threads: usize,
        iters: usize,
        use_pca: bool,
        pca_components: usize,
        pca_sample: usize,
        sample_cap: usize,
    ) -> TrainedModel {
        let start = Instant::now();
        let samples_pre_cap = values.len();
        // Deterministic reservoir cap: retrain cost stops scaling with
        // data-zone size. Seeded by the (per-retrain) training seed.
        let capped: Vec<&[u8]> = reservoir_sample(values.len(), sample_cap, seed)
            .into_iter()
            .map(|i| values[i].as_slice())
            .collect();
        let samples_post_cap = capped.len();

        let kmeans_cfg = |k: usize| {
            KMeansConfig::new(k)
                .with_seed(seed)
                .with_threads(threads)
                .with_max_iters(iters)
        };

        let (pca, kmeans) = if use_pca && !capped.is_empty() {
            // Float pipeline: PCA space is not 0/1, so featurize, fit the
            // basis on a subsample (the eigensolve is cubic), project, fit.
            let bits = featurize_parallel(&capped, threads);
            let sample_idx: Vec<usize> = stride_sample(bits.rows(), pca_sample);
            let sample = bits.select_rows(&sample_idx);
            let pca = Pca::fit_with_threads(&sample, pca_components, threads);
            let projected = pca.transform_with_threads(&bits, threads);
            let k = match auto_k {
                Some((lo, hi)) if projected.rows() > 0 => {
                    let sweep = projected.select_rows(&stride_sample(projected.rows(), 512));
                    elbow_k(&sweep, lo, hi, seed)
                }
                _ => clusters,
            };
            (Some(pca), KMeans::fit(&projected, &kmeans_cfg(k)))
        } else {
            // Packed bit-domain pipeline: no float tensor, no featurize.
            let packed = PackedMatrix::from_values(&capped);
            let k = match auto_k {
                // The elbow sweep runs on a ≤512-row float subsample — the
                // one place the bit path still expands to floats, bounded
                // and cold.
                Some((lo, hi)) if packed.rows() > 0 => {
                    let sweep_idx = stride_sample(packed.rows(), 512);
                    let sweep =
                        pnw_ml::kmeans::TrainSet::select(&packed, &sweep_idx).to_matrix();
                    elbow_k(&sweep, lo, hi, seed)
                }
                _ => clusters,
            };
            (None, KMeans::fit_set(&packed, &kmeans_cfg(k)))
        };

        TrainedModel {
            kmeans,
            pca,
            elapsed: start.elapsed(),
            samples_pre_cap,
            samples_post_cap,
        }
    }

    /// Trains synchronously on a snapshot of data-zone values (Algorithm 1)
    /// and installs the result. Returns the training time.
    pub fn train(&mut self, values: &[Vec<u8>]) -> Duration {
        let m = Self::fit(
            values,
            self.clusters,
            self.auto_k,
            self.seed.wrapping_add(self.retrains),
            self.threads,
            self.iters,
            self.use_pca,
            self.pca_components,
            self.pca_sample,
            self.sample_cap,
        );
        let elapsed = m.elapsed;
        self.install(m);
        elapsed
    }

    /// Starts a background training run on the snapshot. No-op if one is
    /// already pending. When `done` is given, it is set (release-ordered)
    /// after the trained model is queued — a store can poll that one atomic
    /// on its op path instead of taking any lock.
    pub fn train_in_background_with(
        &mut self,
        values: Vec<Vec<u8>>,
        done: Option<Arc<AtomicBool>>,
    ) {
        if self.pending.get_mut().unwrap().is_some() {
            return;
        }
        let (tx, rx) = sync_channel(1);
        let (clusters, auto_k, seed, threads, iters) = (
            self.clusters,
            self.auto_k,
            self.seed.wrapping_add(self.retrains),
            self.threads,
            self.iters,
        );
        let (use_pca, pca_components, pca_sample, sample_cap) = (
            self.use_pca,
            self.pca_components,
            self.pca_sample,
            self.sample_cap,
        );
        std::thread::spawn(move || {
            // Drop guard: the flag fires on *every* exit — after the send
            // on success (so a ready observation always finds the model in
            // the channel), and on unwind if training panics (the sender
            // is dropped first, so the observer's try_recv sees
            // Disconnected and clears its pending state instead of wedging
            // background retraining forever).
            struct SignalOnDrop(Option<Arc<AtomicBool>>);
            impl Drop for SignalOnDrop {
                fn drop(&mut self) {
                    if let Some(flag) = self.0.take() {
                        flag.store(true, Ordering::Release);
                    }
                }
            }
            let signal = SignalOnDrop(done);
            let m = Self::fit(
                &values,
                clusters,
                auto_k,
                seed,
                threads,
                iters,
                use_pca,
                pca_components,
                pca_sample,
                sample_cap,
            );
            // Receiver may have been dropped (store torn down) — ignore.
            let _ = tx.send(m);
            drop(signal);
        });
        *self.pending.get_mut().unwrap() = Some(rx);
    }

    /// [`ModelManager::train_in_background_with`] without a completion flag.
    pub fn train_in_background(&mut self, values: Vec<Vec<u8>>) {
        self.train_in_background_with(values, None);
    }

    /// Whether a background run is in flight.
    pub fn training_in_progress(&self) -> bool {
        self.pending.lock().unwrap().is_some()
    }

    /// Installs a finished background model if one is ready. Returns true
    /// when a swap happened (the store must then publish
    /// [`ModelManager::snapshot`] to its engines, which relabel their
    /// pools).
    pub fn try_install_background(&mut self) -> bool {
        let pending = self.pending.get_mut().unwrap();
        let Some(rx) = pending else {
            return false;
        };
        match rx.try_recv() {
            Ok(m) => {
                *pending = None;
                self.install(m);
                true
            }
            Err(TryRecvError::Empty) => false,
            Err(TryRecvError::Disconnected) => {
                *pending = None;
                false
            }
        }
    }

    /// Blocks until the in-flight background run (if any) is installed.
    pub fn wait_for_background(&mut self) -> bool {
        let Some(rx) = self.pending.get_mut().unwrap().take() else {
            return false;
        };
        match rx.recv() {
            Ok(m) => {
                self.install(m);
                true
            }
            Err(_) => false,
        }
    }

    fn install(&mut self, m: TrainedModel) {
        self.retrains += 1;
        self.last_train = m.elapsed;
        self.samples_pre_cap = m.samples_pre_cap;
        self.samples_post_cap = m.samples_post_cap;
        // Build the new snapshot's packed LUTs once per swap — the per-op
        // hot path only ever reads them. PCA models predict in projected
        // space, where inputs are no longer 0/1, so they keep the
        // projector path.
        let projector = m.pca.as_ref().map(Pca::bit_projector);
        let packed = (projector.is_none() && m.kmeans.dims() == self.value_bits)
            .then(|| PackedPredictor::from_centroids(m.kmeans.centroids()));
        self.current = Arc::new(ModelSnapshot {
            value_bits: self.value_bits,
            kmeans: m.kmeans,
            projector,
            packed,
            trained: true,
            epoch: self.retrains,
        });
    }
}

/// Elbow-method K selection (§V-A.1, Figure 4): sweep the SSE curve over
/// `lo..=hi` on the (already subsampled, ≤512-row) `sweep` matrix and pick
/// the knee.
fn elbow_k(sweep: &Matrix, lo: usize, hi: usize, seed: u64) -> usize {
    let ks: Vec<usize> = (lo..=hi.min(sweep.rows().max(lo))).collect();
    let curve = pnw_ml::elbow::sse_curve(sweep, &ks, seed);
    pnw_ml::elbow::elbow_point(&curve)
}

/// Builds the samples × bits training matrix, splitting rows across
/// `threads` workers. Only the PCA pipeline pays this cost now; the bit
/// path trains on [`PackedMatrix`] directly.
fn featurize_parallel<V: AsRef<[u8]> + Sync>(values: &[V], threads: usize) -> Matrix {
    let n = values.len();
    if n == 0 {
        return Matrix::zeros(0, 0);
    }
    let bits = values[0].as_ref().len() * 8;
    let mut m = Matrix::zeros(n, bits);
    let threads = threads.max(1).min(n);
    if threads == 1 {
        for (i, v) in values.iter().enumerate() {
            bits_into_features(v.as_ref(), m.row_mut(i));
        }
        return m;
    }
    let chunk = n.div_ceil(threads);
    let mut bands: Vec<&mut [f32]> = Vec::new();
    {
        let mut rest = m.as_mut_slice();
        while !rest.is_empty() {
            let take = (chunk * bits).min(rest.len());
            let (band, r) = rest.split_at_mut(take);
            bands.push(band);
            rest = r;
        }
    }
    std::thread::scope(|scope| {
        for (t, band) in bands.into_iter().enumerate() {
            scope.spawn(move || {
                for (off, dst) in band.chunks_mut(bits).enumerate() {
                    bits_into_features(values[t * chunk + off].as_ref(), dst);
                }
            });
        }
    });
    m
}

/// Evenly-strided subsample of `0..n`, at most `cap` indices.
pub fn stride_sample(n: usize, cap: usize) -> Vec<usize> {
    if n <= cap {
        return (0..n).collect();
    }
    (0..cap).map(|i| i * n / cap).collect()
}

/// Deterministic reservoir sample (Algorithm R) of `cap` indices from
/// `0..n`, sorted ascending. Identity when `n <= cap`; the same
/// `(n, cap, seed)` always yields the same indices, so capped retraining
/// stays reproducible (and `shards = 1` stays bit-for-bit equivalent to the
/// single-threaded store).
pub fn reservoir_sample(n: usize, cap: usize, seed: u64) -> Vec<usize> {
    if n <= cap {
        return (0..n).collect();
    }
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<usize> = (0..cap).collect();
    for i in cap..n {
        let j = rng.gen_range(0..i + 1);
        if j < cap {
            out[j] = i;
        }
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pnw_ml::featurize::bits_to_features;

    fn small_cfg() -> PnwConfig {
        PnwConfig::new(64, 4).with_clusters(2)
    }

    /// The sharded store keeps the trainer behind a `Mutex` and snapshots
    /// behind `Arc`s; both only compile if these are `Send + Sync`.
    #[test]
    fn manager_and_snapshot_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ModelManager>();
        assert_send_sync::<ModelSnapshot>();
    }

    #[test]
    fn untrained_predicts_zero() {
        let m = ModelManager::new(&small_cfg());
        assert!(!m.is_trained());
        assert_eq!(m.predict(&[0xFF, 0, 0, 0]), 0);
        assert_eq!(m.k(), 1);
        assert_eq!(m.snapshot().epoch(), 0);
    }

    #[test]
    fn train_separates_patterns() {
        let mut m = ModelManager::new(&small_cfg());
        let mut values: Vec<Vec<u8>> = Vec::new();
        for i in 0..20u8 {
            values.push(vec![0x00, 0x00, 0x00, i % 2]); // low pattern
            values.push(vec![0xFF, 0xFF, 0xFF, 0xF0 | (i % 2)]); // high pattern
        }
        m.train(&values);
        assert!(m.is_trained());
        assert_eq!(m.k(), 2);
        let lo = m.predict(&[0, 0, 0, 1]);
        let hi = m.predict(&[0xFF, 0xFF, 0xFF, 0xF1]);
        assert_ne!(lo, hi);
        let mut scratch = PredictScratch::new();
        let c = m.predict_into(&[0, 0, 0, 0], &mut scratch);
        assert_eq!(c, lo);
        assert_eq!(m.ranked_after_predict(&mut scratch).len(), 2);
    }

    #[test]
    fn background_training_installs() {
        let mut m = ModelManager::new(&small_cfg());
        let values: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i, 0, 0, 0]).collect();
        m.train_in_background(values);
        assert!(m.training_in_progress());
        assert!(m.wait_for_background());
        assert!(m.is_trained());
        assert_eq!(m.retrains(), 1);
        assert!(!m.training_in_progress());
        assert_eq!(m.snapshot().epoch(), 1);
    }

    #[test]
    fn background_done_flag_set_after_model_is_ready() {
        let mut m = ModelManager::new(&small_cfg());
        let values: Vec<Vec<u8>> = (0..60u8).map(|i| vec![i, i / 2, 0, 0]).collect();
        let done = Arc::new(AtomicBool::new(false));
        m.train_in_background_with(values, Some(Arc::clone(&done)));
        // Spin until the flag flips, then the model must install instantly.
        while !done.load(Ordering::Acquire) {
            std::thread::yield_now();
        }
        assert!(m.try_install_background(), "flag implies a queued model");
        assert_eq!(m.retrains(), 1);
    }

    #[test]
    fn second_background_request_is_noop_while_pending() {
        let mut m = ModelManager::new(&small_cfg());
        let values: Vec<Vec<u8>> = (0..200u8).map(|i| vec![i, i, 0, 0]).collect();
        m.train_in_background(values.clone());
        m.train_in_background(values); // ignored
        m.wait_for_background();
        assert_eq!(m.retrains(), 1);
    }

    #[test]
    fn pca_path_for_large_values() {
        let cfg = PnwConfig::new(32, 256).with_clusters(2); // 2048 bits > threshold
        assert!(cfg.uses_pca());
        let mut m = ModelManager::new(&cfg);
        let mut values = Vec::new();
        for i in 0..30u8 {
            let mut a = vec![0u8; 256];
            a[..128].fill(0xFF);
            a[200] = i;
            values.push(a);
            let mut b = vec![0u8; 256];
            b[128..].fill(0xFF);
            b[10] = i;
            values.push(b);
        }
        m.train(&values);
        // Features are PCA-projected: at most the requested components (the
        // basis truncates to the data's actual rank), far below 2048 bits.
        let dims = m.feature_dims();
        assert!(dims > 0 && dims <= cfg.pca.components, "dims={dims}");
        // The two macro-patterns still separate after projection.
        assert_ne!(m.predict(&values[0]), m.predict(&values[1]));
    }

    #[test]
    fn packed_path_matches_reference_float_path() {
        let mut m = ModelManager::new(&small_cfg());
        let values: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i, !i, i ^ 0x3C, i / 3]).collect();
        m.train(&values);
        assert!(m.uses_packed());
        let mut scratch = PredictScratch::new();
        for v in &values {
            let packed = m.predict_into(v, &mut scratch);
            let float = m.kmeans().predict(&bits_to_features(v));
            assert_eq!(packed, float, "value {v:?}");
            // Scratch distances match the float scan within tolerance.
            for (c, &d) in scratch.distances().iter().enumerate() {
                let r = pnw_ml::matrix::sq_dist(m.kmeans().centroid(c), &bits_to_features(v));
                assert!((d - r).abs() <= 1e-3 * (1.0 + r), "c{c}: {d} vs {r}");
            }
        }
    }

    #[test]
    fn ranked_after_predict_orders_scratch_distances() {
        let mut m = ModelManager::new(&PnwConfig::new(64, 4).with_clusters(4));
        let values: Vec<Vec<u8>> = (0..48u8)
            .map(|i| match i % 4 {
                0 => vec![0x00, 0x00, 0x00, i % 2],
                1 => vec![0xFF, 0xFF, 0xFF, i % 2],
                2 => vec![0x0F, 0x0F, 0x0F, i % 2],
                _ => vec![0xF0, 0xF0, 0xF0, i % 2],
            })
            .collect();
        m.train(&values);
        let mut scratch = PredictScratch::new();
        let probe = [0xFFu8, 0xFF, 0xF0, 0x00];
        let cluster = m.predict_into(&probe, &mut scratch);
        let dists = scratch.distances().to_vec();
        let ranked = m.ranked_after_predict(&mut scratch);
        assert_eq!(ranked.len(), m.k());
        assert_eq!(ranked[0], cluster, "nearest-first starts at the argmin");
        for w in ranked.windows(2) {
            assert!(dists[w[0]] <= dists[w[1]]);
        }
    }

    #[test]
    fn pca_model_keeps_projector_path_with_scratch() {
        let cfg = PnwConfig::new(32, 256).with_clusters(2);
        let mut m = ModelManager::new(&cfg);
        assert!(m.uses_packed(), "untrained model is bit-domain");
        let mut values = Vec::new();
        for i in 0..30u8 {
            let mut a = vec![0u8; 256];
            a[..128].fill(0xFF);
            a[200] = i;
            values.push(a);
            let mut b = vec![0u8; 256];
            b[128..].fill(0xFF);
            b[10] = i;
            values.push(b);
        }
        m.train(&values);
        assert!(!m.uses_packed(), "PCA model keeps the projector path");
        let mut scratch = PredictScratch::new();
        for v in values.iter().take(8) {
            let c = m.predict_into(v, &mut scratch);
            // The scratch distances are the full PCA-space scan; their
            // argmin must be the returned cluster.
            let best = scratch
                .distances()
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(c, best);
        }
    }

    #[test]
    fn retrain_rebuilds_packed_tables() {
        let mut m = ModelManager::new(&small_cfg());
        let low: Vec<Vec<u8>> = (0..20u8).map(|i| vec![0, 0, 0, i % 2]).collect();
        let high: Vec<Vec<u8>> = (0..20u8).map(|i| vec![0xFF, 0xFF, 0xFF, 0xF0 | (i % 2)]).collect();
        let mut both = low.clone();
        both.extend(high.clone());
        m.train(&both);
        let mut scratch = PredictScratch::new();
        let before = m.predict_into(&[0xFF, 0xFF, 0xFF, 0xFF], &mut scratch);
        // Retrain on *only* the low family: the swapped-in model must drive
        // predictions (stale LUTs would keep the old separation).
        m.train(&low);
        for v in &both {
            assert_eq!(
                m.predict_into(v, &mut scratch),
                m.kmeans().predict(&bits_to_features(v)),
            );
        }
        let _ = before;
    }

    #[test]
    fn snapshots_are_immutable_across_retrains() {
        let mut m = ModelManager::new(&small_cfg());
        let low: Vec<Vec<u8>> = (0..20u8).map(|i| vec![0, 0, 0, i % 2]).collect();
        m.train(&low);
        let old = m.snapshot();
        assert_eq!(old.epoch(), 1);
        let high: Vec<Vec<u8>> = (0..20u8).map(|i| vec![0xFF, 0xFF, 0xFF, i % 2]).collect();
        m.train(&high);
        // The old Arc still predicts under the old centroids — a reader
        // holding it mid-swap can never see a torn model.
        assert_eq!(old.epoch(), 1);
        assert_eq!(m.snapshot().epoch(), 2);
        let mut scratch = PredictScratch::new();
        let v = [0u8, 0, 0, 0];
        assert_eq!(
            old.predict_into(&v, &mut scratch),
            old.kmeans().predict(&bits_to_features(&v))
        );
    }

    #[test]
    fn stride_sample_bounds() {
        assert_eq!(stride_sample(5, 10), vec![0, 1, 2, 3, 4]);
        let s = stride_sample(100, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s[0], 0);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
        assert!(*s.last().unwrap() < 100);
    }

    #[test]
    fn reservoir_sample_is_deterministic_and_capped() {
        // Identity below the cap.
        assert_eq!(reservoir_sample(5, 10, 1), vec![0, 1, 2, 3, 4]);
        // Exact cap, sorted, unique, in range, deterministic.
        let a = reservoir_sample(1000, 64, 42);
        let b = reservoir_sample(1000, 64, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 64);
        assert!(a.windows(2).all(|w| w[0] < w[1]));
        assert!(*a.last().unwrap() < 1000);
        // Different seeds draw different reservoirs.
        assert_ne!(a, reservoir_sample(1000, 64, 43));
        // The tail is represented (Algorithm R replaces uniformly).
        assert!(*a.last().unwrap() >= 64, "reservoir never replaced anything");
    }

    #[test]
    fn train_applies_reservoir_cap_and_reports_it() {
        let cfg = PnwConfig::new(64, 4).with_clusters(2).with_train_sample_cap(32);
        let mut m = ModelManager::new(&cfg);
        let values: Vec<Vec<u8>> = (0..200u8).map(|i| vec![i % 2 * 0xFF, i, 0, 0]).collect();
        m.train(&values);
        let stats = m.train_stats();
        assert_eq!(stats.samples_pre_cap, 200);
        assert_eq!(stats.samples_post_cap, 32);
        assert_eq!(stats.epoch, 1);
        assert!(stats.last_train_wall.as_nanos() > 0);
        // Capped training is itself deterministic.
        let mut m2 = ModelManager::new(&cfg);
        m2.train(&values);
        assert_eq!(m.kmeans().centroids(), m2.kmeans().centroids());
    }

    #[test]
    fn auto_k_picks_cluster_count_near_structure() {
        let cfg = PnwConfig::new(64, 4).with_auto_k(1, 8);
        let mut m = ModelManager::new(&cfg);
        // Three well-separated byte families.
        let mut values = Vec::new();
        for i in 0..60u8 {
            let v = match i % 3 {
                0 => vec![0x00, 0x00, 0x00, i % 2],
                1 => vec![0xFF, 0xFF, 0x00, i % 2],
                _ => vec![0x0F, 0xF0, 0xFF, i % 2],
            };
            values.push(v);
        }
        m.train(&values);
        let k = m.k();
        // 3 byte families × the parity sub-bit = between 3 and 6 real
        // clusters; the elbow must land in that structured range, not at
        // the extremes of the sweep.
        assert!((2..=6).contains(&k), "elbow chose k={k}");
    }

    #[test]
    fn training_time_reported() {
        let mut m = ModelManager::new(&small_cfg());
        let values: Vec<Vec<u8>> = (0..50u8).map(|i| vec![i, 0, i, 0]).collect();
        let t = m.train(&values);
        assert!(t.as_nanos() > 0);
    }
}
