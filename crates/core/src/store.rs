//! The single-threaded PNW store: a [`ShardEngine`] plus a private
//! [`ModelManager`], behind a cheap interior-mutability handle.
//!
//! This is the paper's Figure 2 system exactly as Algorithms 1–3 describe
//! it. The write path itself lives in [`crate::shard`] so the concurrent
//! [`ShardedPnwStore`](crate::ShardedPnwStore) can reuse it per shard;
//! `PnwStore` is the one-shard composition and remains the reference
//! implementation every figure harness drives.
//!
//! Since the API unification, every operation takes `&self`: the engine
//! and trainer live behind one store-wide `RwLock`, GETs take it shared
//! (the engine's read path is lock-free underneath via
//! [`pnw_nvm_sim::NvmDevice::peek`]) and writes take it exclusively. That
//! makes `PnwStore` a first-class [`Store`] — shareable behind an
//! `Arc<dyn Store>` and drivable by the same concurrent harness as the
//! sharded store — while a single-threaded caller pays only an uncontended
//! lock per op.

use std::sync::RwLock;
use std::time::Duration;

use pnw_nvm_sim::{DeviceStats, LatencyModel, WearCdf};

use crate::api::{Batch, BatchReport, Store};
use crate::config::{BackingMode, PnwConfig, RetrainMode};
use crate::durable::{geometry_hash, DurableStore, ShardCheckpoint};
use crate::error::StoreError;
use crate::metrics::{OpReport, StoreSnapshot};
use crate::model::ModelManager;
use crate::shard::{PutPath, ShardEngine};

/// The engine + trainer pair the store's lock protects. All store logic
/// lives here; the public [`PnwStore`] methods only take the lock and
/// delegate (public methods must never call each other through the lock —
/// the `RwLock` is not reentrant).
struct Inner {
    engine: ShardEngine,
    model: ModelManager,
    /// The durable metadata controller when the store is file-backed;
    /// `None` for volatile stores.
    durable: Option<DurableStore>,
}

impl Inner {
    fn put(&mut self, key: u64, value: &[u8], expires_at_ms: u64) -> Result<OpReport, StoreError> {
        self.engine.check_value(value)?;
        self.maybe_install_background();
        let (report, path) = self.engine.put_with_expiry(key, value, expires_at_ms)?;
        if path == PutPath::Fresh {
            self.maybe_trigger_retrain();
        }
        Ok(report)
    }

    fn delete(&mut self, key: u64) -> Result<bool, StoreError> {
        self.maybe_install_background();
        self.engine.delete(key)
    }

    fn retrain_now(&mut self) -> Result<Duration, StoreError> {
        let snapshot = self
            .engine
            .training_values(self.engine.config().train_sample);
        let elapsed = self.model.train(&snapshot);
        self.engine.install_model(self.model.snapshot());
        Ok(elapsed)
    }

    fn retrain_in_background(&mut self) {
        let snapshot = self
            .engine
            .training_values(self.engine.config().train_sample);
        self.model.train_in_background(snapshot);
    }

    fn maybe_install_background(&mut self) {
        if self.model.try_install_background() {
            self.engine.install_model(self.model.snapshot());
        }
    }

    fn maybe_trigger_retrain(&mut self) {
        if !self.engine.retrain_due() {
            return;
        }
        // §V-C: the load factor "warns that the system will need to be
        // retrained in the near future" — extend the zone first if reserve
        // remains, then retrain per policy.
        self.engine.extend_from_reserve_if_due();
        self.trigger_retrain_policy();
    }

    /// The retrain half of the §V-C trigger (the batch path extends
    /// in-stream via the group executor and runs only this at the end).
    fn trigger_retrain_policy(&mut self) {
        match self.engine.config().retrain {
            RetrainMode::Manual => {}
            RetrainMode::OnLoadFactor => {
                let _ = self.retrain_now();
            }
            RetrainMode::Background => {
                if !self.model.training_in_progress() {
                    self.retrain_in_background();
                }
            }
        }
    }

    fn crash_and_recover(&mut self) -> Result<(), StoreError> {
        self.engine.recover_structures()?;
        // The model is DRAM-resident: reconstruct it by retraining
        // (§V-A.1: "can be reconstructed after a crash").
        self.model = ModelManager::new(self.engine.config());
        self.retrain_now()?;
        Ok(())
    }
}

/// The Predict-and-Write key/value store.
pub struct PnwStore {
    /// The configuration, cached outside the lock so
    /// [`PnwStore::config`] and the [`Store`] accessors stay lock-free.
    cfg: PnwConfig,
    inner: RwLock<Inner>,
}

impl PnwStore {
    /// Creates a store with a fresh zeroed device.
    ///
    /// # Panics
    ///
    /// Panics with the [`ConfigError`](crate::ConfigError) message when
    /// `cfg` fails [`PnwConfig::validate`] — use [`PnwConfig::build`]
    /// first to handle invalid configurations as values — and when `cfg`
    /// asks for a file backing (durable stores go through
    /// [`PnwStore::open`], which can report I/O and corruption errors).
    pub fn new(cfg: PnwConfig) -> Self {
        let cfg = cfg
            .build()
            .unwrap_or_else(|e| panic!("invalid PnwConfig: {e}"));
        assert!(
            matches!(cfg.backing, BackingMode::Volatile),
            "file-backed stores must be created with PnwStore::open"
        );
        let model = ModelManager::new(&cfg);
        PnwStore {
            cfg: cfg.clone(),
            inner: RwLock::new(Inner {
                engine: ShardEngine::new(cfg),
                model,
                durable: None,
            }),
        }
    }

    /// Opens a store according to `cfg.backing`.
    ///
    /// * [`BackingMode::Volatile`] — equivalent to [`PnwStore::new`] but
    ///   non-panicking on invalid configs.
    /// * [`BackingMode::File`] — opens (or initializes) the durable
    ///   directory: the device's cell array is loaded from its
    ///   write-through backing file, the last checkpoint plus the WAL
    ///   suffix determine the committed key set, the data zone is repaired
    ///   to exactly that set, and the DRAM-side structures (index if
    ///   DRAM-resident, pool, model) are rebuilt from it. Every committed
    ///   operation is served bit-for-bit; no unacknowledged key survives.
    pub fn open(cfg: PnwConfig) -> Result<Self, StoreError> {
        let cfg = cfg.build()?;
        let BackingMode::File(dir) = cfg.backing.clone() else {
            return Ok(PnwStore::new(cfg));
        };
        let initial = vec![ShardCheckpoint::fresh(cfg.capacity as u64)];
        let (durable, mut recovered, fresh) =
            DurableStore::open(&dir, geometry_hash(&cfg, 1), cfg.value_size, initial)?;
        let rec = recovered.remove(0);
        let mut engine = ShardEngine::open_file(cfg.clone(), durable.data_path(0))?;
        engine.set_active_buckets(rec.active as usize);
        // Retirements restore first so the repair and recovery scans skip
        // damaged media instead of writing to it.
        engine.restore_retired(&rec.retired);
        engine.repair_after_replay(&rec.committed)?;
        engine.recover_structures()?;
        // Committed keys stranded on retired buckets stay addressable (the
        // loss must surface as a typed Corruption, never a silent miss).
        engine.reindex_retired_committed(&rec.committed)?;
        // Counters restore last so the repair's own writes don't perturb
        // the checkpointed values.
        engine.restore_device_counters(rec.stats, &rec.word_writes, rec.bit_flips.as_deref());
        let mut appender = durable.wal_appender(0)?;
        appender.preload_values(rec.values);
        engine.attach_durable(appender);
        let model = ModelManager::new(&cfg);
        let store = PnwStore {
            cfg,
            inner: RwLock::new(Inner {
                engine,
                model,
                durable: Some(durable),
            }),
        };
        if !fresh && !store.is_empty() {
            // The model is DRAM-resident and died with the process;
            // reconstruct it from the recovered data zone (§V-A.1).
            store.retrain_now()?;
        }
        Ok(store)
    }

    /// Cuts a durable checkpoint: flushes the device backing, snapshots
    /// the committed state and runs the write-new → fsync → rename →
    /// superblock-bump protocol. The WAL is truncated afterwards, so
    /// recovery cost resets to zero. No-op on a volatile store.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let inner = &mut *self.inner.write().unwrap();
        let Some(durable) = inner.durable.as_mut() else {
            return Ok(());
        };
        inner.engine.sync_device()?;
        let state = inner.engine.checkpoint_state()?;
        durable.checkpoint(&[state])?;
        // The checkpointed device image is now the repair source of record;
        // the WAL value mirror can be dropped with the truncated WAL.
        inner.engine.clear_wal_values();
        Ok(())
    }

    /// Closes the store cleanly: cuts a final checkpoint (on a durable
    /// store) and drops it. Equivalent to `checkpoint()` + drop, named so
    /// call sites read as a lifecycle.
    pub fn close(self) -> Result<(), StoreError> {
        self.checkpoint()
    }

    /// Whether this store persists to a file backing.
    pub fn is_durable(&self) -> bool {
        self.inner.read().unwrap().durable.is_some()
    }

    /// Arms a torn write on the underlying device: the next data-zone
    /// write persists only `words` whole words and the device crashes
    /// (test hook for crash-consistency scenarios).
    pub fn arm_torn_write(&self, words: usize) {
        self.inner.write().unwrap().engine.arm_torn_write(words);
    }

    /// Arms a stuck-at fault on one bit of `key`'s stored value (bit 0 =
    /// LSB of the value's first byte) — the wear-out test hook. Returns
    /// whether the key was present to arm against.
    pub fn arm_stuck_at_key(
        &self,
        key: u64,
        bit: u32,
        stuck_at_one: bool,
    ) -> Result<bool, StoreError> {
        self.inner
            .write()
            .unwrap()
            .engine
            .arm_stuck_at_key(key, bit, stuck_at_one)
    }

    /// Runs one full integrity-scrub pass over the data zone: every live
    /// bucket's CRC is verified, corrupt buckets are repaired from the
    /// durable layer when a clean copy exists, and damaged media is
    /// retired from placement. Returns the cumulative scrub counters.
    pub fn scrub_pass(&self) -> Result<crate::metrics::ScrubStats, StoreError> {
        self.inner.write().unwrap().engine.scrub_pass()
    }

    /// Arms a deterministic metadata tear (superblock / WAL / checkpoint)
    /// on a durable store; no-op on a volatile one (test hook).
    pub fn arm_meta_tear(&self, tear: pnw_nvm_sim::MetaTear) {
        if let Some(d) = &self.inner.read().unwrap().durable {
            d.arm_meta_tear(tear);
        }
    }

    /// Persists the device's cell image (the NVM part's durable state) to a
    /// file. Reopen with [`PnwStore::load_image`].
    pub fn save_image(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.inner.read().unwrap().engine.save_image(path)
    }

    /// Opens a store from a previously saved cell image, rebuilding all
    /// DRAM-side state (index if
    /// [`IndexPlacement::Dram`](crate::IndexPlacement::Dram), model, pool)
    /// exactly as crash recovery would. `cfg` must match the geometry the
    /// image was created with.
    pub fn load_image(cfg: PnwConfig, path: &std::path::Path) -> Result<Self, StoreError> {
        let cfg = cfg.build()?;
        let image =
            std::fs::read(path).map_err(|_| StoreError::Nvm(pnw_nvm_sim::NvmError::Crashed))?;
        let model = ModelManager::new(&cfg);
        let store = PnwStore {
            cfg: cfg.clone(),
            inner: RwLock::new(Inner {
                engine: ShardEngine::with_device(cfg, Some(image)),
                model,
                durable: None,
            }),
        };
        store.crash_and_recover()?;
        Ok(store)
    }

    /// The store's configuration.
    pub fn config(&self) -> &PnwConfig {
        &self.cfg
    }

    /// Live key count.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().engine.len()
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cumulative device statistics.
    pub fn device_stats(&self) -> DeviceStats {
        self.inner.read().unwrap().engine.device_stats().clone()
    }

    /// The device's latency model.
    pub fn latency_model(&self) -> LatencyModel {
        self.inner.read().unwrap().engine.device().latency_model()
    }

    /// Highest per-word write count seen anywhere on the device.
    pub fn max_word_writes(&self) -> u32 {
        self.inner.read().unwrap().engine.device().max_word_writes()
    }

    /// Figure-12-style per-word wear CDF over the *active* data zone.
    pub fn word_wear_cdf(&self) -> WearCdf {
        let inner = self.inner.read().unwrap();
        let (start, len) = inner.engine.data_zone_range();
        inner.engine.device().word_wear_cdf(start, len)
    }

    /// Figure-13-style per-bit wear CDF over the active data zone; `None`
    /// unless the store was built with
    /// [`PnwConfig::with_bit_wear`]`(true)`.
    pub fn bit_wear_cdf(&self) -> Option<WearCdf> {
        let inner = self.inner.read().unwrap();
        let (start, len) = inner.engine.data_zone_range();
        inner.engine.device().bit_wear_cdf(start, len)
    }

    /// Clears device statistics so a measurement window excludes warm-up
    /// traffic.
    pub fn reset_device_stats(&self) {
        self.inner.write().unwrap().engine.reset_device_stats();
    }

    /// Clears wear counters (Figures 12/13 measure wear over a stream that
    /// excludes warm-up writes).
    pub fn reset_wear(&self) {
        self.inner.write().unwrap().engine.reset_wear();
    }

    /// Byte range of the *active* data zone (for wear CDFs restricted to
    /// it, as in Figures 12/13).
    pub fn data_zone_range(&self) -> (usize, usize) {
        self.inner.read().unwrap().engine.data_zone_range()
    }

    /// Buckets currently in the active data zone.
    pub fn active_capacity(&self) -> usize {
        self.inner.read().unwrap().engine.active_capacity()
    }

    /// Reserved buckets not yet activated.
    pub fn reserve_remaining(&self) -> usize {
        self.inner.read().unwrap().engine.reserve_remaining()
    }

    /// Extends the data zone by up to `buckets` reserved buckets (§V-C).
    ///
    /// The freshly-activated addresses join the dynamic address pool under
    /// the current model's labels; nothing in the NVM hash index moves —
    /// *"our method to expand the size of a cluster does not impose any
    /// extra writes to the NVM"*. Call [`PnwStore::retrain_now`] (or rely
    /// on the load-factor trigger) to refresh the model on the grown zone.
    ///
    /// Returns how many buckets were activated (0 when the reserve is
    /// exhausted).
    pub fn extend_zone(&self, buckets: usize) -> usize {
        self.inner.write().unwrap().engine.extend_zone(buckets)
    }

    /// PUT / UPDATE (Algorithm 2 + §V-B.3).
    pub fn put(&self, key: u64, value: &[u8]) -> Result<OpReport, StoreError> {
        self.inner.write().unwrap().put(key, value, 0)
    }

    /// PUT with an absolute unix-ms expiry deadline (0 = never). Ignored
    /// unless the store was built with [`PnwConfig::with_ttl`].
    pub fn put_with_expiry(
        &self,
        key: u64,
        value: &[u8],
        expires_at_ms: u64,
    ) -> Result<OpReport, StoreError> {
        self.inner.write().unwrap().put(key, value, expires_at_ms)
    }

    /// Ordered range scan over the inclusive key range `[lo, hi]` — see
    /// [`Store::scan`] for the consistency contract.
    pub fn scan(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        self.inner.read().unwrap().engine.scan_range(lo, hi)
    }

    /// GET (§V-B.4): through the hash index, no data-structure changes.
    ///
    /// Takes the store lock *shared*: the lookup and the value read go
    /// through [`pnw_nvm_sim::NvmDevice::peek`], so concurrent readers run
    /// in parallel (and GETs record no device statistics).
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        self.inner.read().unwrap().engine.get(key)
    }

    /// GET into a caller-provided buffer of exactly `value_size` bytes —
    /// the allocation-free read path. Returns whether the key was present.
    pub fn get_into(&self, key: u64, out: &mut [u8]) -> Result<bool, StoreError> {
        self.inner.read().unwrap().engine.get_into(key, out)
    }

    /// DELETE (Algorithm 3): reset the flag bit, recycle the address into
    /// the pool under its *content's* label.
    pub fn delete(&self, key: u64) -> Result<bool, StoreError> {
        self.inner.write().unwrap().delete(key)
    }

    /// Pre-fills every *free* bucket's cells with values from `gen`,
    /// leaving them free. This reproduces the paper's experimental setup
    /// (§VI-B: *"we first have set aside 5K buckets as the 'old data' on
    /// the NVM"*): the pool then steers incoming writes onto bit-similar
    /// stale content. Call [`PnwStore::retrain_now`] afterwards so the
    /// model learns the prefilled distribution.
    pub fn prefill_free_buckets(
        &self,
        gen: impl FnMut() -> Vec<u8>,
    ) -> Result<usize, StoreError> {
        self.inner.write().unwrap().engine.prefill_free_buckets(gen)
    }

    /// Trains the model synchronously on the current data zone, publishes
    /// the new snapshot to the engine and rebuilds the pool under the new
    /// labels (Algorithm 1). Returns training time.
    pub fn retrain_now(&self) -> Result<Duration, StoreError> {
        self.inner.write().unwrap().retrain_now()
    }

    /// Starts a background retraining run if none is pending (§V-C). The
    /// new model is installed at a later operation boundary.
    pub fn retrain_in_background(&self) {
        self.inner.write().unwrap().retrain_in_background();
    }

    /// Blocks until an in-flight background retrain (if any) installs.
    pub fn wait_for_retrain(&self) {
        let mut inner = self.inner.write().unwrap();
        if inner.model.wait_for_background() {
            let snapshot = inner.model.snapshot();
            inner.engine.install_model(snapshot);
        }
    }

    /// Simulates a power failure followed by a restart: the DRAM state
    /// (index if [`IndexPlacement::Dram`](crate::IndexPlacement::Dram),
    /// model, pool) is discarded and rebuilt from NVM, exactly as §V-A.3
    /// describes for each architecture.
    pub fn crash_and_recover(&self) -> Result<(), StoreError> {
        self.inner.write().unwrap().crash_and_recover()
    }

    /// Point-in-time metrics snapshot.
    pub fn snapshot(&self) -> StoreSnapshot {
        let inner = self.inner.read().unwrap();
        inner.engine.snapshot(inner.model.train_stats())
    }

    /// Whether the model has completed at least one training run.
    pub fn is_trained(&self) -> bool {
        self.inner.read().unwrap().model.is_trained()
    }

    /// Completed training runs.
    pub fn retrains(&self) -> u64 {
        self.inner.read().unwrap().model.retrains()
    }

    /// Current cluster count K of the trained model.
    pub fn model_k(&self) -> usize {
        self.inner.read().unwrap().model.k()
    }

    /// Predicts the cluster for a value under the current model (the
    /// standalone prediction kernel, for benches and diagnostics).
    pub fn predict(&self, value: &[u8]) -> usize {
        self.inner.read().unwrap().model.predict(value)
    }

    /// The current immutable model snapshot (centroids, packed LUTs,
    /// projector) — an `Arc` clone, safe to inspect outside the lock.
    pub fn model_snapshot(&self) -> std::sync::Arc<crate::model::ModelSnapshot> {
        self.inner.read().unwrap().model.snapshot()
    }

    /// Free buckets currently in the dynamic address pool.
    pub fn pool_free(&self) -> usize {
        self.inner.read().unwrap().engine.pool().free()
    }

    #[cfg(test)]
    pub(crate) fn locate(&self, key: u64) -> Result<Option<u64>, StoreError> {
        self.inner.read().unwrap().engine.locate(key)
    }

    #[cfg(test)]
    pub(crate) fn index_len(&self) -> usize {
        self.inner.read().unwrap().engine.index_len()
    }
}

impl Store for PnwStore {
    fn name(&self) -> &'static str {
        "PNW"
    }

    fn value_size(&self) -> usize {
        self.cfg.value_size
    }

    fn put(&self, key: u64, value: &[u8]) -> Result<OpReport, StoreError> {
        PnwStore::put(self, key, value)
    }

    fn get(&self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        PnwStore::get(self, key)
    }

    fn get_into(&self, key: u64, out: &mut [u8]) -> Result<bool, StoreError> {
        PnwStore::get_into(self, key, out)
    }

    fn delete(&self, key: u64) -> Result<bool, StoreError> {
        PnwStore::delete(self, key)
    }

    fn scan(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        PnwStore::scan(self, lo, hi)
    }

    fn put_with_expiry(
        &self,
        key: u64,
        value: &[u8],
        expires_at_ms: u64,
    ) -> Result<OpReport, StoreError> {
        PnwStore::put_with_expiry(self, key, value, expires_at_ms)
    }

    fn supports_ttl(&self) -> bool {
        self.cfg.ttl_enabled
    }

    fn len(&self) -> usize {
        PnwStore::len(self)
    }

    fn snapshot(&self) -> StoreSnapshot {
        PnwStore::snapshot(self)
    }

    fn device_stats(&self) -> DeviceStats {
        PnwStore::device_stats(self)
    }

    fn reset_device_stats(&self) {
        PnwStore::reset_device_stats(self)
    }

    fn max_word_writes(&self) -> u32 {
        PnwStore::max_word_writes(self)
    }

    fn checkpoint(&self) -> Result<(), StoreError> {
        PnwStore::checkpoint(self)
    }

    /// Batched writes: the store lock is taken **once for the whole
    /// batch**, the background-install check runs once, and every PUT goes
    /// through the engine's unreported fast path
    /// ([`ShardEngine::put_unreported`]) — bit-for-bit the same device
    /// mutations as per-op PUTs, with the per-op reporting overhead
    /// stripped. Reserve extension runs at the per-op path's op boundaries
    /// (inside the shared group executor); only the retrain *policy* is
    /// deferred to once after the batch.
    fn apply(&self, batch: &Batch) -> BatchReport {
        let mut inner = self.inner.write().unwrap();
        inner.maybe_install_background();
        let before = inner.engine.device_stats().clone();
        let mut report = BatchReport::default();
        let due = inner
            .engine
            .apply_group(batch.ops(), 0..batch.len(), &mut report);
        let delta = inner.engine.device_stats().since(&before).totals;
        report.write_stats = delta;
        report.modeled_latency = inner.engine.device().modeled_write_cost(&delta);
        if due {
            inner.trigger_retrain_policy();
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::Op;
    use crate::config::{IndexPlacement, UpdatePolicy};
    use std::time::Duration;

    fn store(capacity: usize, value_size: usize, k: usize) -> PnwStore {
        PnwStore::new(
            PnwConfig::new(capacity, value_size)
                .with_clusters(k)
                .with_seed(7),
        )
    }

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pnw_store_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn durable_store_round_trips_across_reopen() {
        let dir = temp_dir("roundtrip");
        let cfg = PnwConfig::new(64, 8).with_clusters(2).with_seed(7);
        {
            let s = PnwStore::open(cfg.clone().with_path(&dir)).unwrap();
            assert!(s.is_durable());
            for k in 0..20u64 {
                s.put(k, &(k * 3).to_le_bytes()).unwrap();
            }
            assert!(s.delete(4).unwrap());
            s.close().unwrap();
        }
        let s = PnwStore::open(cfg.with_path(&dir)).unwrap();
        assert_eq!(s.len(), 19);
        assert_eq!(s.get(4).unwrap(), None);
        for k in (0..20u64).filter(|&k| k != 4) {
            assert_eq!(s.get(k).unwrap().unwrap(), (k * 3).to_le_bytes());
        }
        drop(s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "PnwStore::open")]
    fn new_rejects_file_backing() {
        let _ = PnwStore::new(PnwConfig::new(16, 8).with_path(temp_dir("reject")));
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let s = store(64, 8, 2);
        s.put(1, &[1u8; 8]).unwrap();
        s.put(2, &[2u8; 8]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1).unwrap().unwrap(), vec![1u8; 8]);
        assert!(s.delete(1).unwrap());
        assert!(!s.delete(1).unwrap());
        assert_eq!(s.get(1).unwrap(), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn wrong_size_rejected() {
        let s = store(16, 8, 2);
        assert!(matches!(
            s.put(1, &[0u8; 4]),
            Err(StoreError::WrongValueSize { expected: 8, got: 4 })
        ));
    }

    #[test]
    #[should_panic(expected = "invalid PnwConfig")]
    fn invalid_config_is_rejected_at_the_boundary() {
        let mut cfg = PnwConfig::new(4, 8);
        cfg.clusters = 99;
        let _ = PnwStore::new(cfg);
    }

    #[test]
    fn fills_to_capacity_then_full() {
        let s = store(8, 8, 1);
        for k in 0..8u64 {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        assert!(matches!(s.put(99, &[0u8; 8]), Err(StoreError::Full)));
        s.delete(0).unwrap();
        s.put(99, &[9u8; 8]).unwrap();
    }

    #[test]
    fn update_delete_put_moves_to_similar_location() {
        let s = store(128, 8, 2);
        // Two bit-pattern families.
        for k in 0..32u64 {
            let v = if k % 2 == 0 { [0x00u8; 8] } else { [0xFFu8; 8] };
            s.put(k, &v).unwrap();
        }
        s.retrain_now().unwrap();
        // Delete everything to hand labeled buckets back to the pool.
        for k in 0..32u64 {
            s.delete(k).unwrap();
        }
        s.reset_device_stats();
        // New writes matching a family should land nearly flip-free.
        let r = s.put(100, &[0xFFu8; 8]).unwrap();
        assert!(
            r.value_write.bit_flips <= 8,
            "steered write flipped {} bits",
            r.value_write.bit_flips
        );
    }

    #[test]
    fn k1_degenerates_to_dcw() {
        // §VI-D: "when we pick k=1, the result for PNW is not different
        // from DCW".
        let s = store(32, 8, 1);
        s.put(1, &[0xF0u8; 8]).unwrap();
        s.retrain_now().unwrap();
        s.delete(1).unwrap();
        let r = s.put(2, &[0xF1u8; 8]).unwrap();
        // Exactly the Hamming distance to whatever free bucket came up —
        // with k=1 there is no steering, like DCW over a free list.
        assert!(r.value_write.bit_flips <= 64);
        assert_eq!(s.model_k(), 1);
    }

    #[test]
    fn in_place_update_policy() {
        let s = PnwStore::new(
            PnwConfig::new(32, 8)
                .with_clusters(2)
                .with_update_policy(UpdatePolicy::InPlace),
        );
        s.put(5, &[0xAAu8; 8]).unwrap();
        let free_before = s.pool_free();
        let r = s.put(5, &[0xABu8; 8]).unwrap();
        // No pool interaction, no prediction.
        assert_eq!(s.pool_free(), free_before);
        assert_eq!(r.predict, Duration::ZERO);
        assert_eq!(s.get(5).unwrap().unwrap(), vec![0xABu8; 8]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn delete_put_update_policy_changes_address() {
        let s = store(32, 8, 2);
        s.put(5, &[0xAAu8; 8]).unwrap();
        let addr1 = s.locate(5).unwrap().unwrap();
        s.put(5, &[0x55u8; 8]).unwrap();
        let addr2 = s.locate(5).unwrap().unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(5).unwrap().unwrap(), vec![0x55u8; 8]);
        // With 31 other free buckets, the fresh PUT practically never
        // reuses the just-freed address… but it can (it is in the pool), so
        // only assert consistency, not inequality.
        let _ = (addr1, addr2);
    }

    #[test]
    fn prefill_then_steering() {
        let s = store(64, 8, 2);
        // Half the cells hold 0x00-family, half 0xFF-family.
        let mut i = 0u32;
        s.prefill_free_buckets(|| {
            i += 1;
            if i.is_multiple_of(2) {
                vec![0x00u8; 8]
            } else {
                vec![0xFFu8; 8]
            }
        })
        .unwrap();
        s.retrain_now().unwrap();
        s.reset_device_stats();
        let r = s.put(1, &[0xFFu8; 8]).unwrap();
        // Value write should hit an 0xFF-family bucket: ~0 flips.
        assert!(r.value_write.bit_flips <= 8, "{}", r.value_write.bit_flips);
        let r2 = s.put(2, &[0x00u8; 8]).unwrap();
        assert!(r2.value_write.bit_flips <= 8, "{}", r2.value_write.bit_flips);
    }

    #[test]
    fn nvm_index_costs_bit_flips_dram_does_not() {
        let dram = PnwStore::new(PnwConfig::new(64, 8).with_clusters(1));
        let nvm = PnwStore::new(
            PnwConfig::new(64, 8)
                .with_clusters(1)
                .with_index(IndexPlacement::Nvm),
        );
        dram.put(1, &[0x11u8; 8]).unwrap();
        nvm.put(1, &[0x11u8; 8]).unwrap();
        let d = dram.device_stats().totals.bit_flips;
        let n = nvm.device_stats().totals.bit_flips;
        assert!(n > d, "nvm index must add flips: {n} vs {d}");
    }

    #[test]
    fn crash_recovery_dram_index() {
        let s = store(64, 8, 2);
        for k in 0..20u64 {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        s.delete(3).unwrap();
        s.crash_and_recover().unwrap();
        assert_eq!(s.len(), 19);
        assert_eq!(s.get(5).unwrap().unwrap(), 5u64.to_le_bytes().to_vec());
        assert_eq!(s.get(3).unwrap(), None);
        // Store remains writable.
        s.put(100, &[7u8; 8]).unwrap();
        assert_eq!(s.len(), 20);
    }

    #[test]
    fn crash_recovery_nvm_index() {
        let s = PnwStore::new(
            PnwConfig::new(64, 8)
                .with_clusters(2)
                .with_index(IndexPlacement::Nvm),
        );
        for k in 0..20u64 {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        s.delete(7).unwrap();
        s.crash_and_recover().unwrap();
        assert_eq!(s.len(), 19);
        assert_eq!(s.get(8).unwrap().unwrap(), 8u64.to_le_bytes().to_vec());
        assert_eq!(s.get(7).unwrap(), None);
    }

    #[test]
    fn load_factor_triggers_sync_retrain() {
        let s = PnwStore::new(
            PnwConfig::new(16, 8)
                .with_clusters(2)
                .with_load_factor(0.5)
                .with_retrain(RetrainMode::OnLoadFactor),
        );
        let before = s.retrains();
        for k in 0..10u64 {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        assert!(s.retrains() > before, "retrain must have fired");
    }

    #[test]
    fn background_retrain_installs_eventually() {
        let s = PnwStore::new(
            PnwConfig::new(32, 8)
                .with_clusters(2)
                .with_load_factor(0.25)
                .with_retrain(RetrainMode::Background),
        );
        for k in 0..16u64 {
            s.put(k, &(k * 7).to_le_bytes()).unwrap();
        }
        s.wait_for_retrain();
        assert!(s.is_trained());
        assert!(s.retrains() >= 1);
        // And the store still works.
        s.put(99, &[1u8; 8]).unwrap();
        assert_eq!(s.get(99).unwrap().unwrap(), vec![1u8; 8]);
    }

    #[test]
    fn snapshot_counters() {
        let s = store(32, 8, 2);
        s.put(1, &[1u8; 8]).unwrap();
        s.get(1).unwrap();
        s.get(2).unwrap();
        s.delete(1).unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.puts, 1);
        assert_eq!(snap.gets, 2);
        assert_eq!(snap.deletes, 1);
        assert_eq!(snap.live, 0);
        assert_eq!(snap.free, 32);
        assert!(snap.availability() > 0.99);
    }

    #[test]
    fn get_does_not_touch_model_or_pool() {
        // §VI-E: "the value of K does not affect the lookup request latency
        // because in the lookup, the request does not go through the model
        // or the dynamic address pool".
        let s = store(32, 8, 4);
        s.put(1, &[1u8; 8]).unwrap();
        let free = s.pool_free();
        let predict_before = s.snapshot().predict_total;
        for _ in 0..10 {
            s.get(1).unwrap();
        }
        assert_eq!(s.pool_free(), free);
        assert_eq!(s.snapshot().predict_total, predict_before);
    }

    #[test]
    fn store_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PnwStore>();
    }

    #[test]
    fn concurrent_readers_share_the_lock() {
        let s = std::sync::Arc::new(store(32, 8, 2));
        s.put(1, &[9u8; 8]).unwrap();
        let mut handles = Vec::new();
        for _ in 0..3 {
            let s = std::sync::Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for _ in 0..100 {
                    assert_eq!(s.get(1).unwrap().unwrap(), vec![9u8; 8]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn save_load_image_roundtrip() {
        let dir = std::env::temp_dir().join("pnw_store_image_test.bin");
        let cfg = PnwConfig::new(32, 8).with_clusters(2).with_seed(5);
        let s = PnwStore::new(cfg.clone());
        for k in 0..16u64 {
            s.put(k, &(k * 3).to_le_bytes()).unwrap();
        }
        s.delete(4).unwrap();
        s.save_image(&dir).unwrap();

        let s2 = PnwStore::load_image(cfg, &dir).unwrap();
        assert_eq!(s2.len(), 15);
        assert_eq!(s2.get(5).unwrap().unwrap(), 15u64.to_le_bytes().to_vec());
        assert_eq!(s2.get(4).unwrap(), None);
        // Reopened store keeps working.
        s2.put(100, &[7u8; 8]).unwrap();
        assert_eq!(s2.len(), 16);
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn zone_extension_adds_capacity_without_index_churn() {
        // load_factor = 1.0 disables the automatic trigger so the manual
        // extension path is what's under test.
        let s = PnwStore::new(
            PnwConfig::new(8, 8)
                .with_clusters(2)
                .with_reserve(8)
                .with_load_factor(1.0)
                .with_retrain(RetrainMode::Manual),
        );
        assert_eq!(s.active_capacity(), 8);
        assert_eq!(s.reserve_remaining(), 8);
        for k in 0..8u64 {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        assert!(matches!(s.put(99, &[0u8; 8]), Err(StoreError::Full)));
        let added = s.extend_zone(4);
        assert_eq!(added, 4);
        assert_eq!(s.active_capacity(), 12);
        assert_eq!(s.reserve_remaining(), 4);
        // New capacity is usable; old keys untouched.
        s.put(99, &[9u8; 8]).unwrap();
        assert_eq!(s.get(3).unwrap().unwrap(), 3u64.to_le_bytes().to_vec());
        // Extension never exceeds the reserve.
        assert_eq!(s.extend_zone(100), 4);
        assert_eq!(s.reserve_remaining(), 0);
        assert_eq!(s.extend_zone(1), 0);
    }

    #[test]
    fn load_factor_auto_extends_from_reserve() {
        let s = PnwStore::new(
            PnwConfig::new(8, 8)
                .with_clusters(2)
                .with_reserve(8)
                .with_load_factor(0.5)
                .with_retrain(RetrainMode::OnLoadFactor),
        );
        for k in 0..8u64 {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        // The trigger fired at >50% occupancy and pulled from the reserve.
        assert!(s.active_capacity() > 8, "auto-extension must have fired");
        assert!(s.retrains() >= 1);
        // The 9th put works without manual intervention.
        s.put(100, &[1u8; 8]).unwrap();
    }

    #[test]
    fn auto_k_store_trains_with_elbow() {
        let s = PnwStore::new(
            PnwConfig::new(64, 4)
                .with_auto_k(1, 8)
                .with_retrain(RetrainMode::Manual),
        );
        let mut i = 0u32;
        s.prefill_free_buckets(|| {
            i += 1;
            match i % 3 {
                0 => vec![0x00, 0x00, 0x00, 0x00],
                1 => vec![0xFF, 0xFF, 0xFF, 0xFF],
                _ => vec![0x0F, 0xF0, 0x0F, 0xF0],
            }
        })
        .unwrap();
        s.retrain_now().unwrap();
        assert!((2..=6).contains(&s.model_k()), "k={}", s.model_k());
    }

    #[test]
    fn index_len_matches_live() {
        let s = store(32, 8, 2);
        for k in 0..10u64 {
            s.put(k, &[k as u8; 8]).unwrap();
        }
        s.delete(0).unwrap();
        assert_eq!(s.index_len(), s.len());
    }

    #[test]
    fn trait_object_drives_the_store() {
        let s: Box<dyn Store> = Box::new(store(32, 8, 2));
        assert_eq!(s.name(), "PNW");
        assert_eq!(s.value_size(), 8);
        s.put(1, &[3u8; 8]).unwrap();
        let mut buf = [0u8; 8];
        assert!(s.get_into(1, &mut buf).unwrap());
        assert_eq!(buf, [3u8; 8]);
        assert!(s.delete(1).unwrap());
        assert!(s.is_empty());
    }

    /// Batched apply must leave the store in the same state as the
    /// equivalent per-op sequence — and the device accounting must match
    /// bit-for-bit (the batch path's whole point is cost, not semantics).
    #[test]
    fn apply_matches_per_op_bit_for_bit() {
        let (a, b) = (store(64, 8, 2), store(64, 8, 2));
        let mut batch = Batch::new();
        for k in 0..24u64 {
            batch.put(k, &[k as u8 ^ 0x5A; 8]);
        }
        for k in (0..24u64).step_by(3) {
            batch.delete(k);
        }
        for k in 0..6u64 {
            batch.put(k, &[0xEE; 8]); // re-insert over deletes + updates
        }
        let report = a.apply(&batch);
        assert!(report.all_ok());
        assert_eq!(report.puts, 30);
        assert_eq!(report.deletes, 8);
        assert_eq!(report.deleted_existing, 8);

        let mut per_op_stats = pnw_nvm_sim::WriteStats::default();
        for op in batch.ops() {
            match op {
                Op::Put { key, value } => {
                    per_op_stats += b.put(*key, value).unwrap().total_write;
                }
                Op::Delete { key } => {
                    b.delete(*key).unwrap();
                }
            }
        }
        assert_eq!(a.device_stats(), b.device_stats());
        assert_eq!(a.len(), b.len());
        for k in 0..24u64 {
            assert_eq!(a.get(k).unwrap(), b.get(k).unwrap(), "key {k}");
        }
        // The aggregate covers everything the per-op PUT reports did, plus
        // the delete flag writes.
        assert!(report.write_stats.bit_flips >= per_op_stats.bit_flips);
        assert!(report.modeled_latency > Duration::ZERO);
    }

    #[test]
    fn apply_records_failures_and_continues() {
        let s = store(2, 8, 1);
        let mut batch = Batch::new();
        batch
            .put(1, &[1; 8])
            .put(2, &[0; 4]) // wrong size
            .put(3, &[3; 8])
            .put(4, &[4; 8]) // store full
            .delete(1);
        let r = s.apply(&batch);
        assert_eq!(r.puts, 2);
        assert_eq!(r.deleted_existing, 1);
        assert_eq!(r.failures.len(), 2);
        assert!(matches!(
            r.failures[0],
            (1, StoreError::WrongValueSize { .. })
        ));
        assert!(matches!(r.failures[1], (3, StoreError::Full)));
        assert_eq!(s.len(), 1); // key 3 survived, key 1 deleted
    }
}
