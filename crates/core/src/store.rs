//! The PNW store: Algorithms 1–3 of the paper over the emulated device.
//!
//! Data-zone bucket layout (16-byte header + value, rounded to whole
//! words):
//!
//! ```text
//! [ flags: u8 | pad ×7 | key: u64 LE | value ×value_size ]
//! ```
//!
//! The valid flag implements the paper's deletion protocol (*"resetting the
//! associated flag bit"*, Algorithm 3 line 2); the key in the header is what
//! lets a DRAM-index store rebuild its index after a crash (§V-A.3).

use std::time::{Duration, Instant};

use pnw_index::{DramHashIndex, KeyIndex, PathHashIndex};
use pnw_nvm_sim::{DeviceStats, NvmConfig, NvmDevice, Region, RegionAllocator, WriteMode};

use crate::config::{IndexPlacement, PnwConfig, RetrainMode, UpdatePolicy};
use crate::error::PnwError;
use crate::metrics::{OpReport, StoreSnapshot};
use crate::model::{stride_sample, ModelManager};
use crate::pool::DynamicAddressPool;

const HDR_BYTES: usize = 16;
const FLAG_VALID: u8 = 1;

enum Index {
    Dram(DramHashIndex),
    Nvm(PathHashIndex),
}

impl Index {
    fn insert(&mut self, dev: &mut NvmDevice, k: u64, a: u64) -> Result<(), pnw_index::IndexError> {
        match self {
            Index::Dram(i) => i.insert(dev, k, a),
            Index::Nvm(i) => i.insert(dev, k, a),
        }
    }
    fn get(&mut self, dev: &mut NvmDevice, k: u64) -> Result<Option<u64>, pnw_index::IndexError> {
        match self {
            Index::Dram(i) => i.get(dev, k),
            Index::Nvm(i) => i.get(dev, k),
        }
    }
    fn remove(
        &mut self,
        dev: &mut NvmDevice,
        k: u64,
    ) -> Result<Option<u64>, pnw_index::IndexError> {
        match self {
            Index::Dram(i) => i.remove(dev, k),
            Index::Nvm(i) => i.remove(dev, k),
        }
    }
    /// Used by consistency checks in the test suite.
    #[cfg_attr(not(test), allow(dead_code))]
    fn len(&self) -> usize {
        match self {
            Index::Dram(i) => i.len(),
            Index::Nvm(i) => i.len(),
        }
    }
}

/// The Predict-and-Write key/value store.
pub struct PnwStore {
    cfg: PnwConfig,
    dev: NvmDevice,
    data: Region,
    /// Buckets currently in the active data zone (grows via
    /// [`PnwStore::extend_zone`] up to `cfg.capacity + cfg.reserve_buckets`).
    active_buckets: usize,
    bucket_size: usize,
    index: Index,
    index_region: Option<Region>,
    index_leaves: usize,
    model: ModelManager,
    pool: DynamicAddressPool,
    live: usize,
    predict_total: Duration,
    puts: u64,
    gets: u64,
    deletes: u64,
}

impl PnwStore {
    /// Creates a store with a fresh zeroed device.
    pub fn new(cfg: PnwConfig) -> Self {
        Self::with_device(cfg, None)
    }

    /// Persists the device's cell image (the NVM part's durable state) to a
    /// file. Reopen with [`PnwStore::load_image`].
    pub fn save_image(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.dev.save_image(path)
    }

    /// Opens a store from a previously saved cell image, rebuilding all
    /// DRAM-side state (index if [`IndexPlacement::Dram`], model, pool)
    /// exactly as crash recovery would. `cfg` must match the geometry the
    /// image was created with.
    pub fn load_image(cfg: PnwConfig, path: &std::path::Path) -> Result<Self, PnwError> {
        let image = std::fs::read(path).map_err(|_| PnwError::Nvm(pnw_nvm_sim::NvmError::Crashed))?;
        let mut store = Self::with_device(cfg, Some(image));
        store.crash_and_recover()?;
        Ok(store)
    }

    fn with_device(cfg: PnwConfig, image: Option<Vec<u8>>) -> Self {
        let bucket_size = (HDR_BYTES + cfg.value_size).next_multiple_of(8);
        let total_buckets = cfg.capacity + cfg.reserve_buckets;
        let data_bytes = total_buckets * bucket_size;

        let (index_leaves, index_bytes) = match cfg.index {
            IndexPlacement::Dram => (0, 0),
            IndexPlacement::Nvm => {
                // Sized for the fully-extended zone so the index never has
                // to move (the §V-C property: extension touches only the
                // DRAM-side model and pool).
                let leaves = (total_buckets * 2).next_power_of_two().max(8);
                (leaves, PathHashIndex::region_bytes_for(leaves))
            }
        };
        let total = (index_bytes + data_bytes + 4096).next_multiple_of(64);
        let mut alloc = RegionAllocator::new(total);
        let index_region = (index_bytes > 0).then(|| alloc.alloc(index_bytes, 64).expect("index"));
        let data = alloc
            .alloc_buckets(total_buckets, bucket_size)
            .expect("data zone");

        let nvm_cfg = NvmConfig::default()
            .with_size(total)
            .with_bit_wear(cfg.track_bit_wear);
        let dev = match image {
            Some(image) => {
                assert_eq!(
                    image.len(),
                    total,
                    "image size does not match the configured geometry"
                );
                NvmDevice::from_image(nvm_cfg, image)
            }
            None => NvmDevice::new(nvm_cfg),
        };
        let index = match index_region {
            Some(r) => Index::Nvm(PathHashIndex::create(r, index_leaves)),
            None => Index::Dram(DramHashIndex::with_capacity(cfg.capacity)),
        };
        let model = ModelManager::new(&cfg);
        let mut pool = DynamicAddressPool::new(model.k(), cfg.capacity);
        for b in 0..cfg.capacity as u32 {
            pool.push(0, b); // untrained model: one cluster, all buckets free
        }
        let active_buckets = cfg.capacity;
        PnwStore {
            cfg,
            dev,
            data,
            active_buckets,
            bucket_size,
            index,
            index_region,
            index_leaves,
            model,
            pool,
            live: 0,
            predict_total: Duration::ZERO,
            puts: 0,
            gets: 0,
            deletes: 0,
        }
    }

    /// The store's configuration.
    pub fn config(&self) -> &PnwConfig {
        &self.cfg
    }

    /// Live key count.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Cumulative device statistics.
    pub fn device_stats(&self) -> &DeviceStats {
        self.dev.stats()
    }

    /// The underlying device (wear CDFs, latency model).
    pub fn device(&self) -> &NvmDevice {
        &self.dev
    }

    /// Clears device statistics so a measurement window excludes warm-up
    /// traffic.
    pub fn reset_device_stats(&mut self) {
        self.dev.reset_stats();
    }

    /// Clears wear counters (Figures 12/13 measure wear over a stream that
    /// excludes warm-up writes).
    pub fn reset_wear(&mut self) {
        self.dev.reset_wear();
    }

    /// Byte range of the *active* data zone (for wear CDFs restricted to
    /// it, as in Figures 12/13).
    pub fn data_zone_range(&self) -> (usize, usize) {
        (self.data.start, self.active_buckets * self.bucket_size)
    }

    /// Buckets currently in the active data zone.
    pub fn active_capacity(&self) -> usize {
        self.active_buckets
    }

    /// Reserved buckets not yet activated.
    pub fn reserve_remaining(&self) -> usize {
        self.cfg.capacity + self.cfg.reserve_buckets - self.active_buckets
    }

    /// Extends the data zone by up to `buckets` reserved buckets (§V-C).
    ///
    /// The freshly-activated addresses join the dynamic address pool under
    /// the current model's labels; nothing in the NVM hash index moves —
    /// *"our method to expand the size of a cluster does not impose any
    /// extra writes to the NVM"*. Call [`PnwStore::retrain_now`] (or rely
    /// on the load-factor trigger) to refresh the model on the grown zone.
    ///
    /// Returns how many buckets were activated (0 when the reserve is
    /// exhausted).
    pub fn extend_zone(&mut self, buckets: usize) -> usize {
        let add = buckets.min(self.reserve_remaining());
        let first = self.active_buckets as u32;
        for b in first..first + add as u32 {
            let content = self.peek_value(b).expect("bucket in range");
            let label = self.model.predict(&content);
            self.pool.push(label, b);
        }
        self.active_buckets += add;
        self.pool.set_capacity(self.active_buckets);
        add
    }

    fn bucket_addr(&self, b: u32) -> usize {
        self.data.bucket_addr(b as usize, self.bucket_size)
    }

    fn bucket_of_addr(&self, addr: u64) -> u32 {
        ((addr as usize - self.data.start) / self.bucket_size) as u32
    }

    fn check_value(&self, value: &[u8]) -> Result<(), PnwError> {
        if value.len() != self.cfg.value_size {
            return Err(PnwError::WrongValueSize {
                expected: self.cfg.value_size,
                got: value.len(),
            });
        }
        Ok(())
    }

    /// Reads a bucket's stored value (without stats side effects).
    fn peek_value(&self, bucket: u32) -> Result<Vec<u8>, PnwError> {
        let addr = self.bucket_addr(bucket) + HDR_BYTES;
        Ok(self.dev.peek(addr, self.cfg.value_size)?.to_vec())
    }

    /// PUT / UPDATE (Algorithm 2 + §V-B.3).
    pub fn put(&mut self, key: u64, value: &[u8]) -> Result<OpReport, PnwError> {
        self.check_value(value)?;
        self.maybe_install_background();

        // UPDATE handling.
        if let Some(addr) = self.index.get(&mut self.dev, key)? {
            match self.cfg.update_policy {
                UpdatePolicy::InPlace => {
                    // Latency-first: straight through the hash index.
                    let before = self.dev.stats().clone();
                    let vstats = self.dev.write(addr as usize + HDR_BYTES, value, WriteMode::Diff)?;
                    let total = self.dev.stats().since(&before).totals;
                    self.puts += 1;
                    return Ok(OpReport {
                        cluster: 0,
                        fallback: false,
                        predict: Duration::ZERO,
                        value_write: vstats,
                        total_write: total,
                        modeled_latency: self.dev.modeled_write_cost(&total),
                    });
                }
                UpdatePolicy::DeletePut => {
                    // Endurance-first: free the old location (it returns to
                    // the pool under its content's label), then fall through
                    // to a fresh predicted write.
                    self.delete_internal(key, addr)?;
                }
            }
        }

        let before = self.dev.stats().clone();

        // Algorithm 2 line 1: predict the entry.
        let t0 = Instant::now();
        let (cluster, ranked) = self.model.predict_ranked(value);
        let predict = t0.elapsed();
        self.predict_total += predict;

        // Line 2: get an address from the dynamic address pool.
        let (bucket, fallback) = self.pool.pop(cluster, &ranked).ok_or(PnwError::Full)?;
        let addr = self.bucket_addr(bucket);

        // Lines 3–6: one differential write covers the whole bucket
        // (header + value share cache lines; writing them separately would
        // double-count dirty lines). Value-only accounting is previewed
        // first for the Figure 6 metric.
        let value_write = self.dev.diff_stats(addr + HDR_BYTES, value)?;
        let mut bucket_img = vec![0u8; HDR_BYTES + value.len()];
        bucket_img[0] = FLAG_VALID;
        bucket_img[8..16].copy_from_slice(&key.to_le_bytes());
        bucket_img[HDR_BYTES..].copy_from_slice(value);
        self.dev.write(addr, &bucket_img, WriteMode::Diff)?;

        // Line 7: update the hash index.
        if let Err(e) = self.index.insert(&mut self.dev, key, addr as u64) {
            self.pool.push(cluster, bucket);
            return Err(e.into());
        }
        self.live += 1;
        self.puts += 1;

        let total = self.dev.stats().since(&before).totals;
        let report = OpReport {
            cluster,
            fallback,
            predict,
            value_write,
            total_write: total,
            modeled_latency: self.dev.modeled_write_cost(&total),
        };
        self.maybe_trigger_retrain();
        Ok(report)
    }

    /// GET (§V-B.4): through the hash index, no data-structure changes.
    pub fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, PnwError> {
        self.gets += 1;
        match self.index.get(&mut self.dev, key)? {
            Some(addr) => {
                let v = self
                    .dev
                    .read(addr as usize + HDR_BYTES, self.cfg.value_size)?
                    .to_vec();
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    /// DELETE (Algorithm 3): reset the flag bit, recycle the address into
    /// the pool under its *content's* label.
    pub fn delete(&mut self, key: u64) -> Result<bool, PnwError> {
        self.maybe_install_background();
        match self.index.remove(&mut self.dev, key)? {
            Some(addr) => {
                self.delete_bucket_only(addr)?;
                self.deletes += 1;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Internal delete used by the DELETE-then-PUT update path: the index
    /// entry is removed and the bucket recycled.
    fn delete_internal(&mut self, key: u64, addr: u64) -> Result<(), PnwError> {
        self.index.remove(&mut self.dev, key)?;
        self.delete_bucket_only(addr)
    }

    fn delete_bucket_only(&mut self, addr: u64) -> Result<(), PnwError> {
        // Line 2: reset the flag bit (a one-bit NVM update).
        self.dev.write(addr as usize, &[0u8], WriteMode::Diff)?;
        // Lines 3–4: predict the label of the *stored content* and return
        // the address to the pool.
        let bucket = self.bucket_of_addr(addr);
        let content = self.peek_value(bucket)?;
        let label = self.model.predict(&content);
        self.pool.push(label, bucket);
        self.live -= 1;
        Ok(())
    }

    /// Pre-fills every *free* bucket's cells with values from `gen`,
    /// leaving them free. This reproduces the paper's experimental setup
    /// (§VI-B: *"we first have set aside 5K buckets as the 'old data' on
    /// the NVM"*): the pool then steers incoming writes onto bit-similar
    /// stale content. Call [`PnwStore::retrain_now`] afterwards so the
    /// model learns the prefilled distribution.
    pub fn prefill_free_buckets(
        &mut self,
        mut gen: impl FnMut() -> Vec<u8>,
    ) -> Result<usize, PnwError> {
        let free = self.pool.drain_all();
        let mut n = 0;
        for &bucket in &free {
            let v = gen();
            self.check_value(&v)?;
            let addr = self.bucket_addr(bucket) + HDR_BYTES;
            self.dev.write(addr, &v, WriteMode::Raw)?;
            n += 1;
        }
        // Back into the pool under the (still current) model's labels.
        let relabeled: Vec<(u32, usize)> = free
            .iter()
            .map(|&b| {
                let content = self.peek_value(b).expect("bucket in range");
                (b, self.model.predict(&content))
            })
            .collect();
        let k = self.model.k();
        self.pool.rebuild(k, relabeled);
        Ok(n)
    }

    /// Collects the training snapshot: the contents of all data-zone
    /// buckets (Algorithm 1 trains on "all the available data in the NVM
    /// storage"), subsampled to the configured cap.
    fn training_snapshot(&self) -> Vec<Vec<u8>> {
        let idx = stride_sample(self.active_buckets, self.cfg.train_sample);
        idx.iter()
            .map(|&b| self.peek_value(b as u32).expect("bucket in range"))
            .collect()
    }

    /// Trains the model synchronously on the current data zone and rebuilds
    /// the pool under the new labels (Algorithm 1). Returns training time.
    pub fn retrain_now(&mut self) -> Result<Duration, PnwError> {
        let snapshot = self.training_snapshot();
        let elapsed = self.model.train(&snapshot);
        self.relabel_pool();
        Ok(elapsed)
    }

    /// Starts a background retraining run if none is pending (§V-C). The
    /// new model is installed at a later operation boundary.
    pub fn retrain_in_background(&mut self) {
        let snapshot = self.training_snapshot();
        self.model.train_in_background(snapshot);
    }

    /// Blocks until an in-flight background retrain (if any) installs.
    pub fn wait_for_retrain(&mut self) {
        if self.model.wait_for_background() {
            self.relabel_pool();
        }
    }

    fn maybe_install_background(&mut self) {
        if self.model.try_install_background() {
            self.relabel_pool();
        }
    }

    fn maybe_trigger_retrain(&mut self) {
        let due = self.pool.availability() < 1.0 - self.cfg.load_factor;
        if !due {
            return;
        }
        // §V-C: the load factor "warns that the system will need to be
        // retrained in the near future" — extend the zone first if reserve
        // remains, then retrain per policy.
        if self.reserve_remaining() > 0 {
            let chunk = (self.cfg.capacity / 4).max(1);
            self.extend_zone(chunk);
        }
        match self.cfg.retrain {
            RetrainMode::Manual => {}
            RetrainMode::OnLoadFactor => {
                let _ = self.retrain_now();
            }
            RetrainMode::Background => {
                if !self.model.training_in_progress() {
                    self.retrain_in_background();
                }
            }
        }
    }

    /// Relabels all free buckets under the current model.
    fn relabel_pool(&mut self) {
        let free = self.pool.drain_all();
        let relabeled: Vec<(u32, usize)> = free
            .into_iter()
            .map(|b| {
                let content = self.peek_value(b).expect("bucket in range");
                (b, self.model.predict(&content))
            })
            .collect();
        let k = self.model.k();
        self.pool.rebuild(k, relabeled);
    }

    /// Simulates a power failure followed by a restart: the DRAM state
    /// (index if [`IndexPlacement::Dram`], model, pool) is discarded and
    /// rebuilt from NVM, exactly as §V-A.3 describes for each architecture.
    pub fn crash_and_recover(&mut self) -> Result<(), PnwError> {
        self.dev.crash();
        self.dev.recover();

        // Rebuild the index.
        match self.cfg.index {
            IndexPlacement::Dram => {
                // Scan the data zone headers.
                let mut idx = DramHashIndex::with_capacity(self.active_buckets);
                let mut live = 0;
                for b in 0..self.active_buckets as u32 {
                    let addr = self.bucket_addr(b);
                    let hdr = self.dev.peek(addr, HDR_BYTES)?;
                    if hdr[0] & FLAG_VALID != 0 {
                        let key = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
                        idx.insert(&mut self.dev, key, addr as u64)?;
                        live += 1;
                    }
                }
                self.index = Index::Dram(idx);
                self.live = live;
            }
            IndexPlacement::Nvm => {
                let region = self.index_region.expect("nvm index has a region");
                let idx = PathHashIndex::recover(region, self.index_leaves, &self.dev);
                self.live = idx.len();
                self.index = Index::Nvm(idx);
            }
        }

        // The model is DRAM-resident: reconstruct it by retraining
        // (§V-A.1: "can be reconstructed after a crash").
        self.model = ModelManager::new(&self.cfg);
        // Rebuild the pool from non-valid buckets, then retrain.
        let mut free_buckets = Vec::new();
        for b in 0..self.active_buckets as u32 {
            let addr = self.bucket_addr(b);
            let hdr = self.dev.peek(addr, 1)?;
            if hdr[0] & FLAG_VALID == 0 {
                free_buckets.push(b);
            }
        }
        self.pool = DynamicAddressPool::new(self.model.k(), self.active_buckets);
        for b in free_buckets {
            self.pool.push(0, b);
        }
        self.retrain_now()?;
        Ok(())
    }

    /// Point-in-time metrics snapshot.
    pub fn snapshot(&self) -> StoreSnapshot {
        StoreSnapshot {
            live: self.live,
            free: self.pool.free(),
            capacity: self.active_buckets,
            k: self.model.k(),
            retrains: self.model.retrains(),
            fallbacks: self.pool.fallbacks(),
            device: self.dev.stats().clone(),
            predict_total: self.predict_total,
            puts: self.puts,
            gets: self.gets,
            deletes: self.deletes,
        }
    }

    /// Access to the model manager (read-only).
    pub fn model(&self) -> &ModelManager {
        &self.model
    }

    /// Access to the pool (read-only).
    pub fn pool(&self) -> &DynamicAddressPool {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(capacity: usize, value_size: usize, k: usize) -> PnwStore {
        PnwStore::new(
            PnwConfig::new(capacity, value_size)
                .with_clusters(k)
                .with_seed(7),
        )
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let mut s = store(64, 8, 2);
        s.put(1, &[1u8; 8]).unwrap();
        s.put(2, &[2u8; 8]).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1).unwrap().unwrap(), vec![1u8; 8]);
        assert!(s.delete(1).unwrap());
        assert!(!s.delete(1).unwrap());
        assert_eq!(s.get(1).unwrap(), None);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn wrong_size_rejected() {
        let mut s = store(16, 8, 2);
        assert!(matches!(
            s.put(1, &[0u8; 4]),
            Err(PnwError::WrongValueSize { expected: 8, got: 4 })
        ));
    }

    #[test]
    fn fills_to_capacity_then_full() {
        let mut s = store(8, 8, 1);
        for k in 0..8u64 {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        assert!(matches!(s.put(99, &[0u8; 8]), Err(PnwError::Full)));
        s.delete(0).unwrap();
        s.put(99, &[9u8; 8]).unwrap();
    }

    #[test]
    fn update_delete_put_moves_to_similar_location() {
        let mut s = store(128, 8, 2);
        // Two bit-pattern families.
        for k in 0..32u64 {
            let v = if k % 2 == 0 { [0x00u8; 8] } else { [0xFFu8; 8] };
            s.put(k, &v).unwrap();
        }
        s.retrain_now().unwrap();
        // Delete everything to hand labeled buckets back to the pool.
        for k in 0..32u64 {
            s.delete(k).unwrap();
        }
        s.reset_device_stats();
        // New writes matching a family should land nearly flip-free.
        let r = s.put(100, &[0xFFu8; 8]).unwrap();
        assert!(
            r.value_write.bit_flips <= 8,
            "steered write flipped {} bits",
            r.value_write.bit_flips
        );
    }

    #[test]
    fn k1_degenerates_to_dcw() {
        // §VI-D: "when we pick k=1, the result for PNW is not different
        // from DCW".
        let mut s = store(32, 8, 1);
        s.put(1, &[0xF0u8; 8]).unwrap();
        s.retrain_now().unwrap();
        s.delete(1).unwrap();
        let r = s.put(2, &[0xF1u8; 8]).unwrap();
        // Exactly the Hamming distance to whatever free bucket came up —
        // with k=1 there is no steering, like DCW over a free list.
        assert!(r.value_write.bit_flips <= 64);
        assert_eq!(s.model().k(), 1);
    }

    #[test]
    fn in_place_update_policy() {
        let mut s = PnwStore::new(
            PnwConfig::new(32, 8)
                .with_clusters(2)
                .with_update_policy(UpdatePolicy::InPlace),
        );
        s.put(5, &[0xAAu8; 8]).unwrap();
        let free_before = s.pool().free();
        let r = s.put(5, &[0xABu8; 8]).unwrap();
        // No pool interaction, no prediction.
        assert_eq!(s.pool().free(), free_before);
        assert_eq!(r.predict, Duration::ZERO);
        assert_eq!(s.get(5).unwrap().unwrap(), vec![0xABu8; 8]);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn delete_put_update_policy_changes_address() {
        let mut s = store(32, 8, 2);
        s.put(5, &[0xAAu8; 8]).unwrap();
        let addr1 = match &mut s.index {
            Index::Dram(i) => i.get(&mut s.dev, 5).unwrap().unwrap(),
            _ => unreachable!(),
        };
        s.put(5, &[0x55u8; 8]).unwrap();
        let addr2 = match &mut s.index {
            Index::Dram(i) => i.get(&mut s.dev, 5).unwrap().unwrap(),
            _ => unreachable!(),
        };
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(5).unwrap().unwrap(), vec![0x55u8; 8]);
        // With 31 other free buckets, the fresh PUT practically never
        // reuses the just-freed address… but it can (it is in the pool), so
        // only assert consistency, not inequality.
        let _ = (addr1, addr2);
    }

    #[test]
    fn prefill_then_steering() {
        let mut s = store(64, 8, 2);
        // Half the cells hold 0x00-family, half 0xFF-family.
        let mut i = 0u32;
        s.prefill_free_buckets(|| {
            i += 1;
            if i % 2 == 0 {
                vec![0x00u8; 8]
            } else {
                vec![0xFFu8; 8]
            }
        })
        .unwrap();
        s.retrain_now().unwrap();
        s.reset_device_stats();
        let r = s.put(1, &[0xFFu8; 8]).unwrap();
        // Value write should hit an 0xFF-family bucket: ~0 flips.
        assert!(r.value_write.bit_flips <= 8, "{}", r.value_write.bit_flips);
        let r2 = s.put(2, &[0x00u8; 8]).unwrap();
        assert!(r2.value_write.bit_flips <= 8, "{}", r2.value_write.bit_flips);
    }

    #[test]
    fn nvm_index_costs_bit_flips_dram_does_not() {
        let mut dram = PnwStore::new(PnwConfig::new(64, 8).with_clusters(1));
        let mut nvm = PnwStore::new(
            PnwConfig::new(64, 8)
                .with_clusters(1)
                .with_index(IndexPlacement::Nvm),
        );
        dram.put(1, &[0x11u8; 8]).unwrap();
        nvm.put(1, &[0x11u8; 8]).unwrap();
        let d = dram.device_stats().totals.bit_flips;
        let n = nvm.device_stats().totals.bit_flips;
        assert!(n > d, "nvm index must add flips: {n} vs {d}");
    }

    #[test]
    fn crash_recovery_dram_index() {
        let mut s = store(64, 8, 2);
        for k in 0..20u64 {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        s.delete(3).unwrap();
        s.crash_and_recover().unwrap();
        assert_eq!(s.len(), 19);
        assert_eq!(s.get(5).unwrap().unwrap(), 5u64.to_le_bytes().to_vec());
        assert_eq!(s.get(3).unwrap(), None);
        // Store remains writable.
        s.put(100, &[7u8; 8]).unwrap();
        assert_eq!(s.len(), 20);
    }

    #[test]
    fn crash_recovery_nvm_index() {
        let mut s = PnwStore::new(
            PnwConfig::new(64, 8)
                .with_clusters(2)
                .with_index(IndexPlacement::Nvm),
        );
        for k in 0..20u64 {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        s.delete(7).unwrap();
        s.crash_and_recover().unwrap();
        assert_eq!(s.len(), 19);
        assert_eq!(s.get(8).unwrap().unwrap(), 8u64.to_le_bytes().to_vec());
        assert_eq!(s.get(7).unwrap(), None);
    }

    #[test]
    fn load_factor_triggers_sync_retrain() {
        let mut s = PnwStore::new(
            PnwConfig::new(16, 8)
                .with_clusters(2)
                .with_load_factor(0.5)
                .with_retrain(RetrainMode::OnLoadFactor),
        );
        let before = s.model().retrains();
        for k in 0..10u64 {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        assert!(s.model().retrains() > before, "retrain must have fired");
    }

    #[test]
    fn background_retrain_installs_eventually() {
        let mut s = PnwStore::new(
            PnwConfig::new(32, 8)
                .with_clusters(2)
                .with_load_factor(0.25)
                .with_retrain(RetrainMode::Background),
        );
        for k in 0..16u64 {
            s.put(k, &(k * 7).to_le_bytes()).unwrap();
        }
        s.wait_for_retrain();
        assert!(s.model().is_trained());
        assert!(s.model().retrains() >= 1);
        // And the store still works.
        s.put(99, &[1u8; 8]).unwrap();
        assert_eq!(s.get(99).unwrap().unwrap(), vec![1u8; 8]);
    }

    #[test]
    fn snapshot_counters() {
        let mut s = store(32, 8, 2);
        s.put(1, &[1u8; 8]).unwrap();
        s.get(1).unwrap();
        s.get(2).unwrap();
        s.delete(1).unwrap();
        let snap = s.snapshot();
        assert_eq!(snap.puts, 1);
        assert_eq!(snap.gets, 2);
        assert_eq!(snap.deletes, 1);
        assert_eq!(snap.live, 0);
        assert_eq!(snap.free, 32);
        assert!(snap.availability() > 0.99);
    }

    #[test]
    fn get_does_not_touch_model_or_pool() {
        // §VI-E: "the value of K does not affect the lookup request latency
        // because in the lookup, the request does not go through the model
        // or the dynamic address pool".
        let mut s = store(32, 8, 4);
        s.put(1, &[1u8; 8]).unwrap();
        let free = s.pool().free();
        let predict_before = s.snapshot().predict_total;
        for _ in 0..10 {
            s.get(1).unwrap();
        }
        assert_eq!(s.pool().free(), free);
        assert_eq!(s.snapshot().predict_total, predict_before);
    }

    #[test]
    fn save_load_image_roundtrip() {
        let dir = std::env::temp_dir().join("pnw_store_image_test.bin");
        let cfg = PnwConfig::new(32, 8).with_clusters(2).with_seed(5);
        let mut s = PnwStore::new(cfg.clone());
        for k in 0..16u64 {
            s.put(k, &(k * 3).to_le_bytes()).unwrap();
        }
        s.delete(4).unwrap();
        s.save_image(&dir).unwrap();

        let mut s2 = PnwStore::load_image(cfg, &dir).unwrap();
        assert_eq!(s2.len(), 15);
        assert_eq!(s2.get(5).unwrap().unwrap(), 15u64.to_le_bytes().to_vec());
        assert_eq!(s2.get(4).unwrap(), None);
        // Reopened store keeps working.
        s2.put(100, &[7u8; 8]).unwrap();
        assert_eq!(s2.len(), 16);
        let _ = std::fs::remove_file(dir);
    }

    #[test]
    fn zone_extension_adds_capacity_without_index_churn() {
        // load_factor = 1.0 disables the automatic trigger so the manual
        // extension path is what's under test.
        let mut s = PnwStore::new(
            PnwConfig::new(8, 8)
                .with_clusters(2)
                .with_reserve(8)
                .with_load_factor(1.0)
                .with_retrain(RetrainMode::Manual),
        );
        assert_eq!(s.active_capacity(), 8);
        assert_eq!(s.reserve_remaining(), 8);
        for k in 0..8u64 {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        assert!(matches!(s.put(99, &[0u8; 8]), Err(PnwError::Full)));
        let added = s.extend_zone(4);
        assert_eq!(added, 4);
        assert_eq!(s.active_capacity(), 12);
        assert_eq!(s.reserve_remaining(), 4);
        // New capacity is usable; old keys untouched.
        s.put(99, &[9u8; 8]).unwrap();
        assert_eq!(s.get(3).unwrap().unwrap(), 3u64.to_le_bytes().to_vec());
        // Extension never exceeds the reserve.
        assert_eq!(s.extend_zone(100), 4);
        assert_eq!(s.reserve_remaining(), 0);
        assert_eq!(s.extend_zone(1), 0);
    }

    #[test]
    fn load_factor_auto_extends_from_reserve() {
        let mut s = PnwStore::new(
            PnwConfig::new(8, 8)
                .with_clusters(2)
                .with_reserve(8)
                .with_load_factor(0.5)
                .with_retrain(RetrainMode::OnLoadFactor),
        );
        for k in 0..8u64 {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        // The trigger fired at >50% occupancy and pulled from the reserve.
        assert!(s.active_capacity() > 8, "auto-extension must have fired");
        assert!(s.model().retrains() >= 1);
        // The 9th put works without manual intervention.
        s.put(100, &[1u8; 8]).unwrap();
    }

    #[test]
    fn auto_k_store_trains_with_elbow() {
        let mut s = PnwStore::new(
            PnwConfig::new(64, 4)
                .with_auto_k(1, 8)
                .with_retrain(RetrainMode::Manual),
        );
        let mut i = 0u32;
        s.prefill_free_buckets(|| {
            i += 1;
            match i % 3 {
                0 => vec![0x00, 0x00, 0x00, 0x00],
                1 => vec![0xFF, 0xFF, 0xFF, 0xFF],
                _ => vec![0x0F, 0xF0, 0x0F, 0xF0],
            }
        })
        .unwrap();
        s.retrain_now().unwrap();
        assert!((2..=6).contains(&s.model().k()), "k={}", s.model().k());
    }

    #[test]
    fn index_len_matches_live() {
        let mut s = store(32, 8, 2);
        for k in 0..10u64 {
            s.put(k, &[k as u8; 8]).unwrap();
        }
        s.delete(0).unwrap();
        assert_eq!(s.index.len(), s.len());
    }
}
