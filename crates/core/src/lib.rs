//! # pnw-core — the Predict-and-Write key/value store
//!
//! This crate implements the paper's primary contribution (§IV–V): a K/V
//! store for hybrid DRAM–NVM systems that extends NVM lifetime by steering
//! every PUT/UPDATE to the free memory location whose *current cell
//! content* is closest in Hamming distance to the value being written, so
//! the differential write flips as few bits as possible.
//!
//! The four components of Figure 2:
//!
//! * **ML model** ([`model`]) — K-means over the bit patterns of the data
//!   zone, with PCA in front for large values; lives in DRAM, retrained in
//!   the background.
//! * **Dynamic address pool** ([`pool`]) — per-cluster free lists of NVM
//!   addresses; lives in DRAM.
//! * **Hash index** — key → physical address; either DRAM (Figure 2a) or
//!   NVM Path Hashing (Figure 2b), both via `pnw-index`.
//! * **K/V data zone** — fixed-size buckets on the emulated NVM device.
//!
//! Two store frontends compose these pieces:
//!
//! * [`PnwStore`] — the single-threaded reference store the figure
//!   harnesses drive; one [`shard::ShardEngine`] plus a private model.
//! * [`ShardedPnwStore`] — N engines routed by key hash behind per-shard
//!   locks, sharing one background-retrained model; PUT/GET/DELETE take
//!   `&self` and scale across threads. `shards = 1` reproduces
//!   [`PnwStore`] bit-for-bit.
//!
//! ## The public API
//!
//! Every store frontend — and the baseline stores in `pnw-baselines` —
//! implements the [`api::Store`] trait: `&self`-based `put` / `get` /
//! `get_into` / `delete` / `snapshot` with the unified
//! [`StoreError`], plus the batched-write entry point
//! [`api::Store::apply`] over [`Batch`]/[`Op`]. See [`api`] for the
//! contract and batch semantics.
//!
//! ## Quickstart
//!
//! ```
//! use pnw_core::{PnwConfig, PnwStore};
//!
//! // A small store: 256 buckets of 8-byte values, K = 4 clusters.
//! let store = PnwStore::new(PnwConfig::new(256, 8).with_clusters(4));
//!
//! // Warm up with "old data" and train the model on it (Algorithm 1).
//! for k in 0..128u64 {
//!     store.put(k, &k.to_le_bytes()).unwrap();
//! }
//! store.retrain_now().unwrap();
//!
//! // Subsequent writes are steered to bit-similar locations.
//! store.put(1000, &500u64.to_le_bytes()).unwrap();
//! assert_eq!(store.get(1000).unwrap().unwrap(), 500u64.to_le_bytes());
//!
//! // The device accounting behind every paper figure:
//! let s = store.device_stats();
//! assert!(s.totals.bit_flips > 0);
//! ```
//!
//! Batched writes amortize per-op overhead (one lock acquisition and one
//! model-snapshot load per shard per batch on the sharded store):
//!
//! ```
//! use pnw_core::{Batch, PnwConfig, ShardedPnwStore, Store};
//!
//! let store = ShardedPnwStore::new(PnwConfig::new(256, 8).with_shards(4));
//! let mut batch = Batch::new();
//! for k in 0..64u64 {
//!     batch.put(k, &k.to_le_bytes());
//! }
//! let report = store.apply(&batch);
//! assert!(report.all_ok());
//! assert_eq!(store.len(), 64);
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod config;
mod durable;
pub mod error;
pub mod metrics;
pub mod model;
pub mod pool;
pub mod shard;
pub mod sharded;
pub mod store;

pub use api::{Batch, BatchReport, Op, Store};
pub use config::{
    BackingMode, ConfigError, IndexPlacement, PcaPolicy, PnwConfig, RetrainMode, UpdatePolicy,
};
pub use error::{PnwError, StoreError};
// Re-exported so recovery tests can arm deterministic metadata tears
// without depending on pnw-nvm-sim directly.
pub use pnw_nvm_sim::{MetaTarget, MetaTear};
pub use metrics::{OpReport, ScrubStats, StoreSnapshot, TrainStats};
pub use model::{ModelManager, ModelSnapshot, PredictScratch};
pub use pool::DynamicAddressPool;
pub use shard::{now_unix_ms, PutPath, ShardEngine};
pub use sharded::ShardedPnwStore;
pub use store::PnwStore;
