//! The durable metadata layer under file-backed stores: superblock, WAL,
//! checkpoint.
//!
//! A file-backed store keeps its cell arrays durable through the device's
//! write-through backing (`pnw-nvm-sim`'s [`pnw_nvm_sim::DeviceBacking`]),
//! but the cell array alone cannot answer "which operations were
//! *acknowledged*?" after a kill — a torn bucket write leaves a header that
//! looks valid while the value behind it is a prefix. This module adds the
//! three small files that make recovery decidable:
//!
//! * **superblock** (`super`) — two replicated 64-byte slots; each holds a
//!   CRC-framed record naming the current epoch and the checkpoint epoch to
//!   recover from. Writers alternate slots by epoch parity, so a torn
//!   superblock write can only corrupt the slot being written — the other
//!   replica still elects.
//! * **write-ahead log** (`wal.<shard>`) — an append-only stream of
//!   CRC-framed records, one per acknowledged mutation (PUT, DELETE, zone
//!   extension). A record is appended and fsynced *after* the data write
//!   lands and *before* the operation returns: the WAL suffix over the
//!   checkpoint is exactly the set of acknowledged-but-not-yet-checkpointed
//!   ops. Replay stops at the first torn/invalid frame — everything after
//!   it was never acknowledged.
//! * **checkpoint** (`checkpoint.<epoch>`) — a CRC-trailed snapshot of each
//!   shard's committed key→address map, active-zone size and device
//!   counters. Written to `checkpoint.tmp`, fsynced, renamed, and only then
//!   published by bumping the superblock epoch — the referenced checkpoint
//!   is therefore always complete, and a crash at any byte of the protocol
//!   falls back to the previous epoch plus the untruncated WAL.
//!
//! All three write sites route through a shared
//! [`FaultState::filter_meta_write`] so the recovery tests can land a
//! deterministic tear in any of them (see
//! [`pnw_nvm_sim::MetaTarget`]).

use std::collections::HashMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use pnw_nvm_sim::{crc32, DeviceStats, FaultConfig, FaultState, MetaTarget, MetaTear, NvmError};

use crate::config::{IndexPlacement, PnwConfig};
use crate::error::StoreError;

const SUPER_MAGIC: &[u8; 8] = b"PNWSUPR1";
const CKPT_MAGIC: &[u8; 8] = b"PNWCKPT1";
const FORMAT_VERSION: u32 = 2;
/// Each superblock replica owns a 64-byte slot (the record is 44 bytes;
/// the slot is padded so the two replicas never share a filesystem block
/// boundary misaligned with the write).
const SLOT_BYTES: u64 = 64;
const SUPER_RECORD: usize = 44;
/// `[len u32 | crc u32]` ahead of every WAL payload.
const WAL_FRAME_HDR: usize = 8;
/// Largest fixed-size WAL payload (the value-carrying PUT record adds the
/// store's `value_size` on top — see [`DurableStore::open`]'s
/// `value_size` parameter). Anything bigger than the store's maximum is
/// framing garbage and ends replay.
const MAX_WAL_PAYLOAD: usize = 17;
/// Fixed prefix of a [`REC_PUT_V`] payload: `tag | key u64 | addr u64`.
const PUT_V_PREFIX: usize = 17;

const REC_PUT: u8 = 1;
const REC_DELETE: u8 = 2;
const REC_EXTEND: u8 = 3;
/// A bucket permanently retired from placement (stuck media). 5 bytes:
/// `tag | bucket u32`.
const REC_RETIRE: u8 = 4;
/// A PUT that also carries the value bytes (written when end-to-end
/// integrity is on), so the scrubber can repair a later media corruption
/// from the WAL. `tag | key u64 | addr u64 | value[value_size]`.
const REC_PUT_V: u8 = 5;

fn io_err(e: std::io::Error) -> StoreError {
    StoreError::Nvm(NvmError::Io(e.kind()))
}

fn crashed() -> StoreError {
    StoreError::Nvm(NvmError::Crashed)
}

fn corrupt(msg: impl Into<String>) -> StoreError {
    StoreError::Corrupt(msg.into())
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hashes the geometry-determining config fields. A store directory
/// written under one geometry must not be opened under another: the data
/// files would parse but every address would be wrong. The hash covers
/// exactly the fields that fix bucket addresses and file sizes.
pub(crate) fn geometry_hash(cfg: &PnwConfig, n_shards: usize) -> u64 {
    let mut h = 0xD6E8_FEB8_6659_FD93u64;
    for v in [
        cfg.capacity as u64,
        cfg.value_size as u64,
        cfg.reserve_buckets as u64,
        n_shards as u64,
        match cfg.index {
            IndexPlacement::Dram => 0,
            IndexPlacement::Nvm => 1,
        },
        // The expiry zone changes the device size and every region
        // offset after it, so TTL-on and TTL-off directories are
        // mutually unreadable.
        u64::from(cfg.ttl_enabled),
    ] {
        h = splitmix(h ^ v);
    }
    h
}

/// One shard's contribution to a checkpoint: everything recovery needs
/// that the data file alone cannot prove.
#[derive(Debug, Clone)]
pub(crate) struct ShardCheckpoint {
    /// Buckets in the active data zone at the cut.
    pub active: u64,
    /// Committed `(key, device address)` pairs at the cut.
    pub entries: Vec<(u64, u64)>,
    /// Device counters at the cut (persisted so wear/endurance metrics
    /// survive restarts).
    pub stats: DeviceStats,
    /// Per-word wear counters (empty on a fresh store).
    pub word_writes: Vec<u32>,
    /// Per-bit wear counters, when the device tracks them.
    pub bit_flips: Option<Vec<u16>>,
    /// Buckets permanently retired from placement at the cut (sorted).
    /// Retirement must survive reopen: a retired bucket's media is stuck
    /// and must never re-enter the pool.
    pub retired: Vec<u32>,
}

impl ShardCheckpoint {
    /// The checkpoint a freshly-initialized shard starts from: nothing
    /// committed, `active` buckets live, zeroed counters.
    pub fn fresh(active: u64) -> Self {
        ShardCheckpoint {
            active,
            entries: Vec::new(),
            stats: DeviceStats::default(),
            word_writes: Vec::new(),
            bit_flips: None,
            retired: Vec::new(),
        }
    }
}

/// One shard's recovered state: the checkpoint image with the WAL suffix
/// replayed over it.
#[derive(Debug, Clone)]
pub(crate) struct RecoveredShard {
    /// The committed key→address map after replay. Every key in here was
    /// acknowledged; no key outside it was.
    pub committed: HashMap<u64, u64>,
    /// Active-zone size after replay.
    pub active: u64,
    /// Device counters as of the checkpoint cut.
    pub stats: DeviceStats,
    /// Per-word wear as of the checkpoint cut (empty on a fresh store).
    pub word_writes: Vec<u32>,
    /// Per-bit wear as of the checkpoint cut.
    pub bit_flips: Option<Vec<u16>>,
    /// Buckets permanently retired from placement (checkpoint list plus
    /// any [`REC_RETIRE`] records in the WAL suffix).
    pub retired: Vec<u32>,
    /// Committed values still present in the un-truncated WAL — the
    /// scrubber's repair source. Handed to the shard's fresh
    /// [`DurableShard`] via [`DurableShard::preload_values`] so repair
    /// capability survives a reopen.
    pub values: HashMap<u64, Vec<u8>>,
}

impl RecoveredShard {
    fn from_checkpoint(s: ShardCheckpoint) -> Self {
        RecoveredShard {
            committed: s.entries.into_iter().collect(),
            active: s.active,
            stats: s.stats,
            word_writes: s.word_writes,
            bit_flips: s.bit_flips,
            retired: s.retired,
            values: HashMap::new(),
        }
    }
}

/// A shard's handle on its WAL: an `O_APPEND` file plus the store-wide
/// fault state. Appending a record is the *commit point* of every durable
/// mutation.
#[derive(Debug)]
pub(crate) struct DurableShard {
    wal: File,
    faults: Arc<Mutex<FaultState>>,
    /// Group-commit mode: appends write their frame but defer the fsync
    /// to [`DurableShard::end_group`], coalescing a whole batch group
    /// into one `sync_data` per shard.
    defer_sync: bool,
    /// Whether frames were appended since the last fsync.
    dirty: bool,
    /// Largest payload this shard's WAL may carry (`PUT_V_PREFIX` plus
    /// the store's value size).
    max_payload: usize,
    /// DRAM mirror of the value-carrying records currently in the WAL —
    /// what the scrubber repairs corrupt buckets from. Cleared when a
    /// checkpoint truncates the WAL.
    values: HashMap<u64, Vec<u8>>,
}

impl DurableShard {
    /// Enters group-commit mode: subsequent appends write their frames
    /// immediately but defer the fsync to [`DurableShard::end_group`].
    /// Nothing appended inside the group is acknowledged until the group
    /// ends — callers must not return success to their client in between.
    pub fn begin_group(&mut self) {
        self.defer_sync = true;
    }

    /// Leaves group-commit mode and fsyncs everything appended since the
    /// last sync — the commit point of the whole group (one `sync_data`
    /// per shard group instead of one per record).
    pub fn end_group(&mut self) -> Result<(), StoreError> {
        self.defer_sync = false;
        if std::mem::take(&mut self.dirty) {
            self.wal.sync_data().map_err(io_err)?;
        }
        Ok(())
    }
    /// Commits a PUT/UPDATE of `key` at device address `addr`.
    pub fn log_put(&mut self, key: u64, addr: u64) -> Result<(), StoreError> {
        let mut p = [0u8; 17];
        p[0] = REC_PUT;
        p[1..9].copy_from_slice(&key.to_le_bytes());
        p[9..17].copy_from_slice(&addr.to_le_bytes());
        self.values.remove(&key);
        self.append(&p)
    }

    /// Commits a PUT/UPDATE of `key` at `addr` *with* the value bytes, so
    /// a later media corruption of this bucket can be repaired from the
    /// WAL. Written instead of [`DurableShard::log_put`] when integrity
    /// verification is on.
    pub fn log_put_value(&mut self, key: u64, addr: u64, value: &[u8]) -> Result<(), StoreError> {
        let mut p = Vec::with_capacity(PUT_V_PREFIX + value.len());
        p.push(REC_PUT_V);
        p.extend_from_slice(&key.to_le_bytes());
        p.extend_from_slice(&addr.to_le_bytes());
        p.extend_from_slice(value);
        self.append(&p)?;
        self.values.insert(key, value.to_vec());
        Ok(())
    }

    /// Commits a bucket retirement: `bucket` must never re-enter
    /// placement, across crashes and reopens.
    pub fn log_retire(&mut self, bucket: u32) -> Result<(), StoreError> {
        let mut p = [0u8; 5];
        p[0] = REC_RETIRE;
        p[1..5].copy_from_slice(&bucket.to_le_bytes());
        self.append(&p)
    }

    /// The clean durable copy of `key`'s committed value, when the
    /// un-truncated WAL still holds one.
    pub fn wal_value(&self, key: u64) -> Option<&[u8]> {
        self.values.get(&key).map(Vec::as_slice)
    }

    /// Seeds the value mirror from a recovery replay (the WAL was not
    /// truncated, so its value records are still repair-capable).
    pub fn preload_values(&mut self, values: HashMap<u64, Vec<u8>>) {
        self.values = values;
    }

    /// Drops the value mirror after a checkpoint truncated the WAL.
    pub fn clear_values(&mut self) {
        self.values.clear();
        self.values.shrink_to_fit();
    }

    /// Commits a DELETE of `key`.
    pub fn log_delete(&mut self, key: u64) -> Result<(), StoreError> {
        let mut p = [0u8; 9];
        p[0] = REC_DELETE;
        p[1..9].copy_from_slice(&key.to_le_bytes());
        self.values.remove(&key);
        self.append(&p)
    }

    /// Commits a zone extension to `active` buckets.
    pub fn log_extend(&mut self, active: u64) -> Result<(), StoreError> {
        let mut p = [0u8; 9];
        p[0] = REC_EXTEND;
        p[1..9].copy_from_slice(&active.to_le_bytes());
        self.append(&p)
    }

    /// Appends one CRC-framed record and fsyncs it. A torn append persists
    /// the configured prefix (which replay will reject) and returns
    /// `Crashed`; the caller must not acknowledge the operation.
    fn append(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        debug_assert!(payload.len() <= self.max_payload);
        let len = WAL_FRAME_HDR + payload.len();
        let mut frame = Vec::with_capacity(len);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let filtered = self
            .faults
            .lock()
            .unwrap()
            .filter_meta_write(MetaTarget::Wal, len)
            .map_err(|_| crashed())?;
        match filtered {
            None => {
                self.wal.write_all(&frame[..len]).map_err(io_err)?;
                if self.defer_sync {
                    self.dirty = true;
                } else {
                    self.wal.sync_data().map_err(io_err)?;
                }
                Ok(())
            }
            Some(keep) => {
                // The tear: a prefix of the frame reaches the file, then
                // the store is dead. Best-effort persist of the prefix —
                // recovery must survive it either way.
                let _ = self.wal.write_all(&frame[..keep]);
                let _ = self.wal.sync_data();
                Err(crashed())
            }
        }
    }
}

fn encode_superblock(epoch: u64, checkpoint_epoch: u64, geometry: u64) -> [u8; SUPER_RECORD] {
    let mut b = [0u8; SUPER_RECORD];
    b[0..8].copy_from_slice(SUPER_MAGIC);
    b[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
    // b[12..16] reserved, zero.
    b[16..24].copy_from_slice(&epoch.to_le_bytes());
    b[24..32].copy_from_slice(&checkpoint_epoch.to_le_bytes());
    b[32..40].copy_from_slice(&geometry.to_le_bytes());
    let crc = crc32(&b[..40]);
    b[40..44].copy_from_slice(&crc.to_le_bytes());
    b
}

/// Parses one superblock slot; `None` when the slot is torn, stale-format
/// or never written. Returns `(epoch, checkpoint_epoch, geometry_hash)`.
fn parse_super_slot(slot: &[u8]) -> Option<(u64, u64, u64)> {
    if slot.len() < SUPER_RECORD || &slot[0..8] != SUPER_MAGIC {
        return None;
    }
    if u32::from_le_bytes(slot[8..12].try_into().unwrap()) != FORMAT_VERSION {
        return None;
    }
    let crc = u32::from_le_bytes(slot[40..44].try_into().unwrap());
    if crc32(&slot[..40]) != crc {
        return None;
    }
    Some((
        u64::from_le_bytes(slot[16..24].try_into().unwrap()),
        u64::from_le_bytes(slot[24..32].try_into().unwrap()),
        u64::from_le_bytes(slot[32..40].try_into().unwrap()),
    ))
}

/// Replays a WAL byte stream over a recovered shard. Stops at the first
/// frame that is short, oversized, CRC-invalid or of unknown kind — by the
/// append protocol, everything at and after such a frame was never
/// acknowledged.
fn replay_wal(bytes: &[u8], shard: &mut RecoveredShard, max_payload: usize) {
    let mut pos = 0usize;
    while pos + WAL_FRAME_HDR <= bytes.len() {
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        if len == 0 || len > max_payload || pos + WAL_FRAME_HDR + len > bytes.len() {
            return;
        }
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        let payload = &bytes[pos + WAL_FRAME_HDR..pos + WAL_FRAME_HDR + len];
        if crc32(payload) != crc {
            return;
        }
        match (payload[0], len) {
            (REC_PUT, 17) => {
                let key = u64::from_le_bytes(payload[1..9].try_into().unwrap());
                let addr = u64::from_le_bytes(payload[9..17].try_into().unwrap());
                shard.committed.insert(key, addr);
                shard.values.remove(&key);
            }
            (REC_PUT_V, n) if n > PUT_V_PREFIX => {
                let key = u64::from_le_bytes(payload[1..9].try_into().unwrap());
                let addr = u64::from_le_bytes(payload[9..17].try_into().unwrap());
                shard.committed.insert(key, addr);
                shard.values.insert(key, payload[PUT_V_PREFIX..].to_vec());
            }
            (REC_DELETE, 9) => {
                let key = u64::from_le_bytes(payload[1..9].try_into().unwrap());
                shard.committed.remove(&key);
                shard.values.remove(&key);
            }
            (REC_RETIRE, 5) => {
                let bucket = u32::from_le_bytes(payload[1..5].try_into().unwrap());
                if !shard.retired.contains(&bucket) {
                    shard.retired.push(bucket);
                }
            }
            (REC_EXTEND, 9) => {
                let active = u64::from_le_bytes(payload[1..9].try_into().unwrap());
                // `max`: replay over a checkpoint that already includes the
                // extension must not shrink the zone.
                shard.active = shard.active.max(active);
            }
            _ => return,
        }
        pos += WAL_FRAME_HDR + len;
    }
}

struct Cursor<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        if self.pos + n > self.b.len() {
            return Err(corrupt("checkpoint truncated"));
        }
        let s = &self.b[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

fn encode_checkpoint(epoch: u64, shards: &[ShardCheckpoint]) -> Vec<u8> {
    let mut b = Vec::new();
    b.extend_from_slice(CKPT_MAGIC);
    b.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    b.extend_from_slice(&(shards.len() as u32).to_le_bytes());
    b.extend_from_slice(&epoch.to_le_bytes());
    for s in shards {
        b.extend_from_slice(&s.active.to_le_bytes());
        let t = &s.stats.totals;
        for v in [
            t.bit_flips,
            t.aux_bit_flips,
            t.bits_addressed,
            t.words_written,
            t.lines_written,
            t.lines_read,
            s.stats.write_ops,
            s.stats.read_ops,
            s.stats.bytes_read,
        ] {
            b.extend_from_slice(&v.to_le_bytes());
        }
        b.extend_from_slice(&(s.word_writes.len() as u64).to_le_bytes());
        for w in &s.word_writes {
            b.extend_from_slice(&w.to_le_bytes());
        }
        match &s.bit_flips {
            None => b.push(0),
            Some(bits) => {
                b.push(1);
                b.extend_from_slice(&(bits.len() as u64).to_le_bytes());
                for v in bits {
                    b.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        b.extend_from_slice(&(s.entries.len() as u64).to_le_bytes());
        for (k, a) in &s.entries {
            b.extend_from_slice(&k.to_le_bytes());
            b.extend_from_slice(&a.to_le_bytes());
        }
        b.extend_from_slice(&(s.retired.len() as u64).to_le_bytes());
        for r in &s.retired {
            b.extend_from_slice(&r.to_le_bytes());
        }
    }
    let crc = crc32(&b);
    b.extend_from_slice(&crc.to_le_bytes());
    b
}

fn decode_checkpoint(body: &[u8], expect_epoch: u64) -> Result<Vec<ShardCheckpoint>, StoreError> {
    if body.len() < 4 {
        return Err(corrupt("checkpoint shorter than its CRC trailer"));
    }
    let (payload, trailer) = body.split_at(body.len() - 4);
    let crc = u32::from_le_bytes(trailer.try_into().unwrap());
    if crc32(payload) != crc {
        return Err(corrupt("checkpoint CRC mismatch"));
    }
    let mut c = Cursor { b: payload, pos: 0 };
    if c.take(8)? != CKPT_MAGIC {
        return Err(corrupt("checkpoint magic mismatch"));
    }
    if c.u32()? != FORMAT_VERSION {
        return Err(corrupt("checkpoint format version mismatch"));
    }
    let n_shards = c.u32()? as usize;
    let epoch = c.u64()?;
    if epoch != expect_epoch {
        return Err(corrupt(format!(
            "checkpoint epoch {epoch} does not match superblock epoch {expect_epoch}"
        )));
    }
    let mut shards = Vec::with_capacity(n_shards);
    for _ in 0..n_shards {
        let active = c.u64()?;
        let vals: Vec<u64> = (0..9).map(|_| c.u64()).collect::<Result<_, _>>()?;
        let stats = DeviceStats {
            totals: pnw_nvm_sim::WriteStats {
                bit_flips: vals[0],
                aux_bit_flips: vals[1],
                bits_addressed: vals[2],
                words_written: vals[3],
                lines_written: vals[4],
                lines_read: vals[5],
            },
            write_ops: vals[6],
            read_ops: vals[7],
            bytes_read: vals[8],
        };
        let n_words = c.u64()? as usize;
        let mut word_writes = Vec::with_capacity(n_words.min(payload.len()));
        for _ in 0..n_words {
            word_writes.push(c.u32()?);
        }
        let bit_flips = match c.u8()? {
            0 => None,
            1 => {
                let n = c.u64()? as usize;
                let mut bits = Vec::with_capacity(n.min(payload.len()));
                for _ in 0..n {
                    bits.push(u16::from_le_bytes(c.take(2)?.try_into().unwrap()));
                }
                Some(bits)
            }
            _ => return Err(corrupt("checkpoint bit-wear flag out of range")),
        };
        let n_entries = c.u64()? as usize;
        let mut entries = Vec::with_capacity(n_entries.min(payload.len()));
        for _ in 0..n_entries {
            let k = c.u64()?;
            let a = c.u64()?;
            entries.push((k, a));
        }
        let n_retired = c.u64()? as usize;
        let mut retired = Vec::with_capacity(n_retired.min(payload.len()));
        for _ in 0..n_retired {
            retired.push(c.u32()?);
        }
        shards.push(ShardCheckpoint {
            active,
            entries,
            stats,
            word_writes,
            bit_flips,
            retired,
        });
    }
    Ok(shards)
}

/// The store-level durability controller: owns the directory layout, the
/// superblock epoch and the shared fault state; hands out per-shard WAL
/// appenders.
#[derive(Debug)]
pub(crate) struct DurableStore {
    dir: PathBuf,
    n_shards: usize,
    epoch: u64,
    checkpoint_epoch: u64,
    geometry_hash: u64,
    /// Largest legal WAL payload under this store's value size.
    max_payload: usize,
    faults: Arc<Mutex<FaultState>>,
}

impl DurableStore {
    /// Opens (or initializes) the durable directory.
    ///
    /// `initial` describes each shard's fresh state (one entry per shard —
    /// its length fixes the shard count) and is used only when the
    /// directory has never been initialized; on a recovery open the
    /// returned [`RecoveredShard`]s carry the checkpoint state with the
    /// WAL suffix replayed over it. The `bool` is `true` for a fresh
    /// initialization.
    pub fn open(
        dir: &Path,
        geometry_hash: u64,
        value_size: usize,
        initial: Vec<ShardCheckpoint>,
    ) -> Result<(Self, Vec<RecoveredShard>, bool), StoreError> {
        fs::create_dir_all(dir).map_err(io_err)?;
        let n_shards = initial.len();
        let max_payload = MAX_WAL_PAYLOAD.max(PUT_V_PREFIX + value_size);
        let faults = Arc::new(Mutex::new(FaultState::new(FaultConfig::default())));
        let super_path = dir.join("super");

        if !super_path.exists() {
            let mut store = DurableStore {
                dir: dir.to_path_buf(),
                n_shards,
                epoch: 0,
                checkpoint_epoch: 0,
                geometry_hash,
                max_payload,
                faults,
            };
            store.checkpoint(&initial)?;
            let recovered = initial.into_iter().map(RecoveredShard::from_checkpoint).collect();
            return Ok((store, recovered, true));
        }

        let raw = fs::read(&super_path).map_err(io_err)?;
        let mut slots = [0u8; 2 * SLOT_BYTES as usize];
        let n = raw.len().min(slots.len());
        slots[..n].copy_from_slice(&raw[..n]);
        let best = [
            parse_super_slot(&slots[..SLOT_BYTES as usize]),
            parse_super_slot(&slots[SLOT_BYTES as usize..]),
        ]
        .into_iter()
        .flatten()
        .max_by_key(|(epoch, _, _)| *epoch);
        let Some((epoch, checkpoint_epoch, geom)) = best else {
            return Err(corrupt("no valid superblock replica"));
        };
        if geom != geometry_hash {
            return Err(corrupt(
                "store directory was written under a different geometry",
            ));
        }

        let ckpt_path = dir.join(format!("checkpoint.{checkpoint_epoch}"));
        let body = fs::read(&ckpt_path)
            .map_err(|_| corrupt(format!("referenced checkpoint.{checkpoint_epoch} unreadable")))?;
        let shards = decode_checkpoint(&body, checkpoint_epoch)?;
        if shards.len() != n_shards {
            return Err(corrupt(format!(
                "checkpoint has {} shards, store expects {n_shards}",
                shards.len()
            )));
        }
        let mut recovered: Vec<RecoveredShard> =
            shards.into_iter().map(RecoveredShard::from_checkpoint).collect();
        for (sid, shard) in recovered.iter_mut().enumerate() {
            let wal = fs::read(dir.join(format!("wal.{sid}"))).unwrap_or_default();
            replay_wal(&wal, shard, max_payload);
        }

        // Clean up protocol leftovers: a half-written `checkpoint.tmp` and
        // any checkpoint the superblock does not reference (a new epoch
        // whose superblock bump tore). WALs are NOT truncated here —
        // replay is idempotent and truncation belongs to the checkpoint
        // protocol.
        let _ = fs::remove_file(dir.join("checkpoint.tmp"));
        if let Ok(rd) = fs::read_dir(dir) {
            for entry in rd.flatten() {
                let name = entry.file_name().to_string_lossy().into_owned();
                if let Some(suffix) = name.strip_prefix("checkpoint.") {
                    if suffix.parse::<u64>().map(|e| e != checkpoint_epoch).unwrap_or(false) {
                        let _ = fs::remove_file(entry.path());
                    }
                }
            }
        }

        Ok((
            DurableStore {
                dir: dir.to_path_buf(),
                n_shards,
                epoch,
                checkpoint_epoch,
                geometry_hash,
                max_payload,
                faults,
            },
            recovered,
            false,
        ))
    }

    /// Cuts a checkpoint: write-new → fsync → rename → superblock bump →
    /// WAL truncation. The caller must have synced the shard data devices
    /// first and must hold out writers for the duration of the state
    /// collection (the store frontends do both).
    pub fn checkpoint(&mut self, shards: &[ShardCheckpoint]) -> Result<(), StoreError> {
        assert_eq!(shards.len(), self.n_shards, "one checkpoint entry per shard");
        let new_epoch = self.epoch + 1;
        let body = encode_checkpoint(new_epoch, shards);
        let tmp = self.dir.join("checkpoint.tmp");
        {
            let mut f = File::create(&tmp).map_err(io_err)?;
            match self.filter(MetaTarget::Checkpoint, body.len())? {
                None => {
                    f.write_all(&body).map_err(io_err)?;
                    f.sync_all().map_err(io_err)?;
                }
                Some(keep) => {
                    let _ = f.write_all(&body[..keep]);
                    let _ = f.sync_all();
                    return Err(crashed());
                }
            }
        }
        fs::rename(&tmp, self.dir.join(format!("checkpoint.{new_epoch}"))).map_err(io_err)?;
        // The commit point: until this superblock write lands, recovery
        // elects the old epoch (old checkpoint + still-untruncated WAL).
        self.write_superblock(new_epoch, new_epoch)?;
        let old = self.checkpoint_epoch;
        self.epoch = new_epoch;
        self.checkpoint_epoch = new_epoch;
        for sid in 0..self.n_shards {
            let f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(false)
                .open(self.wal_path(sid))
                .map_err(io_err)?;
            f.set_len(0).map_err(io_err)?;
            f.sync_all().map_err(io_err)?;
        }
        if old != 0 && old != new_epoch {
            let _ = fs::remove_file(self.dir.join(format!("checkpoint.{old}")));
        }
        Ok(())
    }

    fn write_superblock(&self, epoch: u64, checkpoint_epoch: u64) -> Result<(), StoreError> {
        let record = encode_superblock(epoch, checkpoint_epoch, self.geometry_hash);
        let f = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(self.dir.join("super"))
            .map_err(io_err)?;
        if f.metadata().map_err(io_err)?.len() < 2 * SLOT_BYTES {
            f.set_len(2 * SLOT_BYTES).map_err(io_err)?;
        }
        let off = (epoch % 2) * SLOT_BYTES;
        match self.filter(MetaTarget::Superblock, SUPER_RECORD)? {
            None => {
                f.write_all_at(&record, off).map_err(io_err)?;
                f.sync_all().map_err(io_err)?;
                Ok(())
            }
            Some(keep) => {
                let _ = f.write_all_at(&record[..keep], off);
                let _ = f.sync_all();
                Err(crashed())
            }
        }
    }

    fn filter(&self, target: MetaTarget, len: usize) -> Result<Option<usize>, StoreError> {
        self.faults
            .lock()
            .unwrap()
            .filter_meta_write(target, len)
            .map_err(|_| crashed())
    }

    /// Path of shard `sid`'s device backing file.
    pub fn data_path(&self, sid: usize) -> PathBuf {
        self.dir.join(format!("data.{sid}"))
    }

    fn wal_path(&self, sid: usize) -> PathBuf {
        self.dir.join(format!("wal.{sid}"))
    }

    /// Opens shard `sid`'s WAL for appending and couples it to the
    /// store-wide fault state.
    pub fn wal_appender(&self, sid: usize) -> Result<DurableShard, StoreError> {
        let wal = OpenOptions::new()
            .append(true)
            .create(true)
            .open(self.wal_path(sid))
            .map_err(io_err)?;
        Ok(DurableShard {
            wal,
            faults: Arc::clone(&self.faults),
            defer_sync: false,
            dirty: false,
            max_payload: self.max_payload,
            values: HashMap::new(),
        })
    }

    /// Arms a deterministic metadata tear (test hook).
    pub fn arm_meta_tear(&self, tear: MetaTear) {
        self.faults.lock().unwrap().arm_meta_tear(tear);
    }

    /// Current superblock epoch.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pnw_durable_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_stats() -> DeviceStats {
        let mut s = DeviceStats::default();
        s.record_write(&pnw_nvm_sim::WriteStats {
            bit_flips: 10,
            aux_bit_flips: 1,
            bits_addressed: 64,
            words_written: 2,
            lines_written: 1,
            lines_read: 1,
        });
        s.record_read(32);
        s
    }

    #[test]
    fn fresh_open_then_reopen_is_empty() {
        let dir = tmp("fresh");
        let (store, rec, fresh) =
            DurableStore::open(&dir, 42, 8, vec![ShardCheckpoint::fresh(8)]).unwrap();
        assert!(fresh);
        assert_eq!(store.epoch(), 1);
        assert!(rec[0].committed.is_empty());
        assert_eq!(rec[0].active, 8);
        drop(store);
        let (store, rec, fresh) =
            DurableStore::open(&dir, 42, 8, vec![ShardCheckpoint::fresh(8)]).unwrap();
        assert!(!fresh);
        assert_eq!(store.epoch(), 1);
        assert!(rec[0].committed.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_replays_over_checkpoint() {
        let dir = tmp("replay");
        let (store, _, _) = DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        let mut wal = store.wal_appender(0).unwrap();
        wal.log_put(1, 100).unwrap();
        wal.log_put(2, 200).unwrap();
        wal.log_delete(1).unwrap();
        wal.log_put(1, 300).unwrap();
        wal.log_extend(6).unwrap();
        drop((wal, store));

        let (store, rec, fresh) =
            DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        assert!(!fresh);
        assert_eq!(rec[0].active, 6);
        assert_eq!(rec[0].committed.len(), 2);
        assert_eq!(rec[0].committed[&1], 300);
        assert_eq!(rec[0].committed[&2], 200);
        let _ = (store, fs::remove_dir_all(&dir));
    }

    #[test]
    fn checkpoint_truncates_wal_and_round_trips_state() {
        let dir = tmp("ckpt");
        let (mut store, _, _) =
            DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        let mut wal = store.wal_appender(0).unwrap();
        wal.log_put(9, 900).unwrap();
        store
            .checkpoint(&[ShardCheckpoint {
                active: 6,
                entries: vec![(9, 900)],
                stats: sample_stats(),
                word_writes: vec![3, 0, 1],
                bit_flips: Some(vec![1, 2]),
                retired: Vec::new(),
            }])
            .unwrap();
        assert_eq!(store.epoch(), 2);
        assert_eq!(fs::metadata(dir.join("wal.0")).unwrap().len(), 0);
        assert!(!dir.join("checkpoint.1").exists(), "old epoch removed");
        drop((wal, store));

        let (store, rec, _) = DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        assert_eq!(store.epoch(), 2);
        assert_eq!(rec[0].active, 6);
        assert_eq!(rec[0].committed[&9], 900);
        assert_eq!(rec[0].stats, sample_stats());
        assert_eq!(rec[0].word_writes, vec![3, 0, 1]);
        assert_eq!(rec[0].bit_flips, Some(vec![1, 2]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_commit_replays_like_per_record_commit() {
        let dir = tmp("group");
        let (store, _, _) = DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        let mut wal = store.wal_appender(0).unwrap();
        wal.begin_group();
        wal.log_put(1, 100).unwrap();
        wal.log_put(2, 200).unwrap();
        wal.log_delete(1).unwrap();
        wal.end_group().unwrap();
        // A second group on the same appender works too.
        wal.begin_group();
        wal.log_put(3, 300).unwrap();
        wal.end_group().unwrap();
        drop((wal, store));

        let (_, rec, _) = DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        assert_eq!(rec[0].committed.len(), 2);
        assert_eq!(rec[0].committed[&2], 200);
        assert_eq!(rec[0].committed[&3], 300);
        assert!(!rec[0].committed.contains_key(&1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_append_inside_group_still_fails_immediately() {
        let dir = tmp("group_tear");
        let (store, _, _) = DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        let mut wal = store.wal_appender(0).unwrap();
        wal.begin_group();
        wal.log_put(1, 100).unwrap();
        store.arm_meta_tear(MetaTear {
            target: MetaTarget::Wal,
            skip: 0,
            keep_bytes: 5,
        });
        // The fault filter still runs at append time, not at the group
        // fsync — a torn record surfaces on the op that wrote it.
        assert!(wal.log_put(2, 200).is_err());
        drop((wal, store));

        let (_, rec, _) = DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        assert_eq!(rec[0].committed.len(), 1, "prefix before the tear replays");
        assert_eq!(rec[0].committed[&1], 100);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_record_ends_replay_at_prefix() {
        let dir = tmp("torn_wal");
        let (store, _, _) = DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        let mut wal = store.wal_appender(0).unwrap();
        wal.log_put(1, 100).unwrap();
        store.arm_meta_tear(MetaTear {
            target: MetaTarget::Wal,
            skip: 0,
            keep_bytes: 11,
        });
        assert!(wal.log_put(2, 200).is_err(), "torn append is unacknowledged");
        assert!(wal.log_put(3, 300).is_err(), "store is dead after the tear");
        drop((wal, store));

        let (_, rec, _) = DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        assert_eq!(rec[0].committed.len(), 1);
        assert_eq!(rec[0].committed[&1], 100);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_superblock_falls_back_to_other_replica() {
        let dir = tmp("torn_super");
        let (mut store, _, _) =
            DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        let mut wal = store.wal_appender(0).unwrap();
        wal.log_put(5, 500).unwrap();
        store.arm_meta_tear(MetaTear {
            target: MetaTarget::Superblock,
            skip: 0,
            keep_bytes: 13,
        });
        assert!(store.checkpoint(&[ShardCheckpoint::fresh(4)]).is_err());
        drop((wal, store));

        // The epoch-1 replica still elects; its checkpoint plus the
        // untruncated WAL reconstruct the committed set.
        let (store, rec, _) = DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        assert_eq!(store.epoch(), 1);
        assert_eq!(rec[0].committed[&5], 500);
        assert!(
            !dir.join("checkpoint.2").exists(),
            "unreferenced checkpoint cleaned up"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_checkpoint_body_keeps_old_epoch() {
        let dir = tmp("torn_ckpt");
        let (mut store, _, _) =
            DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        let mut wal = store.wal_appender(0).unwrap();
        wal.log_put(6, 600).unwrap();
        store.arm_meta_tear(MetaTear {
            target: MetaTarget::Checkpoint,
            skip: 0,
            keep_bytes: 20,
        });
        assert!(store.checkpoint(&[ShardCheckpoint::fresh(4)]).is_err());
        assert!(dir.join("checkpoint.tmp").exists(), "half-written body left behind");
        drop((wal, store));

        let (store, rec, _) = DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        assert_eq!(store.epoch(), 1);
        assert_eq!(rec[0].committed[&6], 600);
        assert!(!dir.join("checkpoint.tmp").exists(), "tmp cleaned at open");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn geometry_mismatch_is_corrupt() {
        let dir = tmp("geom");
        let (store, _, _) = DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        drop(store);
        assert!(matches!(
            DurableStore::open(&dir, 8, 8, vec![ShardCheckpoint::fresh(4)]),
            Err(StoreError::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_checkpoint_is_detected() {
        let dir = tmp("flip");
        let (store, _, _) = DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        drop(store);
        let path = dir.join("checkpoint.1");
        let mut body = fs::read(&path).unwrap();
        let mid = body.len() / 2;
        body[mid] ^= 0x40;
        fs::write(&path, body).unwrap();
        assert!(matches!(
            DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]),
            Err(StoreError::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn zeroed_superblock_is_corrupt() {
        let dir = tmp("zeroed");
        let (store, _, _) = DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        drop(store);
        fs::write(dir.join("super"), [0u8; 128]).unwrap();
        assert!(matches!(
            DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]),
            Err(StoreError::Corrupt(_))
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn value_records_replay_and_mirror() {
        let dir = tmp("putv");
        let (store, _, _) =
            DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        let mut wal = store.wal_appender(0).unwrap();
        wal.log_put_value(1, 100, &[0xAB; 8]).unwrap();
        wal.log_put_value(2, 200, &[0xCD; 8]).unwrap();
        wal.log_delete(2).unwrap();
        assert_eq!(wal.wal_value(1), Some(&[0xAB; 8][..]));
        assert_eq!(wal.wal_value(2), None, "delete drops the mirror");
        drop((wal, store));

        let (store, mut rec, _) =
            DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        let r = rec.remove(0);
        assert_eq!(r.committed.len(), 1);
        assert_eq!(r.committed[&1], 100);
        assert_eq!(r.values[&1], vec![0xAB; 8]);
        assert!(!r.values.contains_key(&2));
        // Reopen hands the mirror back to a fresh appender.
        let mut wal = store.wal_appender(0).unwrap();
        wal.preload_values(r.values);
        assert_eq!(wal.wal_value(1), Some(&[0xAB; 8][..]));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn plain_put_overwrites_the_value_mirror() {
        let dir = tmp("putv_mix");
        let (store, _, _) =
            DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        let mut wal = store.wal_appender(0).unwrap();
        wal.log_put_value(1, 100, &[0x11; 8]).unwrap();
        wal.log_put(1, 160).unwrap();
        // The mirrored bytes no longer describe the committed value.
        assert_eq!(wal.wal_value(1), None);
        drop((wal, store));
        let (_, rec, _) =
            DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        assert_eq!(rec[0].committed[&1], 160);
        assert!(!rec[0].values.contains_key(&1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn retirement_survives_wal_replay_and_checkpoint() {
        let dir = tmp("retire");
        let (mut store, _, _) =
            DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        let mut wal = store.wal_appender(0).unwrap();
        wal.log_retire(3).unwrap();
        wal.log_retire(1).unwrap();
        wal.log_retire(3).unwrap(); // idempotent on replay
        drop(wal);

        // Crash path: retirement comes back through WAL replay.
        let (_, rec, _) =
            DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        assert_eq!(rec[0].retired, vec![3, 1]);

        // Checkpoint path: retirement persists past WAL truncation.
        let mut ckpt = ShardCheckpoint::fresh(4);
        ckpt.retired = vec![1, 3];
        store.checkpoint(&[ckpt]).unwrap();
        drop(store);
        let (_, rec, _) =
            DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        assert_eq!(rec[0].retired, vec![1, 3]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversized_frame_ends_replay() {
        // A frame longer than 17 + value_size is framing garbage even if
        // its CRC happens to check out.
        let dir = tmp("oversize");
        let (store, _, _) =
            DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        let mut wal = store.wal_appender(0).unwrap();
        wal.log_put(1, 100).unwrap();
        drop((wal, store));
        // Hand-craft a CRC-valid but oversized frame.
        let payload = vec![REC_PUT_V; 64];
        let mut frame = Vec::new();
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        use std::io::Write as _;
        OpenOptions::new()
            .append(true)
            .open(dir.join("wal.0"))
            .unwrap()
            .write_all(&frame)
            .unwrap();
        let (_, rec, _) =
            DurableStore::open(&dir, 7, 8, vec![ShardCheckpoint::fresh(4)]).unwrap();
        assert_eq!(rec[0].committed.len(), 1, "replay stops at the bad frame");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn geometry_hash_separates_configs() {
        let a = PnwConfig::new(64, 8);
        let b = PnwConfig::new(64, 16);
        let c = PnwConfig::new(64, 8).with_index(IndexPlacement::Nvm);
        // TTL adds the expiry zone, shifting every region offset: a
        // TTL-on directory must refuse to open under a TTL-off config.
        let d = PnwConfig::new(64, 8).with_ttl();
        assert_ne!(geometry_hash(&a, 1), geometry_hash(&b, 1));
        assert_ne!(geometry_hash(&a, 1), geometry_hash(&c, 1));
        assert_ne!(geometry_hash(&a, 1), geometry_hash(&d, 1));
        assert_ne!(geometry_hash(&a, 1), geometry_hash(&a, 2));
        assert_eq!(geometry_hash(&a, 1), geometry_hash(&a.clone(), 1));
    }
}
