//! Store errors.

use pnw_index::IndexError;
use pnw_nvm_sim::NvmError;

/// Errors returned by [`PnwStore`](crate::PnwStore) operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PnwError {
    /// The data zone has no free bucket (the caller should extend the zone
    /// and retrain, §V-C).
    Full,
    /// A value of the wrong size was supplied.
    WrongValueSize {
        /// Configured value size.
        expected: usize,
        /// Supplied size.
        got: usize,
    },
    /// The model has not been trained and the store was asked to do
    /// something that needs it (should not happen: an untrained store uses
    /// a single-cluster fallback model).
    ModelUnavailable,
    /// Underlying device failure.
    Nvm(NvmError),
}

impl From<NvmError> for PnwError {
    fn from(e: NvmError) -> Self {
        PnwError::Nvm(e)
    }
}

impl From<IndexError> for PnwError {
    fn from(e: IndexError) -> Self {
        match e {
            IndexError::Full => PnwError::Full,
            IndexError::Nvm(e) => PnwError::Nvm(e),
        }
    }
}

impl std::fmt::Display for PnwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PnwError::Full => write!(f, "data zone is full — extend and retrain"),
            PnwError::WrongValueSize { expected, got } => {
                write!(f, "value size {got} != configured size {expected}")
            }
            PnwError::ModelUnavailable => write!(f, "model unavailable"),
            PnwError::Nvm(e) => write!(f, "device error: {e}"),
        }
    }
}

impl std::error::Error for PnwError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(PnwError::Full.to_string().contains("full"));
        let e = PnwError::WrongValueSize {
            expected: 8,
            got: 4,
        };
        assert!(e.to_string().contains('8'));
        assert!(e.to_string().contains('4'));
    }

    #[test]
    fn conversions() {
        let e: PnwError = IndexError::Full.into();
        assert_eq!(e, PnwError::Full);
        let e: PnwError = NvmError::Crashed.into();
        assert_eq!(e, PnwError::Nvm(NvmError::Crashed));
    }
}
