//! The unified store error.
//!
//! One error enum serves every [`Store`](crate::api::Store) backend: the
//! PNW stores in this crate and the baseline stores in `pnw-baselines`.
//! Before the API unification each surface had its own enum (`PnwError`
//! here, a `StoreError` in `pnw-baselines`) and the bench crate bridged
//! them with a lossy adapter that collapsed `ModelUnavailable` into
//! `Full`; the variants below absorb both enums with nothing collapsed.

use crate::config::ConfigError;
use pnw_index::IndexError;
use pnw_nvm_sim::NvmError;

/// Errors returned by [`Store`](crate::api::Store) operations on any
/// backend.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// No space left (data zone, leaf pool, level area or index exhausted).
    /// PNW callers should extend the zone and retrain (§V-C).
    Full,
    /// A value of the wrong size was supplied to a fixed-bucket store.
    WrongValueSize {
        /// Configured value size.
        expected: usize,
        /// Supplied size.
        got: usize,
    },
    /// The model has not been trained and the store was asked to do
    /// something that needs it (should not happen: an untrained store uses
    /// a single-cluster fallback model). Kept as its own variant — it is a
    /// store bug, not an out-of-space condition, and must never be
    /// reported as [`StoreError::Full`].
    ModelUnavailable,
    /// A shard's bounded write queue is full: the single-writer owner is
    /// not draining fast enough for the offered load. The operation was
    /// **not** applied — callers should back off and retry instead of
    /// piling onto a lock (the explicit alternative to lock convoying in
    /// the single-writer design). Carries *which* shard rejected and the
    /// queue depth at rejection, so an overload response (or a server log
    /// line) is actionable: a single hot shard reads differently from a
    /// store-wide saturation.
    Backpressure {
        /// The shard whose bounded write queue rejected the operation.
        shard: usize,
        /// That queue's depth (= its configured capacity) at rejection.
        depth: usize,
    },
    /// A stored value failed its integrity check: the bucket's sealed CRC
    /// no longer matches the bytes the media returns — stuck-at bits or
    /// other cell damage, detected before the corrupt bytes could be
    /// served. Non-retryable: retrying reads the same damaged cells. The
    /// key stays addressable (so the loss is *loud*) until it is deleted
    /// or overwritten, and the background scrubber repairs it from the
    /// durable layer when a clean copy exists.
    Corruption {
        /// The key whose stored bytes failed verification.
        key: u64,
        /// The shard whose media holds the damaged bucket.
        shard: usize,
    },
    /// The configuration the store was built from is invalid.
    Config(ConfigError),
    /// Underlying device failure.
    Nvm(NvmError),
    /// A file-backed store's durable state failed validation at open
    /// (superblock election found no valid replica, checkpoint CRC
    /// mismatch, geometry mismatch...). The message names the check that
    /// failed.
    Corrupt(String),
}

/// Legacy name of [`StoreError`], kept so pre-unification call sites keep
/// compiling. New code should spell it `StoreError`.
pub type PnwError = StoreError;

impl From<NvmError> for StoreError {
    fn from(e: NvmError) -> Self {
        StoreError::Nvm(e)
    }
}

impl From<ConfigError> for StoreError {
    fn from(e: ConfigError) -> Self {
        StoreError::Config(e)
    }
}

impl From<IndexError> for StoreError {
    fn from(e: IndexError) -> Self {
        match e {
            IndexError::Full => StoreError::Full,
            IndexError::Nvm(e) => StoreError::Nvm(e),
        }
    }
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Full => write!(f, "store is full — extend and retrain"),
            StoreError::WrongValueSize { expected, got } => {
                write!(f, "value size {got} != configured size {expected}")
            }
            StoreError::ModelUnavailable => write!(f, "model unavailable"),
            StoreError::Backpressure { shard, depth } => {
                write!(
                    f,
                    "shard {shard} write queue is full at depth {depth} — back off and retry"
                )
            }
            StoreError::Corruption { key, shard } => {
                write!(
                    f,
                    "key {key} failed CRC verification on shard {shard} — stored bytes are damaged"
                )
            }
            StoreError::Config(e) => write!(f, "invalid configuration: {e}"),
            StoreError::Nvm(e) => write!(f, "device error: {e}"),
            StoreError::Corrupt(why) => write!(f, "durable state corrupt: {why}"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(StoreError::Full.to_string().contains("full"));
        let e = StoreError::WrongValueSize {
            expected: 8,
            got: 4,
        };
        assert!(e.to_string().contains('8'));
        assert!(e.to_string().contains('4'));
        assert!(StoreError::ModelUnavailable.to_string().contains("model"));
        let e = StoreError::Backpressure { shard: 3, depth: 1024 };
        assert!(e.to_string().contains("queue"));
        assert!(e.to_string().contains("shard 3"), "message must name the shard: {e}");
        assert!(e.to_string().contains("1024"), "message must carry the depth: {e}");
        let e = StoreError::Corrupt("checkpoint CRC mismatch".into());
        assert!(e.to_string().contains("corrupt"));
        assert!(e.to_string().contains("CRC"));
        let e = StoreError::Corruption { key: 42, shard: 3 };
        assert!(e.to_string().contains("key 42"), "message must name the key: {e}");
        assert!(e.to_string().contains("shard 3"), "message must name the shard: {e}");
    }

    /// Media corruption is a *data* error, distinct from the durable-state
    /// `Corrupt(String)` (metadata files failing validation at open) and
    /// from `Full` (which an extend-and-retrain can fix).
    #[test]
    fn corruption_is_its_own_condition() {
        let e = StoreError::Corruption { key: 1, shard: 0 };
        assert_ne!(e, StoreError::Full);
        assert_ne!(e, StoreError::Corrupt("x".into()));
    }

    #[test]
    fn conversions() {
        let e: StoreError = IndexError::Full.into();
        assert_eq!(e, StoreError::Full);
        let e: StoreError = NvmError::Crashed.into();
        assert_eq!(e, StoreError::Nvm(NvmError::Crashed));
        let e: StoreError = ConfigError::ZeroCapacity.into();
        assert_eq!(e, StoreError::Config(ConfigError::ZeroCapacity));
    }

    /// Regression for the pre-unification adapter bug: `ModelUnavailable`
    /// was mapped to `Full` on its way into the Figure 9 harness. The
    /// unified enum keeps them distinct.
    #[test]
    fn model_unavailable_is_not_full() {
        assert_ne!(StoreError::ModelUnavailable, StoreError::Full);
        assert!(!StoreError::ModelUnavailable.to_string().contains("full"));
    }

    /// The legacy alias refers to the same type.
    #[test]
    fn legacy_alias_is_the_same_type() {
        let e: PnwError = StoreError::Full;
        assert_eq!(e, StoreError::Full);
    }
}
