//! The dynamic address pool (§V-A.2, Figure 5).
//!
//! *"The dynamic address pool is a table that contains a number of entries,
//! equal to the number of clusters in the ML model. Each entry … contains a
//! free-list of the available memory locations that belong to the same
//! cluster."* Addresses are removed when allocated to a K/V pair and
//! reinserted on delete, exactly as the paper describes (this is what
//! amortizes the per-address availability flag).
//!
//! When the predicted cluster's free list is empty the pool falls back to
//! the nearest non-empty cluster by centroid distance (§V-C's stall-
//! avoidance, with the load factor warning the store to retrain before this
//! becomes common).

use std::collections::VecDeque;

/// Per-cluster free lists of data-zone bucket ids.
///
/// Lists rotate FIFO: an address freed by a DELETE goes to the back of its
/// cluster's queue and allocation takes from the front, so writes cycle
/// through every free address of a cluster instead of hammering the most
/// recently freed one — this rotation is what spreads write activity
/// "across the whole PCM chip" (Figure 12) while keeping allocations inside
/// the bit-similar cluster.
#[derive(Debug, Clone)]
pub struct DynamicAddressPool {
    lists: Vec<VecDeque<u32>>,
    capacity: usize,
    free: usize,
    /// Allocations that missed their predicted cluster (telemetry for the
    /// `ablation_fallback` bench and the load-factor tests).
    fallbacks: u64,
}

impl DynamicAddressPool {
    /// An empty pool with `clusters` entries for a data zone of `capacity`
    /// buckets.
    pub fn new(clusters: usize, capacity: usize) -> Self {
        DynamicAddressPool {
            lists: vec![VecDeque::new(); clusters.max(1)],
            capacity,
            free: 0,
            fallbacks: 0,
        }
    }

    /// Rebuilds the pool from `(bucket, label)` pairs — Algorithm 1 lines
    /// 4–5 (`DAP[labels[i]].append(A(i))`).
    pub fn rebuild(&mut self, clusters: usize, entries: impl IntoIterator<Item = (u32, usize)>) {
        self.lists = vec![VecDeque::new(); clusters.max(1)];
        self.free = 0;
        for (bucket, label) in entries {
            self.push(label, bucket);
        }
    }

    /// Number of cluster entries.
    pub fn clusters(&self) -> usize {
        self.lists.len()
    }

    /// Total free addresses.
    pub fn free(&self) -> usize {
        self.free
    }

    /// Free addresses in one cluster.
    pub fn free_in(&self, cluster: usize) -> usize {
        self.lists.get(cluster).map_or(0, VecDeque::len)
    }

    /// Fraction of the data zone that is free.
    pub fn availability(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.free as f64 / self.capacity as f64
        }
    }

    /// Occupancy = `1 - availability` (compared against the load factor).
    pub fn occupancy(&self) -> f64 {
        1.0 - self.availability()
    }

    /// Times an allocation had to fall back to another cluster.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Updates the data-zone capacity (after a §V-C zone extension), which
    /// is the denominator of [`DynamicAddressPool::availability`].
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Pops a free address from `cluster`, or — if it is empty — from the
    /// first non-empty cluster in the order `ranked` produces (nearest
    /// centroid first). Returns the bucket and whether a fallback occurred.
    ///
    /// `ranked` is a closure so the ranking (an argsort of K distances) is
    /// only computed when the predicted cluster actually misses — on the
    /// hit path, which dominates under a healthy load factor, the pop costs
    /// one deque operation and the ranking is never materialized.
    pub fn pop<R: AsRef<[usize]>>(
        &mut self,
        cluster: usize,
        ranked: impl FnOnce() -> R,
    ) -> Option<(u32, bool)> {
        if let Some(b) = self.lists.get_mut(cluster).and_then(VecDeque::pop_front) {
            self.free -= 1;
            return Some((b, false));
        }
        if self.free == 0 {
            // Nothing anywhere: don't pay for the ranking either.
            return None;
        }
        for &c in ranked().as_ref() {
            if c == cluster {
                continue;
            }
            if let Some(b) = self.lists.get_mut(c).and_then(VecDeque::pop_front) {
                self.free -= 1;
                self.fallbacks += 1;
                return Some((b, true));
            }
        }
        // Last resort: any non-empty list (ranked may be partial).
        for list in &mut self.lists {
            if let Some(b) = list.pop_front() {
                self.free -= 1;
                self.fallbacks += 1;
                return Some((b, true));
            }
        }
        None
    }

    /// Returns a freed address to the back of `cluster`'s queue
    /// (Algorithm 3 line 4).
    pub fn push(&mut self, cluster: usize, bucket: u32) {
        let c = cluster.min(self.lists.len() - 1);
        self.lists[c].push_back(bucket);
        self.free += 1;
    }

    /// Drains all free buckets (used when retraining relabels them).
    pub fn drain_all(&mut self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.free);
        for list in &mut self.lists {
            out.extend(list.drain(..));
        }
        self.free = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ranking order used by most tests (was previously a pre-built slice
    /// argument; now a lazily-invoked closure).
    fn ranked() -> [usize; 3] {
        [0, 1, 2]
    }

    #[test]
    fn push_pop_same_cluster() {
        let mut p = DynamicAddressPool::new(3, 10);
        p.push(1, 42);
        assert_eq!(p.free(), 1);
        assert_eq!(p.free_in(1), 1);
        let (b, fb) = p.pop(1, ranked).unwrap();
        assert_eq!(b, 42);
        assert!(!fb);
        assert_eq!(p.free(), 0);
    }

    #[test]
    fn fallback_follows_ranking() {
        let mut p = DynamicAddressPool::new(3, 10);
        p.push(0, 1);
        p.push(2, 2);
        // Cluster 1 is empty; ranking prefers 2 then 0.
        let (b, fb) = p.pop(1, || [1, 2, 0]).unwrap();
        assert_eq!(b, 2);
        assert!(fb);
        assert_eq!(p.fallbacks(), 1);
    }

    #[test]
    fn ranking_is_not_computed_on_a_pool_hit() {
        let mut p = DynamicAddressPool::new(3, 10);
        p.push(1, 42);
        p.push(2, 43);
        let mut ranked_calls = 0u32;
        let (b, fb) = p
            .pop(1, || {
                ranked_calls += 1;
                [0, 1, 2]
            })
            .unwrap();
        assert_eq!((b, fb), (42, false));
        assert_eq!(ranked_calls, 0, "hit path must never rank");
        // The miss path computes it exactly once.
        let (_, fb) = p
            .pop(1, || {
                ranked_calls += 1;
                [2, 0, 1]
            })
            .unwrap();
        assert!(fb);
        assert_eq!(ranked_calls, 1);
    }

    #[test]
    fn empty_pool_skips_ranking_entirely() {
        let mut p = DynamicAddressPool::new(2, 4);
        let mut ranked_calls = 0u32;
        assert!(p
            .pop(0, || {
                ranked_calls += 1;
                [0, 1]
            })
            .is_none());
        assert_eq!(ranked_calls, 0, "nothing to allocate: no ranking");
        assert_eq!(p.fallbacks(), 0);
    }

    #[test]
    fn pop_exhausted_returns_none() {
        let mut p = DynamicAddressPool::new(2, 4);
        assert!(p.pop(0, || [0, 1]).is_none());
        p.push(0, 7);
        p.pop(0, || [0, 1]).unwrap();
        assert!(p.pop(0, || [0, 1]).is_none());
    }

    #[test]
    fn availability_tracks_capacity() {
        let mut p = DynamicAddressPool::new(2, 4);
        assert_eq!(p.availability(), 0.0);
        p.push(0, 0);
        p.push(1, 1);
        assert!((p.availability() - 0.5).abs() < 1e-12);
        assert!((p.occupancy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rebuild_relabels() {
        let mut p = DynamicAddressPool::new(2, 8);
        p.push(0, 1);
        p.push(0, 2);
        p.rebuild(4, vec![(1, 3), (2, 3), (5, 0)]);
        assert_eq!(p.clusters(), 4);
        assert_eq!(p.free(), 3);
        assert_eq!(p.free_in(3), 2);
        assert_eq!(p.free_in(0), 1);
    }

    #[test]
    fn out_of_range_label_clamps() {
        let mut p = DynamicAddressPool::new(2, 4);
        p.push(99, 5); // clamped into the last cluster
        assert_eq!(p.free_in(1), 1);
    }

    #[test]
    fn drain_all_empties() {
        let mut p = DynamicAddressPool::new(3, 8);
        p.push(0, 1);
        p.push(1, 2);
        p.push(2, 3);
        let mut drained = p.drain_all();
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2, 3]);
        assert_eq!(p.free(), 0);
    }

    #[test]
    fn last_resort_fallback_without_ranking() {
        let mut p = DynamicAddressPool::new(4, 8);
        p.push(3, 9);
        // Ranking mentions only empty clusters; the pool must still find 9.
        let (b, fb) = p.pop(0, || [0, 1]).unwrap();
        assert_eq!(b, 9);
        assert!(fb);
    }
}
