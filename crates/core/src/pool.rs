//! The dynamic address pool (§V-A.2, Figure 5).
//!
//! *"The dynamic address pool is a table that contains a number of entries,
//! equal to the number of clusters in the ML model. Each entry … contains a
//! free-list of the available memory locations that belong to the same
//! cluster."* Addresses are removed when allocated to a K/V pair and
//! reinserted on delete, exactly as the paper describes (this is what
//! amortizes the per-address availability flag).
//!
//! When the predicted cluster's free list is empty the pool falls back to
//! the nearest non-empty cluster by centroid distance (§V-C's stall-
//! avoidance, with the load factor warning the store to retrain before this
//! becomes common).
//!
//! ## Wear deprioritization
//!
//! Each cluster keeps **two** free lists: a fresh tier and a worn tier for
//! buckets whose hottest word is approaching the media's endurance budget.
//! Allocation exhausts every fresh list (predicted cluster, then ranked
//! fallbacks) before touching any worn list, so near-end-of-life cells only
//! absorb new data when nothing healthier is left — the wear-aware half of
//! the lifetime argument, composing with the bit-similarity placement that
//! minimizes flips *per* write.

use std::collections::VecDeque;

/// Per-cluster free lists of data-zone bucket ids.
///
/// Lists rotate FIFO: an address freed by a DELETE goes to the back of its
/// cluster's queue and allocation takes from the front, so writes cycle
/// through every free address of a cluster instead of hammering the most
/// recently freed one — this rotation is what spreads write activity
/// "across the whole PCM chip" (Figure 12) while keeping allocations inside
/// the bit-similar cluster.
#[derive(Debug, Clone)]
pub struct DynamicAddressPool {
    lists: Vec<VecDeque<u32>>,
    /// Deprioritized tier: free buckets whose hottest word is near the
    /// endurance budget. Popped only when every fresh list is empty.
    worn: Vec<VecDeque<u32>>,
    capacity: usize,
    free: usize,
    /// Allocations that missed their predicted cluster (telemetry for the
    /// `ablation_fallback` bench and the load-factor tests).
    fallbacks: u64,
}

impl DynamicAddressPool {
    /// An empty pool with `clusters` entries for a data zone of `capacity`
    /// buckets.
    pub fn new(clusters: usize, capacity: usize) -> Self {
        DynamicAddressPool {
            lists: vec![VecDeque::new(); clusters.max(1)],
            worn: vec![VecDeque::new(); clusters.max(1)],
            capacity,
            free: 0,
            fallbacks: 0,
        }
    }

    /// Rebuilds the pool from `(bucket, label)` pairs — Algorithm 1 lines
    /// 4–5 (`DAP[labels[i]].append(A(i))`). All entries land in the fresh
    /// tier; use [`DynamicAddressPool::rebuild_tiered`] when wear is known.
    pub fn rebuild(&mut self, clusters: usize, entries: impl IntoIterator<Item = (u32, usize)>) {
        self.rebuild_tiered(clusters, entries.into_iter().map(|(b, l)| (b, l, false)));
    }

    /// Rebuilds from `(bucket, label, worn)` triples, placing each bucket
    /// in its cluster's fresh or worn tier.
    pub fn rebuild_tiered(
        &mut self,
        clusters: usize,
        entries: impl IntoIterator<Item = (u32, usize, bool)>,
    ) {
        self.lists = vec![VecDeque::new(); clusters.max(1)];
        self.worn = vec![VecDeque::new(); clusters.max(1)];
        self.free = 0;
        for (bucket, label, worn) in entries {
            self.push_tier(label, bucket, worn);
        }
    }

    /// Number of cluster entries.
    pub fn clusters(&self) -> usize {
        self.lists.len()
    }

    /// Total free addresses.
    pub fn free(&self) -> usize {
        self.free
    }

    /// Free addresses in one cluster (both tiers).
    pub fn free_in(&self, cluster: usize) -> usize {
        self.lists.get(cluster).map_or(0, VecDeque::len)
            + self.worn.get(cluster).map_or(0, VecDeque::len)
    }

    /// Free addresses sitting in the deprioritized worn tier.
    pub fn worn_free(&self) -> usize {
        self.worn.iter().map(VecDeque::len).sum()
    }

    /// Fraction of the data zone that is free.
    pub fn availability(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.free as f64 / self.capacity as f64
        }
    }

    /// Occupancy = `1 - availability` (compared against the load factor).
    pub fn occupancy(&self) -> f64 {
        1.0 - self.availability()
    }

    /// Times an allocation had to fall back to another cluster.
    pub fn fallbacks(&self) -> u64 {
        self.fallbacks
    }

    /// Updates the data-zone capacity (after a §V-C zone extension), which
    /// is the denominator of [`DynamicAddressPool::availability`].
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
    }

    /// Pops a free address from `cluster`, or — if it is empty — from the
    /// first non-empty cluster in the order `ranked` produces (nearest
    /// centroid first). Returns the bucket and whether a fallback occurred.
    ///
    /// `ranked` is a closure so the ranking (an argsort of K distances) is
    /// only computed when the predicted cluster actually misses — on the
    /// hit path, which dominates under a healthy load factor, the pop costs
    /// one deque operation and the ranking is never materialized.
    pub fn pop<R: AsRef<[usize]>>(
        &mut self,
        cluster: usize,
        ranked: impl FnOnce() -> R,
    ) -> Option<(u32, bool)> {
        if let Some(b) = self.lists.get_mut(cluster).and_then(VecDeque::pop_front) {
            self.free -= 1;
            return Some((b, false));
        }
        if self.free == 0 {
            // Nothing anywhere: don't pay for the ranking either.
            return None;
        }
        // Fresh tier first — every healthy bucket anywhere beats a worn
        // bucket in the right cluster: a cross-cluster placement costs a
        // few extra flips once, a near-endurance word lost costs capacity
        // forever. The ranking is computed exactly once and reused for
        // both tiers.
        let order = ranked();
        let order = order.as_ref();
        for &c in order {
            if c == cluster {
                continue;
            }
            if let Some(b) = self.lists.get_mut(c).and_then(VecDeque::pop_front) {
                self.free -= 1;
                self.fallbacks += 1;
                return Some((b, true));
            }
        }
        // Fresh last resort: any non-empty list (ranked may be partial).
        for list in &mut self.lists {
            if let Some(b) = list.pop_front() {
                self.free -= 1;
                self.fallbacks += 1;
                return Some((b, true));
            }
        }
        // Worn tier, same order: predicted cluster (still bit-similar, not
        // a fallback), then ranked, then scan.
        if let Some(b) = self.worn.get_mut(cluster).and_then(VecDeque::pop_front) {
            self.free -= 1;
            return Some((b, false));
        }
        for &c in order {
            if c == cluster {
                continue;
            }
            if let Some(b) = self.worn.get_mut(c).and_then(VecDeque::pop_front) {
                self.free -= 1;
                self.fallbacks += 1;
                return Some((b, true));
            }
        }
        for list in &mut self.worn {
            if let Some(b) = list.pop_front() {
                self.free -= 1;
                self.fallbacks += 1;
                return Some((b, true));
            }
        }
        None
    }

    /// Returns a freed address to the back of `cluster`'s fresh queue
    /// (Algorithm 3 line 4).
    pub fn push(&mut self, cluster: usize, bucket: u32) {
        self.push_tier(cluster, bucket, false);
    }

    /// Returns a freed address to `cluster`'s fresh or worn queue.
    pub fn push_tier(&mut self, cluster: usize, bucket: u32, worn: bool) {
        let c = cluster.min(self.lists.len() - 1);
        let tier = if worn { &mut self.worn } else { &mut self.lists };
        tier[c].push_back(bucket);
        self.free += 1;
    }

    /// Drains all free buckets from both tiers (used when retraining
    /// relabels them).
    pub fn drain_all(&mut self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.free);
        for list in self.lists.iter_mut().chain(self.worn.iter_mut()) {
            out.extend(list.drain(..));
        }
        self.free = 0;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Ranking order used by most tests (was previously a pre-built slice
    /// argument; now a lazily-invoked closure).
    fn ranked() -> [usize; 3] {
        [0, 1, 2]
    }

    #[test]
    fn push_pop_same_cluster() {
        let mut p = DynamicAddressPool::new(3, 10);
        p.push(1, 42);
        assert_eq!(p.free(), 1);
        assert_eq!(p.free_in(1), 1);
        let (b, fb) = p.pop(1, ranked).unwrap();
        assert_eq!(b, 42);
        assert!(!fb);
        assert_eq!(p.free(), 0);
    }

    #[test]
    fn fallback_follows_ranking() {
        let mut p = DynamicAddressPool::new(3, 10);
        p.push(0, 1);
        p.push(2, 2);
        // Cluster 1 is empty; ranking prefers 2 then 0.
        let (b, fb) = p.pop(1, || [1, 2, 0]).unwrap();
        assert_eq!(b, 2);
        assert!(fb);
        assert_eq!(p.fallbacks(), 1);
    }

    #[test]
    fn ranking_is_not_computed_on_a_pool_hit() {
        let mut p = DynamicAddressPool::new(3, 10);
        p.push(1, 42);
        p.push(2, 43);
        let mut ranked_calls = 0u32;
        let (b, fb) = p
            .pop(1, || {
                ranked_calls += 1;
                [0, 1, 2]
            })
            .unwrap();
        assert_eq!((b, fb), (42, false));
        assert_eq!(ranked_calls, 0, "hit path must never rank");
        // The miss path computes it exactly once.
        let (_, fb) = p
            .pop(1, || {
                ranked_calls += 1;
                [2, 0, 1]
            })
            .unwrap();
        assert!(fb);
        assert_eq!(ranked_calls, 1);
    }

    #[test]
    fn empty_pool_skips_ranking_entirely() {
        let mut p = DynamicAddressPool::new(2, 4);
        let mut ranked_calls = 0u32;
        assert!(p
            .pop(0, || {
                ranked_calls += 1;
                [0, 1]
            })
            .is_none());
        assert_eq!(ranked_calls, 0, "nothing to allocate: no ranking");
        assert_eq!(p.fallbacks(), 0);
    }

    #[test]
    fn pop_exhausted_returns_none() {
        let mut p = DynamicAddressPool::new(2, 4);
        assert!(p.pop(0, || [0, 1]).is_none());
        p.push(0, 7);
        p.pop(0, || [0, 1]).unwrap();
        assert!(p.pop(0, || [0, 1]).is_none());
    }

    #[test]
    fn availability_tracks_capacity() {
        let mut p = DynamicAddressPool::new(2, 4);
        assert_eq!(p.availability(), 0.0);
        p.push(0, 0);
        p.push(1, 1);
        assert!((p.availability() - 0.5).abs() < 1e-12);
        assert!((p.occupancy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rebuild_relabels() {
        let mut p = DynamicAddressPool::new(2, 8);
        p.push(0, 1);
        p.push(0, 2);
        p.rebuild(4, vec![(1, 3), (2, 3), (5, 0)]);
        assert_eq!(p.clusters(), 4);
        assert_eq!(p.free(), 3);
        assert_eq!(p.free_in(3), 2);
        assert_eq!(p.free_in(0), 1);
    }

    #[test]
    fn out_of_range_label_clamps() {
        let mut p = DynamicAddressPool::new(2, 4);
        p.push(99, 5); // clamped into the last cluster
        assert_eq!(p.free_in(1), 1);
    }

    #[test]
    fn drain_all_empties() {
        let mut p = DynamicAddressPool::new(3, 8);
        p.push(0, 1);
        p.push(1, 2);
        p.push(2, 3);
        let mut drained = p.drain_all();
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2, 3]);
        assert_eq!(p.free(), 0);
    }

    #[test]
    fn last_resort_fallback_without_ranking() {
        let mut p = DynamicAddressPool::new(4, 8);
        p.push(3, 9);
        // Ranking mentions only empty clusters; the pool must still find 9.
        let (b, fb) = p.pop(0, || [0, 1]).unwrap();
        assert_eq!(b, 9);
        assert!(fb);
    }

    #[test]
    fn worn_buckets_allocate_last() {
        let mut p = DynamicAddressPool::new(3, 10);
        p.push_tier(1, 50, true); // worn, in the predicted cluster
        p.push_tier(2, 60, false); // fresh, in a fallback cluster
        assert_eq!(p.free(), 2);
        assert_eq!(p.worn_free(), 1);
        // A fresh bucket in the wrong cluster beats a worn one in the
        // right cluster.
        let (b, fb) = p.pop(1, || [1, 2, 0]).unwrap();
        assert_eq!(b, 60);
        assert!(fb);
        // Only the worn bucket remains; it allocates (no stall) and the
        // predicted-cluster worn hit is not a fallback.
        let (b, fb) = p.pop(1, || [1, 2, 0]).unwrap();
        assert_eq!(b, 50);
        assert!(!fb);
        assert_eq!(p.free(), 0);
        assert_eq!(p.worn_free(), 0);
    }

    #[test]
    fn worn_tier_ranked_and_scanned_like_fresh() {
        let mut p = DynamicAddressPool::new(3, 10);
        p.push_tier(0, 7, true);
        p.push_tier(2, 8, true);
        // Predicted 1 is empty in both tiers; ranking prefers 2.
        let (b, fb) = p.pop(1, || [1, 2, 0]).unwrap();
        assert_eq!(b, 8);
        assert!(fb);
        // Ranking mentions nothing useful; the worn scan still finds 7.
        let (b, fb) = p.pop(1, || [1]).unwrap();
        assert_eq!(b, 7);
        assert!(fb);
    }

    #[test]
    fn rebuild_tiered_and_drain_cover_both_tiers() {
        let mut p = DynamicAddressPool::new(2, 8);
        p.rebuild_tiered(2, vec![(1, 0, false), (2, 0, true), (3, 1, true)]);
        assert_eq!(p.free(), 3);
        assert_eq!(p.worn_free(), 2);
        assert_eq!(p.free_in(0), 2, "free_in counts both tiers");
        let mut drained = p.drain_all();
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2, 3]);
        assert_eq!(p.free(), 0);
        assert_eq!(p.worn_free(), 0);
    }
}
