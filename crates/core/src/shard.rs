//! The per-shard engine: Algorithms 1–3's write path over one device slice.
//!
//! [`ShardEngine`] owns everything a store shard needs exclusive access to —
//! the emulated device, the data-zone region, the hash index and the dynamic
//! address pool — plus an `Arc` of the current immutable
//! [`ModelSnapshot`]: predictions read the shard's own snapshot clone, so
//! the op path takes **zero model locks**. When a (re)train completes, the
//! store publishes the new snapshot to every engine via
//! [`ShardEngine::install_model`], which swaps the `Arc` and relabels the
//! pool together under the shard's existing lock — the pool's labels and
//! the model that produced them can never be observed out of sync.
//!
//! Data-zone bucket layout (16-byte header + value, rounded to whole
//! words):
//!
//! ```text
//! [ flags: u8 | pad ×7 | key: u64 LE | value ×value_size ]
//! ```
//!
//! The valid flag implements the paper's deletion protocol (*"resetting the
//! associated flag bit"*, Algorithm 3 line 2); the key in the header is what
//! lets a DRAM-index store rebuild its index after a crash (§V-A.3).
//!
//! GETs go through [`NvmDevice::peek`] and [`KeyIndex::lookup`], which need
//! only shared references — concurrent readers of one shard never contend
//! on a write lock (§VI-E: lookups *"do not go through the model or the
//! dynamic address pool"*).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{fence, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use pnw_index::{AtomicHashIndex, IndexReader, KeyIndex, PathHashIndex};
use pnw_nvm_sim::{
    crc32c_update, CellView, DeviceBacking, DeviceStats, NvmConfig, NvmDevice, NvmError, Region,
    RegionAllocator, StuckAtConfig, WriteMode, WriteStats,
};

use crate::config::{IndexPlacement, PnwConfig, UpdatePolicy};
use crate::durable::DurableShard;
use crate::error::PnwError;
use crate::metrics::{OpReport, ScrubStats, StoreSnapshot, TrainStats};
use std::sync::Arc;

use crate::model::{stride_sample, ModelSnapshot, PredictScratch};
use crate::pool::DynamicAddressPool;

pub(crate) const HDR_BYTES: usize = 16;
pub(crate) const FLAG_VALID: u8 = 1;

/// Bytes per bucket in the expiry zone (one `u64` LE absolute
/// unix-millisecond deadline; 0 = never expires).
pub(crate) const EXPIRY_BYTES: usize = 8;

/// The wall clock the TTL machinery runs on: absolute unix milliseconds.
/// Callers stamp deadlines with
/// [`Store::put_with_expiry`](crate::Store::put_with_expiry) relative to
/// this clock.
pub fn now_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64)
}

/// Cached-label sentinel: the bucket's content label is unknown under the
/// current model and must be re-predicted on demand.
const LABEL_STALE: u16 = u16::MAX;

/// Every 16th fresh PUT of a batch group runs the fully-instrumented path
/// so batched throughput rows carry real prediction latencies.
const PREDICT_SAMPLE_STRIDE: u64 = 16;

#[inline]
fn label_u16(cluster: usize) -> u16 {
    if cluster >= LABEL_STALE as usize {
        LABEL_STALE
    } else {
        cluster as u16
    }
}

/// The integrity seal: CRC-32C over `key ‖ value`, stored in the header's
/// pad bytes `[4..8]` at PUT commit. Covering the key as well as the value
/// means a seal can never validate a value against the *wrong* key (e.g.
/// after an index entry is damaged into pointing at another live bucket).
/// Castagnoli rather than the WAL's IEEE polynomial: this runs on every
/// GET, and CRC-32C has a hardware instruction on x86-64 (the software
/// fallback is bit-identical, so store files stay portable).
#[inline]
pub(crate) fn bucket_crc(key: u64, value: &[u8]) -> u32 {
    crc32c_update(crc32c_update(0xFFFF_FFFF, &key.to_le_bytes()), value) ^ 0xFFFF_FFFF
}

/// The static device geometry a lock-free scan needs: captured once when
/// a shard is wrapped, valid for the engine's whole lifetime (regions
/// never move; the *provisioned* bucket count — capacity plus reserve —
/// never changes, unlike the dynamic active-zone size). Buckets beyond
/// the active zone carry a clear valid flag, so scanning the full
/// provisioned range through a [`CellView`] is always safe.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ScanGeometry {
    /// Byte offset of the data zone's first bucket.
    pub data_start: usize,
    /// Whole-bucket stride in bytes (header + value, word-rounded).
    pub bucket_size: usize,
    /// Provisioned buckets: `capacity + reserve_buckets`.
    pub buckets: usize,
    /// The configured value size.
    pub value_size: usize,
    /// Whether sealed CRCs are present to verify against.
    pub integrity: bool,
    /// Byte offset of the expiry zone, when TTL is enabled.
    pub expiry_start: Option<usize>,
}

/// The shard state the lock-free read path shares with its engine: the
/// seqlock word every mutation brackets, and the GET counter (readers
/// hold no lock, so the counter cannot live in the engine).
///
/// Write brackets nest (a batch group wraps the per-op methods it calls);
/// only the outermost bracket touches the sequence, tracked by `depth` —
/// which only the single engine owner ever mutates, so its accesses are
/// relaxed.
#[derive(Debug)]
pub(crate) struct ShardSync {
    /// Seqlock sequence: even = quiescent, odd = a mutation is in flight.
    seq: AtomicU64,
    /// Write-bracket nesting depth (engine-owner thread only).
    depth: AtomicU32,
    /// GETs served, by both the lock-free and the locked read path.
    gets: AtomicU64,
    /// CRC verification failures seen by GETs (readers hold no lock, so
    /// the counter lives with the GET counter).
    crc_failures: AtomicU64,
}

impl ShardSync {
    fn new() -> Self {
        ShardSync {
            seq: AtomicU64::new(0),
            depth: AtomicU32::new(0),
            gets: AtomicU64::new(0),
            crc_failures: AtomicU64::new(0),
        }
    }

    /// Begins a read-side critical section: spins past in-flight write
    /// brackets and returns the even sequence to validate against.
    #[inline]
    pub fn read_begin(&self) -> u64 {
        loop {
            let s = self.seq.load(Ordering::Acquire);
            if s & 1 == 0 {
                return s;
            }
            std::hint::spin_loop();
        }
    }

    /// Validates the read-side critical section begun at `s1`: `true`
    /// means no write bracket opened while the caller was reading, so
    /// everything it read is a consistent snapshot.
    #[inline]
    pub fn read_validate(&self, s1: u64) -> bool {
        fence(Ordering::Acquire);
        self.seq.load(Ordering::Relaxed) == s1
    }

    /// Counts one GET (reads take no lock, so the counter lives here).
    #[inline]
    pub fn count_get(&self) {
        self.gets.fetch_add(1, Ordering::Relaxed);
    }

    /// GETs served so far.
    pub fn gets(&self) -> u64 {
        self.gets.load(Ordering::Relaxed)
    }

    /// Counts one read-path CRC verification failure.
    #[inline]
    pub fn count_crc_failure(&self) {
        self.crc_failures.fetch_add(1, Ordering::Relaxed);
    }

    /// Read-path CRC verification failures so far.
    pub fn crc_failures(&self) -> u64 {
        self.crc_failures.load(Ordering::Relaxed)
    }

    fn write_begin(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
    }

    fn write_end(&self) {
        let s = self.seq.load(Ordering::Relaxed);
        self.seq.store(s.wrapping_add(1), Ordering::Release);
    }
}

/// RAII write bracket: increments the seqlock on entry and exit of the
/// outermost mutation scope. Nested brackets (a batch group calling the
/// per-op methods) are counted, not re-published.
struct WriteBracket {
    sync: Arc<ShardSync>,
}

impl WriteBracket {
    #[inline]
    fn enter(sync: &Arc<ShardSync>) -> Self {
        if sync.depth.fetch_add(1, Ordering::Relaxed) == 0 {
            sync.write_begin();
        }
        WriteBracket {
            sync: Arc::clone(sync),
        }
    }
}

impl Drop for WriteBracket {
    #[inline]
    fn drop(&mut self) {
        if self.sync.depth.fetch_sub(1, Ordering::Relaxed) == 1 {
            self.sync.write_end();
        }
    }
}

/// Validates a value against a configuration's value size — the one
/// implementation behind both store frontends' early rejection.
pub(crate) fn check_value(cfg: &PnwConfig, value: &[u8]) -> Result<(), PnwError> {
    if value.len() != cfg.value_size {
        return Err(PnwError::WrongValueSize {
            expected: cfg.value_size,
            got: value.len(),
        });
    }
    Ok(())
}

/// Which code path a PUT took — callers use this to decide whether the
/// retrain trigger should be evaluated (an in-place update touches neither
/// the pool nor the model, so it never makes retraining due).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PutPath {
    /// A fresh predicted allocation from the pool (also the DELETE-then-PUT
    /// update path).
    Fresh,
    /// An in-place update straight through the hash index
    /// ([`UpdatePolicy::InPlace`]).
    InPlace,
}

/// One shard of the Predict-and-Write store: device slice + index + pool.
pub struct ShardEngine {
    cfg: PnwConfig,
    dev: NvmDevice,
    data: Region,
    /// Buckets currently in the active data zone (grows via
    /// [`ShardEngine::extend_zone`] up to `cfg.capacity +
    /// cfg.reserve_buckets`).
    active_buckets: usize,
    bucket_size: usize,
    index: Box<dyn KeyIndex>,
    index_region: Option<Region>,
    index_leaves: usize,
    /// The per-bucket expiry zone when `cfg.ttl_enabled`: one u64 LE
    /// absolute unix-ms deadline per provisioned bucket (0 = no expiry).
    /// Part of the device image, so deadlines ride the same write-through
    /// backing and checkpoints as the data zone.
    expiry: Option<Region>,
    pool: DynamicAddressPool,
    /// The shard's clone of the current immutable model snapshot. Swapped
    /// wholesale by [`ShardEngine::install_model`]; predictions on the op
    /// path read it directly — no lock, no manager.
    model: Arc<ModelSnapshot>,
    live: usize,
    predict_total: Duration,
    puts: u64,
    deletes: u64,
    /// Seqlock + GET counter shared with the lock-free read path.
    sync: Arc<ShardSync>,
    /// Per-bucket cached content label under the *current* model
    /// ([`LABEL_STALE`] = unknown, re-predict on demand). Lets DELETE and
    /// the DeletePut update skip Algorithm 3's peek + predict when the
    /// bucket was written under the model that is still installed.
    labels: Vec<u16>,
    /// Per-shard prediction scratch (distances, ranking, PCA features) —
    /// the model is shared and read-only, the mutable buffers live here so
    /// steady-state PUT/DELETE allocates nothing.
    scratch: PredictScratch,
    /// Reusable bucket image for the PUT write (header + value); the pad
    /// bytes `[1..8]` are zeroed once and never touched again.
    bucket_img: Vec<u8>,
    /// Reusable value buffer for DELETE's content relabeling and
    /// maintenance scans.
    value_buf: Vec<u8>,
    /// WAL appender when this shard is file-backed; `None` keeps the
    /// volatile op path bit-for-bit unchanged.
    durable: Option<DurableShard>,
    /// Buckets permanently removed from placement: stuck media found by
    /// write-verify, or scrub-detected corruption. Survives crashes on
    /// durable shards (WAL retire records + checkpoint).
    retired: HashSet<u32>,
    /// Integrity/wear-out counters (the GET-path failures live on
    /// [`ShardSync`] and are folded in at snapshot time).
    scrub: ScrubStats,
    /// Next bucket the incremental scrubber will visit.
    scrub_cursor: u32,
    /// This engine's position in a sharded store (0 for single-shard
    /// stores) — carried in [`PnwError::Corruption`] so an operator can
    /// map a failure to a device slice.
    shard_id: usize,
}

impl ShardEngine {
    /// Creates an engine with a fresh zeroed device slice.
    pub fn new(cfg: PnwConfig) -> Self {
        Self::with_device(cfg, None)
    }

    pub(crate) fn with_device(cfg: PnwConfig, image: Option<Vec<u8>>) -> Self {
        Self::build(cfg, image, None).expect("volatile device construction cannot fail")
    }

    /// Creates an engine over a write-through file-backed device at
    /// `path` (fallible: the backing file may be unreadable or of the
    /// wrong size for this geometry).
    pub(crate) fn open_file(cfg: PnwConfig, path: std::path::PathBuf) -> Result<Self, PnwError> {
        Self::build(cfg, None, Some(path))
    }

    fn build(
        cfg: PnwConfig,
        image: Option<Vec<u8>>,
        file: Option<std::path::PathBuf>,
    ) -> Result<Self, PnwError> {
        let bucket_size = (HDR_BYTES + cfg.value_size).next_multiple_of(8);
        let total_buckets = cfg.capacity + cfg.reserve_buckets;
        let data_bytes = total_buckets * bucket_size;

        let (index_leaves, index_bytes) = match cfg.index {
            IndexPlacement::Dram => (0, 0),
            IndexPlacement::Nvm => {
                // Sized for the fully-extended zone so the index never has
                // to move (the §V-C property: extension touches only the
                // DRAM-side model and pool).
                let leaves = (total_buckets * 2).next_power_of_two().max(8);
                (leaves, PathHashIndex::region_bytes_for(leaves))
            }
        };
        let expiry_bytes = if cfg.ttl_enabled {
            total_buckets * EXPIRY_BYTES
        } else {
            0
        };
        let total = (index_bytes + data_bytes + expiry_bytes + 4096).next_multiple_of(64);
        let mut alloc = RegionAllocator::new(total);
        let index_region = (index_bytes > 0).then(|| alloc.alloc(index_bytes, 64).expect("index"));
        let data = alloc
            .alloc_buckets(total_buckets, bucket_size)
            .expect("data zone");
        let expiry =
            (expiry_bytes > 0).then(|| alloc.alloc(expiry_bytes, 8).expect("expiry zone"));

        let mut nvm_cfg = NvmConfig::default()
            .with_size(total)
            .with_bit_wear(cfg.track_bit_wear);
        if let Some(endurance) = cfg.endurance_writes {
            nvm_cfg = nvm_cfg.with_stuck_at(StuckAtConfig {
                endurance_writes: Some(endurance),
                latch_probability: cfg.stuck_latch_probability,
                seed: cfg.seed,
            });
        }
        let dev = match (image, file) {
            (Some(image), None) => {
                assert_eq!(
                    image.len(),
                    total,
                    "image size does not match the configured geometry"
                );
                NvmDevice::from_image(nvm_cfg, image)
            }
            (None, Some(path)) => {
                NvmDevice::open(nvm_cfg.with_backing(DeviceBacking::File(path)))?
            }
            _ => NvmDevice::new(nvm_cfg),
        };
        let index: Box<dyn KeyIndex> = match index_region {
            Some(r) => Box::new(PathHashIndex::create(r, index_leaves)),
            // Sized for the fully-extended zone: the atomic table never
            // rehashes, so lock-free readers keep a valid handle for the
            // engine's whole lifetime.
            None => Box::new(AtomicHashIndex::with_capacity(total_buckets)),
        };
        // Untrained model: one cluster, all buckets free.
        let mut pool = DynamicAddressPool::new(1, cfg.capacity);
        for b in 0..cfg.capacity as u32 {
            pool.push(0, b);
        }
        let active_buckets = cfg.capacity;
        let (bucket_img, value_buf) = (
            vec![0u8; HDR_BYTES + cfg.value_size],
            vec![0u8; cfg.value_size],
        );
        let model = Arc::new(ModelSnapshot::untrained(cfg.value_size * 8));
        Ok(ShardEngine {
            cfg,
            dev,
            data,
            active_buckets,
            bucket_size,
            index,
            index_region,
            index_leaves,
            expiry,
            pool,
            model,
            live: 0,
            predict_total: Duration::ZERO,
            puts: 0,
            deletes: 0,
            sync: Arc::new(ShardSync::new()),
            labels: vec![LABEL_STALE; total_buckets],
            scratch: PredictScratch::new(),
            bucket_img,
            value_buf,
            durable: None,
            retired: HashSet::new(),
            scrub: ScrubStats::default(),
            scrub_cursor: 0,
            shard_id: 0,
        })
    }

    /// Records this engine's shard position (for [`PnwError::Corruption`]
    /// attribution; single-shard stores keep the default 0).
    pub(crate) fn set_shard_id(&mut self, id: usize) {
        self.shard_id = id;
    }

    /// The shard's configuration (capacity fields describe this shard's
    /// slice, not the whole logical store).
    pub fn config(&self) -> &PnwConfig {
        &self.cfg
    }

    /// Live key count.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Cumulative device statistics for this shard's slice.
    pub fn device_stats(&self) -> &DeviceStats {
        self.dev.stats()
    }

    /// The underlying device (wear CDFs, latency model).
    pub fn device(&self) -> &NvmDevice {
        &self.dev
    }

    /// The shard's seqlock + GET-counter handle, shared with the
    /// lock-free read path. Stable for the engine's lifetime.
    pub(crate) fn sync_handle(&self) -> Arc<ShardSync> {
        Arc::clone(&self.sync)
    }

    /// A lock-free view of the device's cells, valid for the engine's
    /// whole lifetime (the cell buffer never moves).
    pub(crate) fn cell_view(&self) -> CellView {
        self.dev.cell_view()
    }

    /// A lock-free index reader, when this shard's index supports one
    /// (both built-in placements do).
    pub(crate) fn index_reader(&self) -> Option<IndexReader> {
        self.index.reader()
    }

    /// Clears device statistics so a measurement window excludes warm-up
    /// traffic.
    pub fn reset_device_stats(&mut self) {
        self.dev.reset_stats();
    }

    /// Clears wear counters (Figures 12/13 measure wear over a stream that
    /// excludes warm-up writes).
    pub fn reset_wear(&mut self) {
        self.dev.reset_wear();
    }

    /// Byte range of the *active* data zone (for wear CDFs restricted to
    /// it, as in Figures 12/13).
    pub fn data_zone_range(&self) -> (usize, usize) {
        (self.data.start, self.active_buckets * self.bucket_size)
    }

    /// Buckets currently in the active data zone.
    pub fn active_capacity(&self) -> usize {
        self.active_buckets
    }

    /// Reserved buckets not yet activated.
    pub fn reserve_remaining(&self) -> usize {
        self.cfg.capacity + self.cfg.reserve_buckets - self.active_buckets
    }

    /// Whether pool availability has fallen below `1 - load_factor`, i.e.
    /// the §V-C retrain/extension trigger is due.
    pub fn retrain_due(&self) -> bool {
        self.pool.availability() < 1.0 - self.cfg.load_factor
    }

    /// The shard-local half of §V-C maintenance: while the load factor is
    /// tripped and reserve remains, activate another `capacity / 4` chunk.
    /// Shared by the per-op trigger paths and the batch group executor so
    /// extension always happens at the same op boundaries.
    pub(crate) fn extend_from_reserve_if_due(&mut self) {
        if self.retrain_due() && self.reserve_remaining() > 0 {
            let chunk = (self.cfg.capacity / 4).max(1);
            self.extend_zone(chunk);
        }
    }

    /// Extends the data zone by up to `buckets` reserved buckets (§V-C).
    ///
    /// The freshly-activated addresses join the dynamic address pool under
    /// the current model's labels; nothing in the NVM hash index moves —
    /// *"our method to expand the size of a cluster does not impose any
    /// extra writes to the NVM"*. Retrain afterwards (or rely on the
    /// caller's load-factor trigger) to refresh the model on the grown
    /// zone.
    ///
    /// Returns how many buckets were activated (0 when the reserve is
    /// exhausted).
    pub fn extend_zone(&mut self, buckets: usize) -> usize {
        let add = buckets.min(self.reserve_remaining());
        let first = self.active_buckets as u32;
        for b in first..first + add as u32 {
            let vaddr = self.bucket_addr(b) + HDR_BYTES;
            self.dev
                .peek_into(vaddr, &mut self.value_buf)
                .expect("bucket in range");
            let label = self.model.predict_into(&self.value_buf, &mut self.scratch);
            self.pool.push(label, b);
        }
        self.active_buckets += add;
        self.pool.set_capacity(self.effective_capacity());
        if add > 0 {
            if let Some(d) = &mut self.durable {
                // A failed append means the WAL is already dead; every
                // subsequent append fails too, so no committed record can
                // ever depend on the unlogged extension — swallowing the
                // error here is safe.
                let _ = d.log_extend(self.active_buckets as u64);
            }
        }
        add
    }

    fn bucket_addr(&self, b: u32) -> usize {
        self.data.bucket_addr(b as usize, self.bucket_size)
    }

    fn bucket_of_addr(&self, addr: u64) -> u32 {
        ((addr as usize - self.data.start) / self.bucket_size) as u32
    }

    /// Validates a value against the configured value size.
    pub fn check_value(&self, value: &[u8]) -> Result<(), PnwError> {
        check_value(&self.cfg, value)
    }

    /// Reads a bucket's stored value (without stats side effects).
    fn peek_value(&self, bucket: u32) -> Result<Vec<u8>, PnwError> {
        let addr = self.bucket_addr(bucket) + HDR_BYTES;
        Ok(self.dev.peek(addr, self.cfg.value_size)?.to_vec())
    }

    /// Physical byte address a key's bucket currently occupies (diagnostics
    /// and tests; takes no locks, records no stats).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn locate(&self, key: u64) -> Result<Option<u64>, PnwError> {
        Ok(self.index.lookup(&self.dev, key)?)
    }

    #[cfg(test)]
    pub(crate) fn index_len(&self) -> usize {
        self.index.len()
    }

    /// PUT / UPDATE (Algorithm 2 + §V-B.3) under the shard's current model
    /// snapshot.
    pub fn put(&mut self, key: u64, value: &[u8]) -> Result<(OpReport, PutPath), PnwError> {
        self.put_impl(key, value, 0, true)
    }

    /// PUT with an absolute unix-ms expiry deadline (0 = never expires).
    /// Identical to [`ShardEngine::put`] except the deadline is stamped
    /// into the expiry zone alongside the placed bucket; on a store built
    /// without [`PnwConfig::with_ttl`] the deadline is silently ignored.
    pub fn put_with_expiry(
        &mut self,
        key: u64,
        value: &[u8],
        expires_at_ms: u64,
    ) -> Result<(OpReport, PutPath), PnwError> {
        self.put_impl(key, value, expires_at_ms, true)
    }

    /// PUT for the batch path: performs *exactly* the same device, index
    /// and pool mutations as [`ShardEngine::put`] — so batched and per-op
    /// writes are bit-for-bit identical on the device — but skips the
    /// per-op reporting that [`OpReport`] needs: no stats snapshot/delta,
    /// no value-only [`NvmDevice::diff_stats`] preview pass, no wall-clock
    /// prediction timing. [`Store::apply`](crate::Store::apply) charges the
    /// whole batch from one device-stats delta instead; the only counter
    /// the batch path does not feed is the snapshot's `predict_total`.
    pub fn put_unreported(&mut self, key: u64, value: &[u8]) -> Result<PutPath, PnwError> {
        self.put_impl(key, value, 0, false).map(|(_, path)| path)
    }

    /// The one PUT implementation behind both entry points. `report`
    /// toggles only side-effect-free instrumentation (stats snapshots, the
    /// value-only [`NvmDevice::diff_stats`] preview, wall-clock timing) —
    /// device, index and pool mutations are identical either way, which is
    /// what lets the batch path skip the bookkeeping without forking the
    /// write path.
    fn put_impl(
        &mut self,
        key: u64,
        value: &[u8],
        expires_at_ms: u64,
        report: bool,
    ) -> Result<(OpReport, PutPath), PnwError> {
        self.check_value(value)?;
        let _w = WriteBracket::enter(&self.sync);
        let mut deferred: Option<(usize, u32)> = None;

        // UPDATE handling. The DeletePut path removes the index entry
        // directly — `remove` already returns the old address, so the
        // update costs one index probe, not a lookup followed by a removal.
        match self.cfg.update_policy {
            UpdatePolicy::InPlace => {
                if let Some(addr) = self.index.get(&mut self.dev, key)? {
                    if let Some(done) = self.put_in_place(key, value, addr, expires_at_ms, report)? {
                        return Ok(done);
                    }
                    // The in-place target failed write-verify: the bucket
                    // is retired and the key unlinked — fall through to a
                    // fresh placement on healthy media.
                }
            }
            UpdatePolicy::DeletePut => {
                // Endurance-first: free the old location (it returns to
                // the pool under its content's label), then fall through
                // to a fresh predicted write. On a durable shard the freed
                // bucket is *deferred* — it joins the pool only after the
                // replacement is WAL-committed, so a torn replacement
                // write can never land on (and corrupt) the committed old
                // value.
                if let Some(addr) = self.index.remove(&mut self.dev, key)? {
                    if self.durable.is_some() {
                        deferred = Some(self.clear_bucket(addr)?);
                    } else {
                        self.delete_bucket_only(addr)?;
                    }
                }
            }
        }

        let before = report.then(|| self.dev.stats().clone());

        // Algorithm 2 line 1: predict the entry. The packed bit-domain
        // kernel reads the raw bytes — no featurization, no allocation —
        // and leaves the per-cluster distances in this shard's scratch.
        let t0 = report.then(Instant::now);
        let cluster = self.model.predict_into(value, &mut self.scratch);
        let predict = t0.map_or(Duration::ZERO, |t| t.elapsed());
        self.predict_total += predict;

        let placed = self.place_sealed(key, value, cluster, &mut deferred, report);
        let (bucket, fallback, value_write) = match placed {
            Ok(hit) => hit,
            // Ring retention: a full zone first reclaims expired buckets,
            // then evicts the earliest-deadline live entry — the oldest
            // frame falls off the CCTV ring — and the placement retries
            // once against the replenished pool.
            Err(PnwError::Full) if self.cfg.retention_ring => {
                if !self.ring_reclaim()? {
                    return Err(PnwError::Full);
                }
                self.place_sealed(key, value, cluster, &mut deferred, report)?
            }
            Err(e) => return Err(e),
        };
        let addr = self.bucket_addr(bucket);
        self.stamp_expiry(bucket, expires_at_ms)?;

        // Line 7: update the hash index.
        if let Err(e) = self.index.insert(&mut self.dev, key, addr as u64) {
            self.unwind_failed_insert(addr, cluster, bucket);
            return Err(e.into());
        }
        // The durable commit point: the op is acknowledged only once its
        // WAL record is fsynced. Volatile shards skip this entirely. With
        // integrity on, the record carries the value bytes — the clean
        // copy the scrubber repairs from.
        if let Some(d) = &mut self.durable {
            let logged = if self.cfg.integrity {
                d.log_put_value(key, addr as u64, value)
            } else {
                d.log_put(key, addr as u64)
            };
            if let Err(e) = logged {
                // Unacknowledged: roll the in-process structures back so
                // the dying store stays internally consistent. The durable
                // state is already safe — no WAL record exists, and
                // recovery clears the uncommitted header.
                let _ = self.index.remove(&mut self.dev, key);
                self.unwind_failed_insert(addr, cluster, bucket);
                return Err(e);
            }
        }
        if let Some((label, freed)) = deferred {
            self.push_free(label, freed);
        }
        self.labels[bucket as usize] = label_u16(cluster);
        self.live += 1;
        self.puts += 1;

        let out = if let Some(before) = before {
            let total = self.dev.stats().since(&before).totals;
            OpReport {
                cluster,
                fallback,
                predict,
                value_write,
                total_write: total,
                modeled_latency: self.dev.modeled_write_cost(&total),
            }
        } else {
            OpReport::default()
        };
        Ok((out, PutPath::Fresh))
    }

    /// The [`UpdatePolicy::InPlace`] update: straight through the hash
    /// index to the key's existing bucket. With integrity on, the whole
    /// sealed image is rewritten (the stored CRC must track the value) and
    /// write-verified; `None` means the media failed verification — the
    /// bucket is retired, the key unlinked, and the caller re-places the
    /// value on fresh media before acknowledging.
    fn put_in_place(
        &mut self,
        key: u64,
        value: &[u8],
        addr: u64,
        expires_at_ms: u64,
        report: bool,
    ) -> Result<Option<(OpReport, PutPath)>, PnwError> {
        let before = report.then(|| self.dev.stats().clone());
        let b = self.bucket_of_addr(addr);
        let vstats = if self.cfg.integrity {
            // Value-only accounting is previewed (the actual write covers
            // the header too, to refresh the seal).
            let vstats = if report {
                self.dev.diff_stats(addr as usize + HDR_BYTES, value)?
            } else {
                WriteStats::default()
            };
            self.seal_bucket_img(key, value);
            self.dev.write(addr as usize, &self.bucket_img, WriteMode::Diff)?;
            self.check_durable_write()?;
            if !self.bucket_matches_img(addr as usize)? {
                // Stuck media, caught before the ack: unlink, retire, and
                // let the caller re-place the value elsewhere.
                self.scrub.crc_failures += 1;
                let _ = self.index.remove(&mut self.dev, key)?;
                self.live -= 1;
                self.retire(b)?;
                let _ = self.dev.write(addr as usize, &[0u8], WriteMode::Diff);
                return Ok(None);
            }
            if let Some(d) = &mut self.durable {
                // Refresh the WAL's clean copy so a later repair can never
                // resurrect the pre-update value.
                d.log_put_value(key, addr, value)?;
            }
            vstats
        } else {
            let vstats = self
                .dev
                .write(addr as usize + HDR_BYTES, value, WriteMode::Diff)?;
            self.check_durable_write()?;
            vstats
        };
        self.stamp_expiry(b, expires_at_ms)?;
        self.labels[b as usize] = LABEL_STALE;
        self.puts += 1;
        let out = if let Some(before) = before {
            let total = self.dev.stats().since(&before).totals;
            OpReport {
                cluster: 0,
                fallback: false,
                predict: Duration::ZERO,
                value_write: vstats,
                total_write: total,
                modeled_latency: self.dev.modeled_write_cost(&total),
            }
        } else {
            OpReport::default()
        };
        Ok(Some((out, PutPath::InPlace)))
    }

    /// Seals the reusable bucket image: valid flag, integrity CRC (zero
    /// when integrity is off — the header bytes then stay bit-identical to
    /// the pre-integrity layout), key, value.
    fn seal_bucket_img(&mut self, key: u64, value: &[u8]) {
        self.bucket_img[0] = FLAG_VALID;
        let crc = if self.cfg.integrity {
            bucket_crc(key, value)
        } else {
            0
        };
        self.bucket_img[4..8].copy_from_slice(&crc.to_le_bytes());
        self.bucket_img[8..16].copy_from_slice(&key.to_le_bytes());
        self.bucket_img[HDR_BYTES..].copy_from_slice(value);
    }

    /// Whether the cells at `addr` now hold exactly the sealed image —
    /// the write-verify read-back. False means a stuck bit of opposite
    /// polarity swallowed part of the write.
    fn bucket_matches_img(&self, addr: usize) -> Result<bool, PnwError> {
        Ok(self.dev.peek(addr, self.bucket_img.len())? == &self.bucket_img[..])
    }

    /// Algorithm 2 lines 2–6 plus write-verify: pops pool candidates until
    /// one's media accepts the sealed image bit-exact. A bucket that fails
    /// the read-back (a stuck bit latched at the opposite polarity) is
    /// retired permanently *before* the op is acknowledged and the
    /// next-ranked candidate is tried; every failure shrinks the pool, so
    /// the loop terminates.
    fn place_sealed(
        &mut self,
        key: u64,
        value: &[u8],
        cluster: usize,
        deferred: &mut Option<(usize, u32)>,
        report: bool,
    ) -> Result<(u32, bool, WriteStats), PnwError> {
        loop {
            // Line 2: get an address from the dynamic address pool. The
            // full nearest-first ranking is an argsort of the distances
            // already in scratch, computed only if the predicted cluster
            // misses.
            let popped = {
                let (pool, scratch, model) = (&mut self.pool, &mut self.scratch, &self.model);
                pool.pop(cluster, || model.ranked_after_predict(scratch))
            };
            let (bucket, fallback) = match popped {
                Some(hit) => hit,
                None => self.forced_reuse(key, cluster, deferred)?,
            };
            let addr = self.bucket_addr(bucket);

            // Lines 3–6: one differential write covers the whole bucket
            // (header + value share cache lines; writing them separately
            // would double-count dirty lines). Value-only accounting is
            // previewed first for the Figure 6 metric.
            let value_write = if report {
                self.dev.diff_stats(addr + HDR_BYTES, value)?
            } else {
                WriteStats::default()
            };
            self.seal_bucket_img(key, value);
            self.dev.write(addr, &self.bucket_img, WriteMode::Diff)?;
            self.check_durable_write()?;
            if !self.cfg.integrity || self.bucket_matches_img(addr)? {
                return Ok((bucket, fallback, value_write));
            }
            self.scrub.crc_failures += 1;
            self.retire(bucket)?;
            let _ = self.dev.write(addr, &[0u8], WriteMode::Diff);
        }
    }

    /// After a data-zone write on a durable shard: a torn write leaves the
    /// device crashed while the write call itself reports the persisted
    /// prefix — the op must surface as failed *before* it reaches the WAL
    /// (a DRAM index insert would otherwise acknowledge a torn value).
    fn check_durable_write(&self) -> Result<(), PnwError> {
        if self.durable.is_some() && self.dev.is_crashed() {
            return Err(NvmError::Crashed.into());
        }
        Ok(())
    }

    /// The pool missed while a durable DeletePut update holds the freed
    /// bucket back: at full capacity the freed bucket is the only
    /// candidate. Commit the delete first — a tear mid-rewrite must then
    /// surface as "key absent" at recovery, never as a corrupted committed
    /// value (the inherent DeletePut crash window) — and re-pop.
    fn forced_reuse(
        &mut self,
        key: u64,
        cluster: usize,
        deferred: &mut Option<(usize, u32)>,
    ) -> Result<(u32, bool), PnwError> {
        let Some((label, bucket)) = deferred.take() else {
            return Err(PnwError::Full);
        };
        self.durable
            .as_mut()
            .expect("a deferred bucket implies a durable shard")
            .log_delete(key)?;
        if self.retired.contains(&bucket) {
            // The freed bucket is retired media — it must never re-enter
            // placement, so with the pool otherwise empty there is
            // genuinely no space (the delete half stays committed).
            return Err(PnwError::Full);
        }
        let worn = self.bucket_worn(bucket);
        self.pool.push_tier(label, bucket, worn);
        let (pool, scratch, model) = (&mut self.pool, &mut self.scratch, &self.model);
        pool.pop(cluster, || model.ranked_after_predict(scratch))
            .ok_or(PnwError::Full)
    }

    /// Recycles a freed bucket into the pool — unless it is retired
    /// (damaged media never re-enters placement), and into the
    /// deprioritized worn tier when its cells are near the endurance
    /// limit.
    fn push_free(&mut self, label: usize, bucket: u32) {
        if self.retired.contains(&bucket) {
            return;
        }
        let worn = self.bucket_worn(bucket);
        self.pool.push_tier(label, bucket, worn);
    }

    /// Whether a bucket's most-written word has consumed ≥¾ of the
    /// configured endurance budget — such buckets allocate last (the
    /// pool's worn tier), spreading imminent wear-out across time instead
    /// of concentrating failures on the hottest addresses.
    fn bucket_worn(&self, bucket: u32) -> bool {
        let Some(endurance) = self.cfg.endurance_writes else {
            return false;
        };
        let threshold = (u64::from(endurance) * 3 / 4).max(1);
        let addr = self.bucket_addr(bucket);
        let geo = self.dev.geometry();
        let first = geo.word_of(addr);
        let last = geo.word_of(addr + self.bucket_size - 1);
        let words = self.dev.wear().word_writes();
        words[first..=last]
            .iter()
            .any(|&w| u64::from(w) >= threshold)
    }

    /// Buckets available for placement: the active zone minus permanent
    /// retirements. Pool capacity — and with it the §V-C load-factor
    /// trigger — tracks this honestly-shrunk figure.
    fn effective_capacity(&self) -> usize {
        self.active_buckets - self.retired.len()
    }

    /// Permanently removes a bucket from placement. Idempotent; on a
    /// durable shard the retirement is WAL-logged (and checkpointed) so it
    /// survives crash and reopen.
    fn retire(&mut self, bucket: u32) -> Result<(), PnwError> {
        if !self.retired.insert(bucket) {
            return Ok(());
        }
        self.scrub.retired += 1;
        self.pool.set_capacity(self.effective_capacity());
        if let Some(d) = &mut self.durable {
            d.log_retire(bucket)?;
        }
        Ok(())
    }

    /// Rolls back a bucket claim whose index insert failed. On a durable
    /// shard the just-written header is cleared again so a quiescent
    /// checkpoint's header scan never sees the unacknowledged key.
    fn unwind_failed_insert(&mut self, addr: usize, cluster: usize, bucket: u32) {
        if self.durable.is_some() {
            let _ = self.dev.write(addr, &[0u8], WriteMode::Diff);
        }
        self.push_free(cluster, bucket);
    }

    /// Executes one batch group against this engine — the one loop behind
    /// both PNW frontends' [`Store::apply`](crate::Store::apply)
    /// overrides. PUTs run [`ShardEngine::put_unreported`]; after every
    /// fresh PUT the §V-C reserve extension runs at exactly the per-op
    /// path's op boundary (so a batch never reports `Full` where the same
    /// ops issued individually would have extended the zone mid-stream).
    /// Returns whether the retrain trigger became due during the group.
    ///
    /// On a durable shard the whole group is **group-committed**: WAL
    /// records accumulate in the OS page cache and one `fdatasync` at the
    /// end of the group commits them all. No op is acknowledged before
    /// `apply` returns, so the commit point the callers observe is
    /// unchanged — a crash mid-group loses only unacknowledged ops.
    ///
    /// Every [`PREDICT_SAMPLE_STRIDE`]th fresh PUT runs the fully-timed
    /// [`ShardEngine::put`] path (device-identical to the unreported one)
    /// and its prediction latency lands in `report.predict_samples`.
    pub(crate) fn apply_group(
        &mut self,
        ops: &[crate::api::Op],
        idxs: impl Iterator<Item = usize>,
        report: &mut crate::api::BatchReport,
    ) -> bool {
        use crate::api::Op;
        let _w = WriteBracket::enter(&self.sync);
        if let Some(d) = &mut self.durable {
            d.begin_group();
        }
        let mut due = false;
        let mut fresh_puts = 0u64;
        let mut last_idx = 0usize;
        for i in idxs {
            last_idx = i;
            match &ops[i] {
                Op::Put { key, value } => {
                    let res = if fresh_puts.is_multiple_of(PREDICT_SAMPLE_STRIDE) {
                        self.put(*key, value).map(|(r, path)| {
                            if path == PutPath::Fresh {
                                report.predict_samples.push(r.predict.as_nanos() as u64);
                            }
                            path
                        })
                    } else {
                        self.put_unreported(*key, value)
                    };
                    match res {
                        Ok(path) => {
                            report.puts += 1;
                            if path == PutPath::Fresh {
                                fresh_puts += 1;
                                if self.retrain_due() {
                                    self.extend_from_reserve_if_due();
                                    due = true;
                                }
                            }
                        }
                        Err(e) => report.failures.push((i, e)),
                    }
                }
                Op::Delete { key } => match self.delete(*key) {
                    Ok(existed) => {
                        report.deletes += 1;
                        report.deleted_existing += u64::from(existed);
                    }
                    Err(e) => report.failures.push((i, e)),
                },
            }
        }
        if let Some(d) = &mut self.durable {
            // The group's one commit point. A failed sync means none of
            // the group's unsynced records are durable — surface it on the
            // last op so the caller sees the group as failed.
            if let Err(e) = d.end_group() {
                report.failures.push((last_idx, e));
            }
        }
        due
    }

    /// GET (§V-B.4): through the hash index, no data-structure changes and
    /// no exclusive access — index lookup and value read both go through
    /// shared references ([`NvmDevice::peek`]), so any number of readers
    /// can run concurrently.
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, PnwError> {
        self.sync.count_get();
        match self.index.lookup(&self.dev, key)? {
            Some(addr) => {
                let mut v = vec![0u8; self.cfg.value_size];
                self.dev.peek_into(addr as usize + HDR_BYTES, &mut v)?;
                self.verify_read(key, addr as usize, &v)?;
                // Lazy expiry: an overdue key reads as absent; the
                // scrubber cursor reclaims the bucket physically.
                if self.addr_expired(addr, now_unix_ms())? {
                    return Ok(None);
                }
                Ok(Some(v))
            }
            None => Ok(None),
        }
    }

    /// Verifies a just-read value against its bucket's sealed CRC — the
    /// guarantee that no GET ever serves silently corrupted bytes. `addr`
    /// is the bucket's base address.
    fn verify_read(&self, key: u64, addr: usize, value: &[u8]) -> Result<(), PnwError> {
        if !self.cfg.integrity {
            return Ok(());
        }
        let hdr = self.dev.peek(addr, HDR_BYTES)?;
        let stored = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
        if stored == bucket_crc(key, value) {
            return Ok(());
        }
        self.sync.count_crc_failure();
        Err(PnwError::Corruption {
            key,
            shard: self.shard_id,
        })
    }

    /// GET into a caller-provided buffer — the allocation-free read path
    /// ([`NvmDevice::peek_into`] straight into `out`). Returns whether the
    /// key was present; `out` is untouched when it was not.
    ///
    /// `out.len()` must equal the configured value size.
    pub fn get_into(&self, key: u64, out: &mut [u8]) -> Result<bool, PnwError> {
        if out.len() != self.cfg.value_size {
            return Err(PnwError::WrongValueSize {
                expected: self.cfg.value_size,
                got: out.len(),
            });
        }
        self.sync.count_get();
        match self.index.lookup(&self.dev, key)? {
            Some(addr) => {
                self.dev.peek_into(addr as usize + HDR_BYTES, out)?;
                self.verify_read(key, addr as usize, out)?;
                if self.addr_expired(addr, now_unix_ms())? {
                    return Ok(false);
                }
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// DELETE (Algorithm 3): reset the flag bit, recycle the address into
    /// the pool under its *content's* label (as the given model sees it).
    pub fn delete(&mut self, key: u64) -> Result<bool, PnwError> {
        let _w = WriteBracket::enter(&self.sync);
        match self.index.remove(&mut self.dev, key)? {
            Some(addr) => {
                // An expired tenant was already logically gone: reclaim it
                // physically but report "did not exist".
                if self.addr_expired(addr, now_unix_ms())? {
                    let (label, bucket) = self.clear_bucket(addr)?;
                    self.check_durable_write()?;
                    if let Some(d) = &mut self.durable {
                        d.log_delete(key)?;
                    }
                    self.push_free(label, bucket);
                    self.scrub.expired += 1;
                    return Ok(false);
                }
                if self.durable.is_some() {
                    // Durable commit order: flag clear, then the WAL
                    // record, then the bucket joins the pool — a crash
                    // anywhere leaves the key either committed or cleanly
                    // deleted, never half-recycled.
                    let (label, bucket) = self.clear_bucket(addr)?;
                    self.check_durable_write()?;
                    self.durable
                        .as_mut()
                        .expect("checked durable")
                        .log_delete(key)?;
                    self.push_free(label, bucket);
                } else {
                    self.delete_bucket_only(addr)?;
                }
                self.deletes += 1;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    fn delete_bucket_only(&mut self, addr: u64) -> Result<(), PnwError> {
        let (label, bucket) = self.clear_bucket(addr)?;
        self.push_free(label, bucket);
        Ok(())
    }

    /// Algorithm 3 minus the pool push: resets the flag bit (line 2, a
    /// one-bit NVM update) and labels the stored content (lines 3–4) —
    /// through the shard's reusable value buffer and prediction scratch,
    /// so DELETE allocates nothing. The caller decides *when* the bucket
    /// rejoins the pool (immediately for volatile shards, after the WAL
    /// commit point for durable ones).
    fn clear_bucket(&mut self, addr: u64) -> Result<(usize, u32), PnwError> {
        self.dev.write(addr as usize, &[0u8], WriteMode::Diff)?;
        let bucket = self.bucket_of_addr(addr);
        // Fast path: the label cached when this content was written is
        // still valid (same model epoch, content untouched since), and
        // prediction is deterministic — the cached label *is* what lines
        // 3–4 would compute, without the value peek or the distance scan.
        let cached = self.labels[bucket as usize];
        let label = if cached != LABEL_STALE && (cached as usize) < self.model.k() {
            cached as usize
        } else {
            let vaddr = self.bucket_addr(bucket) + HDR_BYTES;
            self.dev.peek_into(vaddr, &mut self.value_buf)?;
            self.model.predict_into(&self.value_buf, &mut self.scratch)
        };
        self.live -= 1;
        Ok((label, bucket))
    }

    /// Stamps `bucket`'s expiry-zone slot — always written on placement
    /// (even for 0 = "never expires"), so a stale deadline from a prior
    /// tenant can never attach to a fresh value. No-op without TTL.
    fn stamp_expiry(&mut self, bucket: u32, expires_at_ms: u64) -> Result<(), PnwError> {
        let Some(region) = self.expiry else {
            return Ok(());
        };
        let addr = region.start + bucket as usize * EXPIRY_BYTES;
        self.dev
            .write(addr, &expires_at_ms.to_le_bytes(), WriteMode::Diff)?;
        Ok(())
    }

    /// Reads `bucket`'s expiry deadline (0 = none / TTL off).
    fn peek_expiry(&self, bucket: u32) -> Result<u64, PnwError> {
        let Some(region) = self.expiry else {
            return Ok(0);
        };
        let addr = region.start + bucket as usize * EXPIRY_BYTES;
        let raw = self.dev.peek(addr, EXPIRY_BYTES)?;
        Ok(u64::from_le_bytes(raw.try_into().unwrap()))
    }

    /// Whether the bucket at `addr` holds a value whose deadline has
    /// passed. The lazy-expiry predicate the read path applies — reads
    /// never mutate; physical reclamation belongs to the scrubber cursor.
    fn addr_expired(&self, addr: u64, now: u64) -> Result<bool, PnwError> {
        if self.expiry.is_none() {
            return Ok(false);
        }
        let deadline = self.peek_expiry(self.bucket_of_addr(addr))?;
        Ok(deadline != 0 && deadline <= now)
    }

    /// Physically reclaims `key`'s bucket with committed-delete semantics
    /// (index unlink → flag clear → WAL delete record → pool push), so an
    /// expired or ring-evicted key can never resurrect from WAL replay.
    fn reclaim_key(&mut self, key: u64, evicted: bool) -> Result<(), PnwError> {
        let Some(addr) = self.index.remove(&mut self.dev, key)? else {
            return Ok(());
        };
        let (label, bucket) = self.clear_bucket(addr)?;
        self.check_durable_write()?;
        if let Some(d) = &mut self.durable {
            d.log_delete(key)?;
        }
        self.push_free(label, bucket);
        if evicted {
            self.scrub.evicted += 1;
        } else {
            self.scrub.expired += 1;
        }
        Ok(())
    }

    /// The TTL half of the scrubber's unit of work: reclaims the bucket
    /// when its tenant's deadline has passed. Returns whether the bucket
    /// was reclaimed (the CRC scrub is then moot — the bucket is free).
    fn expire_bucket_if_due(&mut self, bucket: u32) -> Result<bool, PnwError> {
        let addr = self.bucket_addr(bucket);
        let hdr = self.dev.peek(addr, HDR_BYTES)?;
        if hdr[0] & FLAG_VALID == 0 {
            return Ok(false);
        }
        let key = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
        let deadline = self.peek_expiry(bucket)?;
        if deadline == 0 || deadline > now_unix_ms() {
            return Ok(false);
        }
        // The index is authoritative: a stale image whose key lives
        // elsewhere is not this bucket's tenant and must not be reclaimed
        // through it.
        if self.index.lookup(&self.dev, key)? != Some(addr as u64) {
            return Ok(false);
        }
        self.reclaim_key(key, false)?;
        Ok(true)
    }

    /// Ring retention's reclamation sweep, run when a PUT finds the pool
    /// empty: expire every overdue bucket; if nothing was overdue, evict
    /// the live entry with the earliest (nonzero) deadline. Entries
    /// without a deadline are never evicted. Returns whether any bucket
    /// was freed.
    fn ring_reclaim(&mut self) -> Result<bool, PnwError> {
        if self.expiry.is_none() {
            return Ok(false);
        }
        let now = now_unix_ms();
        let mut freed = false;
        let mut earliest: Option<(u64, u64)> = None; // (deadline, key)
        for b in 0..self.active_buckets as u32 {
            if self.retired.contains(&b) {
                continue;
            }
            let addr = self.bucket_addr(b);
            let hdr = self.dev.peek(addr, HDR_BYTES)?;
            if hdr[0] & FLAG_VALID == 0 {
                continue;
            }
            let deadline = self.peek_expiry(b)?;
            if deadline == 0 {
                continue;
            }
            let key = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
            if self.index.lookup(&self.dev, key)? != Some(addr as u64) {
                continue;
            }
            if deadline <= now {
                self.reclaim_key(key, false)?;
                freed = true;
            } else if earliest.is_none_or(|(d, _)| deadline < d) {
                earliest = Some((deadline, key));
            }
        }
        if freed {
            return Ok(true);
        }
        let Some((_, key)) = earliest else {
            return Ok(false);
        };
        self.reclaim_key(key, true)?;
        Ok(true)
    }

    /// Ordered range scan over `[lo, hi]` (inclusive): every live,
    /// unexpired key in range with its value, ascending by key. Walks the
    /// data-zone headers rather than the index (the hash index has no
    /// order); the index is consulted per candidate as the authority — a
    /// stale image on retired media is skipped, never served. CRC-failing
    /// buckets are skipped silently (a scan is a bulk read; the loud
    /// typed-corruption contract belongs to point GETs, and the scrubber
    /// repairs or retires the bucket independently).
    pub fn scan_range(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, PnwError> {
        let mut out = Vec::new();
        if lo > hi {
            return Ok(out);
        }
        let now = now_unix_ms();
        for b in 0..self.active_buckets as u32 {
            let addr = self.bucket_addr(b);
            let hdr = self.dev.peek(addr, HDR_BYTES)?;
            if hdr[0] & FLAG_VALID == 0 {
                continue;
            }
            let key = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
            if key < lo || key > hi {
                continue;
            }
            let stored = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
            if self.index.lookup(&self.dev, key)? != Some(addr as u64) {
                continue;
            }
            let mut v = vec![0u8; self.cfg.value_size];
            self.dev.peek_into(addr + HDR_BYTES, &mut v)?;
            if self.cfg.integrity && bucket_crc(key, &v) != stored {
                continue;
            }
            if self.addr_expired(addr as u64, now)? {
                continue;
            }
            out.push((key, v));
        }
        out.sort_unstable_by_key(|&(k, _)| k);
        Ok(out)
    }

    /// The static geometry the sharded store's lock-free scan path
    /// captures at wrap time.
    pub(crate) fn scan_geometry(&self) -> ScanGeometry {
        ScanGeometry {
            data_start: self.data.start,
            bucket_size: self.bucket_size,
            buckets: self.cfg.capacity + self.cfg.reserve_buckets,
            value_size: self.cfg.value_size,
            integrity: self.cfg.integrity,
            expiry_start: self.expiry.map(|r| r.start),
        }
    }

    /// Verifies one bucket's integrity seal — the scrubber's unit of work.
    /// A CRC failure is repaired from the WAL's clean copy when one exists
    /// (value re-placed on fresh media, damaged bucket retired); without a
    /// clean copy the bucket is retired but the key stays indexed, so the
    /// loss surfaces as a typed [`PnwError::Corruption`] on the next GET —
    /// loud, never silent. A still-intact value sitting on media with
    /// known stuck bits is relocated proactively before a future write can
    /// corrupt it.
    fn scrub_bucket(&mut self, bucket: u32) -> Result<(), PnwError> {
        if self.retired.contains(&bucket) {
            return Ok(());
        }
        // TTL sweep first — and independent of the integrity knob: an
        // expired bucket is reclaimed, making its CRC moot.
        if self.cfg.ttl_enabled && self.expire_bucket_if_due(bucket)? {
            return Ok(());
        }
        if !self.cfg.integrity {
            return Ok(());
        }
        let addr = self.bucket_addr(bucket);
        let hdr: [u8; HDR_BYTES] = self.dev.peek(addr, HDR_BYTES)?.try_into().unwrap();
        if hdr[0] & FLAG_VALID == 0 {
            return Ok(());
        }
        self.scrub.scanned += 1;
        let key = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
        let stored = u32::from_le_bytes(hdr[4..8].try_into().unwrap());
        self.dev.peek_into(addr + HDR_BYTES, &mut self.value_buf)?;
        if bucket_crc(key, &self.value_buf) == stored {
            if self.dev.stuck_bits_in(addr, self.bucket_size) > 0 {
                // Value intact but the media under it has latched: move it
                // while a verified copy can still be read back.
                let value = std::mem::take(&mut self.value_buf);
                let res = self.relocate(key, &value, bucket);
                self.value_buf = value;
                res?;
            }
            return Ok(());
        }
        self.scrub.crc_failures += 1;
        let clean = self
            .durable
            .as_ref()
            .and_then(|d| d.wal_value(key))
            .map(<[u8]>::to_vec);
        match clean {
            Some(v) => self.relocate(key, &v, bucket)?,
            None => self.retire(bucket)?,
        }
        Ok(())
    }

    /// Moves `key`'s value (a verified or WAL-clean copy) off damaged
    /// media: retires the old bucket, re-places the value through the
    /// write-verify loop, re-points the index and re-logs the put.
    fn relocate(&mut self, key: u64, value: &[u8], from: u32) -> Result<(), PnwError> {
        let deadline = self.peek_expiry(from)?;
        self.retire(from)?;
        let cluster = self.model.predict_into(value, &mut self.scratch);
        let mut deferred = None;
        let (bucket, _, _) = self.place_sealed(key, value, cluster, &mut deferred, false)?;
        let addr = self.bucket_addr(bucket);
        // The deadline moves with the value.
        self.stamp_expiry(bucket, deadline)?;
        let _ = self.index.remove(&mut self.dev, key)?;
        self.index.insert(&mut self.dev, key, addr as u64)?;
        if let Some(d) = &mut self.durable {
            d.log_put_value(key, addr as u64, value)?;
        }
        self.labels[bucket as usize] = label_u16(cluster);
        let _ = self
            .dev
            .write(self.bucket_addr(from), &[0u8], WriteMode::Diff);
        self.scrub.repairs += 1;
        Ok(())
    }

    /// Runs one full scrub pass over the active zone (every bucket CRC
    /// verified once) and returns the cumulative scrub counters. A
    /// [`PnwError::Full`] from a relocation (no healthy media left to move
    /// a value onto) ends the pass early — the damaged buckets stay
    /// detected-and-retired, the keys stay loudly addressable.
    pub fn scrub_pass(&mut self) -> Result<ScrubStats, PnwError> {
        let _w = WriteBracket::enter(&self.sync);
        for b in 0..self.active_buckets as u32 {
            match self.scrub_bucket(b) {
                Ok(()) => {}
                Err(PnwError::Full) => break,
                Err(e) => return Err(e),
            }
        }
        Ok(self.scrub)
    }

    /// Scrubs the next `buckets` buckets at the rotating cursor — the
    /// rate-limited background scrubber's increment. Wraps around the
    /// active zone so every bucket is eventually revisited.
    pub fn scrub_step(&mut self, buckets: u32) -> Result<(), PnwError> {
        if self.active_buckets == 0 {
            return Ok(());
        }
        let _w = WriteBracket::enter(&self.sync);
        for _ in 0..buckets {
            let b = self.scrub_cursor % self.active_buckets as u32;
            self.scrub_cursor = (b + 1) % self.active_buckets as u32;
            match self.scrub_bucket(b) {
                Ok(()) => {}
                Err(PnwError::Full) => break,
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// Test/experiment hook: arms a stuck-at fault on one bit of `key`'s
    /// *stored value* (bit 0 = LSB of the value's first byte). Returns
    /// whether the key was present to arm against.
    pub fn arm_stuck_at_key(
        &mut self,
        key: u64,
        bit: u32,
        stuck_at_one: bool,
    ) -> Result<bool, PnwError> {
        let Some(addr) = self.index.lookup(&self.dev, key)? else {
            return Ok(false);
        };
        let byte = addr as usize + HDR_BYTES + (bit / 8) as usize;
        let geo = self.dev.geometry();
        let word = geo.word_of(byte);
        let bit_in_word = ((byte - word * geo.word_bytes) * 8) as u32 + bit % 8;
        self.dev.arm_stuck_bit(word, bit_in_word, stuck_at_one)?;
        Ok(true)
    }

    /// Pre-fills every *free* bucket's cells with values from `gen`,
    /// leaving them free. This reproduces the paper's experimental setup
    /// (§VI-B: *"we first have set aside 5K buckets as the 'old data' on
    /// the NVM"*): the pool then steers incoming writes onto bit-similar
    /// stale content. Retrain afterwards so the model learns the prefilled
    /// distribution.
    pub fn prefill_free_buckets(
        &mut self,
        mut gen: impl FnMut() -> Vec<u8>,
    ) -> Result<usize, PnwError> {
        let free = self.pool.drain_all();
        let mut n = 0;
        for &bucket in &free {
            let v = gen();
            self.check_value(&v)?;
            let addr = self.bucket_addr(bucket) + HDR_BYTES;
            self.dev.write(addr, &v, WriteMode::Raw)?;
            n += 1;
        }
        // Back into the pool under the (still current) model's labels.
        let relabeled = self.labels_of(free);
        let k = self.model.k();
        self.rebuild_pool_tiered(k, relabeled);
        Ok(n)
    }

    /// Rebuilds the pool from `(bucket, label)` pairs, sorting each bucket
    /// into its wear tier (retired buckets never reach here — they are
    /// never in the pool to drain).
    fn rebuild_pool_tiered(&mut self, clusters: usize, relabeled: Vec<(u32, usize)>) {
        let tiered: Vec<(u32, usize, bool)> = relabeled
            .into_iter()
            .map(|(b, l)| (b, l, self.bucket_worn(b)))
            .collect();
        self.pool.rebuild_tiered(clusters, tiered);
    }

    /// Labels each bucket's stored content under the current snapshot,
    /// through the shard's reusable buffers.
    fn labels_of(&mut self, buckets: Vec<u32>) -> Vec<(u32, usize)> {
        let mut out = Vec::with_capacity(buckets.len());
        for b in buckets {
            let vaddr = self.bucket_addr(b) + HDR_BYTES;
            self.dev
                .peek_into(vaddr, &mut self.value_buf)
                .expect("bucket in range");
            let label = self.model.predict_into(&self.value_buf, &mut self.scratch);
            out.push((b, label));
        }
        out
    }

    /// Collects a training snapshot: the contents of all data-zone buckets
    /// (Algorithm 1 trains on "all the available data in the NVM storage"),
    /// subsampled to `cap` values.
    pub fn training_values(&self, cap: usize) -> Vec<Vec<u8>> {
        let idx = stride_sample(self.active_buckets, cap);
        idx.iter()
            .map(|&b| self.peek_value(b as u32).expect("bucket in range"))
            .collect()
    }

    /// Publishes a freshly-trained model snapshot to this shard: swaps the
    /// `Arc` and relabels all free buckets under the new centroids, both
    /// under the shard lock the caller already holds — readers of this
    /// shard can never see the pool and the model out of sync.
    pub fn install_model(&mut self, snapshot: Arc<ModelSnapshot>) {
        self.model = snapshot;
        let free = self.pool.drain_all();
        let relabeled = self.labels_of(free);
        let k = self.model.k();
        self.rebuild_pool_tiered(k, relabeled);
        // Cached content labels were computed under the previous model;
        // Algorithm 3 labels under the *current* one, so they all go
        // stale and refresh lazily on the next delete/overwrite.
        self.labels.fill(LABEL_STALE);
    }

    /// The shard's current model snapshot.
    pub fn model(&self) -> &Arc<ModelSnapshot> {
        &self.model
    }

    /// Simulates a power failure followed by a restart of this shard: the
    /// DRAM-side index (if [`IndexPlacement::Dram`]) and pool are discarded
    /// and rebuilt from NVM, exactly as §V-A.3 describes; the model
    /// snapshot reverts to the untrained placeholder. The caller owns the
    /// trainer and must retrain + [`ShardEngine::install_model`]
    /// afterwards (the model *"can be reconstructed after a crash"*,
    /// §V-A.1).
    pub fn recover_structures(&mut self) -> Result<(), PnwError> {
        let _w = WriteBracket::enter(&self.sync);
        self.dev.crash();
        self.dev.recover();

        // Rebuild the index *in place* (wipe + rescan rather than a new
        // allocation): lock-free readers hold a handle to the index's
        // storage, which must stay the same object across recovery.
        match self.cfg.index {
            IndexPlacement::Dram => {
                // Scan the data zone headers.
                self.index.clear(&mut self.dev)?;
                let mut live = 0;
                for b in 0..self.active_buckets as u32 {
                    if self.retired.contains(&b) {
                        continue;
                    }
                    let addr = self.bucket_addr(b);
                    let hdr: [u8; HDR_BYTES] =
                        self.dev.peek(addr, HDR_BYTES)?.try_into().unwrap();
                    if hdr[0] & FLAG_VALID != 0 {
                        let key = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
                        self.index.insert(&mut self.dev, key, addr as u64)?;
                        live += 1;
                    }
                }
                self.live = live;
            }
            IndexPlacement::Nvm => {
                let region = self.index_region.expect("nvm index has a region");
                let idx = PathHashIndex::recover(region, self.index_leaves, &self.dev);
                self.live = idx.len();
                self.index = Box::new(idx);
            }
        }

        // Rebuild the pool from non-valid buckets under the untrained
        // single-cluster placeholder; the caller retrains next.
        let mut free_buckets = Vec::new();
        for b in 0..self.active_buckets as u32 {
            if self.retired.contains(&b) {
                continue;
            }
            let addr = self.bucket_addr(b);
            let hdr = self.dev.peek(addr, 1)?;
            if hdr[0] & FLAG_VALID == 0 {
                free_buckets.push(b);
            }
        }
        self.pool = DynamicAddressPool::new(1, self.effective_capacity());
        for b in free_buckets {
            let worn = self.bucket_worn(b);
            self.pool.push_tier(0, b, worn);
        }
        // The model is DRAM-resident and lost with the crash; predictions
        // fall back to the untrained placeholder until the caller retrains
        // and installs (the pool above is single-cluster to match).
        self.model = Arc::new(ModelSnapshot::untrained(self.cfg.value_size * 8));
        self.labels.fill(LABEL_STALE);
        Ok(())
    }

    /// Sets the active-zone size directly (recovery: the WAL-replayed
    /// extension state), clamped to the provisioned bucket range.
    pub(crate) fn set_active_buckets(&mut self, n: usize) {
        self.active_buckets = n.min(self.cfg.capacity + self.cfg.reserve_buckets);
        self.pool.set_capacity(self.effective_capacity());
    }

    /// Seeds the permanent-retirement set from recovery (checkpointed
    /// list + WAL-replayed retire records). Call *before* the repair and
    /// structure-recovery scans so they skip damaged media.
    pub(crate) fn restore_retired(&mut self, retired: &[u32]) {
        self.retired.extend(retired.iter().copied());
        self.scrub.retired = self.retired.len() as u64;
        self.pool.set_capacity(self.effective_capacity());
    }

    /// Re-links committed keys whose buckets are retired: the recovery
    /// scans skip retired media, but such a key must stay addressable so
    /// its loss surfaces as a typed [`PnwError::Corruption`] on GET —
    /// never as a silent miss. Call after
    /// [`ShardEngine::recover_structures`].
    pub(crate) fn reindex_retired_committed(
        &mut self,
        committed: &HashMap<u64, u64>,
    ) -> Result<(), PnwError> {
        let _w = WriteBracket::enter(&self.sync);
        for (&key, &addr) in committed {
            let b = self.bucket_of_addr(addr);
            if self.retired.contains(&b) && self.index.lookup(&self.dev, key)?.is_none() {
                self.index.insert(&mut self.dev, key, addr)?;
                self.live += 1;
            }
        }
        Ok(())
    }

    /// Drops the WAL value mirror after a successful checkpoint (the
    /// checkpointed device image is now the repair source of record for
    /// everything the truncated WAL no longer covers).
    pub(crate) fn clear_wal_values(&mut self) {
        if let Some(d) = &mut self.durable {
            d.clear_values();
        }
    }

    /// Reconciles the data zone with the WAL-derived committed map after a
    /// crash — the step that turns "whatever the torn device holds" into
    /// exactly the committed state, before [`ShardEngine::recover_structures`]
    /// rebuilds the DRAM-side structures from the repaired zone:
    ///
    /// 1. any valid-flagged bucket whose `(key, addr)` is *not* committed
    ///    (a torn or unacknowledged put, or a committed delete whose flag
    ///    clear preceded the WAL record) has its flag cleared;
    /// 2. any committed `(key, addr)` whose flag is clear (an
    ///    unacknowledged delete or update that tore after the flag clear)
    ///    has its full header re-stamped — the value bytes are intact,
    ///    because deletion only ever touches the flag byte;
    /// 3. with an NVM-resident index, the index region (whose internal
    ///    writes are not individually WAL-framed) is zeroed and rebuilt
    ///    from the committed map alone.
    pub(crate) fn repair_after_replay(
        &mut self,
        committed: &HashMap<u64, u64>,
    ) -> Result<(), PnwError> {
        let _w = WriteBracket::enter(&self.sync);
        self.labels.fill(LABEL_STALE);
        for b in 0..self.active_buckets as u32 {
            if self.retired.contains(&b) {
                // Retired media is left exactly as found: repairing it
                // would write to known-damaged cells, and its committed
                // keys are re-linked by `reindex_retired_committed`.
                continue;
            }
            let addr = self.bucket_addr(b);
            let hdr: [u8; HDR_BYTES] = self.dev.peek(addr, HDR_BYTES)?.try_into().unwrap();
            let key = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
            let valid = hdr[0] & FLAG_VALID != 0;
            let committed_here = committed.get(&key) == Some(&(addr as u64));
            if valid && !committed_here {
                self.dev.write(addr, &[0u8], WriteMode::Diff)?;
            } else if !valid && committed_here {
                let mut fixed = [0u8; HDR_BYTES];
                fixed[0] = FLAG_VALID;
                if self.cfg.integrity {
                    // The flag-only clear this repair undoes never touched
                    // the CRC bytes, but the header image below is written
                    // whole — carry the seal forward instead of zeroing it.
                    self.dev.peek_into(addr + HDR_BYTES, &mut self.value_buf)?;
                    fixed[4..8].copy_from_slice(&bucket_crc(key, &self.value_buf).to_le_bytes());
                }
                fixed[8..16].copy_from_slice(&key.to_le_bytes());
                self.dev.write(addr, &fixed, WriteMode::Diff)?;
            }
        }
        if let Some(region) = self.index_region {
            // A torn crash can leave the path-hash region mid-update;
            // its buckets carry no CRCs, so rebuild it wholesale from the
            // committed map.
            self.dev
                .write(region.start, &vec![0u8; region.len], WriteMode::Diff)?;
            let mut idx = PathHashIndex::create(region, self.index_leaves);
            for (&key, &addr) in committed {
                idx.insert(&mut self.dev, key, addr)?;
            }
            self.index = Box::new(idx);
        }
        Ok(())
    }

    /// The committed `(key, address)` pairs as the data zone's headers
    /// state them. Only meaningful at a quiescent cut on a durable shard
    /// (no op in flight, device not crashed): then every valid-flagged
    /// header corresponds to a WAL-acknowledged put and vice versa.
    pub(crate) fn committed_entries(&self) -> Result<Vec<(u64, u64)>, PnwError> {
        let mut out = Vec::with_capacity(self.live);
        for b in 0..self.active_buckets as u32 {
            let addr = self.bucket_addr(b);
            let hdr = self.dev.peek(addr, HDR_BYTES)?;
            if hdr[0] & FLAG_VALID != 0 {
                let key = u64::from_le_bytes(hdr[8..16].try_into().unwrap());
                if self.retired.contains(&b) && self.index.lookup(&self.dev, key)? != Some(addr as u64)
                {
                    // A stale image on retired media (the flag byte can be
                    // stuck and unclearable); the key lives elsewhere now.
                    continue;
                }
                out.push((key, addr as u64));
            }
        }
        Ok(out)
    }

    /// Collects this shard's checkpoint contribution at a quiescent cut.
    pub(crate) fn checkpoint_state(&self) -> Result<crate::durable::ShardCheckpoint, PnwError> {
        let mut retired: Vec<u32> = self.retired.iter().copied().collect();
        retired.sort_unstable();
        Ok(crate::durable::ShardCheckpoint {
            active: self.active_buckets as u64,
            entries: self.committed_entries()?,
            stats: self.dev.stats().clone(),
            word_writes: self.dev.wear().word_writes().to_vec(),
            bit_flips: self.dev.wear().bit_flips().map(<[u16]>::to_vec),
            retired,
        })
    }

    /// Restores checkpointed device counters after recovery repair (last,
    /// so the repair's own writes do not perturb the restored values).
    pub(crate) fn restore_device_counters(
        &mut self,
        stats: DeviceStats,
        word_writes: &[u32],
        bit_flips: Option<&[u16]>,
    ) {
        self.dev.restore_stats(stats);
        if !word_writes.is_empty() {
            self.dev.restore_wear(word_writes, bit_flips);
        }
    }

    /// Attaches the WAL appender that makes this shard durable.
    pub(crate) fn attach_durable(&mut self, d: DurableShard) {
        self.durable = Some(d);
    }

    /// Flushes the device's backing file; refuses on a crashed device (a
    /// checkpoint must never be cut from post-crash state).
    pub(crate) fn sync_device(&self) -> Result<(), PnwError> {
        if self.dev.is_crashed() {
            return Err(NvmError::Crashed.into());
        }
        Ok(self.dev.sync()?)
    }

    /// Arms a torn write on this shard's device (test hook).
    pub(crate) fn arm_torn_write(&mut self, words: usize) {
        self.dev.arm_torn_write(words);
    }

    /// Point-in-time metrics snapshot; the trainer-owned fields come from
    /// the caller as a [`TrainStats`], `k` from the shard's own snapshot.
    pub fn snapshot(&self, train: TrainStats) -> StoreSnapshot {
        StoreSnapshot {
            live: self.live,
            free: self.pool.free(),
            capacity: self.effective_capacity(),
            k: self.model.k(),
            retrains: train.epoch,
            train,
            fallbacks: self.pool.fallbacks(),
            device: self.dev.stats().clone(),
            predict_total: self.predict_total,
            puts: self.puts,
            gets: self.sync.gets(),
            deletes: self.deletes,
            scrub: {
                let mut s = self.scrub;
                s.crc_failures += self.sync.crc_failures();
                s.stuck_bits = self.dev.stuck_bit_count();
                s
            },
        }
    }

    /// Access to the pool (read-only).
    pub fn pool(&self) -> &DynamicAddressPool {
        &self.pool
    }

    /// Persists the device's cell image (the NVM part's durable state) to a
    /// file.
    pub fn save_image(&self, path: &std::path::Path) -> std::io::Result<()> {
        self.dev.save_image(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ShardEngine>();
    }

    #[test]
    fn engine_put_get_delete_with_own_snapshot() {
        let cfg = PnwConfig::new(32, 8).with_clusters(2);
        let mut e = ShardEngine::new(cfg);
        assert_eq!(e.model().epoch(), 0, "fresh engine holds the placeholder");
        let (r, path) = e.put(1, &[0xAA; 8]).unwrap();
        assert_eq!(path, PutPath::Fresh);
        assert!(r.total_write.bit_flips > 0);
        assert_eq!(e.get(1).unwrap().unwrap(), vec![0xAA; 8]);
        assert!(e.delete(1).unwrap());
        assert_eq!(e.get(1).unwrap(), None);
        assert!(e.is_empty());
    }

    #[test]
    fn engine_get_records_no_device_reads() {
        let cfg = PnwConfig::new(16, 8).with_clusters(1);
        let mut e = ShardEngine::new(cfg);
        e.put(7, &[1; 8]).unwrap();
        let reads = e.device_stats().read_ops;
        for _ in 0..10 {
            e.get(7).unwrap();
        }
        assert_eq!(e.device_stats().read_ops, reads);
        assert_eq!(e.snapshot(TrainStats::default()).gets, 10);
    }

    #[test]
    fn in_place_put_reports_its_path() {
        let cfg = PnwConfig::new(16, 8)
            .with_clusters(1)
            .with_update_policy(UpdatePolicy::InPlace);
        let mut e = ShardEngine::new(cfg);
        let (_, p1) = e.put(5, &[0; 8]).unwrap();
        let (_, p2) = e.put(5, &[1; 8]).unwrap();
        assert_eq!(p1, PutPath::Fresh);
        assert_eq!(p2, PutPath::InPlace);
    }

    /// The batch-path PUT must leave the device in a bit-for-bit identical
    /// state to the reporting PUT — same writes, same index traffic, same
    /// pool decisions — under both update policies.
    #[test]
    fn put_unreported_matches_put_exactly() {
        for policy in [UpdatePolicy::DeletePut, UpdatePolicy::InPlace] {
            let cfg = PnwConfig::new(64, 8)
                .with_clusters(2)
                .with_seed(5)
                .with_update_policy(policy);
            let mut a = ShardEngine::new(cfg.clone());
            let mut b = ShardEngine::new(cfg);
            for round in 0..3u8 {
                for k in 0..24u64 {
                    let v = [k as u8 ^ (round * 0x3B); 8];
                    let (_, path_a) = a.put(k, &v).unwrap();
                    let path_b = b.put_unreported(k, &v).unwrap();
                    assert_eq!(path_a, path_b, "key {k} round {round}");
                }
                for k in (0..24u64).step_by(5) {
                    assert_eq!(a.delete(k).unwrap(), b.delete(k).unwrap());
                }
            }
            assert_eq!(a.device_stats(), b.device_stats(), "{policy:?}");
            assert_eq!(a.len(), b.len());
            let (sa, sb) = (
                a.snapshot(TrainStats::default()),
                b.snapshot(TrainStats::default()),
            );
            assert_eq!(sa.puts, sb.puts);
            assert_eq!(sa.free, sb.free);
        }
    }

    #[test]
    fn put_unreported_reports_full() {
        let mut e = ShardEngine::new(PnwConfig::new(2, 8).with_clusters(1));
        e.put_unreported(1, &[1; 8]).unwrap();
        e.put_unreported(2, &[2; 8]).unwrap();
        assert!(matches!(
            e.put_unreported(3, &[3; 8]),
            Err(PnwError::Full)
        ));
        assert!(matches!(
            e.put_unreported(4, &[0; 4]),
            Err(PnwError::WrongValueSize { expected: 8, got: 4 })
        ));
    }

    #[test]
    fn install_model_swaps_snapshot_and_relabels_together() {
        let cfg = PnwConfig::new(32, 8).with_clusters(2);
        let mut mgr = crate::model::ModelManager::new(&cfg);
        let mut e = ShardEngine::new(cfg);
        let values: Vec<Vec<u8>> = (0..32)
            .map(|i| vec![if i % 2 == 0 { 0x00u8 } else { 0xFF }; 8])
            .collect();
        mgr.train(&values);
        e.install_model(mgr.snapshot());
        assert_eq!(e.model().epoch(), 1);
        assert_eq!(e.model().k(), 2);
        // Pool now has one free list per cluster of the *installed* model.
        assert_eq!(e.pool().clusters(), 2);
    }

    /// A GET must never return corrupt bytes: a stuck bit that flips the
    /// stored value surfaces as a typed, non-retryable [`Corruption`]
    /// error carrying the key and shard.
    #[test]
    fn get_detects_corruption_from_stuck_bit() {
        let mut e = ShardEngine::new(PnwConfig::new(8, 8).with_clusters(1));
        e.put(1, &[0u8; 8]).unwrap();
        assert!(e.arm_stuck_at_key(1, 3, true).unwrap());
        assert!(!e.arm_stuck_at_key(99, 0, true).unwrap(), "absent key");
        assert!(matches!(
            e.get(1),
            Err(PnwError::Corruption { key: 1, shard: 0 })
        ));
        let snap = e.snapshot(TrainStats::default());
        assert!(snap.scrub.crc_failures >= 1);
        assert_eq!(snap.scrub.stuck_bits, 1);
    }

    /// Write-verify at PUT: a bucket whose media can no longer hold the
    /// sealed image is retired permanently and capacity shrinks honestly —
    /// the store reports `Full` rather than silently storing bad bytes.
    #[test]
    fn write_verify_retires_stuck_bucket() {
        let mut e = ShardEngine::new(PnwConfig::new(1, 8).with_clusters(1));
        e.put(1, &[0u8; 8]).unwrap();
        assert!(e.arm_stuck_at_key(1, 0, true).unwrap());
        assert!(e.delete(1).unwrap());
        // The only bucket has a stuck-at-one cell over a zero value: the
        // verify read can't match the sealed image, so the bucket retires
        // and the (now empty) pool reports Full.
        assert!(matches!(e.put(2, &[0u8; 8]), Err(PnwError::Full)));
        let snap = e.snapshot(TrainStats::default());
        assert_eq!(snap.scrub.retired, 1);
        assert_eq!(snap.scrub.crc_failures, 1);
        assert_eq!(snap.capacity, 0, "capacity shrinks by the retired bucket");
        assert_eq!(e.len(), 0);
    }

    /// Scrub with no durable copy to repair from: the damage is loud, not
    /// silent — the bucket retires, the key stays indexed, and every GET
    /// of it reports corruption instead of pretending the key is gone.
    #[test]
    fn scrub_without_durable_copy_retires_loudly() {
        let mut e = ShardEngine::new(PnwConfig::new(4, 8).with_clusters(1));
        e.put(1, &[0u8; 8]).unwrap();
        assert!(e.arm_stuck_at_key(1, 5, true).unwrap());
        let s = e.scrub_pass().unwrap();
        assert_eq!(s.crc_failures, 1);
        assert_eq!(s.repairs, 0, "volatile store has no clean copy");
        assert_eq!(s.retired, 1);
        assert_eq!(e.len(), 1, "loud loss: the key stays indexed");
        assert!(matches!(
            e.get(1),
            Err(PnwError::Corruption { key: 1, .. })
        ));
    }

    /// Scrub proactively relocates a still-readable value off stuck media:
    /// the stuck bit happens to match the stored polarity (CRC passes),
    /// but the bucket is a time bomb — the value moves to clean media and
    /// the damaged bucket retires.
    #[test]
    fn scrub_relocates_valid_value_off_stuck_media() {
        let mut e = ShardEngine::new(PnwConfig::new(4, 8).with_clusters(1));
        e.put(1, &[0xFFu8; 8]).unwrap();
        // Stored bit is 1 and the cell latches at 1: CRC still verifies.
        assert!(e.arm_stuck_at_key(1, 0, true).unwrap());
        let s = e.scrub_pass().unwrap();
        assert_eq!(s.crc_failures, 0);
        assert_eq!(s.repairs, 1);
        assert_eq!(s.retired, 1);
        assert_eq!(e.get(1).unwrap().unwrap(), vec![0xFF; 8]);
        let snap = e.snapshot(TrainStats::default());
        assert_eq!(snap.capacity, 3);
        assert_eq!(snap.scrub.stuck_bits, 1);
    }

    /// With integrity off the CRC home bytes (header [4..8]) stay zero —
    /// the sealed layout is bit-identical to the pre-integrity format.
    /// With it on, the stored CRC is exactly [`bucket_crc`].
    #[test]
    fn crc_home_bytes_follow_the_integrity_knob() {
        let value = [0xABu8; 8];
        let mut on = ShardEngine::new(PnwConfig::new(8, 8).with_clusters(1));
        let mut off =
            ShardEngine::new(PnwConfig::new(8, 8).with_clusters(1).with_integrity(false));
        on.put(1, &value).unwrap();
        off.put(1, &value).unwrap();
        let addr_on = on.index.lookup(&on.dev, 1).unwrap().unwrap() as usize;
        let hdr_on = on.dev.peek(addr_on, HDR_BYTES).unwrap();
        let stored = u32::from_le_bytes(hdr_on[4..8].try_into().unwrap());
        assert_eq!(stored, bucket_crc(1, &value));
        assert_ne!(stored, 0);
        let addr_off = off.index.lookup(&off.dev, 1).unwrap().unwrap() as usize;
        let hdr_off = off.dev.peek(addr_off, HDR_BYTES).unwrap();
        assert_eq!(&hdr_off[4..8], &[0u8; 4], "integrity off seals zeros");
        // And the off path never reports corruption, even for bad media.
        assert!(off.arm_stuck_at_key(1, 2, true).unwrap());
        assert!(off.get(1).is_ok());
    }
}
